file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nexmark.dir/bench_fig7_nexmark.cc.o"
  "CMakeFiles/bench_fig7_nexmark.dir/bench_fig7_nexmark.cc.o.d"
  "bench_fig7_nexmark"
  "bench_fig7_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
