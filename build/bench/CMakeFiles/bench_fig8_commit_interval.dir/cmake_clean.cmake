file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_commit_interval.dir/bench_fig8_commit_interval.cc.o"
  "CMakeFiles/bench_fig8_commit_interval.dir/bench_fig8_commit_interval.cc.o.d"
  "bench_fig8_commit_interval"
  "bench_fig8_commit_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_commit_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
