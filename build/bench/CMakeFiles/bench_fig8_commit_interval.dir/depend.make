# Empty dependencies file for bench_fig8_commit_interval.
# This may be replaced when dependencies are built.
