file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_log_latency.dir/bench_table2_log_latency.cc.o"
  "CMakeFiles/bench_table2_log_latency.dir/bench_table2_log_latency.cc.o.d"
  "bench_table2_log_latency"
  "bench_table2_log_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_log_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
