file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_unsafe.dir/bench_fig9_unsafe.cc.o"
  "CMakeFiles/bench_fig9_unsafe.dir/bench_fig9_unsafe.cc.o.d"
  "bench_fig9_unsafe"
  "bench_fig9_unsafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_unsafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
