# Empty dependencies file for impeller_common.
# This may be replaced when dependencies are built.
