file(REMOVE_RECURSE
  "CMakeFiles/impeller_common.dir/clock.cc.o"
  "CMakeFiles/impeller_common.dir/clock.cc.o.d"
  "CMakeFiles/impeller_common.dir/histogram.cc.o"
  "CMakeFiles/impeller_common.dir/histogram.cc.o.d"
  "CMakeFiles/impeller_common.dir/logging.cc.o"
  "CMakeFiles/impeller_common.dir/logging.cc.o.d"
  "CMakeFiles/impeller_common.dir/rate_limiter.cc.o"
  "CMakeFiles/impeller_common.dir/rate_limiter.cc.o.d"
  "CMakeFiles/impeller_common.dir/rng.cc.o"
  "CMakeFiles/impeller_common.dir/rng.cc.o.d"
  "CMakeFiles/impeller_common.dir/serde.cc.o"
  "CMakeFiles/impeller_common.dir/serde.cc.o.d"
  "CMakeFiles/impeller_common.dir/status.cc.o"
  "CMakeFiles/impeller_common.dir/status.cc.o.d"
  "libimpeller_common.a"
  "libimpeller_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
