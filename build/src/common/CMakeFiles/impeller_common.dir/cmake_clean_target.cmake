file(REMOVE_RECURSE
  "libimpeller_common.a"
)
