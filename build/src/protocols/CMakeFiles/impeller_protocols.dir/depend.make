# Empty dependencies file for impeller_protocols.
# This may be replaced when dependencies are built.
