file(REMOVE_RECURSE
  "libimpeller_protocols.a"
)
