file(REMOVE_RECURSE
  "CMakeFiles/impeller_protocols.dir/barrier_coordinator.cc.o"
  "CMakeFiles/impeller_protocols.dir/barrier_coordinator.cc.o.d"
  "CMakeFiles/impeller_protocols.dir/txn_coordinator.cc.o"
  "CMakeFiles/impeller_protocols.dir/txn_coordinator.cc.o.d"
  "libimpeller_protocols.a"
  "libimpeller_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
