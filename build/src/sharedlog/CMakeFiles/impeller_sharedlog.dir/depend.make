# Empty dependencies file for impeller_sharedlog.
# This may be replaced when dependencies are built.
