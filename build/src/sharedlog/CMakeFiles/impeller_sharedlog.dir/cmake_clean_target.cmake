file(REMOVE_RECURSE
  "libimpeller_sharedlog.a"
)
