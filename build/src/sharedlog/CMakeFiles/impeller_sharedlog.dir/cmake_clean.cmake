file(REMOVE_RECURSE
  "CMakeFiles/impeller_sharedlog.dir/latency_model.cc.o"
  "CMakeFiles/impeller_sharedlog.dir/latency_model.cc.o.d"
  "CMakeFiles/impeller_sharedlog.dir/partitioned_log.cc.o"
  "CMakeFiles/impeller_sharedlog.dir/partitioned_log.cc.o.d"
  "CMakeFiles/impeller_sharedlog.dir/shared_log.cc.o"
  "CMakeFiles/impeller_sharedlog.dir/shared_log.cc.o.d"
  "libimpeller_sharedlog.a"
  "libimpeller_sharedlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_sharedlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
