
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sharedlog/latency_model.cc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/latency_model.cc.o" "gcc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/latency_model.cc.o.d"
  "/root/repo/src/sharedlog/partitioned_log.cc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/partitioned_log.cc.o" "gcc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/partitioned_log.cc.o.d"
  "/root/repo/src/sharedlog/shared_log.cc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/shared_log.cc.o" "gcc" "src/sharedlog/CMakeFiles/impeller_sharedlog.dir/shared_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impeller_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
