# Empty compiler generated dependencies file for impeller_nexmark.
# This may be replaced when dependencies are built.
