file(REMOVE_RECURSE
  "libimpeller_nexmark.a"
)
