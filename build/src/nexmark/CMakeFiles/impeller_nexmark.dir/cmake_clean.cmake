file(REMOVE_RECURSE
  "CMakeFiles/impeller_nexmark.dir/driver.cc.o"
  "CMakeFiles/impeller_nexmark.dir/driver.cc.o.d"
  "CMakeFiles/impeller_nexmark.dir/events.cc.o"
  "CMakeFiles/impeller_nexmark.dir/events.cc.o.d"
  "CMakeFiles/impeller_nexmark.dir/generator.cc.o"
  "CMakeFiles/impeller_nexmark.dir/generator.cc.o.d"
  "CMakeFiles/impeller_nexmark.dir/queries.cc.o"
  "CMakeFiles/impeller_nexmark.dir/queries.cc.o.d"
  "libimpeller_nexmark.a"
  "libimpeller_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
