file(REMOVE_RECURSE
  "libimpeller_kvstore.a"
)
