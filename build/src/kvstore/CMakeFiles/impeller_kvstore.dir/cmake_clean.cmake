file(REMOVE_RECURSE
  "CMakeFiles/impeller_kvstore.dir/kv_store.cc.o"
  "CMakeFiles/impeller_kvstore.dir/kv_store.cc.o.d"
  "libimpeller_kvstore.a"
  "libimpeller_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
