# Empty compiler generated dependencies file for impeller_kvstore.
# This may be replaced when dependencies are built.
