file(REMOVE_RECURSE
  "CMakeFiles/impeller_codec.dir/marker.cc.o"
  "CMakeFiles/impeller_codec.dir/marker.cc.o.d"
  "CMakeFiles/impeller_codec.dir/record.cc.o"
  "CMakeFiles/impeller_codec.dir/record.cc.o.d"
  "CMakeFiles/impeller_codec.dir/stream.cc.o"
  "CMakeFiles/impeller_codec.dir/stream.cc.o.d"
  "libimpeller_codec.a"
  "libimpeller_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
