
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/marker.cc" "src/core/CMakeFiles/impeller_codec.dir/marker.cc.o" "gcc" "src/core/CMakeFiles/impeller_codec.dir/marker.cc.o.d"
  "/root/repo/src/core/record.cc" "src/core/CMakeFiles/impeller_codec.dir/record.cc.o" "gcc" "src/core/CMakeFiles/impeller_codec.dir/record.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/core/CMakeFiles/impeller_codec.dir/stream.cc.o" "gcc" "src/core/CMakeFiles/impeller_codec.dir/stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/impeller_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/impeller_sharedlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
