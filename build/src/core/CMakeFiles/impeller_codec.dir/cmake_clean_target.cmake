file(REMOVE_RECURSE
  "libimpeller_codec.a"
)
