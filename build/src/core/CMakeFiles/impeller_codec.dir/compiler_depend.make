# Empty compiler generated dependencies file for impeller_codec.
# This may be replaced when dependencies are built.
