
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/impeller_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/commit_tracker.cc" "src/core/CMakeFiles/impeller_core.dir/commit_tracker.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/commit_tracker.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/impeller_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/engine.cc.o.d"
  "/root/repo/src/core/gc.cc" "src/core/CMakeFiles/impeller_core.dir/gc.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/gc.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/impeller_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/operators_stateful.cc" "src/core/CMakeFiles/impeller_core.dir/operators_stateful.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/operators_stateful.cc.o.d"
  "/root/repo/src/core/operators_stateless.cc" "src/core/CMakeFiles/impeller_core.dir/operators_stateless.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/operators_stateless.cc.o.d"
  "/root/repo/src/core/output_buffer.cc" "src/core/CMakeFiles/impeller_core.dir/output_buffer.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/output_buffer.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/impeller_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/query.cc.o.d"
  "/root/repo/src/core/state_store.cc" "src/core/CMakeFiles/impeller_core.dir/state_store.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/state_store.cc.o.d"
  "/root/repo/src/core/substream_reader.cc" "src/core/CMakeFiles/impeller_core.dir/substream_reader.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/substream_reader.cc.o.d"
  "/root/repo/src/core/task_manager.cc" "src/core/CMakeFiles/impeller_core.dir/task_manager.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/task_manager.cc.o.d"
  "/root/repo/src/core/task_runtime.cc" "src/core/CMakeFiles/impeller_core.dir/task_runtime.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/task_runtime.cc.o.d"
  "/root/repo/src/core/window.cc" "src/core/CMakeFiles/impeller_core.dir/window.cc.o" "gcc" "src/core/CMakeFiles/impeller_core.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/impeller_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/impeller_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/impeller_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/impeller_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impeller_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
