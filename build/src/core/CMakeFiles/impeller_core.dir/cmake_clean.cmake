file(REMOVE_RECURSE
  "CMakeFiles/impeller_core.dir/checkpoint.cc.o"
  "CMakeFiles/impeller_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/impeller_core.dir/commit_tracker.cc.o"
  "CMakeFiles/impeller_core.dir/commit_tracker.cc.o.d"
  "CMakeFiles/impeller_core.dir/engine.cc.o"
  "CMakeFiles/impeller_core.dir/engine.cc.o.d"
  "CMakeFiles/impeller_core.dir/gc.cc.o"
  "CMakeFiles/impeller_core.dir/gc.cc.o.d"
  "CMakeFiles/impeller_core.dir/metrics.cc.o"
  "CMakeFiles/impeller_core.dir/metrics.cc.o.d"
  "CMakeFiles/impeller_core.dir/operators_stateful.cc.o"
  "CMakeFiles/impeller_core.dir/operators_stateful.cc.o.d"
  "CMakeFiles/impeller_core.dir/operators_stateless.cc.o"
  "CMakeFiles/impeller_core.dir/operators_stateless.cc.o.d"
  "CMakeFiles/impeller_core.dir/output_buffer.cc.o"
  "CMakeFiles/impeller_core.dir/output_buffer.cc.o.d"
  "CMakeFiles/impeller_core.dir/query.cc.o"
  "CMakeFiles/impeller_core.dir/query.cc.o.d"
  "CMakeFiles/impeller_core.dir/state_store.cc.o"
  "CMakeFiles/impeller_core.dir/state_store.cc.o.d"
  "CMakeFiles/impeller_core.dir/substream_reader.cc.o"
  "CMakeFiles/impeller_core.dir/substream_reader.cc.o.d"
  "CMakeFiles/impeller_core.dir/task_manager.cc.o"
  "CMakeFiles/impeller_core.dir/task_manager.cc.o.d"
  "CMakeFiles/impeller_core.dir/task_runtime.cc.o"
  "CMakeFiles/impeller_core.dir/task_runtime.cc.o.d"
  "CMakeFiles/impeller_core.dir/window.cc.o"
  "CMakeFiles/impeller_core.dir/window.cc.o.d"
  "libimpeller_core.a"
  "libimpeller_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impeller_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
