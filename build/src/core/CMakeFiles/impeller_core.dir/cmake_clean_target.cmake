file(REMOVE_RECURSE
  "libimpeller_core.a"
)
