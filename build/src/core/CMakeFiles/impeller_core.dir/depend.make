# Empty dependencies file for impeller_core.
# This may be replaced when dependencies are built.
