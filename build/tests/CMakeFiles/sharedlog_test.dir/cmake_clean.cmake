file(REMOVE_RECURSE
  "CMakeFiles/sharedlog_test.dir/sharedlog_test.cc.o"
  "CMakeFiles/sharedlog_test.dir/sharedlog_test.cc.o.d"
  "sharedlog_test"
  "sharedlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharedlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
