file(REMOVE_RECURSE
  "CMakeFiles/partitioned_log_test.dir/partitioned_log_test.cc.o"
  "CMakeFiles/partitioned_log_test.dir/partitioned_log_test.cc.o.d"
  "partitioned_log_test"
  "partitioned_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
