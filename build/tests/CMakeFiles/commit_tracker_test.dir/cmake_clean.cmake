file(REMOVE_RECURSE
  "CMakeFiles/commit_tracker_test.dir/commit_tracker_test.cc.o"
  "CMakeFiles/commit_tracker_test.dir/commit_tracker_test.cc.o.d"
  "commit_tracker_test"
  "commit_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
