# Empty compiler generated dependencies file for commit_tracker_test.
# This may be replaced when dependencies are built.
