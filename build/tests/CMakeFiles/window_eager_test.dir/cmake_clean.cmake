file(REMOVE_RECURSE
  "CMakeFiles/window_eager_test.dir/window_eager_test.cc.o"
  "CMakeFiles/window_eager_test.dir/window_eager_test.cc.o.d"
  "window_eager_test"
  "window_eager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_eager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
