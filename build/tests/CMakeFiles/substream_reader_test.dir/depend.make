# Empty dependencies file for substream_reader_test.
# This may be replaced when dependencies are built.
