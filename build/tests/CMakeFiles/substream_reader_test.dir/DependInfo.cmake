
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/substream_reader_test.cc" "tests/CMakeFiles/substream_reader_test.dir/substream_reader_test.cc.o" "gcc" "tests/CMakeFiles/substream_reader_test.dir/substream_reader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nexmark/CMakeFiles/impeller_nexmark.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/impeller_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/impeller_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/impeller_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/impeller_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/impeller_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/impeller_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
