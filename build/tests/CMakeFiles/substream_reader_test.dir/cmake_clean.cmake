file(REMOVE_RECURSE
  "CMakeFiles/substream_reader_test.dir/substream_reader_test.cc.o"
  "CMakeFiles/substream_reader_test.dir/substream_reader_test.cc.o.d"
  "substream_reader_test"
  "substream_reader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substream_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
