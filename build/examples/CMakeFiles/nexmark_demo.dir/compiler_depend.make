# Empty compiler generated dependencies file for nexmark_demo.
# This may be replaced when dependencies are built.
