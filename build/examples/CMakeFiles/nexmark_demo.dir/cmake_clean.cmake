file(REMOVE_RECURSE
  "CMakeFiles/nexmark_demo.dir/nexmark_demo.cpp.o"
  "CMakeFiles/nexmark_demo.dir/nexmark_demo.cpp.o.d"
  "nexmark_demo"
  "nexmark_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
