file(REMOVE_RECURSE
  "CMakeFiles/iot_anomaly.dir/iot_anomaly.cpp.o"
  "CMakeFiles/iot_anomaly.dir/iot_anomaly.cpp.o.d"
  "iot_anomaly"
  "iot_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
