file(REMOVE_RECURSE
  "CMakeFiles/rescale_demo.dir/rescale_demo.cpp.o"
  "CMakeFiles/rescale_demo.dir/rescale_demo.cpp.o.d"
  "rescale_demo"
  "rescale_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rescale_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
