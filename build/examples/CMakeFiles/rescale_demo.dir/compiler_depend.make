# Empty compiler generated dependencies file for rescale_demo.
# This may be replaced when dependencies are built.
