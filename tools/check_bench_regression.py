#!/usr/bin/env python3
"""Gate benchmark regressions against a committed baseline.

Compares a freshly produced BENCH_<name>.json against the baseline JSON
committed in the repo and fails (exit 1) when:

  * ns_per_op of any benchmark present in both files regresses by more
    than --threshold (default 10%), or
  * allocs_per_record of any benchmark regresses by more than
    --alloc-slack (default 0.5 allocations/record).

Time-based thresholds are inherently noisy across machines; the allocation
counters are deterministic and are the primary signal for the zero-copy
data plane (DESIGN.md §12). Benchmarks present in only one file are
reported but never fail the check, so adding or retiring benchmarks does
not require touching the gate.

Usage:
  tools/check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.10]
"""

import argparse
import json
import sys


def load_points(path):
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        points[p["name"]] = p
    return points


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max allowed fractional ns_per_op increase")
    ap.add_argument("--alloc-slack", type=float, default=0.5,
                    help="max allowed allocs_per_record increase")
    args = ap.parse_args()

    base = load_points(args.baseline)
    cur = load_points(args.current)

    failures = []
    compared = 0
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            print(f"  [skip] {name}: missing from current run")
            continue
        compared += 1
        b_ns, c_ns = b.get("ns_per_op"), c.get("ns_per_op")
        if b_ns and c_ns:
            ratio = c_ns / b_ns
            marker = "OK"
            if ratio > 1.0 + args.threshold:
                marker = "FAIL"
                failures.append(
                    f"{name}: ns_per_op {b_ns:.1f} -> {c_ns:.1f} "
                    f"(+{(ratio - 1) * 100:.1f}% > {args.threshold * 100:.0f}%)")
            print(f"  [{marker}] {name}: {b_ns:.1f} -> {c_ns:.1f} ns/op "
                  f"({(ratio - 1) * 100:+.1f}%)")
        b_allocs = b.get("allocs_per_record")
        c_allocs = c.get("allocs_per_record")
        if b_allocs is not None and c_allocs is not None:
            if c_allocs > b_allocs + args.alloc_slack:
                failures.append(
                    f"{name}: allocs_per_record {b_allocs:.2f} -> "
                    f"{c_allocs:.2f} (slack {args.alloc_slack})")
                print(f"  [FAIL] {name}: allocs_per_record "
                      f"{b_allocs:.2f} -> {c_allocs:.2f}")
    for name in sorted(set(cur) - set(base)):
        print(f"  [new]  {name}: no baseline, skipping")

    if compared == 0:
        print("error: no common benchmarks between baseline and current",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nno regressions across {compared} benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
