// State store tests: operations, change capture, snapshot/restore, and the
// replay-equivalence property that underpins recovery (§3.3.4): applying a
// store's captured change log to an empty store reproduces the original.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/state_store.h"

namespace impeller {
namespace {

TEST(StateStoreTest, PutGetDelete) {
  MapStateStore store("s", nullptr);
  store.Put("a", "1");
  EXPECT_EQ(*store.Get("a"), "1");
  store.Put("a", "2");
  EXPECT_EQ(*store.Get("a"), "2");
  store.Delete("a");
  EXPECT_FALSE(store.Get("a").has_value());
  store.Delete("missing");  // no-op
}

TEST(StateStoreTest, ChangeCaptureSeesEveryMutation) {
  std::vector<ChangeLogBody> captured;
  MapStateStore store("agg", [&](const ChangeLogView& c) {
    captured.push_back(ChangeLogBody{std::string(c.store), std::string(c.key),
                                     c.is_delete, std::string(c.value)});
  });
  store.Put("k", "v1");
  store.Put("k", "v2");
  store.Delete("k");
  store.Delete("k");  // deleting a missing key is not a change
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].value, "v1");
  EXPECT_EQ(captured[1].value, "v2");
  EXPECT_TRUE(captured[2].is_delete);
  EXPECT_EQ(captured[0].store, "agg");
}

TEST(StateStoreTest, ScanPrefixAndRange) {
  MapStateStore store("s", nullptr);
  store.Put("a/1", "1");
  store.Put("a/2", "2");
  store.Put("b/1", "3");
  std::vector<std::string> keys;
  store.ScanPrefix("a/", [&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/1");

  keys.clear();
  store.ScanRange("a/2", "b/2", [&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/2");
  EXPECT_EQ(keys[1], "b/1");
}

TEST(StateStoreTest, ScanEarlyStop) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < 10; ++i) {
    store.Put("k" + std::to_string(i), "v");
  }
  int visited = 0;
  store.ScanPrefix("k", [&](std::string_view, std::string_view) {
    return ++visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(StateStoreTest, DeleteRangeCapturesDeletions) {
  int deletes = 0;
  MapStateStore store("s", [&](const ChangeLogView& c) {
    if (c.is_delete) {
      deletes++;
    }
  });
  store.Put("a", "1");
  store.Put("b", "2");
  store.Put("c", "3");
  store.DeleteRange("a", "c");
  EXPECT_EQ(deletes, 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Get("c").has_value());
}

TEST(StateStoreTest, SnapshotRestoreRoundTrip) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < 100; ++i) {
    store.Put("key" + std::to_string(i), std::string(i, 'v'));
  }
  std::string blob = store.SerializeSnapshot();
  MapStateStore restored("s", nullptr);
  ASSERT_TRUE(restored.RestoreSnapshot(blob).ok());
  EXPECT_EQ(restored.size(), 100u);
  EXPECT_EQ(*restored.Get("key42"), std::string(42, 'v'));
  EXPECT_EQ(restored.SizeBytes(), store.SizeBytes());
}

TEST(StateStoreTest, RestoreRejectsCorruptBlob) {
  MapStateStore store("s", nullptr);
  EXPECT_FALSE(store.RestoreSnapshot("\xFF\xFF\xFF garbage").ok());
}

TEST(StateStoreTest, ReplayEquivalenceProperty) {
  // Random mutation sequences: replaying the captured change log must
  // reproduce the exact final state.
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    std::vector<ChangeLogBody> log;
    MapStateStore original("s", [&](const ChangeLogView& c) {
      log.push_back(ChangeLogBody{std::string(c.store), std::string(c.key),
                                  c.is_delete, std::string(c.value)});
    });
    for (int op = 0; op < 200; ++op) {
      std::string key = "k" + std::to_string(rng.NextBounded(30));
      if (rng.NextBool(0.3)) {
        original.Delete(key);
      } else {
        original.Put(key, "v" + std::to_string(rng.NextU64() % 1000));
      }
    }
    MapStateStore replayed("s", nullptr);
    for (const auto& change : log) {
      replayed.ApplyChange(change);
    }
    EXPECT_EQ(replayed.SerializeSnapshot(), original.SerializeSnapshot())
        << "round " << round;
  }
}

TEST(StateStoreTest, SizeBytesTracksContent) {
  MapStateStore store("s", nullptr);
  EXPECT_EQ(store.SizeBytes(), 0u);
  store.Put("abc", "12345");
  EXPECT_GE(store.SizeBytes(), 8u);
  store.Delete("abc");
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace impeller
