// State store tests: operations, change capture, snapshot/restore, and the
// replay-equivalence property that underpins recovery (§3.3.4): applying a
// store's captured change log to an empty store reproduces the original.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/core/state_store.h"

namespace impeller {
namespace {

TEST(StateStoreTest, PutGetDelete) {
  MapStateStore store("s", nullptr);
  store.Put("a", "1");
  EXPECT_EQ(*store.Get("a"), "1");
  store.Put("a", "2");
  EXPECT_EQ(*store.Get("a"), "2");
  store.Delete("a");
  EXPECT_FALSE(store.Get("a").has_value());
  store.Delete("missing");  // no-op
}

TEST(StateStoreTest, ChangeCaptureSeesEveryMutation) {
  std::vector<ChangeLogBody> captured;
  MapStateStore store("agg", [&](const ChangeLogView& c) {
    captured.push_back(ChangeLogBody{std::string(c.store), std::string(c.key),
                                     c.is_delete, std::string(c.value)});
  });
  store.Put("k", "v1");
  store.Put("k", "v2");
  store.Delete("k");
  store.Delete("k");  // deleting a missing key is not a change
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0].value, "v1");
  EXPECT_EQ(captured[1].value, "v2");
  EXPECT_TRUE(captured[2].is_delete);
  EXPECT_EQ(captured[0].store, "agg");
}

TEST(StateStoreTest, ScanPrefixAndRange) {
  MapStateStore store("s", nullptr);
  store.Put("a/1", "1");
  store.Put("a/2", "2");
  store.Put("b/1", "3");
  std::vector<std::string> keys;
  store.ScanPrefix("a/", [&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/1");

  keys.clear();
  store.ScanRange("a/2", "b/2", [&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a/2");
  EXPECT_EQ(keys[1], "b/1");
}

TEST(StateStoreTest, ScanEarlyStop) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < 10; ++i) {
    store.Put("k" + std::to_string(i), "v");
  }
  int visited = 0;
  store.ScanPrefix("k", [&](std::string_view, std::string_view) {
    return ++visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(StateStoreTest, DeleteRangeCapturesDeletions) {
  int deletes = 0;
  MapStateStore store("s", [&](const ChangeLogView& c) {
    if (c.is_delete) {
      deletes++;
    }
  });
  store.Put("a", "1");
  store.Put("b", "2");
  store.Put("c", "3");
  store.DeleteRange("a", "c");
  EXPECT_EQ(deletes, 2);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Get("c").has_value());
}

TEST(StateStoreTest, SnapshotRestoreRoundTrip) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < 100; ++i) {
    store.Put("key" + std::to_string(i), std::string(i, 'v'));
  }
  std::string blob = store.SerializeSnapshot();
  MapStateStore restored("s", nullptr);
  ASSERT_TRUE(restored.RestoreSnapshot(blob).ok());
  EXPECT_EQ(restored.size(), 100u);
  EXPECT_EQ(*restored.Get("key42"), std::string(42, 'v'));
  EXPECT_EQ(restored.SizeBytes(), store.SizeBytes());
}

TEST(StateStoreTest, RestoreRejectsCorruptBlob) {
  MapStateStore store("s", nullptr);
  EXPECT_FALSE(store.RestoreSnapshot("\xFF\xFF\xFF garbage").ok());
}

TEST(StateStoreTest, ReplayEquivalenceProperty) {
  // Random mutation sequences: replaying the captured change log must
  // reproduce the exact final state.
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    std::vector<ChangeLogBody> log;
    MapStateStore original("s", [&](const ChangeLogView& c) {
      log.push_back(ChangeLogBody{std::string(c.store), std::string(c.key),
                                  c.is_delete, std::string(c.value)});
    });
    for (int op = 0; op < 200; ++op) {
      std::string key = "k" + std::to_string(rng.NextBounded(30));
      if (rng.NextBool(0.3)) {
        original.Delete(key);
      } else {
        original.Put(key, "v" + std::to_string(rng.NextU64() % 1000));
      }
    }
    MapStateStore replayed("s", nullptr);
    for (const auto& change : log) {
      replayed.ApplyChange(change);
    }
    EXPECT_EQ(replayed.SerializeSnapshot(), original.SerializeSnapshot())
        << "round " << round;
  }
}

TEST(StateStoreTest, SizeBytesTracksContent) {
  MapStateStore store("s", nullptr);
  EXPECT_EQ(store.SizeBytes(), 0u);
  store.Put("abc", "12345");
  EXPECT_GE(store.SizeBytes(), 8u);
  store.Delete("abc");
  EXPECT_EQ(store.size(), 0u);
}

TEST(StateStoreTest, SizeBytesExactUnderReplacement) {
  // Every replacement path — Put, ApplyChange, MergeSnapshot — must account
  // for the replaced entry's old size, or bytes_ drifts upward forever.
  MapStateStore store("s", nullptr);
  store.Put("k", "0123456789");
  store.Put("k", "v");
  EXPECT_EQ(store.SizeBytes(), 2u);  // "k" + "v"

  store.ApplyChange(ChangeLogView{"s", "k", false, "0123456789", 0});
  store.ApplyChange(ChangeLogView{"s", "k", false, "v", 0});
  EXPECT_EQ(store.SizeBytes(), 2u);

  // Merging the same snapshot repeatedly (multi-source handoffs overlap, a
  // snapshot can land over a prior merge) must not inflate the size.
  std::string blob = store.SerializeSnapshot();
  MapStateStore merged("s", nullptr);
  ASSERT_TRUE(merged.MergeSnapshot(blob, nullptr).ok());
  ASSERT_TRUE(merged.MergeSnapshot(blob, nullptr).ok());
  EXPECT_EQ(merged.SizeBytes(), store.SizeBytes());
  EXPECT_EQ(merged.size(), store.size());
}

TEST(StateStoreTest, MergesPreOwnershipSnapshotLeniently) {
  // Snapshots persisted before the ownership upgrade carry no owner field
  // and no leading format mark; they must still restore, with every entry
  // unowned (recovery then claims them via the owner filter's default).
  BinaryWriter w(64);
  w.WriteVarU64(2);  // legacy layout: count, then key/value pairs
  w.WriteString("a");
  w.WriteString("1");
  w.WriteString("b");
  w.WriteString("22");
  std::string legacy = w.Take();

  MapStateStore store("s", nullptr);
  ASSERT_TRUE(store.MergeSnapshot(legacy, nullptr).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_EQ(*store.Get("b"), "22");
  EXPECT_EQ(*store.GetOwner("a"), kUnownedSubstream);
  EXPECT_EQ(store.SizeBytes(), 5u);  // "a"+"1" + "b"+"22"

  // The filter sees kUnownedSubstream and may normalize it in place, the
  // same way a rescale handoff claims unowned entries.
  MapStateStore claimed("s", nullptr);
  ASSERT_TRUE(claimed
                  .MergeSnapshot(legacy,
                                 [](uint32_t& owner) {
                                   EXPECT_EQ(owner, kUnownedSubstream);
                                   owner = 3;
                                   return true;
                                 })
                  .ok());
  EXPECT_EQ(*claimed.GetOwner("a"), 3u);
}

}  // namespace
}  // namespace impeller
