// Tests for the three-case classification of paper §3.3.3 plus zombie
// filtering (§3.4) and duplicate suppression (§3.5).
#include <gtest/gtest.h>

#include "src/core/commit_tracker.h"

namespace impeller {
namespace {

RecordHeader Hdr(std::string producer, uint64_t instance, uint64_t seq = 1) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = std::move(producer);
  h.instance = instance;
  h.seq = seq;
  return h;
}

TEST(CommitTrackerTest, UnknownUntilFirstCommitEvent) {
  CommitTracker tracker(/*read_committed=*/true);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 5), CommitState::kUnknown);
  tracker.OnCommitEvent("p", 1, 10);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 5), CommitState::kCommitted);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 10), CommitState::kUnknown)
      << "the commit event's own LSN is an exclusive bound";
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 15), CommitState::kUnknown);
}

TEST(CommitTrackerTest, LaterMarkersExtendTheCut) {
  CommitTracker tracker(true);
  tracker.OnCommitEvent("p", 1, 10);
  tracker.OnCommitEvent("p", 1, 20);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 15), CommitState::kCommitted);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 25), CommitState::kUnknown);
}

TEST(CommitTrackerTest, SupersededInstanceIsDiscarded) {
  // Paper §3.3.3 case 1 + §3.4: once instance 2 commits, instance 1's
  // uncommitted leftovers can never become committed.
  CommitTracker tracker(true);
  tracker.OnCommitEvent("p", 1, 10);
  tracker.OnCommitEvent("p", 2, 30);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 15), CommitState::kDiscard);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 5), CommitState::kDiscard);
  EXPECT_EQ(tracker.Classify(Hdr("p", 2), 25), CommitState::kCommitted);
}

TEST(CommitTrackerTest, NewerInstanceIsUnknownUntilItCommits) {
  CommitTracker tracker(true);
  tracker.OnCommitEvent("p", 1, 10);
  EXPECT_EQ(tracker.Classify(Hdr("p", 2), 12), CommitState::kUnknown);
  tracker.OnCommitEvent("p", 2, 20);
  EXPECT_EQ(tracker.Classify(Hdr("p", 2), 12), CommitState::kCommitted);
}

TEST(CommitTrackerTest, StaleCommitEventFromZombieIsIgnored) {
  CommitTracker tracker(true);
  tracker.OnCommitEvent("p", 2, 30);
  tracker.OnCommitEvent("p", 1, 50);  // zombie's event must not regress
  EXPECT_EQ(tracker.Classify(Hdr("p", 2), 25), CommitState::kCommitted);
  EXPECT_EQ(tracker.Classify(Hdr("p", 1), 40), CommitState::kDiscard);
}

TEST(CommitTrackerTest, ProducersAreIndependent) {
  CommitTracker tracker(true);
  tracker.OnCommitEvent("a", 1, 10);
  EXPECT_EQ(tracker.Classify(Hdr("a", 1), 5), CommitState::kCommitted);
  EXPECT_EQ(tracker.Classify(Hdr("b", 1), 5), CommitState::kUnknown);
}

TEST(CommitTrackerTest, IngressRecordsAlwaysCommitted) {
  CommitTracker tracker(true);
  EXPECT_EQ(tracker.Classify(Hdr("gen/bids", kIngressInstance), 5),
            CommitState::kCommitted);
}

TEST(CommitTrackerTest, ReadUncommittedModeCommitsEverything) {
  CommitTracker tracker(/*read_committed=*/false);
  EXPECT_EQ(tracker.Classify(Hdr("p", 3), 999), CommitState::kCommitted);
}

TEST(CommitTrackerTest, IngressDuplicatesAreSuppressed) {
  CommitTracker tracker(true);
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("gen", kIngressInstance, 1)));
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("gen", kIngressInstance, 2)));
  EXPECT_TRUE(tracker.IsDuplicate("d/x/0", Hdr("gen", kIngressInstance, 2)))
      << "a gateway retry re-appends the same sequence number";
  EXPECT_TRUE(tracker.IsDuplicate("d/x/0", Hdr("gen", kIngressInstance, 1)));
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("gen", kIngressInstance, 3)));
}

TEST(CommitTrackerTest, TaskProducersSkipSeqDedupUnderReadCommitted) {
  // A restarted task restarts its sequence counter; the instance check
  // already filters replays, so seq dedup must not fire.
  CommitTracker tracker(true);
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("task", 1, 5)));
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("task", 2, 1)));
}

TEST(CommitTrackerTest, SeqDedupAppliesToAllUnderReadUncommitted) {
  // Aligned-checkpoint recovery re-executes producers with checkpointed
  // sequence counters; dedup is what restores exactly-once.
  CommitTracker tracker(false);
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("task", 1, 1)));
  EXPECT_TRUE(tracker.IsDuplicate("d/x/0", Hdr("task", 2, 1)));
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("task", 2, 2)));
}

TEST(CommitTrackerTest, SeqMapSnapshotRoundTrip) {
  CommitTracker tracker(false);
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("a", 1, 10)));
  EXPECT_FALSE(tracker.IsDuplicate("d/x/0", Hdr("b", 1, 20)));
  std::string blob = tracker.SerializeSeqMap();

  CommitTracker restored(false);
  ASSERT_TRUE(restored.RestoreSeqMap(blob).ok());
  EXPECT_TRUE(restored.IsDuplicate("d/x/0", Hdr("a", 1, 10)));
  EXPECT_TRUE(restored.IsDuplicate("d/x/0", Hdr("b", 1, 19)));
  EXPECT_FALSE(restored.IsDuplicate("d/x/0", Hdr("a", 1, 11)));
}

}  // namespace
}  // namespace impeller
