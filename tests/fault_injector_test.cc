// Unit tests for the fault-injection subsystem: schedule trigger semantics,
// seeded determinism, counters, the RetryPolicy/Retrier backoff loop, and
// the SharedLog injection points (append errors/delays, duplicate
// redelivery).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/retry.h"
#include "src/fault/fault.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;

// Every test disarms on exit: the injector is process-wide and must never
// leak schedules into a neighboring test.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::Get().Disarm(); }
};

#if defined(IMPELLER_FAULT_INJECTION_ENABLED)

TEST(FaultInjectorTest, EveryNFiresOnEveryNthMatchingHit) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.kind = FaultKind::kError;
  s.every_n = 3;
  s.max_fires = 0;  // unlimited
  FaultInjector::Get().Arm({s}, /*seed=*/1);

  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(static_cast<bool>(fault::Probe("p", "d")));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(FaultInjector::Get().FireCount("p"), 3u);
  EXPECT_EQ(FaultInjector::Get().TotalFires(), 3u);
}

TEST(FaultInjectorTest, AtHitFiresExactlyOnce) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.kind = FaultKind::kCrash;
  s.at_hit = 4;
  FaultInjector::Get().Arm({s}, 1);

  for (int i = 1; i <= 10; ++i) {
    auto action = fault::Probe("p", "d");
    if (i == 4) {
      EXPECT_EQ(action.kind, FaultKind::kCrash) << "hit " << i;
    } else {
      EXPECT_EQ(action.kind, FaultKind::kNone) << "hit " << i;
    }
  }
  EXPECT_EQ(FaultInjector::Get().TotalFires(), 1u);
}

TEST(FaultInjectorTest, AtLsnFiresWhenLsnReached) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.kind = FaultKind::kError;
  s.at_lsn = 7;
  FaultInjector::Get().Arm({s}, 1);

  EXPECT_FALSE(fault::Probe("p", "d", 3));
  EXPECT_FALSE(fault::Probe("p", "d", 6));
  EXPECT_TRUE(fault::Probe("p", "d", 9));   // first hit at/past the LSN
  EXPECT_FALSE(fault::Probe("p", "d", 9));  // max_fires=1 caps it
}

TEST(FaultInjectorTest, MaxFiresCapsFiring) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.every_n = 1;  // would fire on every hit
  s.max_fires = 2;
  FaultInjector::Get().Arm({s}, 1);

  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (fault::Probe("p", "d")) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 2);
}

TEST(FaultInjectorTest, DetailSubstrFiltersHits) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.detail_substr = "task-1";
  s.every_n = 1;
  s.max_fires = 0;
  FaultInjector::Get().Arm({s}, 1);

  EXPECT_FALSE(fault::Probe("p", "task-0"));
  EXPECT_TRUE(fault::Probe("p", "task-1"));
  EXPECT_TRUE(fault::Probe("p", "worker/task-1/x"));  // substring match
  EXPECT_FALSE(fault::Probe("q", "task-1"));          // point is exact match
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicPerSeed) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.probability = 0.5;
  s.max_fires = 0;

  auto pattern = [&](uint64_t seed) {
    FaultInjector::Get().Arm({s}, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      fired.push_back(static_cast<bool>(fault::Probe("p", "d")));
    }
    return fired;
  };

  auto a1 = pattern(42);
  auto a2 = pattern(42);
  auto b = pattern(43);
  EXPECT_EQ(a1, a2) << "same seed must replay the same fault sequence";
  EXPECT_NE(a1, b) << "different seeds must diverge";
}

TEST(FaultInjectorTest, DelayActionCarriesConfiguredDelay) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.kind = FaultKind::kDelay;
  s.delay = 7 * kMillisecond;
  s.every_n = 1;
  FaultInjector::Get().Arm({s}, 1);

  auto action = fault::Probe("p", "d");
  EXPECT_EQ(action.kind, FaultKind::kDelay);
  EXPECT_EQ(action.delay, 7 * kMillisecond);
}

TEST(FaultInjectorTest, DisarmStopsFiringAndArmResetsCounts) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "p";
  s.every_n = 1;
  s.max_fires = 0;
  FaultInjector::Get().Arm({s}, 1);
  EXPECT_TRUE(fault::Probe("p", "d"));
  EXPECT_EQ(FaultInjector::Get().TotalFires(), 1u);

  FaultInjector::Get().Disarm();
  EXPECT_FALSE(FaultInjector::Get().armed());
  EXPECT_FALSE(fault::Probe("p", "d"));
  // Fire counts survive Disarm (post-mortem inspection)...
  EXPECT_EQ(FaultInjector::Get().TotalFires(), 1u);
  // ...and reset on the next Arm.
  FaultInjector::Get().Arm({s}, 1);
  EXPECT_EQ(FaultInjector::Get().TotalFires(), 0u);
}

TEST(FaultInjectorTest, FiresAreMirroredIntoMetrics) {
  DisarmGuard guard;
  MetricsRegistry metrics;
  FaultSchedule s;
  s.point = "log/append";
  s.every_n = 1;
  s.max_fires = 0;
  FaultInjector::Get().Arm({s}, 1, &metrics);

  for (int i = 0; i < 3; ++i) {
    (void)fault::Probe("log/append", "log");
  }
  FaultInjector::Get().Disarm();

  EXPECT_EQ(metrics.GetCounter("fault/fires")->Get(), 3u);
  EXPECT_EQ(metrics.GetCounter("fault/log/append")->Get(), 3u);
}

TEST(FaultInjectorTest, InjectedAppendErrorIsAbsorbedByRetrier) {
  DisarmGuard guard;
  MetricsRegistry metrics;
  FaultSchedule s;
  s.point = "log/append";
  s.kind = FaultKind::kError;
  s.every_n = 1;
  s.max_fires = 2;  // first two attempts fail, third succeeds
  FaultInjector::Get().Arm({s}, 1, &metrics);

  SharedLog log;
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMicrosecond;
  Retrier retrier(policy, /*seed=*/7, nullptr, &metrics);

  std::vector<AppendRequest> batch(1);
  batch[0].tags = {"a"};
  batch[0].payload = "hello";
  auto lsns = retrier.Run("test_append", [&] { return log.AppendBatch(batch); });
  ASSERT_TRUE(lsns.ok()) << lsns.status().ToString();
  FaultInjector::Get().Disarm();

  auto entry = log.ReadAt((*lsns)[0]);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "hello");
  EXPECT_EQ(metrics.GetCounter("retry/attempts")->Get(), 3u);
  EXPECT_EQ(metrics.GetCounter("retry/retries")->Get(), 2u);
  EXPECT_EQ(metrics.GetCounter("retry/exhausted")->Get(), 0u);
}

TEST(FaultInjectorTest, InjectedReadDuplicateRedeliversOnce) {
  DisarmGuard guard;
  SharedLog log;
  for (int i = 0; i < 3; ++i) {
    AppendRequest req;
    req.tags = {"a"};
    req.payload = "p" + std::to_string(i);
    ASSERT_TRUE(log.Append(std::move(req)).ok());
  }

  // Fire on the 2nd successful read of tag "a": record 1 is redelivered to
  // the next read whose cursor has already passed it.
  FaultSchedule s;
  s.point = "log/read";
  s.kind = FaultKind::kDuplicate;
  s.detail_substr = "a";
  s.at_hit = 2;
  FaultInjector::Get().Arm({s}, 1);

  std::vector<Lsn> seen;
  Lsn cursor = 0;
  for (int i = 0; i < 4; ++i) {
    auto entry = log.ReadNext("a", cursor);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    seen.push_back(entry->lsn);
    cursor = std::max(cursor, entry->lsn + 1);
  }
  EXPECT_EQ(seen, (std::vector<Lsn>{0, 1, 1, 2}));

  // A redelivery must never make a fresh reader skip ahead: with another
  // duplicate pending, a cursor at 0 still reads record 0 first.
  FaultSchedule again = s;
  again.at_hit = 1;
  FaultInjector::Get().Arm({again}, 1);
  auto first = log.ReadNext("a", 2);  // arms a duplicate of record 2
  ASSERT_TRUE(first.ok());
  auto fresh = log.ReadNext("a", 0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->lsn, 0u);
}

TEST(FaultInjectorTest, InjectedAppendDelaySlowsAck) {
  DisarmGuard guard;
  FaultSchedule s;
  s.point = "log/append";
  s.kind = FaultKind::kDelay;
  s.delay = 30 * kMillisecond;
  s.every_n = 1;
  FaultInjector::Get().Arm({s}, 1);

  SharedLog log;
  Clock* clock = MonotonicClock::Get();
  TimeNs start = clock->Now();
  AppendRequest req;
  req.tags = {"a"};
  req.payload = "p";
  ASSERT_TRUE(log.Append(std::move(req)).ok());
  EXPECT_GE(clock->Now() - start, 25 * kMillisecond);
}

#endif  // IMPELLER_FAULT_INJECTION_ENABLED

// --- Retrier semantics (independent of the injector build flag). ---

RetryPolicy FastPolicy(int max_attempts = 5) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff = 10 * kMicrosecond;
  policy.max_backoff = 100 * kMicrosecond;
  return policy;
}

TEST(RetrierTest, RetriesTransientFailureUntilSuccess) {
  MetricsRegistry metrics;
  Retrier retrier(FastPolicy(), 1, nullptr, &metrics);
  int calls = 0;
  Status status = retrier.Run("op", [&] {
    return ++calls < 3 ? UnavailableError("transient") : OkStatus();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics.GetCounter("retry/attempts")->Get(), 3u);
  EXPECT_EQ(metrics.GetCounter("retry/retries")->Get(), 2u);
  EXPECT_EQ(metrics.GetCounter("retry/exhausted")->Get(), 0u);
}

TEST(RetrierTest, DoesNotRetryFencedWriters) {
  MetricsRegistry metrics;
  Retrier retrier(FastPolicy(), 1, nullptr, &metrics);
  int calls = 0;
  Status status = retrier.Run("op", [&] {
    ++calls;
    return FencedError("zombie");
  });
  EXPECT_EQ(status.code(), StatusCode::kFenced);
  EXPECT_EQ(calls, 1) << "fenced writers must not fight their replacement";
  EXPECT_EQ(metrics.GetCounter("retry/retries")->Get(), 0u);
}

TEST(RetrierTest, GivesUpAfterMaxAttempts) {
  MetricsRegistry metrics;
  Retrier retrier(FastPolicy(/*max_attempts=*/3), 1, nullptr, &metrics);
  int calls = 0;
  Status status = retrier.Run("op", [&] {
    ++calls;
    return UnavailableError("still down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics.GetCounter("retry/exhausted")->Get(), 1u);
}

TEST(RetrierTest, SupportsResultReturningOperations) {
  Retrier retrier(FastPolicy(), 1);
  int calls = 0;
  Result<int> result = retrier.Run("op", [&]() -> Result<int> {
    if (++calls < 2) {
      return UnavailableError("transient");
    }
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace impeller
