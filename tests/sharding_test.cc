// Tests for the sharded shared log (DESIGN.md §8): per-shard sequencers
// whose cuts the metalog interleaves into one dense global order. Covers
// the cross-shard total-order invariant, tag reads across shards, fencing,
// trim/close wakeups on every shard, and single-shard crash isolation via
// the fault injector.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/common/threading.h"
#include "src/fault/fault.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace {

AppendRequest Req(std::vector<std::string> tags, std::string payload) {
  AppendRequest req;
  req.tags = std::move(tags);
  req.payload = std::move(payload);
  return req;
}

SharedLog MakeLog(uint32_t shards) {
  SharedLogOptions options;
  options.shards = shards;
  return SharedLog(std::move(options));
}

// A tag the log places on shard `shard`: probes candidates until the hash
// placement matches (a few tries at 4 shards).
std::string TagOnShard(const SharedLog& log, uint32_t shard,
                       const std::string& prefix = "tag") {
  for (int c = 0;; ++c) {
    std::string tag = prefix + "/" + std::to_string(c);
    if (log.ShardOfTag(tag) == shard) {
      return tag;
    }
  }
}

TEST(ShardingTest, PlacementCoversAllShards) {
  SharedLog log = MakeLog(4);
  ASSERT_EQ(log.num_shards(), 4u);
  std::set<uint32_t> seen;
  for (int c = 0; c < 64; ++c) {
    seen.insert(log.ShardOfTag("t/" + std::to_string(c)));
  }
  EXPECT_EQ(seen.size(), 4u);  // FNV-1a spreads tags over every shard
  // Placement is deterministic.
  EXPECT_EQ(log.ShardOfTag("t/0"), log.ShardOfTag("t/0"));
}

TEST(ShardingTest, CrossShardTotalOrderIsDense) {
  // The metalog invariant: concurrent appends on distinct shards still get
  // unique, dense, monotonically increasing global LSNs, and each tag's
  // substream preserves its own append order.
  constexpr uint32_t kShards = 4;
  constexpr int kPerThread = 200;
  SharedLog log = MakeLog(kShards);

  std::vector<std::string> tags;
  for (uint32_t s = 0; s < kShards; ++s) {
    tags.push_back(TagOnShard(log, s));
  }
  std::vector<std::vector<Lsn>> lsns(kShards);
  {
    std::vector<JoiningThread> threads;
    for (uint32_t s = 0; s < kShards; ++s) {
      threads.emplace_back([&, s] {
        for (int i = 0; i < kPerThread; ++i) {
          auto lsn = log.Append(
              Req({tags[s]}, std::to_string(s) + ":" + std::to_string(i)));
          ASSERT_TRUE(lsn.ok());
          lsns[s].push_back(*lsn);
        }
      });
    }
  }

  // Dense and unique across shards.
  std::set<Lsn> all;
  for (const auto& per_shard : lsns) {
    all.insert(per_shard.begin(), per_shard.end());
  }
  ASSERT_EQ(all.size(), static_cast<size_t>(kShards) * kPerThread);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<Lsn>(kShards) * kPerThread - 1);
  EXPECT_EQ(log.TailLsn(), static_cast<Lsn>(kShards) * kPerThread);

  // Per-tag substreams replay each thread's appends in order.
  for (uint32_t s = 0; s < kShards; ++s) {
    Lsn cursor = 0;
    for (int i = 0; i < kPerThread; ++i) {
      auto entry = log.ReadNext(tags[s], cursor);
      ASSERT_TRUE(entry.ok()) << tags[s] << " at " << i;
      EXPECT_EQ(entry->payload,
                std::to_string(s) + ":" + std::to_string(i));
      EXPECT_EQ(entry->lsn, lsns[s][static_cast<size_t>(i)]);
      cursor = entry->lsn + 1;
    }
    EXPECT_EQ(log.ReadNext(tags[s], cursor).status().code(),
              StatusCode::kNotFound);
  }
}

TEST(ShardingTest, MultiTagAppendSpansShardPlacements) {
  // A record whose tags hash to different shards still lands atomically at
  // one LSN (the batch follows its first tag) and is readable from every
  // tagged substream regardless of where those tags would place.
  SharedLog log = MakeLog(4);
  std::string t0 = TagOnShard(log, 0, "a");
  std::string t2 = TagOnShard(log, 2, "b");
  std::string t3 = TagOnShard(log, 3, "c");
  auto lsn = log.Append(Req({t0, t2, t3}, "marker"));
  ASSERT_TRUE(lsn.ok());
  for (const std::string& tag : {t0, t2, t3}) {
    auto got = log.ReadNext(tag, 0);
    ASSERT_TRUE(got.ok()) << tag;
    EXPECT_EQ(got->lsn, *lsn);
    EXPECT_EQ(got->payload, "marker");
  }
}

TEST(ShardingTest, BatchStaysContiguousAcrossConcurrentShards) {
  // Batch atomicity survives sharding: a batch's LSNs are contiguous even
  // with concurrent traffic on other shards.
  SharedLog log = MakeLog(4);
  std::string mine = TagOnShard(log, 1, "mine");
  std::string other = TagOnShard(log, 3, "other");
  std::atomic<bool> done{false};
  JoiningThread noise([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)log.Append(Req({other}, "n"));
    }
  });
  for (int round = 0; round < 50; ++round) {
    std::vector<AppendRequest> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(Req({mine}, "b"));
    }
    auto lsns = log.AppendBatch(batch);
    ASSERT_TRUE(lsns.ok());
    for (size_t i = 1; i < lsns->size(); ++i) {
      EXPECT_EQ((*lsns)[i], (*lsns)[i - 1] + 1);
    }
  }
  done.store(true);
}

TEST(ShardingTest, FencingAppliesOnEveryShard) {
  // Zombie fencing consults the log-wide metadata, not per-shard state: a
  // stale conditional append is rejected no matter which shard it lands on.
  SharedLog log = MakeLog(4);
  log.MetaPut("inst/t", 2);
  for (uint32_t s = 0; s < 4; ++s) {
    AppendRequest stale = Req({TagOnShard(log, s)}, "zombie");
    stale.cond_key = "inst/t";
    stale.cond_value = 1;
    auto fenced = log.Append(std::move(stale));
    ASSERT_FALSE(fenced.ok()) << "shard " << s;
    EXPECT_EQ(fenced.status().code(), StatusCode::kFenced);

    AppendRequest live = Req({TagOnShard(log, s)}, "live");
    live.cond_key = "inst/t";
    live.cond_value = 2;
    EXPECT_TRUE(log.Append(std::move(live)).ok()) << "shard " << s;
  }
  EXPECT_EQ(log.stats().fenced_appends, 4u);
}

TEST(ShardingTest, TrimDropsPrefixAcrossShards) {
  SharedLog log = MakeLog(4);
  std::vector<std::string> tags;
  for (uint32_t s = 0; s < 4; ++s) {
    tags.push_back(TagOnShard(log, s));
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        log.Append(Req({tags[static_cast<size_t>(i) % 4]}, "p")).ok());
  }
  ASSERT_TRUE(log.Trim(20).ok());
  EXPECT_EQ(log.TrimPoint(), 20u);
  EXPECT_EQ(log.stats().records_trimmed, 20u);
  // Stale cursors on every shard's tags report kTrimmed; fresh cursors
  // resume above the trim point.
  for (const auto& tag : tags) {
    EXPECT_EQ(log.ReadNext(tag, 0).status().code(), StatusCode::kTrimmed)
        << tag;
    auto entry = log.ReadNext(tag, 20);
    ASSERT_TRUE(entry.ok()) << tag;
    EXPECT_GE(entry->lsn, 20u);
  }
}

TEST(ShardingTest, TrimWakesBlockedAwaitNextOnEveryShard) {
  // Regression: a reader parked in AwaitNext on a record still in delivery
  // must observe a concurrent Trim immediately — on every shard, not only
  // the one that processed the trim. Delivery latency is far beyond the
  // assertion bound, so fast kTrimmed returns require Trim's wakeup.
  constexpr uint32_t kShards = 4;
  CalibratedLatencyParams params;
  params.ack_median = 1 * kMillisecond;
  params.ack_sigma = 0.01;
  params.delivery_median = 5 * kSecond;
  params.delivery_sigma = 0.01;
  SharedLogOptions options;
  options.latency = std::make_shared<CalibratedLatencyModel>(params, 1);
  options.shards = kShards;
  SharedLog log(std::move(options));

  std::vector<std::string> tags;
  for (uint32_t s = 0; s < kShards; ++s) {
    tags.push_back(TagOnShard(log, s));
    ASSERT_TRUE(log.Append(Req({tags.back()}, "slow")).ok());
  }
  Clock* clock = MonotonicClock::Get();
  std::atomic<int> woke_trimmed{0};
  TimeNs start = clock->Now();
  {
    std::vector<JoiningThread> readers;
    for (uint32_t s = 0; s < kShards; ++s) {
      readers.emplace_back([&, s] {
        auto got = log.AwaitNext(tags[s], 0, 30 * kSecond);
        if (got.status().code() == StatusCode::kTrimmed) {
          woke_trimmed.fetch_add(1);
        }
      });
    }
    clock->SleepFor(50 * kMillisecond);  // let every reader park
    ASSERT_TRUE(log.Trim(log.TailLsn()).ok());
  }
  EXPECT_EQ(woke_trimmed.load(), static_cast<int>(kShards));
  // Woke on the trim, not the delivery wait or the 30 s timeout.
  EXPECT_LT(clock->Now() - start, 4 * kSecond);
}

TEST(ShardingTest, CloseWakesBlockedAwaitNextOnEveryShard) {
  // Regression: shutdown must not strand readers until their timeout —
  // Close wakes every parked AwaitNext with kUnavailable.
  constexpr uint32_t kShards = 4;
  SharedLog log = MakeLog(kShards);
  Clock* clock = MonotonicClock::Get();
  std::atomic<int> woke_unavailable{0};
  TimeNs start = clock->Now();
  {
    std::vector<JoiningThread> readers;
    for (uint32_t s = 0; s < kShards; ++s) {
      readers.emplace_back([&, s] {
        auto got = log.AwaitNext(TagOnShard(log, s), 0, 30 * kSecond);
        if (got.status().code() == StatusCode::kUnavailable) {
          woke_unavailable.fetch_add(1);
        }
      });
    }
    clock->SleepFor(50 * kMillisecond);
    log.Close();
  }
  EXPECT_EQ(woke_unavailable.load(), static_cast<int>(kShards));
  EXPECT_LT(clock->Now() - start, 10 * kSecond);
}

TEST(ShardingTest, CloseStillServesReadyDataBeforeReportingClosed) {
  SharedLog log = MakeLog(2);
  std::string tag = TagOnShard(log, 1);
  ASSERT_TRUE(log.Append(Req({tag}, "ready")).ok());
  log.Close();
  auto got = log.AwaitNext(tag, 0, kSecond);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "ready");
  EXPECT_EQ(log.AwaitNext(tag, got->lsn + 1, kSecond).status().code(),
            StatusCode::kUnavailable);
}

TEST(ShardingTest, SingleShardCrashIsIsolatedAndRetryable) {
  // Fail one shard's sequencer via the "log/shard/append" probe: appends
  // placed on that shard error transiently and a Retrier absorbs them;
  // the other shards never see a fault, and the global order stays dense.
  constexpr uint32_t kShards = 4;
  MetricsRegistry metrics;
  SharedLogOptions options;
  options.name = "log";
  options.shards = kShards;
  SharedLog log(std::move(options));

  std::string victim_tag = TagOnShard(log, 2);
  std::string healthy_tag = TagOnShard(log, 0);

  fault::FaultSchedule s;
  s.point = "log/shard/append";
  s.kind = fault::FaultKind::kError;
  s.detail_substr = "/s2";  // only shard 2's sequencer fails
  s.every_n = 1;
  s.max_fires = 2;
  fault::FaultInjector::Get().Arm({s}, /*seed=*/5, &metrics);

  // Healthy shard is unaffected while the victim's schedule is armed.
  ASSERT_TRUE(log.Append(Req({healthy_tag}, "h0")).ok());

  RetryPolicy policy;
  policy.initial_backoff = 10 * kMicrosecond;
  Retrier retrier(policy, /*seed=*/7, nullptr, &metrics);
  auto lsn = retrier.Run("shard_append", [&] {
    return log.Append(Req({victim_tag}, "v0"));
  });
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_EQ(metrics.GetCounter("retry/retries")->Get(), 2u);
  EXPECT_EQ(fault::FaultInjector::Get().FireCount("log/shard/append"), 2u);
  fault::FaultInjector::Get().Disarm();

  // Recovered shard keeps sequencing; order stays dense.
  ASSERT_TRUE(log.Append(Req({victim_tag}, "v1")).ok());
  ASSERT_TRUE(log.Append(Req({healthy_tag}, "h1")).ok());
  EXPECT_EQ(log.TailLsn(), 4u);
  auto entry = log.ReadNext(victim_tag, 0);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->payload, "v0");
}

}  // namespace
}  // namespace impeller
