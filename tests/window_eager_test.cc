// Tests for the Kafka Streams-style eager (suppressed) window emission mode
// (§4: operators follow KS semantics) used by NEXMark Q5/Q7.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/serde.h"
#include "src/core/operators.h"

namespace impeller {
namespace {

class FakeContext final : public OperatorContext {
 public:
  MapStateStore* GetStore(std::string_view name) override {
    auto& slot = stores_[std::string(name)];
    if (slot == nullptr) {
      slot = std::make_unique<MapStateStore>(std::string(name), nullptr);
    }
    return slot.get();
  }
  Clock* clock() override { return MonotonicClock::Get(); }
  const std::string& task_id() const override { return task_id_; }
  uint32_t task_index() const override { return 0; }
  MetricsRegistry* metrics() override { return &metrics_; }
  TimeNs max_event_time() const override { return max_event_time_; }
  void set_max_event_time(TimeNs t) { max_event_time_ = t; }

 private:
  std::string task_id_ = "t/s/0";
  MetricsRegistry metrics_;
  std::map<std::string, std::unique_ptr<MapStateStore>> stores_;
  TimeNs max_event_time_ = 0;
};

class CapturingCollector final : public Collector {
 public:
  void EmitTo(uint32_t, StreamRecord record) override {
    emitted.push_back(std::move(record));
  }
  std::vector<StreamRecord> emitted;
};

AggregateFn CountAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string("0"); };
  agg.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  return agg;
}

StreamRecord Rec(std::string key, TimeNs et) { return {std::move(key), "1", et}; }

uint64_t CountOf(const StreamRecord& r) {
  BinaryReader reader(r.value);
  (void)*reader.ReadVarI64();
  return std::stoull(*reader.ReadString());
}

TEST(WindowEagerTest, UpdatedPanesEmitOnSuppressionCadence) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             CountAgg(), /*allowed_lateness=*/0,
                             WindowEmitMode::kEagerSuppressed,
                             /*suppress_interval=*/100 * kMillisecond);
  op.Open(&ctx);
  CapturingCollector out;

  ctx.set_max_event_time(1 * kSecond);
  op.Process(0, Rec("k", 1 * kSecond), &out);
  op.Process(0, Rec("k", 2 * kSecond), &out);
  EXPECT_TRUE(out.emitted.empty()) << "updates are suppressed until a flush";

  op.OnTimer(/*now=*/kSecond, &out);
  ASSERT_EQ(out.emitted.size(), 1u) << "one update per dirty pane per flush";
  EXPECT_EQ(CountOf(out.emitted[0]), 2u);
  EXPECT_EQ(out.emitted[0].event_time, 2 * kSecond)
      << "event time tracks the freshest contribution";

  // No updates since the flush: the next timer emits nothing.
  op.OnTimer(2 * kSecond, &out);
  EXPECT_EQ(out.emitted.size(), 1u);

  // A further update re-emits the refreshed count on the next cadence.
  op.Process(0, Rec("k", 3 * kSecond), &out);
  op.OnTimer(3 * kSecond, &out);
  ASSERT_EQ(out.emitted.size(), 2u);
  EXPECT_EQ(CountOf(out.emitted[1]), 3u);
}

TEST(WindowEagerTest, SuppressionIntervalBatchesUpdates) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             CountAgg(), 0,
                             WindowEmitMode::kEagerSuppressed,
                             /*suppress_interval=*/kSecond);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(1 * kSecond);
  op.Process(0, Rec("k", kSecond), &out);
  op.OnTimer(10 * kSecond, &out);  // first flush (now >= 0)
  ASSERT_EQ(out.emitted.size(), 1u);
  op.Process(0, Rec("k", kSecond + 1), &out);
  op.OnTimer(10 * kSecond + 200 * kMillisecond, &out);  // within interval
  EXPECT_EQ(out.emitted.size(), 1u) << "still suppressed";
  op.OnTimer(11 * kSecond + kMillisecond, &out);  // past the interval
  EXPECT_EQ(out.emitted.size(), 2u);
}

TEST(WindowEagerTest, CloseEmitsFinalValueOnlyIfDirty) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             CountAgg(), 0,
                             WindowEmitMode::kEagerSuppressed,
                             /*suppress_interval=*/10 * kSecond);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(5 * kSecond);
  op.Process(0, Rec("k", 5 * kSecond), &out);
  // Watermark passes the window end with the pane still dirty: the close
  // emits the final authoritative value exactly once.
  ctx.set_max_event_time(11 * kSecond);
  op.OnTimer(/*now=*/0, &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(CountOf(out.emitted[0]), 1u);
  op.OnTimer(0, &out);
  EXPECT_EQ(out.emitted.size(), 1u) << "pane deleted after close";
  EXPECT_EQ(ctx.GetStore("w")->size(), 0u);
}

TEST(WindowEagerTest, CloseIsSilentWhenAlreadyFlushed) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             CountAgg(), 0,
                             WindowEmitMode::kEagerSuppressed,
                             /*suppress_interval=*/kMillisecond);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(5 * kSecond);
  op.Process(0, Rec("k", 5 * kSecond), &out);
  op.OnTimer(5 * kSecond, &out);  // flush emits the update
  ASSERT_EQ(out.emitted.size(), 1u);
  ctx.set_max_event_time(11 * kSecond);
  op.OnTimer(6 * kSecond, &out);  // close: nothing new to say
  EXPECT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(ctx.GetStore("w")->size(), 0u) << "pane still cleaned up";
}

TEST(WindowEagerTest, SlidingPanesEmitIndependently) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Sliding(4 * kSecond, kSecond),
                             CountAgg(), 0,
                             WindowEmitMode::kEagerSuppressed,
                             /*suppress_interval=*/kMillisecond);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(10 * kSecond);
  op.Process(0, Rec("k", 10 * kSecond), &out);
  op.OnTimer(kSecond, &out);
  EXPECT_EQ(out.emitted.size(), 4u) << "one update per assigned pane";
}

}  // namespace
}  // namespace impeller
