// Tests for shard sealing & metalog reconfiguration (DESIGN.md §10): the
// failure detector, the seal protocol (fence -> final cut -> durable seal
// record -> epoch bump), straggler re-placement, cross-epoch reads with no
// LSN gaps, rejoin, and the retry budget cap. Exercises the seal both
// explicitly (SealShard) and through the auto-seal path driven by injected
// shard outages.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/common/threading.h"
#include "src/core/engine.h"
#include "src/fault/fault.h"
#include "src/sharedlog/shared_log.h"
#include "src/sharedlog/sharding/failover.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

AppendRequest Req(std::vector<std::string> tags, std::string payload) {
  AppendRequest req;
  req.tags = std::move(tags);
  req.payload = std::move(payload);
  return req;
}

SharedLog MakeLog(uint32_t shards, MetricsRegistry* metrics = nullptr) {
  SharedLogOptions options;
  options.shards = shards;
  options.metrics = metrics;
  // Keep the gap rule out of the way unless a test opts in: these tests
  // count consecutive failures exactly.
  options.failover.heartbeat_gap = 600 * kSecond;
  return SharedLog(std::move(options));
}

// A tag the log places on shard `shard` at the current epoch.
std::string TagOnShard(const SharedLog& log, uint32_t shard,
                       const std::string& prefix = "tag") {
  for (int c = 0;; ++c) {
    std::string tag = prefix + "/" + std::to_string(c);
    if (log.ShardOfTag(tag) == shard) {
      return tag;
    }
  }
}

TEST(FailoverTest, SealReroutesAppendsAndKeepsOrderDense) {
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  std::string victim_tag = TagOnShard(log, 1, "victim");

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(log.Append(Req({victim_tag}, "pre" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.SealShard(1).ok());

  EXPECT_TRUE(log.ShardSealed(1));
  EXPECT_EQ(log.placement_epoch(), 1u);
  EXPECT_EQ(log.num_live_shards(), 2u);
  EXPECT_NE(log.ShardOfTag(victim_tag), 1u);

  // Appends keep flowing under the same tag, now on a live shard.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        log.Append(Req({victim_tag}, "post" + std::to_string(i))).ok());
  }

  // The tag's substream merges across the epoch boundary in order.
  std::vector<std::string> expected = {"pre0",  "pre1",  "pre2",  "pre3",
                                       "post0", "post1", "post2", "post3"};
  Lsn cursor = 0;
  Lsn prev = kInvalidLsn;
  for (const auto& want : expected) {
    auto entry = log.ReadNext(victim_tag, cursor);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    EXPECT_EQ(entry->payload, want);
    if (prev != kInvalidLsn) {
      EXPECT_GT(entry->lsn, prev);
    }
    prev = entry->lsn;
    cursor = entry->lsn + 1;
  }

  // Dense global order: every LSN up to the tail is durably readable —
  // 8 data records + 1 seal record, no gaps.
  EXPECT_EQ(log.TailLsn(), 9u);
  for (Lsn lsn = 0; lsn < log.TailLsn(); ++lsn) {
    EXPECT_TRUE(log.ReadAt(lsn).ok()) << "gap at lsn " << lsn;
  }

  // The seal record is part of the log's durable history.
  auto seal_record = log.ReadLast(kLogSealTag);
  ASSERT_TRUE(seal_record.ok());
  EXPECT_NE(seal_record->payload.view().find("seal shard=1"), std::string::npos);
  EXPECT_NE(seal_record->payload.view().find("epoch=1"), std::string::npos);

  EXPECT_EQ(metrics.GetCounter("log/seals")->Get(), 1u);
  EXPECT_EQ(metrics.GetCounter("log/epoch_bumps")->Get(), 1u);
  EXPECT_EQ(metrics.Histogram("log/seal_latency")->Count(), 1u);
  EXPECT_EQ(log.stats().seals, 1u);
  EXPECT_EQ(log.stats().placement_epoch, 1u);
}

TEST(FailoverTest, SealIsIdempotent) {
  SharedLog log = MakeLog(3);
  ASSERT_TRUE(log.SealShard(2).ok());
  ASSERT_TRUE(log.SealShard(2).ok());  // no-op, still OK
  EXPECT_EQ(log.placement_epoch(), 1u);
  EXPECT_EQ(log.stats().seals, 1u);
  EXPECT_TRUE(log.SealShard(7).code() == StatusCode::kInvalidArgument);
}

TEST(FailoverTest, RefusesToSealLastLiveShard) {
  SharedLog log = MakeLog(2);
  ASSERT_TRUE(log.SealShard(0).ok());
  Status last = log.SealShard(1);
  EXPECT_EQ(last.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(log.ShardSealed(1));
  // The survivor still admits.
  EXPECT_TRUE(log.Append(Req({"t"}, "x")).ok());

  SharedLog single = MakeLog(1);
  EXPECT_EQ(single.SealShard(0).code(), StatusCode::kUnavailable);
}

TEST(FailoverTest, AutoSealAfterConsecutiveUnavailableAppends) {
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  std::string victim_tag = TagOnShard(log, 1, "victim");

  // Permanent one-shard outage: shard 1's sequencer errors on every admit
  // from now on.
  fault::FaultSchedule kill;
  kill.point = "log/shard/append";
  kill.kind = fault::FaultKind::kError;
  kill.detail_substr = "/s1";
  kill.every_n = 1;
  kill.max_fires = 0;
  testutil::FaultArmGuard guard({kill}, /*seed=*/11, &metrics);

  // suspect_after = 3: two appends fail while the detector accumulates
  // evidence, the third crosses the threshold, seals, re-places, succeeds.
  EXPECT_EQ(log.Append(Req({victim_tag}, "a")).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(log.Append(Req({victim_tag}, "b")).status().code(),
            StatusCode::kUnavailable);
  auto lsn = log.Append(Req({victim_tag}, "c"));
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();

  EXPECT_TRUE(log.ShardSealed(1));
  EXPECT_EQ(log.placement_epoch(), 1u);
  EXPECT_EQ(metrics.GetCounter("log/seals")->Get(), 1u);
  // Subsequent appends to the tag route straight to a live shard.
  EXPECT_TRUE(log.Append(Req({victim_tag}, "d")).ok());
}

TEST(FailoverTest, AutoSealInsideOneRetriedAppend) {
  // The common production path: the caller's Retrier absorbs the whole
  // failover — attempts 1-2 fail, attempt 3 seals and succeeds, all inside
  // one Run() well under the default budget.
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  std::string victim_tag = TagOnShard(log, 2, "victim");

  fault::FaultSchedule kill;
  kill.point = "log/shard/append";
  kill.kind = fault::FaultKind::kError;
  kill.detail_substr = "/s2";
  kill.every_n = 1;
  kill.max_fires = 0;
  testutil::FaultArmGuard guard({kill}, /*seed=*/13, &metrics);

  RetryPolicy policy;
  policy.initial_backoff = 10 * kMicrosecond;
  Retrier retrier(policy, /*seed=*/3, nullptr, &metrics);
  auto lsn = retrier.Run("failover_append", [&] {
    return log.Append(Req({victim_tag}, "v"));
  });
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_TRUE(log.ShardSealed(2));
  EXPECT_EQ(metrics.GetCounter("retry/retries")->Get(), 2u);
  EXPECT_EQ(metrics.GetCounter("retry/exhausted")->Get(), 0u);
}

TEST(FailoverTest, StragglerBouncesWithSealedAndIsReplaced) {
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  std::string victim_tag = TagOnShard(log, 1, "victim");

  // Stall the seal between the sequencer fence and the epoch bump, so a hot
  // writer is guaranteed to hit the kSealed window and exercise transparent
  // re-placement.
  fault::FaultSchedule stall;
  stall.point = "log/seal";
  stall.kind = fault::FaultKind::kDelay;
  stall.delay = 100 * kMillisecond;
  stall.every_n = 1;
  testutil::FaultArmGuard guard({stall}, /*seed=*/17, &metrics);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> appended{0};
  JoiningThread writer([&] {
    while (!stop.load()) {
      auto lsn = log.Append(Req({victim_tag}, "w"));
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      appended.fetch_add(1);
    }
  });
  // Let the writer get going, then seal its shard under it.
  ASSERT_TRUE(testutil::WaitFor([&] { return appended.load() > 0; }));
  ASSERT_TRUE(log.SealShard(1).ok());
  stop.store(true);
  writer.Join();

  SharedLogStats stats = log.stats();
  EXPECT_GE(stats.sealed_appends, 1u) << "no straggler hit the seal window";
  EXPECT_EQ(metrics.GetCounter("log/sealed_appends")->Get(),
            stats.sealed_appends);
  // Every writer append succeeded despite the reconfiguration: the data
  // substream is complete and ordered.
  uint64_t total = appended.load();
  Lsn cursor = 0;
  for (uint64_t i = 0; i < total; ++i) {
    auto entry = log.ReadNext(victim_tag, cursor);
    ASSERT_TRUE(entry.ok()) << "record " << i << " missing: "
                            << entry.status().ToString();
    cursor = entry->lsn + 1;
  }
}

TEST(FailoverTest, FencedAppendCounterExported) {
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  log.MetaPut("inst", 2);
  AppendRequest req = Req({"t"}, "zombie");
  req.cond_key = "inst";
  req.cond_value = 1;  // stale
  EXPECT_EQ(log.Append(std::move(req)).status().code(), StatusCode::kFenced);
  EXPECT_EQ(metrics.GetCounter("log/fenced_appends")->Get(), 1u);
  EXPECT_EQ(log.stats().fenced_appends, 1u);
}

TEST(FailoverTest, RejoinAtLaterEpoch) {
  MetricsRegistry metrics;
  SharedLog log = MakeLog(3, &metrics);
  std::string victim_tag = TagOnShard(log, 0, "victim");
  ASSERT_TRUE(log.Append(Req({victim_tag}, "pre")).ok());

  ASSERT_TRUE(log.SealShard(0).ok());
  EXPECT_EQ(log.RejoinShard(2).code(), StatusCode::kInvalidArgument)
      << "rejoin of a live shard must be rejected";
  ASSERT_TRUE(log.RejoinShard(0).ok());

  EXPECT_FALSE(log.ShardSealed(0));
  EXPECT_EQ(log.placement_epoch(), 2u);
  EXPECT_EQ(log.num_live_shards(), 3u);
  EXPECT_EQ(log.stats().rejoins, 1u);
  EXPECT_EQ(metrics.GetCounter("log/epoch_bumps")->Get(), 2u);

  // The rejoined shard admits again: place a batch directly on it.
  std::string back_tag = TagOnShard(log, 0, "back");
  ASSERT_TRUE(log.Append(Req({back_tag}, "post")).ok());
  auto rejoin_record = log.ReadLast(kLogSealTag);
  ASSERT_TRUE(rejoin_record.ok());
  EXPECT_NE(rejoin_record->payload.view().find("rejoin shard=0"), std::string::npos);

  // Dense order across seal + rejoin.
  for (Lsn lsn = 0; lsn < log.TailLsn(); ++lsn) {
    EXPECT_TRUE(log.ReadAt(lsn).ok()) << "gap at lsn " << lsn;
  }
}

TEST(FailoverTest, ReaderBlockedInAwaitNextSurvivesEpochBump) {
  SharedLog log = MakeLog(3);
  std::string victim_tag = TagOnShard(log, 1, "victim");

  std::atomic<bool> reader_started{false};
  Result<LogEntry> got = NotFoundError("not yet");
  JoiningThread reader([&] {
    reader_started.store(true);
    got = log.AwaitNext(victim_tag, 0, 5 * kSecond);
  });
  ASSERT_TRUE(testutil::WaitFor([&] { return reader_started.load(); }));
  MonotonicClock::Get()->SleepFor(5 * kMillisecond);  // reader parks in wait

  // Seal the tag's shard, then publish under the new epoch: the blocked
  // reader must observe the re-placed record, not its timeout.
  ASSERT_TRUE(log.SealShard(1).ok());
  ASSERT_TRUE(log.Append(Req({victim_tag}, "after-bump")).ok());
  reader.Join();

  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload, "after-bump");
}

TEST(FailoverTest, CrossEpochReadsNoGapsNoReorder) {
  SharedLog log = MakeLog(4);
  // Several tags across several shards, interleaved writes, one seal in the
  // middle: per-tag order must be exact and the global order dense.
  std::vector<std::string> tags;
  for (uint32_t s = 0; s < 4; ++s) {
    tags.push_back(TagOnShard(log, s, "t" + std::to_string(s)));
  }
  int seq = 0;
  for (int round = 0; round < 5; ++round) {
    for (const auto& tag : tags) {
      ASSERT_TRUE(log.Append(Req({tag}, std::to_string(seq++))).ok());
    }
  }
  ASSERT_TRUE(log.SealShard(2).ok());
  for (int round = 0; round < 5; ++round) {
    for (const auto& tag : tags) {
      ASSERT_TRUE(log.Append(Req({tag}, std::to_string(seq++))).ok());
    }
  }

  // Per-tag: strictly increasing LSNs, payload sequence preserved.
  for (const auto& tag : tags) {
    Lsn cursor = 0;
    Lsn prev_lsn = kInvalidLsn;
    long long prev_payload = -1;
    int count = 0;
    while (true) {
      auto entry = log.ReadNext(tag, cursor);
      if (!entry.ok()) {
        ASSERT_EQ(entry.status().code(), StatusCode::kNotFound);
        break;
      }
      long long payload = std::stoll(entry->payload.ToString());
      EXPECT_GT(payload, prev_payload) << "reorder within " << tag;
      if (prev_lsn != kInvalidLsn) {
        EXPECT_GT(entry->lsn, prev_lsn);
      }
      prev_payload = payload;
      prev_lsn = entry->lsn;
      cursor = entry->lsn + 1;
      ++count;
    }
    EXPECT_EQ(count, 10) << tag;
  }
  // Global: 40 data records + 1 seal record, every LSN present exactly once.
  EXPECT_EQ(log.TailLsn(), 41u);
  std::set<Lsn> seen;
  for (Lsn lsn = 0; lsn < log.TailLsn(); ++lsn) {
    auto entry = log.ReadAt(lsn);
    ASSERT_TRUE(entry.ok()) << "gap at lsn " << lsn;
    EXPECT_EQ(entry->lsn, lsn);
    EXPECT_TRUE(seen.insert(entry->lsn).second);
  }
}

TEST(FailoverTest, DetectorConsecutiveThreshold) {
  FailoverOptions opts;
  opts.suspect_after = 3;
  opts.heartbeat_gap = 0;  // disable the gap rule
  ShardFailureDetector detector(opts, 2, /*now=*/0);
  EXPECT_FALSE(detector.RecordFailure(0, 1));
  EXPECT_FALSE(detector.RecordFailure(0, 2));
  EXPECT_TRUE(detector.RecordFailure(0, 3));
  // Success resets the streak; the other shard's state is independent.
  detector.RecordSuccess(0, 4);
  EXPECT_EQ(detector.consecutive_failures(0), 0);
  EXPECT_FALSE(detector.RecordFailure(0, 5));
  EXPECT_FALSE(detector.RecordFailure(1, 5));
}

TEST(FailoverTest, DetectorHeartbeatGap) {
  FailoverOptions opts;
  opts.suspect_after = 100;  // keep the consecutive rule out of the way
  opts.heartbeat_gap = 10 * kMillisecond;
  ShardFailureDetector detector(opts, 1, /*now=*/0);
  // A failure shortly after a healthy admit: not suspect.
  detector.RecordSuccess(0, 1 * kMillisecond);
  EXPECT_FALSE(detector.RecordFailure(0, 5 * kMillisecond));
  // A failure after a long silence: the shard missed its heartbeat.
  EXPECT_TRUE(detector.RecordFailure(0, 20 * kMillisecond));
  // Reset restarts the heartbeat clock.
  detector.Reset(0, 21 * kMillisecond);
  EXPECT_FALSE(detector.RecordFailure(0, 22 * kMillisecond));
}

TEST(FailoverTest, HeartbeatGapAutoSealsOnLog) {
  MetricsRegistry metrics;
  SharedLogOptions options;
  options.shards = 3;
  options.metrics = &metrics;
  options.failover.suspect_after = 100;  // only the gap rule can fire
  options.failover.heartbeat_gap = kMillisecond;
  SharedLog log(std::move(options));
  std::string victim_tag = TagOnShard(log, 1, "victim");

  fault::FaultSchedule kill;
  kill.point = "log/shard/append";
  kill.kind = fault::FaultKind::kError;
  kill.detail_substr = "/s1";
  kill.every_n = 1;
  kill.max_fires = 0;
  testutil::FaultArmGuard guard({kill}, /*seed=*/19, &metrics);

  MonotonicClock::Get()->SleepFor(3 * kMillisecond);  // blow the gap
  // One failed admit on a gap-expired shard seals it immediately.
  auto lsn = log.Append(Req({victim_tag}, "x"));
  ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
  EXPECT_TRUE(log.ShardSealed(1));
  EXPECT_EQ(metrics.GetCounter("log/seals")->Get(), 1u);
}

TEST(FailoverTest, RetryBudgetCapsTotalElapsed) {
  MetricsRegistry metrics;
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff = 5 * kMillisecond;
  policy.multiplier = 1.0;
  policy.jitter = 0.0;
  policy.max_elapsed = 20 * kMillisecond;
  Retrier retrier(policy, /*seed=*/1, nullptr, &metrics);

  int attempts = 0;
  Status st = retrier.Run("budget", [&] {
    ++attempts;
    return UnavailableError("permanently down");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // ~4 backoffs of 5ms fit in a 20ms budget; max_attempts never binds.
  EXPECT_GE(attempts, 2);
  EXPECT_LE(attempts, 6);
  EXPECT_EQ(metrics.GetCounter("retry/exhausted")->Get(), 1u);

  // max_elapsed = 0 keeps the attempt-count behavior.
  RetryPolicy unbounded;
  unbounded.max_attempts = 3;
  unbounded.initial_backoff = 10 * kMicrosecond;
  unbounded.max_elapsed = 0;
  Retrier loose(unbounded, /*seed=*/2);
  attempts = 0;
  st = loose.Run("unbounded", [&] {
    ++attempts;
    return UnavailableError("down");
  });
  EXPECT_EQ(attempts, 3);
}

TEST(FailoverTest, SealedIsNotRetryable) {
  EXPECT_FALSE(IsRetryable(SealedError("sealed")));
  EXPECT_FALSE(IsRetryable(FencedError("fenced")));
  EXPECT_TRUE(IsRetryable(UnavailableError("down")));

  // A Retrier that sees kSealed must stop immediately (the log client has
  // already re-placed internally; surfacing kSealed means reconfiguration
  // could not help, e.g. an explicit append pinned to a sealed shard).
  Retrier retrier(RetryPolicy{}, /*seed=*/1);
  int attempts = 0;
  Status st = retrier.Run("sealed", [&] {
    ++attempts;
    return SealedError("shard gone");
  });
  EXPECT_EQ(st.code(), StatusCode::kSealed);
  EXPECT_EQ(attempts, 1);
}

TEST(FailoverTest, ZeroShardEngineConfigRejected) {
  EngineOptions options;
  options.config = testutil::FastConfig(ProtocolKind::kProgressMarking);
  options.config.log_shards = 0;
  Engine engine(std::move(options));
  auto plan = testutil::WordCountPlan();
  ASSERT_TRUE(plan.ok());
  Status st = engine.Submit(std::move(*plan));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("log_shards"), std::string::npos);
}

}  // namespace
}  // namespace impeller
