// QueryBuilder validation and plan-resolution tests.
#include <gtest/gtest.h>

#include "src/core/query.h"
#include "src/core/stream.h"

namespace impeller {
namespace {

StreamRecord PassThrough(StreamRecord r) { return r; }

TEST(QueryBuilderTest, SimplePipelineResolves) {
  QueryBuilder qb("wc");
  qb.Ingress("lines");
  qb.AddStage("split", 2)
      .ReadsFrom({"lines"})
      .Map(PassThrough)
      .WritesTo("words");
  qb.AddStage("count", 3).ReadsFrom({"words"}).Map(PassThrough).Sink("wc");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const StreamSpec* lines = plan->FindStream("lines");
  ASSERT_NE(lines, nullptr);
  EXPECT_TRUE(lines->external);
  EXPECT_EQ(lines->num_substreams, 2u) << "= consuming stage tasks";

  const StreamSpec* words = plan->FindStream("words");
  ASSERT_NE(words, nullptr);
  EXPECT_EQ(words->num_substreams, 3u);
  EXPECT_EQ(words->producer_stage, "split");
  EXPECT_EQ(words->consumer_stage, "count");

  const StreamSpec* egress = plan->FindStream(EgressStreamName("wc", "count"));
  ASSERT_NE(egress, nullptr);
  EXPECT_TRUE(egress->egress);
  EXPECT_EQ(egress->num_substreams, 3u);

  auto producers = plan->ProducersOf("words");
  ASSERT_EQ(producers.size(), 2u);
  EXPECT_EQ(producers[0], "wc/split/0");
}

TEST(QueryBuilderTest, RejectsUnknownInputStream) {
  QueryBuilder qb("q");
  qb.AddStage("s", 1).ReadsFrom({"nope"}).Map(PassThrough).Sink("x");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsMultipleProducers) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"}).Map(PassThrough).WritesTo("mid");
  qb.AddStage("b", 1).ReadsFrom({"mid"}).Map(PassThrough).WritesTo("mid");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsMultipleConsumers) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"}).Map(PassThrough).WritesTo("mid");
  qb.AddStage("b", 1).ReadsFrom({"mid"}).Map(PassThrough).Sink("b");
  qb.AddStage("c", 1).ReadsFrom({"mid"}).Map(PassThrough).Sink("c");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsUnconsumedStream) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"}).Map(PassThrough).WritesTo("dangling");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsEmptyStage) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"});
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsZeroTasks) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 0).ReadsFrom({"in"}).Map(PassThrough).Sink("x");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, RejectsDuplicateStageNames) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"}).Map(PassThrough).WritesTo("m");
  qb.AddStage("a", 1).ReadsFrom({"m"}).Map(PassThrough).Sink("x");
  EXPECT_FALSE(qb.Build().ok());
}

TEST(QueryBuilderTest, NoProducerErrorNamesStreamAndRemedies) {
  QueryBuilder qb("q");
  qb.AddStage("s", 1).ReadsFrom({"nope"}).Map(PassThrough).Sink("x");
  auto plan = qb.Build();
  ASSERT_FALSE(plan.ok());
  std::string msg(plan.status().message());
  EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no producer"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Ingress"), std::string::npos) << msg;
}

TEST(QueryBuilderTest, MultipleConsumersErrorNamesBothStages) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 1).ReadsFrom({"in"}).Map(PassThrough).WritesTo("mid");
  qb.AddStage("b", 1).ReadsFrom({"mid"}).Map(PassThrough).Sink("b");
  qb.AddStage("c", 1).ReadsFrom({"mid"}).Map(PassThrough).Sink("c");
  auto plan = qb.Build();
  ASSERT_FALSE(plan.ok());
  std::string msg(plan.status().message());
  EXPECT_NE(msg.find("'mid'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'c'"), std::string::npos) << msg;
}

TEST(QueryBuilderTest, RejectsTwoStageCycle) {
  // A reads B's output and vice versa. Streams register before consumers
  // resolve, so without explicit cycle detection this builds "successfully"
  // and deadlocks at runtime.
  QueryBuilder qb("q");
  qb.AddStage("a", 1).ReadsFrom({"b.out"}).Map(PassThrough).WritesTo("a.out");
  qb.AddStage("b", 1).ReadsFrom({"a.out"}).Map(PassThrough).WritesTo("b.out");
  auto plan = qb.Build();
  ASSERT_FALSE(plan.ok());
  std::string msg(plan.status().message());
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'a'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'b'"), std::string::npos) << msg;
}

TEST(QueryBuilderTest, RejectsSelfLoopStage) {
  QueryBuilder qb("q");
  qb.AddStage("loop", 1)
      .ReadsFrom({"loop.out"})
      .Map(PassThrough)
      .WritesTo("loop.out");
  auto plan = qb.Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(std::string(plan.status().message()).find("cycle"),
            std::string::npos);
}

TEST(QueryBuilderTest, RejectsCycleHangingOffValidPipeline) {
  // The main pipeline is fine; a detached 2-stage cycle rides along.
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("main", 1).ReadsFrom({"in"}).Map(PassThrough).Sink("x");
  qb.AddStage("c1", 1).ReadsFrom({"c2.out"}).Map(PassThrough).WritesTo(
      "c1.out");
  qb.AddStage("c2", 1).ReadsFrom({"c1.out"}).Map(PassThrough).WritesTo(
      "c2.out");
  auto plan = qb.Build();
  ASSERT_FALSE(plan.ok());
  std::string msg(plan.status().message());
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("'main'"), std::string::npos) << msg;
}

TEST(QueryBuilderTest, DiamondOverTwoStreamsResolves) {
  // Fan-out via two distinct output streams (one consumer each) is legal;
  // only sharing one stream between consumers is not.
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("split", 1)
      .ReadsFrom({"in"})
      .Map(PassThrough)
      .WritesTo("left")
      .WritesTo("right");
  qb.AddStage("l", 1).ReadsFrom({"left"}).Map(PassThrough).Sink("l");
  qb.AddStage("r", 1).ReadsFrom({"right"}).Map(PassThrough).Sink("r");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(QueryBuilderTest, MultiInputJoinStage) {
  QueryBuilder qb("j");
  qb.Ingress("left").Ingress("right");
  qb.AddStage("kl", 2).ReadsFrom({"left"}).Map(PassThrough).WritesTo("L");
  qb.AddStage("kr", 2).ReadsFrom({"right"}).Map(PassThrough).WritesTo("R");
  qb.AddStage("join", 4)
      .ReadsFrom({"L", "R"})
      .JoinStreams("j", kSecond,
                   [](std::string_view a, std::string_view b) {
                     return std::string(a) + std::string(b);
                   })
      .Sink("out");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->FindStream("L")->num_substreams, 4u);
  EXPECT_EQ(plan->FindStream("R")->num_substreams, 4u);
  EXPECT_TRUE(plan->FindStage("join")->stateful);
  EXPECT_FALSE(plan->FindStage("kl")->stateful);
}

TEST(QueryBuilderTest, StatefulFlagPropagates) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view, const StreamRecord& r) { return r.value; };
  qb.AddStage("a", 1).ReadsFrom({"in"}).Aggregate("s", agg).Sink("x");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->FindStage("a")->stateful);
}

}  // namespace
}  // namespace impeller
