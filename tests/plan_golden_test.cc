// Golden-plan check (CI gate): Explain() output for the eight NEXMark
// queries is committed under tests/golden/ and diffed here. A diff means
// the optimizer or lowering changed what it produces for a fixed input —
// which must be a deliberate, reviewed change. Regenerate with:
//
//   build/tests/plan_golden_test --regen   (writes tests/golden/q*.txt)
//
// then inspect `git diff tests/golden/` before committing.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/nexmark/plan_queries.h"

#ifndef IMPELLER_GOLDEN_DIR
#error "IMPELLER_GOLDEN_DIR must point at tests/golden"
#endif

namespace impeller {
namespace {

bool g_regen = false;

std::string GoldenPath(int number) {
  return std::string(IMPELLER_GOLDEN_DIR) + "/q" + std::to_string(number) +
         ".txt";
}

std::string BuildExplainText(int number) {
  auto plan = nexmark::BuildNexmarkPlanQuery(number, NexmarkQueryOptions{},
                                             /*fuse=*/true);
  if (!plan.ok()) {
    ADD_FAILURE() << plan.status().ToString();
    return "";
  }
  return plan::ExplainText(plan->lowered);
}

class PlanGoldenTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanGoldenTest, ExplainMatchesCommittedGolden) {
  int number = GetParam();
  std::string actual = BuildExplainText(number);
  ASSERT_FALSE(actual.empty());

  if (g_regen) {
    std::ofstream out(GoldenPath(number), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(number);
    out << actual;
    SUCCEED() << "regenerated " << GoldenPath(number);
    return;
  }

  std::ifstream in(GoldenPath(number));
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath(number)
      << "; run plan_golden_test --regen and commit tests/golden/";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(actual, buffer.str())
      << "Explain() drifted from the committed golden for q" << number
      << ". If the change is intentional, run plan_golden_test --regen and "
         "commit the diff under tests/golden/.";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PlanGoldenTest, ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace impeller

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      impeller::g_regen = true;
    }
  }
  return RUN_ALL_TESTS();
}
