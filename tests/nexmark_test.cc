// NEXMark suite tests: generator mix/sizes (§5.3), query plan shapes
// (Table 3), and short end-to-end runs of Q1-Q8.
#include <gtest/gtest.h>

#include "src/nexmark/driver.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::WaitFor;

TEST(NexmarkGeneratorTest, EventMixMatchesPaper) {
  NexmarkGenerator generator({}, 1, MonotonicClock::Get());
  int bids = 0, auctions = 0, persons = 0;
  constexpr int kTotal = 50000;
  for (int i = 0; i < kTotal; ++i) {
    switch (generator.Next().kind) {
      case NexmarkGenerator::Kind::kBid:
        bids++;
        break;
      case NexmarkGenerator::Kind::kAuction:
        auctions++;
        break;
      case NexmarkGenerator::Kind::kPerson:
        persons++;
        break;
    }
  }
  EXPECT_NEAR(bids / static_cast<double>(kTotal), 0.92, 0.001);
  EXPECT_NEAR(auctions / static_cast<double>(kTotal), 0.06, 0.001);
  EXPECT_NEAR(persons / static_cast<double>(kTotal), 0.02, 0.001);
}

TEST(NexmarkGeneratorTest, AverageEventSizesMatchPaper) {
  NexmarkGenerator generator({}, 2, MonotonicClock::Get());
  int64_t bid_bytes = 0, auction_bytes = 0, person_bytes = 0;
  int bids = 0, auctions = 0, persons = 0;
  for (int i = 0; i < 20000; ++i) {
    auto event = generator.Next();
    switch (event.kind) {
      case NexmarkGenerator::Kind::kBid:
        bid_bytes += static_cast<int64_t>(EncodeBid(event.bid).size());
        bids++;
        break;
      case NexmarkGenerator::Kind::kAuction:
        auction_bytes +=
            static_cast<int64_t>(EncodeAuction(event.auction).size());
        auctions++;
        break;
      case NexmarkGenerator::Kind::kPerson:
        person_bytes +=
            static_cast<int64_t>(EncodePerson(event.person).size());
        persons++;
        break;
    }
  }
  EXPECT_NEAR(bid_bytes / static_cast<double>(bids), 100.0, 15.0);
  EXPECT_NEAR(auction_bytes / static_cast<double>(auctions), 500.0, 50.0);
  EXPECT_NEAR(person_bytes / static_cast<double>(persons), 200.0, 25.0);
}

TEST(NexmarkGeneratorTest, BidsReferenceRecentAuctionsWithSkew) {
  // Hot-key popularity is relative to the newest auction (zipf over
  // recency rank), so measure the distribution of "distance from newest".
  NexmarkGenerator generator({}, 3, MonotonicClock::Get());
  uint64_t max_auction_id = 0;
  int64_t bids = 0, near_head = 0;
  for (int i = 0; i < 50000; ++i) {
    auto event = generator.Next();
    if (event.kind == NexmarkGenerator::Kind::kAuction) {
      max_auction_id = std::max(max_auction_id, event.auction.id);
    } else if (event.kind == NexmarkGenerator::Kind::kBid &&
               max_auction_id > 100) {
      EXPECT_LE(event.bid.auction, max_auction_id)
          << "bids target already-opened auctions";
      ++bids;
      if (max_auction_id - event.bid.auction < 5) {
        ++near_head;  // one of the 5 most recent of ~100 in flight
      }
    }
  }
  // Uniform would give ~5%; the zipf skew concentrates far more mass on the
  // most recent (hottest) auctions.
  EXPECT_GT(near_head, bids / 5);
}

TEST(NexmarkGeneratorTest, Deterministic) {
  NexmarkGenerator a({}, 42, MonotonicClock::Get());
  NexmarkGenerator b({}, 42, MonotonicClock::Get());
  for (int i = 0; i < 1000; ++i) {
    auto ea = a.Next();
    auto eb = b.Next();
    ASSERT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind));
    if (ea.kind == NexmarkGenerator::Kind::kBid) {
      EXPECT_EQ(ea.bid.auction, eb.bid.auction);
      EXPECT_EQ(ea.bid.price, eb.bid.price);
    }
  }
}

TEST(NexmarkQueriesTest, AllQueriesBuild) {
  for (int q = 1; q <= 8; ++q) {
    auto plan = BuildNexmarkQuery(q);
    ASSERT_TRUE(plan.ok()) << "Q" << q << ": " << plan.status().ToString();
    EXPECT_EQ(plan->name, "q" + std::to_string(q));
    EXPECT_NE(plan->FindStage(NexmarkSinkStage(q)), nullptr) << "Q" << q;
  }
  EXPECT_FALSE(BuildNexmarkQuery(0).ok());
  EXPECT_FALSE(BuildNexmarkQuery(9).ok());
}

TEST(NexmarkQueriesTest, StatefulnessMatchesTable3) {
  // Q1/Q2 are purely stateless; Q3-Q8 contain stateful operators.
  for (int q = 1; q <= 8; ++q) {
    auto plan = BuildNexmarkQuery(q);
    ASSERT_TRUE(plan.ok());
    bool any_stateful = false;
    for (const auto& stage : plan->stages) {
      any_stateful = any_stateful || stage.stateful;
    }
    EXPECT_EQ(any_stateful, q >= 3) << "Q" << q;
  }
}

class NexmarkEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(NexmarkEndToEnd, ProducesOutput) {
  int q = GetParam();
  NexmarkQueryOptions query_options;
  query_options.tasks_per_stage = 2;
  // Scale windows down so they fire within the short test run.
  query_options.q5_window = kSecond;
  query_options.q5_slide = 250 * kMillisecond;
  query_options.q7_window = 500 * kMillisecond;
  query_options.q8_window = 5 * kSecond;
  query_options.join_window = 5 * kSecond;
  query_options.allowed_lateness = 100 * kMillisecond;

  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = BuildNexmarkQuery(q, query_options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());

  NexmarkDriverOptions driver_options;
  driver_options.events_per_sec = 6000;
  driver_options.flush_interval = 10 * kMillisecond;
  auto driver = NexmarkDriver::Create(&engine, q, driver_options);
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  (*driver)->Start();

  Counter* out = engine.metrics()->GetCounter("out/q" + std::to_string(q));
  bool produced = WaitFor([&] { return out->Get() > 0; }, 25 * kSecond);
  (*driver)->Stop();
  EXPECT_TRUE(produced) << "Q" << q << " produced no output after "
                        << (*driver)->events_sent() << " input events";
  engine.Stop();
  EXPECT_GT(engine.metrics()->Histogram("lat/q" + std::to_string(q))->Count(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Queries, NexmarkEndToEnd,
                         ::testing::Range(1, 9),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(NexmarkSemanticsTest, Q2OutputsOnlyMatchingAuctions) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = BuildNexmarkQuery(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());

  auto producer = engine.NewProducer("gen/bids", "bids");
  ASSERT_TRUE(producer.ok());
  int expected = 0;
  for (uint64_t auction = 100; auction < 400; ++auction) {
    Bid bid;
    bid.auction = auction;
    bid.bidder = 1;
    bid.price = 10;
    (*producer)->Send(std::to_string(auction), EncodeBid(bid));
    if (auction % 123 == 0) {
      expected++;
    }
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/q2");
  ASSERT_TRUE(WaitFor(
      [&] { return out->Get() >= static_cast<uint64_t>(expected); }));
  MonotonicClock::Get()->SleepFor(50 * kMillisecond);
  EXPECT_EQ(out->Get(), static_cast<uint64_t>(expected));
  engine.Stop();

  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer(NexmarkSinkStage(2), sub);
    ASSERT_TRUE(consumer.ok());
    auto records = (*consumer)->PollAll();
    ASSERT_TRUE(records.ok());
    for (const auto& r : *records) {
      auto bid = DecodeBid(r.data.value);
      ASSERT_TRUE(bid.ok());
      EXPECT_EQ(bid->auction % 123, 0u);
    }
  }
}

TEST(NexmarkSemanticsTest, Q1ConvertsPrices) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = BuildNexmarkQuery(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen/bids", "bids");
  ASSERT_TRUE(producer.ok());
  Bid bid;
  bid.auction = 7;
  bid.bidder = 1;
  bid.price = 1000;
  (*producer)->Send("7", EncodeBid(bid));
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/q1");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 1; }));
  engine.Stop();

  bool found = false;
  for (uint32_t sub = 0; sub < 2 && !found; ++sub) {
    auto consumer = engine.NewEgressConsumer(NexmarkSinkStage(1), sub);
    ASSERT_TRUE(consumer.ok());
    auto records = (*consumer)->PollAll();
    ASSERT_TRUE(records.ok());
    for (const auto& r : *records) {
      auto converted = DecodeBid(r.data.value);
      ASSERT_TRUE(converted.ok());
      EXPECT_EQ(converted->price, 908) << "1000 USD -> 908 EUR";
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace impeller
