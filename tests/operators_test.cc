// Operator unit tests against a fake context/collector (no engine, no log).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/common/serde.h"
#include "src/core/operators.h"

namespace impeller {
namespace {

class FakeContext final : public OperatorContext {
 public:
  MapStateStore* GetStore(std::string_view name) override {
    auto& slot = stores_[std::string(name)];
    if (slot == nullptr) {
      slot = std::make_unique<MapStateStore>(std::string(name), nullptr);
    }
    return slot.get();
  }
  Clock* clock() override { return MonotonicClock::Get(); }
  const std::string& task_id() const override { return task_id_; }
  uint32_t task_index() const override { return 0; }
  MetricsRegistry* metrics() override { return &metrics_; }
  TimeNs max_event_time() const override { return max_event_time_; }

  void set_max_event_time(TimeNs t) { max_event_time_ = t; }
  MetricsRegistry* registry() { return &metrics_; }

 private:
  std::string task_id_ = "test/stage/0";
  MetricsRegistry metrics_;
  std::map<std::string, std::unique_ptr<MapStateStore>> stores_;
  TimeNs max_event_time_ = 0;
};

class CapturingCollector final : public Collector {
 public:
  void EmitTo(uint32_t output, StreamRecord record) override {
    emitted.emplace_back(output, std::move(record));
  }
  std::vector<std::pair<uint32_t, StreamRecord>> emitted;
};

StreamRecord Rec(std::string key, std::string value, TimeNs et = 100) {
  return {std::move(key), std::move(value), et};
}

// --- stateless ---

TEST(FilterOperatorTest, DropsNonMatching) {
  FilterOperator op([](const StreamRecord& r) { return r.key == "keep"; });
  CapturingCollector out;
  op.Process(0, Rec("keep", "a"), &out);
  op.Process(0, Rec("drop", "b"), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.key, "keep");
}

TEST(MapOperatorTest, TransformsValueAndKey) {
  MapOperator op([](StreamRecord r) {
    r.value += "!";
    r.key = "new-" + r.key;
    return r;
  });
  CapturingCollector out;
  op.Process(0, Rec("k", "v"), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.key, "new-k");
  EXPECT_EQ(out.emitted[0].second.value, "v!");
}

TEST(FlatMapOperatorTest, OneToMany) {
  FlatMapOperator op([](StreamRecord r, std::vector<StreamRecord>* results) {
    for (char c : r.value) {
      results->push_back({std::string(1, c), "", r.event_time});
    }
  });
  CapturingCollector out;
  op.Process(0, Rec("k", "abc"), &out);
  ASSERT_EQ(out.emitted.size(), 3u);
  EXPECT_EQ(out.emitted[2].second.key, "c");
}

TEST(BranchOperatorTest, RoutesByOutputIndex) {
  BranchOperator op([](const StreamRecord& r) {
    if (r.key == "drop") {
      return -1;
    }
    return r.key == "left" ? 0 : 1;
  });
  CapturingCollector out;
  op.Process(0, Rec("left", "a"), &out);
  op.Process(0, Rec("right", "b"), &out);
  op.Process(0, Rec("drop", "c"), &out);
  ASSERT_EQ(out.emitted.size(), 2u);
  EXPECT_EQ(out.emitted[0].first, 0u);
  EXPECT_EQ(out.emitted[1].first, 1u);
}

TEST(KeyByOperatorTest, RewritesKey) {
  KeyByOperator op([](const StreamRecord& r) { return r.value; });
  CapturingCollector out;
  op.Process(0, Rec("old", "derived"), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.key, "derived");
}

TEST(SinkOperatorTest, RecordsLatencyAndCount) {
  FakeContext ctx;
  bool called = false;
  SinkOperator op("metric", [&](const StreamRecord&) { called = true; });
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("k", "v", ctx.clock()->Now() - 5 * kMillisecond), &out);
  EXPECT_TRUE(called);
  EXPECT_EQ(ctx.registry()->GetCounter("out/metric")->Get(), 1u);
  EXPECT_GE(ctx.registry()->Histogram("lat/metric")->p50(),
            4 * kMillisecond);
  ASSERT_EQ(out.emitted.size(), 1u) << "sink forwards to the egress stream";
}

// --- aggregates ---

AggregateFn SumAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string("0"); };
  agg.add = [](std::string_view acc, const StreamRecord& r) {
    return std::to_string(std::stoll(std::string(acc)) +
                          std::stoll(r.value));
  };
  agg.remove = [](std::string_view acc, std::string_view old_value) {
    return std::to_string(std::stoll(std::string(acc)) -
                          std::stoll(std::string(old_value)));
  };
  return agg;
}

TEST(GroupAggregateTest, PerKeyRunningAggregate) {
  FakeContext ctx;
  GroupAggregateOperator op("agg", SumAgg());
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("a", "1"), &out);
  op.Process(0, Rec("a", "2"), &out);
  op.Process(0, Rec("b", "10"), &out);
  ASSERT_EQ(out.emitted.size(), 3u);
  EXPECT_EQ(out.emitted[1].second.value, "3");
  EXPECT_EQ(out.emitted[2].second.value, "10");
  EXPECT_TRUE(op.IsStateful());
}

TEST(TableAggregateTest, UpdateRetractsOldRow) {
  FakeContext ctx;
  // Rows: auction -> price, grouped by a category carried in the key
  // "cat|auction"; group key = substring before '|'.
  TableAggregateOperator op(
      "t",
      [](const StreamRecord& r) {
        return r.key.substr(0, r.key.find('|'));
      },
      SumAgg());
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("c1|a1", "100"), &out);
  op.Process(0, Rec("c1|a2", "50"), &out);
  // a1's row updates from 100 to 70: the group sum must retract 100.
  op.Process(0, Rec("c1|a1", "70"), &out);
  ASSERT_FALSE(out.emitted.empty());
  EXPECT_EQ(out.emitted.back().second.value, "120");
}

TEST(TableAggregateTest, RowKeyFnSeparatesRowFromPartitionKey) {
  FakeContext ctx;
  // Record key = group (category); row identity from the value.
  TableAggregateOperator op(
      "t", [](const StreamRecord& r) { return r.key; }, SumAgg(),
      [](const StreamRecord& r) { return r.value.substr(0, 2); });
  op.Open(&ctx);
  CapturingCollector out;
  // Values "a1..." etc.: row key = first 2 chars; aggregate over suffix?
  // Use fixed numbers for clarity: row a1 worth 10 then re-valued... the
  // SumAgg uses the whole value, so keep values numeric with row id in the
  // first two digits: "10" (row "10"), "10" again replaces itself.
  op.Process(0, Rec("g", "10"), &out);
  op.Process(0, Rec("g", "10"), &out);
  EXPECT_EQ(out.emitted.back().second.value, "10")
      << "same row re-added must not double count";
}

TEST(WindowAggregateTest, FiresWhenWatermarkPasses) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             SumAgg(), /*allowed_lateness=*/0);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(5 * kSecond);
  op.Process(0, Rec("k", "3", 5 * kSecond), &out);
  op.Process(0, Rec("k", "4", 6 * kSecond), &out);
  op.OnTimer(0, &out);
  EXPECT_TRUE(out.emitted.empty()) << "window [0,10s) not complete yet";

  ctx.set_max_event_time(11 * kSecond);
  op.OnTimer(0, &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  const StreamRecord& fired = out.emitted[0].second;
  EXPECT_EQ(fired.key, "k");
  BinaryReader r(fired.value);
  EXPECT_EQ(*r.ReadVarI64(), 0) << "window start rides in the value";
  EXPECT_EQ(*r.ReadString(), "7");
  EXPECT_EQ(fired.event_time, 6 * kSecond)
      << "event time = latest contribution";

  // Firing is once per pane.
  op.OnTimer(0, &out);
  EXPECT_EQ(out.emitted.size(), 1u);
}

TEST(WindowAggregateTest, LateRecordsAreDropped) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Tumbling(10 * kSecond),
                             SumAgg(), /*allowed_lateness=*/0);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(25 * kSecond);
  op.Process(0, Rec("k", "3", 5 * kSecond), &out);  // [0,10s) already fired
  op.OnTimer(0, &out);
  EXPECT_TRUE(out.emitted.empty());
}

TEST(WindowAggregateTest, SlidingWindowCountsOverlap) {
  FakeContext ctx;
  WindowAggregateOperator op("w", WindowSpec::Sliding(4 * kSecond, kSecond),
                             SumAgg(), 0);
  op.Open(&ctx);
  CapturingCollector out;
  ctx.set_max_event_time(2 * kSecond);
  op.Process(0, Rec("k", "1", 2 * kSecond), &out);
  ctx.set_max_event_time(20 * kSecond);
  op.OnTimer(0, &out);
  // The record contributes to 4 sliding panes.
  EXPECT_EQ(out.emitted.size(), 4u);
}

// --- joins ---

TEST(StreamStreamJoinTest, JoinsWithinWindow) {
  FakeContext ctx;
  StreamStreamJoinOperator op(
      "j", 10 * kSecond,
      [](std::string_view l, std::string_view r) {
        return std::string(l) + "+" + std::string(r);
      },
      0);
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("k", "L1", 1 * kSecond), &out);
  EXPECT_TRUE(out.emitted.empty());
  op.Process(1, Rec("k", "R1", 2 * kSecond), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.value, "L1+R1");
  EXPECT_EQ(out.emitted[0].second.event_time, 2 * kSecond);

  // Outside the window: no join.
  op.Process(1, Rec("k", "R2", 20 * kSecond), &out);
  EXPECT_EQ(out.emitted.size(), 1u);
  // Different key: no join.
  op.Process(1, Rec("other", "R3", 2 * kSecond), &out);
  EXPECT_EQ(out.emitted.size(), 1u);
}

TEST(StreamStreamJoinTest, ExpiryPrunesOldEntries) {
  FakeContext ctx;
  StreamStreamJoinOperator op(
      "j", 5 * kSecond,
      [](std::string_view l, std::string_view r) { return std::string(l); },
      0);
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("k", "L1", 1 * kSecond), &out);
  ctx.set_max_event_time(100 * kSecond);
  op.OnTimer(0, &out);
  // L1 is far outside any future window; a new right record can't match.
  op.Process(1, Rec("k", "R1", 100 * kSecond), &out);
  EXPECT_TRUE(out.emitted.empty());
  EXPECT_EQ(ctx.GetStore("j.left")->size(), 0u);
}

TEST(StreamTableJoinTest, StreamProbesTable) {
  FakeContext ctx;
  StreamTableJoinOperator op("tbl", [](std::string_view s,
                                       std::string_view t) {
    return std::string(s) + "@" + std::string(t);
  });
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("k", "s1"), &out);
  EXPECT_TRUE(out.emitted.empty()) << "no table row yet: inner join";
  op.Process(1, Rec("k", "row"), &out);
  op.Process(0, Rec("k", "s2"), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.value, "s2@row");
  // Tombstone removes the row.
  op.Process(1, Rec("k", ""), &out);
  op.Process(0, Rec("k", "s3"), &out);
  EXPECT_EQ(out.emitted.size(), 1u);
}

TEST(TableTableJoinTest, UpdatesFromEitherSideEmit) {
  FakeContext ctx;
  TableTableJoinOperator op("tt", [](std::string_view l,
                                     std::string_view r) {
    return std::string(l) + "|" + std::string(r);
  });
  op.Open(&ctx);
  CapturingCollector out;
  op.Process(0, Rec("k", "L1"), &out);
  EXPECT_TRUE(out.emitted.empty());
  op.Process(1, Rec("k", "R1"), &out);
  ASSERT_EQ(out.emitted.size(), 1u);
  EXPECT_EQ(out.emitted[0].second.value, "L1|R1");
  op.Process(0, Rec("k", "L2"), &out);
  ASSERT_EQ(out.emitted.size(), 2u);
  EXPECT_EQ(out.emitted[1].second.value, "L2|R1");
}

}  // namespace
}  // namespace impeller
