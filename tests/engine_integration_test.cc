// End-to-end engine tests on the word-count pipeline (paper Fig. 1/3):
// exactly-once output under normal operation, read-committed egress,
// duplicate-append suppression, garbage collection, and multi-stage flows.
#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

TEST(EngineIntegrationTest, WordCountExactlyOnce) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());

  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 50; ++i) {
    (*producer)->Send("line", "hello world hello");
  }
  ASSERT_TRUE((*producer)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/wc");
  // 150 aggregate updates (one per word instance).
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 150; }))
      << "only " << out->Get() << " sink outputs";
  engine.Stop();

  auto counts = ReadWordCounts(engine);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["hello"], 100);
  EXPECT_EQ((*counts)["world"], 50);
  EXPECT_GT(engine.metrics()->Histogram("lat/wc")->Count(), 0u);
}

TEST(EngineIntegrationTest, EgressIsReadCommitted) {
  // Before any marker covers them, sink outputs must be invisible to a
  // read-committed consumer.
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  options.config.commit_interval = 10 * kSecond;  // effectively never
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  (*producer)->Send("line", "alpha");
  ASSERT_TRUE((*producer)->Flush().ok());

  // The split stage cannot commit, so the count stage never sees the words,
  // let alone the egress consumer.
  MonotonicClock::Get()->SleepFor(200 * kMillisecond);
  auto consumer = engine.NewEgressConsumer("count", 0);
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->PollAll();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  engine.Stop();  // graceful stop commits the final cut

  records = (*consumer)->PollAll();
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(records->empty());
}

TEST(EngineIntegrationTest, DuplicateIngressAppendsCountOnce) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());

  (*producer)->Send("k", "dup");
  uint64_t seq = (*producer)->sent();
  // A gateway retry re-appends the same record (same producer seq, §3.5).
  (*producer)->SendDuplicate("k", "dup", 0, seq);
  (*producer)->Send("k", "dup");
  ASSERT_TRUE((*producer)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 2; }));
  MonotonicClock::Get()->SleepFor(100 * kMillisecond);
  engine.Stop();
  auto counts = ReadWordCounts(engine, 1);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["dup"], 2) << "retried append must count once";
}

TEST(EngineIntegrationTest, GarbageCollectionTrimsConsumedPrefix) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  options.config.enable_gc = true;
  options.config.gc_interval = 50 * kMillisecond;
  options.config.snapshot_interval = 100 * kMillisecond;
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 20; ++i) {
      (*producer)->Send("k", "w" + std::to_string(i));
    }
    ASSERT_TRUE((*producer)->Flush().ok());
    MonotonicClock::Get()->SleepFor(30 * kMillisecond);
  }
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 400; }));
  // GC needs a checkpoint (change-log floor) plus trims; give it a moment.
  ASSERT_TRUE(WaitFor([&] { return engine.log()->TrimPoint() > 0; },
                      5 * kSecond))
      << "GC never trimmed; registry floors: "
      << engine.tasks()->gc_registry()->sources();
  // The pipeline keeps functioning after trimming.
  (*producer)->Send("k", "after-trim");
  ASSERT_TRUE((*producer)->Flush().ok());
  uint64_t before = out->Get();
  ASSERT_TRUE(WaitFor([&] { return out->Get() > before; }));
  engine.Stop();
  EXPECT_GT(engine.log()->stats().records_trimmed, 0u);
}

TEST(EngineIntegrationTest, ThreeStageStatelessPipeline) {
  QueryBuilder qb("pipe");
  qb.Ingress("in");
  qb.AddStage("upper", 2)
      .ReadsFrom({"in"})
      .Map([](StreamRecord r) {
        for (auto& c : r.value) {
          c = static_cast<char>(std::toupper(c));
        }
        return r;
      })
      .WritesTo("mid");
  qb.AddStage("tag", 2)
      .ReadsFrom({"mid"})
      .Map([](StreamRecord r) {
        r.value = "[" + r.value + "]";
        return r;
      })
      .WritesTo("tagged");
  qb.AddStage("sinkstage", 1)
      .ReadsFrom({"tagged"})
      .Filter([](const StreamRecord& r) { return r.value != "[SKIP]"; })
      .Sink("pipe");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "in");
  ASSERT_TRUE(producer.ok());
  (*producer)->Send("a", "hello");
  (*producer)->Send("b", "skip");
  (*producer)->Send("c", "bye");
  ASSERT_TRUE((*producer)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/pipe");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 2; }));
  MonotonicClock::Get()->SleepFor(50 * kMillisecond);
  EXPECT_EQ(out->Get(), 2u);
  engine.Stop();

  auto consumer = engine.NewEgressConsumer("sinkstage", 0);
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->PollAll();
  ASSERT_TRUE(records.ok());
  std::set<std::string> values;
  for (const auto& r : *records) {
    values.insert(std::string(r.data.value));
  }
  EXPECT_TRUE(values.count("[HELLO]"));
  EXPECT_TRUE(values.count("[BYE]"));
  EXPECT_FALSE(values.count("[SKIP]"));
}

TEST(EngineIntegrationTest, StreamStreamJoinPipeline) {
  QueryBuilder qb("join");
  qb.Ingress("left").Ingress("right");
  qb.AddStage("kl", 1).ReadsFrom({"left"}).Map([](StreamRecord r) {
    return r;
  }).WritesTo("L");
  qb.AddStage("kr", 1).ReadsFrom({"right"}).Map([](StreamRecord r) {
    return r;
  }).WritesTo("R");
  qb.AddStage("joiner", 2)
      .ReadsFrom({"L", "R"})
      .JoinStreams("j", 5 * kSecond,
                   [](std::string_view l, std::string_view r) {
                     return std::string(l) + "+" + std::string(r);
                   })
      .Sink("join");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto left = engine.NewProducer("gl", "left");
  auto right = engine.NewProducer("gr", "right");
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  for (int i = 0; i < 10; ++i) {
    std::string key = "k" + std::to_string(i);
    (*left)->Send(key, "L" + std::to_string(i));
    (*right)->Send(key, "R" + std::to_string(i));
  }
  ASSERT_TRUE((*left)->Flush().ok());
  ASSERT_TRUE((*right)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/join");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 10; }))
      << "joined " << out->Get() << "/10";
  engine.Stop();
}

TEST(EngineIntegrationTest, MarkersStopWhenIdle) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  (*producer)->Send("k", "one word line");
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 3; }));
  MonotonicClock::Get()->SleepFor(200 * kMillisecond);

  TaskRuntime* split = engine.tasks()->FindTask("wc/split/0");
  ASSERT_NE(split, nullptr);
  uint64_t markers = split->markers_written();
  MonotonicClock::Get()->SleepFor(300 * kMillisecond);
  EXPECT_LE(split->markers_written() - markers, 1u)
      << "idle tasks must not spam markers";
  engine.Stop();
}

}  // namespace
}  // namespace impeller
