// Tests for the input-side buffering algorithm (paper §3.3.3): head-of-line
// blocking on unknown records, commit-event-driven draining, zombie-output
// discarding, and in-order delivery.
#include <gtest/gtest.h>

#include "src/core/commit_tracker.h"
#include "src/core/stream.h"
#include "src/core/substream_reader.h"

namespace impeller {
namespace {

class SubstreamReaderTest : public ::testing::Test {
 protected:
  void AppendData(const std::string& producer, uint64_t instance,
                  const std::string& value, uint64_t seq = 0) {
    static uint64_t auto_seq = 0;
    RecordHeader h;
    h.type = RecordType::kData;
    h.producer = producer;
    h.instance = instance;
    h.seq = seq != 0 ? seq : ++auto_seq;
    DataBody body;
    body.key = "k";
    body.value = value;
    body.event_time = 1;
    AppendRequest req;
    req.tags = {kTag};
    req.payload = EncodeEnvelope(h, EncodeDataBody(body));
    ASSERT_TRUE(log_.Append(std::move(req)).ok());
  }

  Lsn AppendMarker(const std::string& producer, uint64_t instance) {
    RecordHeader h;
    h.type = RecordType::kProgressMarker;
    h.producer = producer;
    h.instance = instance;
    h.seq = 1;
    ProgressMarker m;
    m.marker_seq = 1;
    AppendRequest req;
    req.tags = {kTag, TaskLogTag(producer)};
    req.payload = EncodeEnvelope(h, EncodeProgressMarker(m));
    auto lsn = log_.Append(std::move(req));
    EXPECT_TRUE(lsn.ok());
    return *lsn;
  }

  std::vector<ReadyRecord> PollAll(SubstreamReader& reader) {
    std::vector<ReadyRecord> out;
    SubstreamReader::Hooks hooks;
    auto n = reader.Poll(1024, &out, hooks);
    EXPECT_TRUE(n.ok()) << n.status().ToString();
    return out;
  }

  static constexpr const char* kTag = "d/X/0";
  SharedLog log_;
};

TEST_F(SubstreamReaderTest, IngressRecordsFlowImmediately) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("gen", kIngressInstance, "a");
  AppendData("gen", kIngressInstance, "b");
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.value, "a");
  EXPECT_EQ(out[1].data.value, "b");
  EXPECT_EQ(reader.committed_floor(), 1u);
}

TEST_F(SubstreamReaderTest, TaskRecordsWaitForMarker) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("up/0", 1, "a");
  AppendData("up/0", 1, "b");
  EXPECT_TRUE(PollAll(reader).empty()) << "uncommitted: buffered";
  EXPECT_EQ(reader.buffered(), 2u);

  AppendMarker("up/0", 1);
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.value, "a");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST_F(SubstreamReaderTest, HeadOfLineBlocksLaterCommittedRecords) {
  // Records from producer B behind an unknown record from producer A must
  // wait even once B commits (substream FIFO, §3.3.3).
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("A", 1, "a1");
  AppendData("B", 1, "b1");
  AppendMarker("B", 1);  // commits b1 but a1 is still unknown at the head
  auto out = PollAll(reader);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(reader.buffered(), 2u);

  AppendMarker("A", 1);
  out = PollAll(reader);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.value, "a1");
  EXPECT_EQ(out[1].data.value, "b1");
}

TEST_F(SubstreamReaderTest, ZombieOutputsAreDiscarded) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("up/0", 1, "committed");
  AppendMarker("up/0", 1);
  AppendData("up/0", 1, "orphan");  // written, never committed: crash
  AppendData("up/0", 2, "recovered");
  AppendMarker("up/0", 2);
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.value, "committed");
  EXPECT_EQ(out[1].data.value, "recovered");
}

TEST_F(SubstreamReaderTest, TxnCommitControlActsAsCommitEvent) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("up/0", 1, "a");
  RecordHeader h;
  h.type = RecordType::kTxnControl;
  h.producer = "up/0";
  h.instance = 1;
  h.seq = 99;
  TxnControlBody body;
  body.kind = TxnControlKind::kCommit;
  body.txn_id = 5;
  AppendRequest req;
  req.tags = {kTag};
  req.payload = EncodeEnvelope(h, EncodeTxnControlBody(body));
  ASSERT_TRUE(log_.Append(std::move(req)).ok());
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data.value, "a");
}

TEST_F(SubstreamReaderTest, DuplicateIngressAppendsSuppressed) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("gen", kIngressInstance, "x", /*seq=*/500);
  AppendData("gen", kIngressInstance, "x", /*seq=*/500);  // gateway retry
  AppendData("gen", kIngressInstance, "y", /*seq=*/501);
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data.value, "x");
  EXPECT_EQ(out[1].data.value, "y");
}

TEST_F(SubstreamReaderTest, RestoreSeedsCursorAndFloor) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("gen", kIngressInstance, "skipped");
  AppendData("gen", kIngressInstance, "read");
  reader.Restore(1, 0);
  auto out = PollAll(reader);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].data.value, "read");
  EXPECT_EQ(reader.committed_floor(), 1u);
}

TEST_F(SubstreamReaderTest, BarrierInvokesHookInOrder) {
  CommitTracker tracker(false);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("up/0", 1, "before");
  RecordHeader h;
  h.type = RecordType::kBarrier;
  h.producer = "up/0";
  h.instance = 1;
  h.seq = 1;
  BarrierBody body;
  body.checkpoint_id = 3;
  AppendRequest req;
  req.tags = {kTag};
  req.payload = EncodeEnvelope(h, EncodeBarrierBody(body));
  ASSERT_TRUE(log_.Append(std::move(req)).ok());
  AppendData("up/0", 1, "after");

  std::vector<ReadyRecord> out;
  size_t barrier_position = SIZE_MAX;
  uint64_t seen_id = 0;
  SubstreamReader::Hooks hooks;
  hooks.on_barrier = [&](uint32_t, const EnvelopeView&,
                         const BarrierBody& b, Lsn) {
    barrier_position = out.size();
    seen_id = b.checkpoint_id;
  };
  ASSERT_TRUE(reader.Poll(16, &out, hooks).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(seen_id, 3u);
  EXPECT_EQ(barrier_position, 1u)
      << "barrier fires between the surrounding records";
}

TEST_F(SubstreamReaderTest, TrimmedCursorSurfacesError) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  AppendData("gen", kIngressInstance, "a");
  AppendData("gen", kIngressInstance, "b");
  ASSERT_TRUE(log_.Trim(2).ok());
  std::vector<ReadyRecord> out;
  SubstreamReader::Hooks hooks;
  auto n = reader.Poll(16, &out, hooks);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kTrimmed);
}

TEST_F(SubstreamReaderTest, PollRespectsBatchLimit) {
  CommitTracker tracker(true);
  SubstreamReader reader(&log_, kTag, 0, &tracker, 0);
  for (int i = 0; i < 20; ++i) {
    AppendData("gen", kIngressInstance, std::to_string(i));
  }
  std::vector<ReadyRecord> out;
  SubstreamReader::Hooks hooks;
  auto n = reader.Poll(5, &out, hooks);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(out.size(), 5u);
}

}  // namespace
}  // namespace impeller
