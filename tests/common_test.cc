// Unit tests for src/common: status/result, serde, histogram, rng,
// rate limiter, blocking queue, hashing.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/arena.h"
#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/queue.h"
#include "src/common/rate_limiter.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/threading.h"

namespace impeller {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = FencedError("instance 3 superseded");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFenced);
  EXPECT_EQ(st.ToString(), "FENCED: instance 3 superseded");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(NotFoundError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// --- serde ---

TEST(SerdeTest, VarintRoundTripSmall) {
  const std::vector<uint64_t> values = {0,   1,          127,
                                        128, 300,        1ull << 32,
                                        UINT64_MAX};
  BinaryWriter w;
  for (uint64_t v : values) {
    w.WriteVarU64(v);
  }
  BinaryReader r(w.view());
  for (uint64_t v : values) {
    auto got = r.ReadVarU64();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

class SerdeSignedSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(SerdeSignedSweep, ZigZagRoundTrip) {
  BinaryWriter w;
  w.WriteVarI64(GetParam());
  BinaryReader r(w.view());
  auto got = r.ReadVarI64();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, SerdeSignedSweep,
                         ::testing::Values(0, 1, -1, 63, -64, 1234567,
                                           -1234567, INT64_MAX, INT64_MIN));

TEST(SerdeTest, StringsAndDoubles) {
  BinaryWriter w;
  w.WriteString("hello");
  w.WriteString(std::string(1000, 'x'));
  w.WriteDouble(3.14159);
  w.WriteString("");
  BinaryReader r(w.view());
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString()->size(), 1000u);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedInputReportsDataLoss) {
  BinaryWriter w;
  w.WriteString("hello world");
  std::string data = w.Take();
  BinaryReader r(std::string_view(data).substr(0, 4));
  auto got = r.ReadString();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(SerdeTest, CorruptVarintReportsDataLoss) {
  std::string bad(11, '\xff');  // never-terminating varint
  BinaryReader r(bad);
  auto got = r.ReadVarU64();
  ASSERT_FALSE(got.ok());
}

TEST(SerdeTest, RandomRoundTripProperty) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    uint64_t a = rng.NextU64();
    int64_t b = static_cast<int64_t>(rng.NextU64());
    std::string s(rng.NextBounded(64), static_cast<char>(rng.NextBounded(256)));
    BinaryWriter w;
    w.WriteVarU64(a);
    w.WriteVarI64(b);
    w.WriteString(s);
    BinaryReader r(w.view());
    EXPECT_EQ(*r.ReadVarU64(), a);
    EXPECT_EQ(*r.ReadVarI64(), b);
    EXPECT_EQ(*r.ReadString(), s);
  }
}

// --- histogram ---

TEST(SerdeTest, SinkModeAppendsToCallerBuffer) {
  std::string sink = "prefix-";
  {
    BinaryWriter w(&sink);
    w.WriteVarU64(300);
    w.WriteString("abc");
    EXPECT_EQ(w.view().substr(0, 7), "prefix-");
  }
  // Sink mode owns nothing: the bytes landed directly in the caller's
  // buffer and match what an owned writer would have produced.
  BinaryWriter owned;
  owned.WriteVarU64(300);
  owned.WriteString("abc");
  EXPECT_EQ(sink, "prefix-" + owned.Take());
}

TEST(SerdeTest, ViewAccessorTracksWrites) {
  BinaryWriter w;
  EXPECT_TRUE(w.view().empty());
  w.WriteString("hello");
  std::string_view before = w.view();
  EXPECT_FALSE(before.empty());
  EXPECT_EQ(before.size(), w.data().size());
}

TEST(SerdeTest, ReadStringViewAliasesInputAndMatchesReadString) {
  BinaryWriter w;
  w.WriteString("alpha");
  w.WriteString("");
  w.WriteString(std::string(500, 'z'));
  std::string data = w.Take();

  BinaryReader owning(data);
  BinaryReader viewing(data);
  for (int i = 0; i < 3; ++i) {
    auto o = owning.ReadString();
    auto v = viewing.ReadStringView();
    ASSERT_TRUE(o.ok());
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*o, *v);
    if (!v->empty()) {
      // The view aliases the input buffer — zero copy.
      EXPECT_GE(v->data(), data.data());
      EXPECT_LE(v->data() + v->size(), data.data() + data.size());
    }
  }
  EXPECT_TRUE(viewing.AtEnd());

  BinaryReader truncated(std::string_view(data).substr(0, 3));
  auto bad = truncated.ReadStringView();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

TEST(ArenaTest, BumpAllocAndReset) {
  Arena arena(64);
  EXPECT_EQ(arena.bytes_used(), 0u);
  char* a = arena.Alloc(16);
  char* b = arena.Alloc(16);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_used(), 32u);

  std::string_view copied = arena.CopyString("record-key");
  EXPECT_EQ(copied, "record-key");

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Capacity survives Reset: the next epoch reuses the same block.
  size_t reserved = arena.bytes_reserved();
  char* c = arena.Alloc(16);
  EXPECT_EQ(c, a) << "reset arena must reuse its first block";
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, GrowsThenConvergesToOneBlock) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) {
    arena.Alloc(64);
  }
  EXPECT_GT(arena.blocks(), 1u);
  size_t peak = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.blocks(), 1u) << "reset keeps only the largest block";
  EXPECT_LE(arena.bytes_reserved(), peak);
  // A same-sized epoch may still grow (only the largest block was kept),
  // but repeated epochs converge on an allocation-free steady state.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 100; ++i) {
      arena.Alloc(64);
    }
    arena.Reset();
  }
  size_t settled = arena.bytes_reserved();
  for (int i = 0; i < 100; ++i) {
    arena.Alloc(64);
  }
  EXPECT_EQ(arena.blocks(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), settled);
}

TEST(ArenaTest, EmptyStringCopyAllocatesNothing) {
  Arena arena;
  std::string_view v = arena.CopyString("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(StringPoolTest, RecyclesCapacity) {
  StringPool pool;
  std::string s = pool.Acquire();
  s.assign(256, 'x');
  const char* data_ptr = s.data();
  size_t cap = s.capacity();
  pool.Release(std::move(s));
  EXPECT_EQ(pool.pooled(), 1u);

  std::string t = pool.Acquire();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.data(), data_ptr) << "acquire must return the pooled buffer";
  EXPECT_GE(t.capacity(), cap);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(StringPoolTest, TrimBoundsIdleCapacity) {
  StringPool pool;
  for (int i = 0; i < 10; ++i) {
    std::string s(128, 'y');
    pool.Release(std::move(s));
  }
  EXPECT_EQ(pool.pooled(), 10u);
  pool.Trim(4);
  EXPECT_EQ(pool.pooled(), 4u);
}

TEST(StringPoolTest, MaxPooledBoundsTheFreeList) {
  StringPool pool(2);
  for (int i = 0; i < 5; ++i) {
    pool.Release(std::string(64, 'a'));
  }
  EXPECT_EQ(pool.pooled(), 2u) << "max_pooled bounds the pool";
}

TEST(HistogramTest, PercentilesOfUniformSamples) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(i * 1000);  // 1us .. 10ms
  }
  EXPECT_EQ(h.Count(), 10000u);
  // Log-bucketed: ~3% relative error budget.
  EXPECT_NEAR(static_cast<double>(h.p50()), 5e6, 5e6 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9.9e6, 9.9e6 * 0.05);
  EXPECT_GE(h.Max(), 9'999'000);
  EXPECT_LE(h.Min(), 2000);
}

TEST(HistogramTest, MergePreservesCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.Record(1000);
    b.Record(100000);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_GT(a.p99(), 50000);
}

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, FormatDuration) {
  EXPECT_EQ(FormatDurationNs(500), "500ns");
  EXPECT_EQ(FormatDurationNs(1500), "1.5us");
  EXPECT_EQ(FormatDurationNs(2'710'000), "2.71ms");
  EXPECT_EQ(FormatDurationNs(3'000'000'000), "3.00s");
}

TEST(HistogramTest, ConcurrentRecording) {
  LatencyHistogram h;
  std::vector<JoiningThread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) {
        h.Record(1000 + i);
      }
    });
  }
  threads.clear();
  EXPECT_EQ(h.Count(), 40000u);
}

// --- rng ---

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, LogNormalMedianApproximatelyCorrect) {
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.NextLogNormal(1000.0, 0.2));
  }
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 1000.0, 30.0);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  ZipfGenerator zipf(1000, 1.0);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) {
      low++;
    }
  }
  // With exponent 1.0, the top-1% of ranks should hold far more than 1% of
  // the mass.
  EXPECT_GT(low, total / 20);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(13);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// --- rate limiter ---

TEST(RateLimiterTest, PacesWithManualClock) {
  ManualClock clock;
  RateLimiter limiter(1000.0, &clock);  // 1 event per ms
  EXPECT_EQ(limiter.AvailableNow(), 0);
  clock.Advance(10 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(limiter.AvailableNow()), 10.0, 1.0);
}

TEST(RateLimiterTest, BurstIsCapped) {
  ManualClock clock;
  RateLimiter limiter(1000.0, &clock, /*max_burst=*/16);
  clock.Advance(10 * kSecond);
  EXPECT_LE(limiter.AvailableNow(), 16);
}

TEST(RateLimiterTest, UnlimitedNeverBlocks) {
  ManualClock clock;
  RateLimiter limiter(0.0, &clock);
  limiter.Acquire(1000000);  // must not hang
}

// --- queue ---

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(QueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));
  EXPECT_EQ(*q.Pop(), 7);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(QueueTest, CapacityBlocksTryPush) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(QueueTest, ProducerConsumerAcrossThreads) {
  BlockingQueue<int> q(8);
  int64_t sum = 0;
  JoiningThread consumer([&] {
    while (auto v = q.Pop()) {
      sum += *v;
    }
  });
  for (int i = 1; i <= 100; ++i) {
    q.Push(i);
  }
  q.Close();
  consumer.Join();
  EXPECT_EQ(sum, 5050);
}

// --- hash ---

TEST(HashTest, PartitionIsStableAndInRange) {
  for (uint32_t n : {1u, 2u, 7u, 64u}) {
    EXPECT_EQ(PartitionFor(Fnv1a("hello"), n), PartitionFor(Fnv1a("hello"), n));
    EXPECT_LT(PartitionFor(Fnv1a("hello"), n), n);
  }
}

TEST(HashTest, PartitionSpreadsKeys) {
  std::set<uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(PartitionFor(Fnv1a("key" + std::to_string(i)), 8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace impeller
