// Tests for the recovery machinery: cut extraction, change-log replay across
// instances (§3.3.4), snapshot codecs, and the asynchronous checkpoint
// worker (§3.5).
#include <gtest/gtest.h>

#include "src/core/checkpoint.h"
#include "src/core/stream.h"

namespace impeller {
namespace {

constexpr const char* kTask = "q/stage/0";

class CheckpointTest : public ::testing::Test {
 protected:
  Lsn AppendChange(uint64_t instance, const std::string& key,
                   const std::string& value, bool is_delete = false) {
    RecordHeader h;
    h.type = RecordType::kChangeLog;
    h.producer = kTask;
    h.instance = instance;
    h.seq = ++seq_;
    ChangeLogBody body{"agg", key, is_delete, value};
    AppendRequest req;
    req.tags = {ChangeLogTag(kTask)};
    req.payload = EncodeEnvelope(h, EncodeChangeLogBody(body));
    auto lsn = log_.Append(std::move(req));
    EXPECT_TRUE(lsn.ok());
    return *lsn;
  }

  Lsn AppendMarker(uint64_t instance, uint64_t marker_seq) {
    RecordHeader h;
    h.type = RecordType::kProgressMarker;
    h.producer = kTask;
    h.instance = instance;
    h.seq = ++seq_;
    ProgressMarker m;
    m.marker_seq = marker_seq;
    m.input_ends = {{"d/in/0", 100 + marker_seq}};
    AppendRequest req;
    req.tags = {ChangeLogTag(kTask), TaskLogTag(kTask)};
    req.payload = EncodeEnvelope(h, EncodeProgressMarker(m));
    auto lsn = log_.Append(std::move(req));
    EXPECT_TRUE(lsn.ok());
    return *lsn;
  }

  SharedLog log_;
  uint64_t seq_ = 0;
};

TEST_F(CheckpointTest, ExtractCutFromMarker) {
  Lsn lsn = AppendMarker(2, 7);
  auto entry = log_.ReadAt(lsn);
  ASSERT_TRUE(entry.ok());
  auto env = DecodeEnvelope(entry->payload);
  ASSERT_TRUE(env.ok());
  auto cut = ExtractCut(*env, lsn, kTask);
  ASSERT_TRUE(cut.ok());
  ASSERT_TRUE(cut->has_value());
  EXPECT_EQ((*cut)->instance, 2u);
  EXPECT_EQ((*cut)->marker_seq, 7u);
  EXPECT_EQ((*cut)->lsn, lsn);

  // Another task's marker is not a cut for us.
  auto other = ExtractCut(*env, lsn, "other/task/1");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->has_value());
}

TEST_F(CheckpointTest, ReplayAppliesCommittedChanges) {
  AppendChange(1, "a", "1");
  AppendChange(1, "b", "2");
  Lsn cut1 = AppendMarker(1, 1);
  AppendChange(1, "a", "3");
  Lsn cut2 = AppendMarker(1, 2);
  AppendChange(1, "c", "9");  // uncommitted suffix: must not apply

  MapStateStore store("agg", nullptr);
  auto stats = ReplayChangelog(&log_, kTask, 0, cut2, 0,
                               [&](const ChangeLogView& c) {
                                 store.ApplyChange(c);
                               });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(*store.Get("a"), "3");
  EXPECT_EQ(*store.Get("b"), "2");
  EXPECT_FALSE(store.Get("c").has_value());
  EXPECT_EQ(stats->changes_applied, 3u);
  EXPECT_EQ(stats->next_lsn, cut2 + 1);
  (void)cut1;
}

TEST_F(CheckpointTest, ReplayDropsSupersededInstanceChanges) {
  AppendChange(1, "a", "1");
  Lsn cut1 = AppendMarker(1, 1);
  AppendChange(1, "a", "ZOMBIE");  // instance 1 crashed after this
  AppendChange(2, "b", "2");       // instance 2 recovered and continued
  Lsn cut2 = AppendMarker(2, 2);

  MapStateStore store("agg", nullptr);
  auto stats = ReplayChangelog(&log_, kTask, 0, cut2, 0,
                               [&](const ChangeLogView& c) {
                                 store.ApplyChange(c);
                               });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(*store.Get("a"), "1") << "zombie change must not apply";
  EXPECT_EQ(*store.Get("b"), "2");
  (void)cut1;
}

TEST_F(CheckpointTest, ReplayFromMidpointSkipsPrefix) {
  AppendChange(1, "a", "1");
  Lsn cut1 = AppendMarker(1, 1);
  AppendChange(1, "b", "2");
  Lsn cut2 = AppendMarker(1, 2);

  MapStateStore store("agg", nullptr);
  auto stats = ReplayChangelog(&log_, kTask, cut1 + 1, cut2, 0,
                               [&](const ChangeLogView& c) {
                                 store.ApplyChange(c);
                               });
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(store.Get("a").has_value());
  EXPECT_EQ(*store.Get("b"), "2");
}

TEST_F(CheckpointTest, ReplayToInvalidCutIsEmpty) {
  MapStateStore store("agg", nullptr);
  auto stats = ReplayChangelog(&log_, kTask, 0, kInvalidLsn, 0,
                               [&](const ChangeLogView&) { FAIL(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->entries_read, 0u);
}

TEST(SnapshotCodecTest, RoundTrip) {
  std::map<std::string, std::string> sections{
      {"store/agg", "blob-a"}, {"seqmap", "blob-b"}, {"cursors", ""}};
  auto decoded = DecodeSnapshot(EncodeSnapshot(sections));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, sections);
  EXPECT_FALSE(DecodeSnapshot("\xff\xff junk").ok());
}

TEST(CheckpointMetaTest, RoundTrip) {
  CheckpointMeta meta;
  meta.cut_lsn = 123;
  meta.next_replay_lsn = 124;
  meta.marker_seq = 9;
  auto got = DecodeCheckpointMeta(EncodeCheckpointMeta(meta));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->cut_lsn, 123u);
  EXPECT_EQ(got->next_replay_lsn, 124u);
  EXPECT_EQ(got->marker_seq, 9u);
}

TEST_F(CheckpointTest, WorkerBuildsCheckpointFromChangelog) {
  KvStore store;
  CheckpointWorker worker(&log_, &store, MonotonicClock::Get(),
                          /*interval=*/kSecond, /*gc=*/nullptr);
  worker.RegisterTask(kTask);

  AppendChange(1, "x", "1");
  AppendChange(1, "y", "2");
  Lsn cut = AppendMarker(1, 1);
  worker.RunOnce();
  EXPECT_EQ(worker.checkpoints_written(), 1u);

  auto meta_raw = store.Get(CheckpointMetaKey(kTask));
  ASSERT_TRUE(meta_raw.ok());
  auto meta = DecodeCheckpointMeta(*meta_raw);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->cut_lsn, cut);
  EXPECT_EQ(meta->next_replay_lsn, cut + 1);

  auto blob = store.Get(CheckpointBlobKey(kTask));
  ASSERT_TRUE(blob.ok());
  auto sections = DecodeSnapshot(*blob);
  ASSERT_TRUE(sections.ok());
  MapStateStore restored("agg", nullptr);
  ASSERT_TRUE(restored.RestoreSnapshot(sections->at("store/agg")).ok());
  EXPECT_EQ(*restored.Get("x"), "1");
  EXPECT_EQ(*restored.Get("y"), "2");

  // No new cut -> no new checkpoint.
  worker.RunOnce();
  EXPECT_EQ(worker.checkpoints_written(), 1u);

  // More committed changes -> incremental checkpoint.
  AppendChange(1, "x", "10");
  AppendMarker(1, 2);
  worker.RunOnce();
  EXPECT_EQ(worker.checkpoints_written(), 2u);
  blob = store.Get(CheckpointBlobKey(kTask));
  sections = DecodeSnapshot(*blob);
  ASSERT_TRUE(restored.RestoreSnapshot(sections->at("store/agg")).ok());
  EXPECT_EQ(*restored.Get("x"), "10");
}

TEST_F(CheckpointTest, WorkerIgnoresUncommittedSuffix) {
  KvStore store;
  CheckpointWorker worker(&log_, &store, MonotonicClock::Get(), kSecond,
                          nullptr);
  worker.RegisterTask(kTask);
  AppendChange(1, "x", "1");
  worker.RunOnce();
  EXPECT_EQ(worker.checkpoints_written(), 0u)
      << "no cut yet: nothing to checkpoint";
}

}  // namespace
}  // namespace impeller
