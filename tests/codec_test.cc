// Round-trip and corruption tests for record envelopes, progress markers,
// transaction control records, barriers, and NEXMark event codecs.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/marker.h"
#include "src/core/record.h"
#include "src/core/state_store.h"
#include "src/core/stream.h"
#include "src/nexmark/events.h"

namespace impeller {
namespace {

TEST(TagTest, TagNamesAreDistinctPerRole) {
  EXPECT_EQ(DataTag("X", 2), "d/X/2");
  EXPECT_EQ(TaskLogTag("q/s/1"), "t/q/s/1");
  EXPECT_EQ(ChangeLogTag("q/s/1"), "c/q/s/1");
  EXPECT_EQ(InstanceMetaKey("q/s/1"), "inst/q/s/1");
  EXPECT_EQ(MakeTaskId("q5", "win", 3), "q5/win/3");
}

TEST(EnvelopeTest, RoundTrip) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q1/map/0";
  h.instance = 7;
  h.seq = 12345;
  std::string payload = EncodeEnvelope(h, "body-bytes");
  auto env = DecodeEnvelope(payload);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->header.type, RecordType::kData);
  EXPECT_EQ(env->header.producer, "q1/map/0");
  EXPECT_EQ(env->header.instance, 7u);
  EXPECT_EQ(env->header.seq, 12345u);
  EXPECT_EQ(env->body, "body-bytes");
}

TEST(EnvelopeTest, RejectsUnknownType) {
  std::string payload = EncodeEnvelope(
      {RecordType::kData, "p", 0, 0}, "x");
  payload[0] = 99;
  EXPECT_FALSE(DecodeEnvelope(payload).ok());
}

TEST(EnvelopeTest, RejectsTruncation) {
  RecordHeader h;
  h.producer = "task";
  std::string payload = EncodeEnvelope(h, "body");
  for (size_t cut : {size_t(0), size_t(1), size_t(3)}) {
    EXPECT_FALSE(DecodeEnvelope(std::string_view(payload).substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(DataBodyTest, RoundTripWithEventTime) {
  DataBody body;
  body.key = "auction-42";
  body.value = std::string(500, 'v');
  body.event_time = 1234567890123456789;
  auto got = DecodeDataBody(EncodeDataBody(body));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->key, body.key);
  EXPECT_EQ(got->value, body.value);
  EXPECT_EQ(got->event_time, body.event_time);
}

TEST(ChangeLogBodyTest, PutAndDeleteRoundTrip) {
  ChangeLogBody put{"agg", "word", false, "7"};
  auto got = DecodeChangeLogBody(EncodeChangeLogBody(put));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->store, "agg");
  EXPECT_EQ(got->key, "word");
  EXPECT_FALSE(got->is_delete);
  EXPECT_EQ(got->value, "7");

  ChangeLogBody del{"agg", "word", true, ""};
  got = DecodeChangeLogBody(EncodeChangeLogBody(del));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->is_delete);
}

TEST(ChangeLogBodyTest, PreOwnershipBodiesDecodeAsUnowned) {
  // Changelog records persisted before the owner-substream field existed
  // end right after the value (or the delete flag); recovery over such a
  // log must decode them as unowned, not fail.
  BinaryWriter put(32);
  put.WriteString("agg");
  put.WriteString("word");
  put.WriteBool(false);
  put.WriteString("7");
  auto got = DecodeChangeLogBody(put.Take());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->store, "agg");
  EXPECT_EQ(got->value, "7");
  EXPECT_EQ(got->substream, kUnownedSubstream);

  BinaryWriter del(32);
  del.WriteString("agg");
  del.WriteString("word");
  del.WriteBool(true);
  got = DecodeChangeLogBody(del.Take());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->is_delete);
  EXPECT_EQ(got->substream, kUnownedSubstream);
}

TEST(MarkerTest, FullRoundTrip) {
  ProgressMarker m;
  m.marker_seq = 42;
  m.input_ends = {{"d/X/0", 100}, {"d/Y/0", kInvalidLsn}};
  m.outputs_from = 90;
  m.changelog_from = 95;
  m.has_checkpoint = true;
  m.checkpoint_seq = 40;
  auto got = DecodeProgressMarker(EncodeProgressMarker(m));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->marker_seq, 42u);
  ASSERT_EQ(got->input_ends.size(), 2u);
  EXPECT_EQ(got->input_ends[0].first, "d/X/0");
  EXPECT_EQ(got->input_ends[0].second, 100u);
  EXPECT_EQ(got->input_ends[1].second, kInvalidLsn);
  EXPECT_EQ(got->outputs_from, 90u);
  EXPECT_EQ(got->changelog_from, 95u);
  EXPECT_TRUE(got->has_checkpoint);
  EXPECT_EQ(got->checkpoint_seq, 40u);
}

TEST(MarkerTest, CompactEncodingIsSmall) {
  // §3.5: one LSN per range suffices. A typical marker with two output
  // substreams should stay within a few dozen bytes.
  ProgressMarker m;
  m.marker_seq = 1000;
  m.input_ends = {{"d/X/0", 123456}};
  m.outputs_from = 123400;
  m.changelog_from = 123410;
  EXPECT_LT(EncodeProgressMarker(m).size(), 48u);
}

TEST(TxnControlTest, RoundTripAllKinds) {
  for (TxnControlKind kind :
       {TxnControlKind::kRegistration, TxnControlKind::kPreCommit,
        TxnControlKind::kCommit, TxnControlKind::kTxnCommitted,
        TxnControlKind::kAbort}) {
    TxnControlBody body;
    body.kind = kind;
    body.txn_id = 77;
    body.input_ends = {{"d/A/1", 9}};
    body.changelog_from = 5;
    auto got = DecodeTxnControlBody(EncodeTxnControlBody(body));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->kind, kind);
    EXPECT_EQ(got->txn_id, 77u);
    ASSERT_EQ(got->input_ends.size(), 1u);
    EXPECT_EQ(got->input_ends[0].second, 9u);
  }
}

TEST(BarrierTest, RoundTrip) {
  BarrierBody body;
  body.checkpoint_id = 13;
  auto got = DecodeBarrierBody(EncodeBarrierBody(body));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->checkpoint_id, 13u);
}

TEST(CompositeKeyTest, RoundTripAndOrdering) {
  std::string a = EncodeCompositeKey("key", 1);
  std::string b = EncodeCompositeKey("key", 2);
  std::string c = EncodeCompositeKey("key", 1ull << 40);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c) << "big-endian suffix preserves numeric order";
  auto decoded = DecodeCompositeKey(c);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, "key");
  EXPECT_EQ(decoded->second, 1ull << 40);
  EXPECT_FALSE(DecodeCompositeKey("short").ok());
}

TEST(CompositeKeyTest, PrefixScanBoundary) {
  // Keys sharing a prefix but different suffixes group under "<key>\0".
  std::string k1 = EncodeCompositeKey("ab", 5);
  EXPECT_EQ(k1.substr(0, 3), std::string("ab\0", 3));
}

TEST(NexmarkCodecTest, PersonRoundTrip) {
  Person p;
  p.id = 55;
  p.name = "Kate Jones";
  p.email = "kate@example.com";
  p.credit_card = "1234";
  p.city = "Boise";
  p.state = "ID";
  p.date_time = 999;
  p.extra = std::string(100, 'x');
  auto got = DecodePerson(EncodePerson(p));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id, 55u);
  EXPECT_EQ(got->state, "ID");
  EXPECT_EQ(got->extra.size(), 100u);
}

TEST(NexmarkCodecTest, AuctionRoundTrip) {
  Auction a;
  a.id = 77;
  a.item_name = "figurine";
  a.initial_bid = 100;
  a.reserve = 500;
  a.seller = 12;
  a.category = 13;
  a.expires = 1000000;
  auto got = DecodeAuction(EncodeAuction(a));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id, 77u);
  EXPECT_EQ(got->seller, 12u);
  EXPECT_EQ(got->category, 13u);
}

TEST(NexmarkCodecTest, BidRoundTripAndCorruption) {
  Bid b;
  b.auction = 9;
  b.bidder = 3;
  b.price = 4242;
  b.channel = "Apple";
  b.url = "https://x";
  auto got = DecodeBid(EncodeBid(b));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->price, 4242);
  EXPECT_FALSE(DecodeBid("garbage").ok());
}

// --- zero-copy view decoders (DESIGN.md §12) ---
// The view decoders must be drop-in equivalents of the owning ones: same
// fields on success, same kDataLoss verdict on every truncated or corrupt
// input. Each case decodes both ways and cross-checks, then sweeps every
// proper prefix of the encoding asserting the two paths agree bit-for-bit
// on ok()/code().

template <typename OwningFn, typename ViewFn>
void ExpectSameVerdictOnEveryPrefix(std::string_view enc, OwningFn owning,
                                    ViewFn view) {
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    std::string_view prefix = enc.substr(0, cut);
    auto o = owning(prefix);
    auto v = view(prefix);
    EXPECT_EQ(o.ok(), v.ok()) << "cut=" << cut;
    if (!o.ok() && !v.ok()) {
      EXPECT_EQ(o.status().code(), v.status().code()) << "cut=" << cut;
    }
  }
}

TEST(ViewEquivalenceTest, EnvelopeOwningAndViewAgree) {
  RecordHeader h;
  h.type = RecordType::kChangeLog;
  h.producer = "q4/agg/2";
  h.instance = 9;
  h.seq = 777;
  std::string enc = EncodeEnvelope(h, "payload-body");
  auto owning = DecodeEnvelope(enc);
  auto view = DecodeEnvelopeView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->type, owning->header.type);
  EXPECT_EQ(view->producer, owning->header.producer);
  EXPECT_EQ(view->instance, owning->header.instance);
  EXPECT_EQ(view->seq, owning->header.seq);
  EXPECT_EQ(view->body, owning->body);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodeEnvelope(s); },
      [](std::string_view s) { return DecodeEnvelopeView(s); });
  // Truncating inside the header is data loss for both paths.
  EXPECT_EQ(DecodeEnvelope(std::string_view(enc).substr(0, 2)).status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(
      DecodeEnvelopeView(std::string_view(enc).substr(0, 2)).status().code(),
      StatusCode::kDataLoss);
}

TEST(ViewEquivalenceTest, DataBodyOwningAndViewAgree) {
  DataBody body;
  body.key = "auction-77";
  body.value = std::string(300, 'q');
  body.event_time = -5;  // negative event times must survive zig-zag
  std::string enc = EncodeDataBody(body);
  auto owning = DecodeDataBody(enc);
  auto view = DecodeDataView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->key, owning->key);
  EXPECT_EQ(view->value, owning->value);
  EXPECT_EQ(view->event_time, owning->event_time);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodeDataBody(s); },
      [](std::string_view s) { return DecodeDataView(s); });
  // Every proper prefix truncates a field: kDataLoss on both paths.
  EXPECT_EQ(
      DecodeDataBody(std::string_view(enc).substr(0, enc.size() - 1))
          .status()
          .code(),
      StatusCode::kDataLoss);
  EXPECT_EQ(DecodeDataView(std::string_view(enc).substr(0, enc.size() - 1))
                .status()
                .code(),
            StatusCode::kDataLoss);
}

TEST(ViewEquivalenceTest, ChangeLogOwningAndViewAgree) {
  ChangeLogBody body{"counts", "word-7", false, std::string(64, 'c')};
  std::string enc = EncodeChangeLogBody(body);
  auto owning = DecodeChangeLogBody(enc);
  auto view = DecodeChangeLogView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->store, owning->store);
  EXPECT_EQ(view->key, owning->key);
  EXPECT_EQ(view->is_delete, owning->is_delete);
  EXPECT_EQ(view->value, owning->value);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodeChangeLogBody(s); },
      [](std::string_view s) { return DecodeChangeLogView(s); });
}

TEST(ViewEquivalenceTest, NexmarkPersonOwningAndViewAgree) {
  Person p;
  p.id = 12;
  p.name = "Ada";
  p.email = "ada@example.com";
  p.credit_card = "9999";
  p.city = "Lodi";
  p.state = "CA";
  p.date_time = 4242;
  p.extra = std::string(33, 'e');
  std::string enc = EncodePerson(p);
  auto owning = DecodePerson(enc);
  auto view = DecodePersonView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->id, owning->id);
  EXPECT_EQ(view->name, owning->name);
  EXPECT_EQ(view->email, owning->email);
  EXPECT_EQ(view->credit_card, owning->credit_card);
  EXPECT_EQ(view->city, owning->city);
  EXPECT_EQ(view->state, owning->state);
  EXPECT_EQ(view->date_time, owning->date_time);
  EXPECT_EQ(view->extra, owning->extra);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodePerson(s); },
      [](std::string_view s) { return DecodePersonView(s); });
}

TEST(ViewEquivalenceTest, NexmarkAuctionOwningAndViewAgree) {
  Auction a;
  a.id = 501;
  a.item_name = "teapot";
  a.description = "short spout";
  a.initial_bid = 10;
  a.reserve = 99;
  a.date_time = 1111;
  a.expires = 2222;
  a.seller = 3;
  a.category = 14;
  a.extra = "x";
  std::string enc = EncodeAuction(a);
  auto owning = DecodeAuction(enc);
  auto view = DecodeAuctionView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->id, owning->id);
  EXPECT_EQ(view->item_name, owning->item_name);
  EXPECT_EQ(view->description, owning->description);
  EXPECT_EQ(view->initial_bid, owning->initial_bid);
  EXPECT_EQ(view->reserve, owning->reserve);
  EXPECT_EQ(view->date_time, owning->date_time);
  EXPECT_EQ(view->expires, owning->expires);
  EXPECT_EQ(view->seller, owning->seller);
  EXPECT_EQ(view->category, owning->category);
  EXPECT_EQ(view->extra, owning->extra);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodeAuction(s); },
      [](std::string_view s) { return DecodeAuctionView(s); });
}

TEST(ViewEquivalenceTest, NexmarkBidOwningAndViewAgree) {
  Bid b;
  b.auction = 9;
  b.bidder = 3;
  b.price = 4242;
  b.channel = "Apple";
  b.url = "https://x";
  b.date_time = 515;
  b.extra = "tail";
  std::string enc = EncodeBid(b);
  auto owning = DecodeBid(enc);
  auto view = DecodeBidView(enc);
  ASSERT_TRUE(owning.ok());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->auction, owning->auction);
  EXPECT_EQ(view->bidder, owning->bidder);
  EXPECT_EQ(view->price, owning->price);
  EXPECT_EQ(view->channel, owning->channel);
  EXPECT_EQ(view->url, owning->url);
  EXPECT_EQ(view->date_time, owning->date_time);
  EXPECT_EQ(view->extra, owning->extra);
  ExpectSameVerdictOnEveryPrefix(
      enc, [](std::string_view s) { return DecodeBid(s); },
      [](std::string_view s) { return DecodeBidView(s); });
}

TEST(ViewEquivalenceTest, CorruptLengthPrefixIsDataLossOnBothPaths) {
  // Inflate the first varint length prefix (key length) far past the
  // buffer: both decoders must refuse with kDataLoss instead of reading
  // out of bounds.
  DataBody body{"k", "v", 1};
  std::string enc = EncodeDataBody(body);
  enc[0] = '\x7f';
  EXPECT_EQ(DecodeDataBody(enc).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodeDataView(enc).status().code(), StatusCode::kDataLoss);

  ChangeLogBody change{"s", "k", false, "v"};
  std::string cenc = EncodeChangeLogBody(change);
  cenc[0] = '\x7f';
  EXPECT_EQ(DecodeChangeLogBody(cenc).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodeChangeLogView(cenc).status().code(), StatusCode::kDataLoss);
}

TEST(AppendEncoderTest, AppendModeMatchesOwningEncodersByteForByte) {
  // The zero-copy flush path serializes with the Append* encoders into a
  // shared buffer; the wire format must stay identical to the owning
  // Encode* helpers the rest of the system (and the log) was built on.
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q1/map/0";
  h.instance = 4;
  h.seq = 99;
  DataBody body{"key-1", "value-1", 123456789};
  std::string owned = EncodeEnvelope(h, EncodeDataBody(body));

  std::string sink;
  BinaryWriter w(&sink);
  AppendEnvelopeHeader(w, h.type, h.producer, h.instance, h.seq);
  AppendDataBody(w, body.key, body.value, body.event_time);
  EXPECT_EQ(sink, owned);

  ChangeLogBody change{"store", "key", true, ""};
  std::string owned_change = EncodeChangeLogBody(change);
  std::string change_sink;
  BinaryWriter cw(&change_sink);
  AppendChangeLogBody(
      cw, ChangeLogView{change.store, change.key, change.is_delete,
                        change.value});
  EXPECT_EQ(change_sink, owned_change);
}

TEST(CodecFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    std::string junk(rng.NextBounded(64), '\0');
    for (auto& c : junk) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    (void)DecodeEnvelope(junk);
    (void)DecodeProgressMarker(junk);
    (void)DecodeTxnControlBody(junk);
    (void)DecodeDataBody(junk);
    (void)DecodeChangeLogBody(junk);
    (void)DecodeBid(junk);
    (void)DecodeAuction(junk);
    (void)DecodePerson(junk);
    (void)DecodeEnvelopeView(junk);
    (void)DecodeDataView(junk);
    (void)DecodeChangeLogView(junk);
    (void)DecodeBidView(junk);
    (void)DecodeAuctionView(junk);
    (void)DecodePersonView(junk);
  }
}

}  // namespace
}  // namespace impeller
