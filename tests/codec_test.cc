// Round-trip and corruption tests for record envelopes, progress markers,
// transaction control records, barriers, and NEXMark event codecs.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/marker.h"
#include "src/core/record.h"
#include "src/core/state_store.h"
#include "src/core/stream.h"
#include "src/nexmark/events.h"

namespace impeller {
namespace {

TEST(TagTest, TagNamesAreDistinctPerRole) {
  EXPECT_EQ(DataTag("X", 2), "d/X/2");
  EXPECT_EQ(TaskLogTag("q/s/1"), "t/q/s/1");
  EXPECT_EQ(ChangeLogTag("q/s/1"), "c/q/s/1");
  EXPECT_EQ(InstanceMetaKey("q/s/1"), "inst/q/s/1");
  EXPECT_EQ(MakeTaskId("q5", "win", 3), "q5/win/3");
}

TEST(EnvelopeTest, RoundTrip) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q1/map/0";
  h.instance = 7;
  h.seq = 12345;
  std::string payload = EncodeEnvelope(h, "body-bytes");
  auto env = DecodeEnvelope(payload);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->header.type, RecordType::kData);
  EXPECT_EQ(env->header.producer, "q1/map/0");
  EXPECT_EQ(env->header.instance, 7u);
  EXPECT_EQ(env->header.seq, 12345u);
  EXPECT_EQ(env->body, "body-bytes");
}

TEST(EnvelopeTest, RejectsUnknownType) {
  std::string payload = EncodeEnvelope(
      {RecordType::kData, "p", 0, 0}, "x");
  payload[0] = 99;
  EXPECT_FALSE(DecodeEnvelope(payload).ok());
}

TEST(EnvelopeTest, RejectsTruncation) {
  RecordHeader h;
  h.producer = "task";
  std::string payload = EncodeEnvelope(h, "body");
  for (size_t cut : {size_t(0), size_t(1), size_t(3)}) {
    EXPECT_FALSE(DecodeEnvelope(std::string_view(payload).substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(DataBodyTest, RoundTripWithEventTime) {
  DataBody body;
  body.key = "auction-42";
  body.value = std::string(500, 'v');
  body.event_time = 1234567890123456789;
  auto got = DecodeDataBody(EncodeDataBody(body));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->key, body.key);
  EXPECT_EQ(got->value, body.value);
  EXPECT_EQ(got->event_time, body.event_time);
}

TEST(ChangeLogBodyTest, PutAndDeleteRoundTrip) {
  ChangeLogBody put{"agg", "word", false, "7"};
  auto got = DecodeChangeLogBody(EncodeChangeLogBody(put));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->store, "agg");
  EXPECT_EQ(got->key, "word");
  EXPECT_FALSE(got->is_delete);
  EXPECT_EQ(got->value, "7");

  ChangeLogBody del{"agg", "word", true, ""};
  got = DecodeChangeLogBody(EncodeChangeLogBody(del));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->is_delete);
}

TEST(MarkerTest, FullRoundTrip) {
  ProgressMarker m;
  m.marker_seq = 42;
  m.input_ends = {{"d/X/0", 100}, {"d/Y/0", kInvalidLsn}};
  m.outputs_from = 90;
  m.changelog_from = 95;
  m.has_checkpoint = true;
  m.checkpoint_seq = 40;
  auto got = DecodeProgressMarker(EncodeProgressMarker(m));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->marker_seq, 42u);
  ASSERT_EQ(got->input_ends.size(), 2u);
  EXPECT_EQ(got->input_ends[0].first, "d/X/0");
  EXPECT_EQ(got->input_ends[0].second, 100u);
  EXPECT_EQ(got->input_ends[1].second, kInvalidLsn);
  EXPECT_EQ(got->outputs_from, 90u);
  EXPECT_EQ(got->changelog_from, 95u);
  EXPECT_TRUE(got->has_checkpoint);
  EXPECT_EQ(got->checkpoint_seq, 40u);
}

TEST(MarkerTest, CompactEncodingIsSmall) {
  // §3.5: one LSN per range suffices. A typical marker with two output
  // substreams should stay within a few dozen bytes.
  ProgressMarker m;
  m.marker_seq = 1000;
  m.input_ends = {{"d/X/0", 123456}};
  m.outputs_from = 123400;
  m.changelog_from = 123410;
  EXPECT_LT(EncodeProgressMarker(m).size(), 48u);
}

TEST(TxnControlTest, RoundTripAllKinds) {
  for (TxnControlKind kind :
       {TxnControlKind::kRegistration, TxnControlKind::kPreCommit,
        TxnControlKind::kCommit, TxnControlKind::kTxnCommitted,
        TxnControlKind::kAbort}) {
    TxnControlBody body;
    body.kind = kind;
    body.txn_id = 77;
    body.input_ends = {{"d/A/1", 9}};
    body.changelog_from = 5;
    auto got = DecodeTxnControlBody(EncodeTxnControlBody(body));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->kind, kind);
    EXPECT_EQ(got->txn_id, 77u);
    ASSERT_EQ(got->input_ends.size(), 1u);
    EXPECT_EQ(got->input_ends[0].second, 9u);
  }
}

TEST(BarrierTest, RoundTrip) {
  BarrierBody body;
  body.checkpoint_id = 13;
  auto got = DecodeBarrierBody(EncodeBarrierBody(body));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->checkpoint_id, 13u);
}

TEST(CompositeKeyTest, RoundTripAndOrdering) {
  std::string a = EncodeCompositeKey("key", 1);
  std::string b = EncodeCompositeKey("key", 2);
  std::string c = EncodeCompositeKey("key", 1ull << 40);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c) << "big-endian suffix preserves numeric order";
  auto decoded = DecodeCompositeKey(c);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->first, "key");
  EXPECT_EQ(decoded->second, 1ull << 40);
  EXPECT_FALSE(DecodeCompositeKey("short").ok());
}

TEST(CompositeKeyTest, PrefixScanBoundary) {
  // Keys sharing a prefix but different suffixes group under "<key>\0".
  std::string k1 = EncodeCompositeKey("ab", 5);
  EXPECT_EQ(k1.substr(0, 3), std::string("ab\0", 3));
}

TEST(NexmarkCodecTest, PersonRoundTrip) {
  Person p;
  p.id = 55;
  p.name = "Kate Jones";
  p.email = "kate@example.com";
  p.credit_card = "1234";
  p.city = "Boise";
  p.state = "ID";
  p.date_time = 999;
  p.extra = std::string(100, 'x');
  auto got = DecodePerson(EncodePerson(p));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id, 55u);
  EXPECT_EQ(got->state, "ID");
  EXPECT_EQ(got->extra.size(), 100u);
}

TEST(NexmarkCodecTest, AuctionRoundTrip) {
  Auction a;
  a.id = 77;
  a.item_name = "figurine";
  a.initial_bid = 100;
  a.reserve = 500;
  a.seller = 12;
  a.category = 13;
  a.expires = 1000000;
  auto got = DecodeAuction(EncodeAuction(a));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->id, 77u);
  EXPECT_EQ(got->seller, 12u);
  EXPECT_EQ(got->category, 13u);
}

TEST(NexmarkCodecTest, BidRoundTripAndCorruption) {
  Bid b;
  b.auction = 9;
  b.bidder = 3;
  b.price = 4242;
  b.channel = "Apple";
  b.url = "https://x";
  auto got = DecodeBid(EncodeBid(b));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->price, 4242);
  EXPECT_FALSE(DecodeBid("garbage").ok());
}

TEST(CodecFuzzTest, RandomBytesNeverCrashDecoders) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    std::string junk(rng.NextBounded(64), '\0');
    for (auto& c : junk) {
      c = static_cast<char>(rng.NextBounded(256));
    }
    (void)DecodeEnvelope(junk);
    (void)DecodeProgressMarker(junk);
    (void)DecodeTxnControlBody(junk);
    (void)DecodeDataBody(junk);
    (void)DecodeChangeLogBody(junk);
    (void)DecodeBid(junk);
    (void)DecodeAuction(junk);
    (void)DecodePerson(junk);
  }
}

}  // namespace
}  // namespace impeller
