// Unit tests for the Kafka-like partitioned log.
#include <gtest/gtest.h>

#include "src/common/threading.h"
#include "src/sharedlog/partitioned_log.h"

namespace impeller {
namespace {

TEST(PartitionedLogTest, TopicsAndPartitions) {
  PartitionedLog log;
  ASSERT_TRUE(log.CreateTopic("bids", 4).ok());
  EXPECT_EQ(*log.PartitionCount("bids"), 4u);
  EXPECT_TRUE(log.CreateTopic("bids", 4).ok());  // idempotent
  EXPECT_EQ(log.CreateTopic("bids", 8).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(log.CreateTopic("zero", 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.PartitionCount("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(PartitionedLogTest, PerPartitionOffsets) {
  PartitionedLog log;
  ASSERT_TRUE(log.CreateTopic("t", 2).ok());
  EXPECT_EQ(*log.Append("t", 0, "k", "a"), 0u);
  EXPECT_EQ(*log.Append("t", 0, "k", "b"), 1u);
  EXPECT_EQ(*log.Append("t", 1, "k", "c"), 0u)
      << "offsets are independent per partition";
  auto rec = log.Read("t", 0, 1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, "b");
  EXPECT_EQ(*log.EndOffset("t", 0), 2u);
}

TEST(PartitionedLogTest, ReadBeyondEndIsNotFound) {
  PartitionedLog log;
  ASSERT_TRUE(log.CreateTopic("t", 1).ok());
  EXPECT_EQ(log.Read("t", 0, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(log.Read("t", 5, 0).status().code(), StatusCode::kNotFound);
}

TEST(PartitionedLogTest, BatchAppendSharesOneAck) {
  PartitionedLog log;
  ASSERT_TRUE(log.CreateTopic("t", 1).ok());
  std::vector<std::pair<std::string, std::string>> batch;
  for (int i = 0; i < 10; ++i) {
    batch.emplace_back("k", std::to_string(i));
  }
  auto offsets = log.AppendBatch("t", 0, std::move(batch));
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ(offsets->size(), 10u);
  EXPECT_EQ(offsets->front(), 0u);
  EXPECT_EQ(offsets->back(), 9u);
}

TEST(PartitionedLogTest, AwaitReadWakesOnAppend) {
  PartitionedLog log;
  ASSERT_TRUE(log.CreateTopic("t", 1).ok());
  JoiningThread appender([&log] {
    MonotonicClock::Get()->SleepFor(20 * kMillisecond);
    ASSERT_TRUE(log.Append("t", 0, "k", "late").ok());
  });
  auto rec = log.AwaitRead("t", 0, 0, 2 * kSecond);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, "late");
}

TEST(PartitionedLogTest, KafkaLatencyModelDelaysVisibility) {
  PartitionedLogOptions opts;
  opts.latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::KafkaParams(), 3);
  PartitionedLog log(std::move(opts));
  ASSERT_TRUE(log.CreateTopic("t", 1).ok());
  TimeNs t0 = MonotonicClock::Get()->Now();
  ASSERT_TRUE(log.Append("t", 0, "k", "v").ok());
  auto rec = log.AwaitRead("t", 0, 0, 2 * kSecond);
  ASSERT_TRUE(rec.ok());
  // The Kafka model's produce-to-consume latency is on the order of 1-3 ms.
  EXPECT_GE(MonotonicClock::Get()->Now() - t0, 500 * kMicrosecond);
}

}  // namespace
}  // namespace impeller
