// Tests for the work-stealing scheduler: entity lifecycle (Ready/Idle/
// Done), ticket waiting, worker sizing, steal rebalancing of skewed
// affinity, idle-delay rescheduling, park/unpark responsiveness, and
// orphan release on Stop.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/sched/scheduler.h"

namespace impeller {
namespace sched {
namespace {

SchedulerOptions Opts(uint32_t workers) {
  SchedulerOptions options;
  options.workers = workers;
  return options;
}

TEST(SchedulerTest, RunsEntityUntilDone) {
  WorkStealingScheduler sched(Opts(2));
  sched.Start();
  std::atomic<int> count{0};
  Ticket ticket = sched.Submit([&] {
    return count.fetch_add(1) + 1 < 100 ? StepResult::Ready()
                                        : StepResult::Done();
  });
  sched.Wait(ticket);
  EXPECT_EQ(count.load(), 100);
  EXPECT_TRUE(sched.Finished(ticket));
  EXPECT_GE(sched.steps(), 100u);
  sched.Stop();
}

TEST(SchedulerTest, WorkerCountDefaultsAndOverrides) {
  WorkStealingScheduler two(Opts(2));
  EXPECT_EQ(two.workers(), 2u);
  // Default floors at 4 so a small machine still shares preemptively
  // between tasks whose steps block.
  WorkStealingScheduler dflt;
  EXPECT_GE(dflt.workers(), 4u);
}

TEST(SchedulerTest, WaitOnInvalidOrUnknownTicketReturnsImmediately) {
  WorkStealingScheduler sched(Opts(1));
  sched.Start();
  sched.Wait(kInvalidTicket);  // no-op
  sched.Wait(987654);          // never submitted
  EXPECT_TRUE(sched.Finished(kInvalidTicket));
  EXPECT_TRUE(sched.Finished(987654));
  sched.Stop();
}

TEST(SchedulerTest, StealsRebalanceSkewedAffinity) {
  // Pile every entity onto one home worker: the other workers must steal
  // to finish, so the steal counter moves and all entities complete.
  WorkStealingScheduler sched(Opts(4));
  sched.Start();
  std::atomic<int> done{0};
  std::vector<Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    auto steps = std::make_shared<std::atomic<int>>(0);
    tickets.push_back(sched.Submit(
        [&done, steps] {
          // A step long enough that the home worker cannot drain all 64
          // entities before the other workers wake and steal.
          MonotonicClock::Get()->SleepFor(100 * kMicrosecond);
          if (steps->fetch_add(1) + 1 < 20) {
            return StepResult::Ready();
          }
          done.fetch_add(1);
          return StepResult::Done();
        },
        /*affinity=*/0));
  }
  for (Ticket t : tickets) {
    sched.Wait(t);
  }
  EXPECT_EQ(done.load(), 64);
  EXPECT_GT(sched.steals(), 0u);
  sched.Stop();
}

TEST(SchedulerTest, AffinityMapsOntoHomeWorkerModuloWorkers) {
  // Any affinity value is accepted; affinity % workers picks the home.
  WorkStealingScheduler sched(Opts(3));
  sched.Start();
  for (uint32_t affinity : {0u, 1u, 2u, 3u, 17u, 0xFFFFFFFFu}) {
    std::atomic<bool> ran{false};
    Ticket t = sched.Submit(
        [&ran] {
          ran.store(true);
          return StepResult::Done();
        },
        affinity);
    sched.Wait(t);
    EXPECT_TRUE(ran.load()) << "affinity " << affinity;
  }
  sched.Stop();
}

TEST(SchedulerTest, IdleDelayDefersRescheduling) {
  // An entity that reports Idle(d) is not re-stepped before d elapses.
  WorkStealingScheduler sched(Opts(2));
  sched.Start();
  Clock* clock = MonotonicClock::Get();
  constexpr int kNaps = 4;
  constexpr DurationNs kDelay = 20 * kMillisecond;
  std::atomic<int> wakes{0};
  TimeNs start = clock->Now();
  Ticket t = sched.Submit([&] {
    return wakes.fetch_add(1) + 1 <= kNaps ? StepResult::Idle(kDelay)
                                           : StepResult::Done();
  });
  sched.Wait(t);
  TimeNs elapsed = clock->Now() - start;
  EXPECT_EQ(wakes.load(), kNaps + 1);
  EXPECT_GE(elapsed, kNaps * kDelay);
  sched.Stop();
}

TEST(SchedulerTest, SubmitWakesParkedWorkers) {
  // After an idle stretch every worker is parked; a fresh submit must be
  // picked up promptly (bounded by the park nap, asserted loosely).
  WorkStealingScheduler sched(Opts(2));
  sched.Start();
  Clock* clock = MonotonicClock::Get();
  clock->SleepFor(20 * kMillisecond);  // let workers park
  TimeNs start = clock->Now();
  Ticket t = sched.Submit([] { return StepResult::Done(); });
  sched.Wait(t);
  EXPECT_LT(clock->Now() - start, kSecond);
  EXPECT_GT(sched.parks(), 0u);
  sched.Stop();
}

TEST(SchedulerTest, StopReleasesUnfinishedEntities) {
  // Entities parked forever (runnable or sleeping) are orphan-released by
  // Stop: their tickets complete and Wait returns instead of hanging.
  WorkStealingScheduler sched(Opts(2));
  sched.Start();
  Ticket sleeper = sched.Submit(
      [] { return StepResult::Idle(3600 * kSecond); });
  std::atomic<bool> spin{true};
  Ticket runner = sched.Submit([&spin] {
    return spin.load() ? StepResult::Ready() : StepResult::Done();
  });
  MonotonicClock::Get()->SleepFor(10 * kMillisecond);
  sched.Stop();
  spin.store(false);
  sched.Wait(sleeper);
  sched.Wait(runner);
  EXPECT_TRUE(sched.Finished(sleeper));
  EXPECT_TRUE(sched.Finished(runner));
}

TEST(SchedulerTest, MetricsExportStepCounters) {
  MetricsRegistry metrics;
  SchedulerOptions options;
  options.workers = 2;
  options.metrics = &metrics;
  WorkStealingScheduler sched(std::move(options));
  sched.Start();
  std::atomic<int> steps{0};
  Ticket t = sched.Submit([&] {
    return steps.fetch_add(1) + 1 < 10 ? StepResult::Ready()
                                       : StepResult::Done();
  });
  sched.Wait(t);
  sched.Stop();
  EXPECT_GE(metrics.GetCounter("sched/steps")->Get(), 10u);
}

}  // namespace
}  // namespace sched
}  // namespace impeller
