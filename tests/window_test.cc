// Window assignment property tests (tumbling and sliding).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/window.h"

namespace impeller {
namespace {

TEST(WindowTest, TumblingAssignsExactlyOne) {
  WindowSpec w = WindowSpec::Tumbling(10 * kSecond);
  EXPECT_TRUE(w.IsTumbling());
  std::vector<TimeNs> starts;
  w.AssignWindows(25 * kSecond, &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 20 * kSecond);
}

TEST(WindowTest, TumblingBoundaryBelongsToNextWindow) {
  WindowSpec w = WindowSpec::Tumbling(10 * kSecond);
  std::vector<TimeNs> starts;
  w.AssignWindows(20 * kSecond, &starts);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], 20 * kSecond);
}

TEST(WindowTest, SlidingAssignsSizeOverSlideWindows) {
  WindowSpec w = WindowSpec::Sliding(10 * kSecond, 2 * kSecond);
  std::vector<TimeNs> starts;
  w.AssignWindows(21 * kSecond, &starts);
  ASSERT_EQ(starts.size(), 5u);
  EXPECT_EQ(starts.front(), 20 * kSecond);
  EXPECT_EQ(starts.back(), 12 * kSecond);
}

class WindowSweep
    : public ::testing::TestWithParam<std::pair<DurationNs, DurationNs>> {};

TEST_P(WindowSweep, EveryAssignedWindowContainsTheTimestamp) {
  auto [size, slide] = GetParam();
  WindowSpec w{size, slide};
  Rng rng(31);
  std::vector<TimeNs> starts;
  for (int i = 0; i < 500; ++i) {
    TimeNs t = static_cast<TimeNs>(rng.NextBounded(1000 * kSecond));
    w.AssignWindows(t, &starts);
    ASSERT_EQ(starts.size(), static_cast<size_t>(size / slide))
        << "size/slide windows cover each instant";
    for (TimeNs start : starts) {
      EXPECT_GE(t, start);
      EXPECT_LT(t, start + size);
      EXPECT_EQ(start % slide, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweep,
    ::testing::Values(std::make_pair(10 * kSecond, 10 * kSecond),
                      std::make_pair(10 * kSecond, 2 * kSecond),
                      std::make_pair(60 * kSecond, 15 * kSecond),
                      std::make_pair(kSecond, kSecond / 4)));

TEST(WindowTest, ConsecutiveTimestampsShareOverlappingWindows) {
  WindowSpec w = WindowSpec::Sliding(10 * kSecond, 2 * kSecond);
  std::vector<TimeNs> a, b;
  w.AssignWindows(12 * kSecond + 200 * kMillisecond, &a);
  w.AssignWindows(13 * kSecond + 900 * kMillisecond, &b);
  // Same slide bucket -> identical window sets.
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace impeller
