// Garbage-collection tests: registry floor semantics and trim safety.
#include <gtest/gtest.h>

#include "src/core/gc.h"

namespace impeller {
namespace {

TEST(GcRegistryTest, MinOverSources) {
  GcRegistry registry;
  EXPECT_EQ(registry.MinFloor(), kInvalidLsn);
  registry.PublishFloor("a", 10);
  registry.PublishFloor("b", 5);
  EXPECT_EQ(registry.MinFloor(), 5u);
  registry.PublishFloor("b", 20);
  EXPECT_EQ(registry.MinFloor(), 10u);
}

TEST(GcRegistryTest, FloorsAreMonotone) {
  GcRegistry registry;
  registry.PublishFloor("a", 10);
  registry.PublishFloor("a", 5);  // regression ignored
  EXPECT_EQ(registry.MinFloor(), 10u);
}

TEST(GcRegistryTest, RemoveDropsConstraint) {
  GcRegistry registry;
  registry.PublishFloor("a", 10);
  registry.PublishFloor("b", 3);
  registry.Remove("b");
  EXPECT_EQ(registry.MinFloor(), 10u);
  EXPECT_EQ(registry.sources(), 1u);
}

TEST(GcWorkerTest, TrimsToGlobalMin) {
  SharedLog log;
  for (int i = 0; i < 10; ++i) {
    AppendRequest req;
    req.tags = {"a"};
    req.payload = "p";
    ASSERT_TRUE(log.Append(std::move(req)).ok());
  }
  GcRegistry registry;
  GcWorker worker(&log, &registry, MonotonicClock::Get(), kSecond);

  worker.RunOnce();
  EXPECT_EQ(log.TrimPoint(), 0u) << "no floors -> nothing trimmed";

  registry.PublishFloor("consumer1", 7);
  registry.PublishFloor("consumer2", 4);
  worker.RunOnce();
  EXPECT_EQ(log.TrimPoint(), 4u);
  EXPECT_EQ(worker.trims_issued(), 1u);

  worker.RunOnce();
  EXPECT_EQ(worker.trims_issued(), 1u) << "no progress, no trim";

  registry.PublishFloor("consumer2", 9);
  worker.RunOnce();
  EXPECT_EQ(log.TrimPoint(), 7u);
}

TEST(GcWorkerTest, RecordsAboveFloorSurvive) {
  SharedLog log;
  for (int i = 0; i < 6; ++i) {
    AppendRequest req;
    req.tags = {"t"};
    req.payload = std::to_string(i);
    ASSERT_TRUE(log.Append(std::move(req)).ok());
  }
  GcRegistry registry;
  registry.PublishFloor("c", 3);
  GcWorker worker(&log, &registry, MonotonicClock::Get(), kSecond);
  worker.RunOnce();
  auto rec = log.ReadNext("t", 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, "3");
}

}  // namespace
}  // namespace impeller
