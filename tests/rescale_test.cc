// Rescaling tests (paper §5.3 skew tolerance): a stage over-partitioned
// with WithSubstreams multiplexes substreams onto its tasks and can change
// its task count at runtime without repartitioning upstream — the old
// generation's final markers hand each substream's consumed position to the
// new generation, preserving exactly-once output.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::WaitFor;

// Word count whose split stage is over-partitioned: 6 substreams on
// `split_tasks` tasks.
Result<QueryPlan> OverPartitionedPlan(uint32_t split_tasks) {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("wc");
  qb.Ingress("lines");
  qb.AddStage("split", split_tasks)
      .WithSubstreams(6)
      .ReadsFrom({"lines"})
      .FlatMap([](StreamRecord r, std::vector<StreamRecord>* out) {
        std::istringstream stream(r.value);
        std::string word;
        while (stream >> word) {
          out->push_back({word, "1", r.event_time});
        }
      })
      .WritesTo("words");
  qb.AddStage("count", 2).ReadsFrom({"words"}).Aggregate("c", count).Sink(
      "wc");
  return qb.Build();
}

TEST(RescaleTest, OverPartitionedStageProcessesAllSubstreams) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(2);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->FindStream("lines")->num_substreams, 6u);
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  // Keys spread across all 6 ingress substreams.
  for (int i = 0; i < 60; ++i) {
    (*producer)->Send("key" + std::to_string(i), "alpha beta");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 120; }));
  engine.Stop();
  auto counts = testutil::ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["alpha"], 60);
  EXPECT_EQ((*counts)["beta"], 60);
}

TEST(RescaleTest, ScaleUpPreservesExactlyOnce) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());

  for (int i = 0; i < 40; ++i) {
    (*producer)->Send("key" + std::to_string(i), "up");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 40; }));

  // Respond to load: 2 -> 3 tasks, substreams redistribute 6 -> 2 each.
  ASSERT_TRUE(engine.tasks()->RescaleStage("split", 3).ok());
  EXPECT_NE(engine.tasks()->FindTask("wc/split/2"), nullptr);

  for (int i = 0; i < 40; ++i) {
    (*producer)->Send("key" + std::to_string(i), "up again");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 120; }));
  engine.Stop();
  auto counts = testutil::ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["up"], 80) << "no loss, no duplication across rescale";
  EXPECT_EQ((*counts)["again"], 40);
}

TEST(RescaleTest, ScaleDownPreservesExactlyOnce) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(3);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());

  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("key" + std::to_string(i), "down sizing");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 60; }));

  ASSERT_TRUE(engine.tasks()->RescaleStage("split", 1).ok());

  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("key" + std::to_string(i), "down");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 90; }));
  engine.Stop();
  auto counts = testutil::ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["down"], 60);
  EXPECT_EQ((*counts)["sizing"], 30);
}

TEST(RescaleTest, RepeatedRescalesStayExact) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");

  uint64_t expected = 0;
  const uint32_t sizes[] = {2, 4, 6, 3, 1};
  for (uint32_t size : sizes) {
    for (int i = 0; i < 20; ++i) {
      (*producer)->Send("key" + std::to_string(i), "cycle");
    }
    ASSERT_TRUE((*producer)->Flush().ok());
    expected += 20;
    ASSERT_TRUE(WaitFor([&] { return out->Get() >= expected; }));
    ASSERT_TRUE(engine.tasks()->RescaleStage("split", size).ok())
        << "rescale to " << size;
  }
  for (int i = 0; i < 20; ++i) {
    (*producer)->Send("key" + std::to_string(i), "cycle");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  expected += 20;
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= expected; }));
  engine.Stop();
  auto counts = testutil::ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["cycle"], static_cast<int64_t>(expected));
}

TEST(RescaleTest, RejectsInvalidRequests) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());

  EXPECT_EQ(engine.tasks()->RescaleStage("nope", 2).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.tasks()->RescaleStage("split", 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.tasks()->RescaleStage("split", 7).code(),
            StatusCode::kInvalidArgument)
      << "cannot exceed the substream budget";
  EXPECT_TRUE(engine.tasks()->RescaleStage("count", 1).ok())
      << "stateful stages rescale via changelog state handoff";
  engine.Stop();
}

TEST(RescaleTest, AllowedUnderUnsafeProtocol) {
  // No markers means no changelog, but a *graceful* rescale can hand the
  // stopped tasks' cursors and state over directly in memory.
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kUnsafe);
  Engine engine(std::move(options));
  auto plan = OverPartitionedPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("key" + std::to_string(i), "unsafe");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 30; }));
  ASSERT_TRUE(engine.tasks()->RescaleStage("split", 3).ok());
  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("key" + std::to_string(i), "unsafe");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 60; }));
  engine.Stop();
  auto counts = testutil::ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["unsafe"], 60)
      << "graceful direct handoff keeps even the unsafe baseline exact";
}

TEST(QueryBuilderRescaleTest, RejectsFewerSubstreamsThanTasks) {
  QueryBuilder qb("q");
  qb.Ingress("in");
  qb.AddStage("a", 4).WithSubstreams(2).ReadsFrom({"in"}).Map(
      [](StreamRecord r) { return r; }).Sink("x");
  EXPECT_FALSE(qb.Build().ok());
}

}  // namespace
}  // namespace impeller
