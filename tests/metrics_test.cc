// MetricsRegistry / Counter / LatencyHistogram coverage: concurrent
// recording, reset, merge, percentile edge cases, and the obs exporters
// (Prometheus text + JSON) that walk the registry.
#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "src/obs/metrics_export.h"

namespace impeller {
namespace {

TEST(CounterTest, AddGetReset) {
  Counter c;
  EXPECT_EQ(c.Get(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Get(), 42u);
  c.Reset();
  EXPECT_EQ(c.Get(), 0u);
  c.Add(7);
  EXPECT_EQ(c.Get(), 7u);
}

TEST(MetricsRegistryTest, ReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("log/appends");
  LatencyHistogram* h1 = registry.Histogram("lat/sink");
  EXPECT_EQ(registry.GetCounter("log/appends"), c1);
  EXPECT_EQ(registry.Histogram("lat/sink"), h1);
  EXPECT_NE(registry.GetCounter("log/reads"), c1);
  EXPECT_EQ(registry.CounterNames().size(), 2u);
  EXPECT_EQ(registry.HistogramNames().size(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentAccess) {
  // Mixed create/record traffic from many threads: every thread hammers the
  // same names (exercising create-once-under-lock) and a private name.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      std::string mine = "private/" + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        registry.GetCounter("shared")->Add();
        registry.GetCounter(mine)->Add();
        registry.Histogram("lat/shared")->Record(i * 1000);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.GetCounter("shared")->Get(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(registry.Histogram("lat/shared")->Count(),
            static_cast<uint64_t>(kThreads) * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("private/" + std::to_string(t))->Get(),
              static_cast<uint64_t>(kOps));
  }
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("shared")->Get(), 0u);
  EXPECT_EQ(registry.Histogram("lat/shared")->Count(), 0u);
}

TEST(HistogramTest, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(50.0), 0);
  EXPECT_EQ(h.Percentile(100.0), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(1'000'000);  // 1 ms
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1'000'000);
  EXPECT_EQ(h.Max(), 1'000'000);
  // Every percentile lands in the sample's bucket (~±2% representative).
  for (double p : {0.1, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(h.Percentile(p), 1'000'000, 1'000'000 * 0.02) << "p=" << p;
  }
}

TEST(HistogramTest, CrossOctavePercentiles) {
  // Samples spanning many octaves: 1us x100, 1ms x100, 1s x100. Rank
  // arithmetic must cross octave boundaries cleanly.
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(1'000);
    h.Record(1'000'000);
    h.Record(1'000'000'000);
  }
  EXPECT_NEAR(h.Percentile(10.0), 1'000, 1'000 * 0.05);
  EXPECT_NEAR(h.Percentile(50.0), 1'000'000, 1'000'000 * 0.05);
  EXPECT_NEAR(h.Percentile(90.0), 1'000'000'000, 1'000'000'000 * 0.05);
  // The boundary between the 1us and 1ms thirds sits at rank 100/300.
  EXPECT_NEAR(h.Percentile(33.3), 1'000, 1'000 * 0.05);
  EXPECT_NEAR(h.Percentile(33.4), 1'000'000, 1'000'000 * 0.05);
}

TEST(HistogramTest, RelativePrecisionWithinOctave) {
  // ~1% relative precision claim: representative value of each sample's
  // bucket stays within 1/32 of the sample.
  LatencyHistogram h;
  for (int64_t v : {37'000, 123'456, 999'999, 5'000'000, 77'777'777}) {
    h.Reset();
    h.Record(v);
    EXPECT_NEAR(h.Percentile(50.0), v, static_cast<double>(v) / 32 + 1)
        << "v=" << v;
  }
}

TEST(HistogramTest, MergeFrom) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(1'000);
    b.Record(1'000'000);
  }
  b.Record(123);  // b's min
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 201u);
  EXPECT_EQ(a.Min(), 123);
  EXPECT_NEAR(a.Max(), 1'000'000, 1'000'000 / 32.0);
  EXPECT_NEAR(a.Percentile(25.0), 1'000, 1'000 * 0.05);
  EXPECT_NEAR(a.Percentile(90.0), 1'000'000, 1'000'000 * 0.05);
  double expected_mean = (100 * 1'000.0 + 100 * 1'000'000.0 + 123) / 201.0;
  EXPECT_NEAR(a.Mean(), expected_mean, expected_mean * 0.01);
}

TEST(HistogramTest, ConcurrentRecordAndMerge) {
  LatencyHistogram target;
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&target] {
      LatencyHistogram local;
      for (int i = 1; i <= kOps; ++i) {
        local.Record(i);
      }
      target.MergeFrom(local);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(target.Count(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(target.Min(), 1);
  EXPECT_EQ(target.Max(), kOps);
}

TEST(MetricsExportTest, PrometheusNameSanitization) {
  EXPECT_EQ(obs::PrometheusName("log/appends"), "impeller_log_appends");
  EXPECT_EQ(obs::PrometheusName("lat/q1-sink"), "impeller_lat_q1_sink");
  EXPECT_EQ(obs::PrometheusName("ok_name:x"), "impeller_ok_name:x");
}

TEST(MetricsExportTest, PrometheusText) {
  MetricsRegistry registry;
  registry.GetCounter("log/appends")->Add(42);
  for (int i = 0; i < 100; ++i) {
    registry.Histogram("lat/sink")->Record(2'000'000);
  }
  std::string text = obs::MetricsToPrometheusText(&registry);
  EXPECT_NE(text.find("# TYPE impeller_log_appends counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("impeller_log_appends 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE impeller_lat_sink_ns summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("impeller_lat_sink_ns{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("impeller_lat_sink_ns_count 100\n"), std::string::npos);
}

TEST(MetricsExportTest, JsonSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("log/appends")->Add(7);
  registry.Histogram("lat/sink")->Record(1'000'000);
  std::string json = obs::MetricsToJson(&registry);
  EXPECT_NE(json.find("\"log/appends\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"lat/sink\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  // Braces balance (cheap structural validity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace impeller
