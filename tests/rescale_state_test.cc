// Keyed-state migration tests: rescaling a *stateful* windowed-aggregate
// stage mid-run, in both directions, under all four protocols and with a
// sharded log. The old generation's final cut hands over substream-range
// state ownership (changelog replay under marker protocols, direct
// in-memory export under aligned/unsafe); the committed output must be
// indistinguishable from a run that never rescaled.
//
// Also exercises the autoscaler: unit-level (synthetic probe, deterministic
// ticks) and closed-loop (induced backlog makes the engine scale a stateful
// stage up on its own, without losing a record).
#include <gtest/gtest.h>

#include <set>

#include "src/autoscale/autoscaler.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::WaitFor;

// --- windowed-aggregate rescale matrix ---

// events -> agg (stateful tumbling-window count, 6 substreams) -> fmt
// (stateless passthrough) -> sink. The downstream stage makes the aligned
// path reconfigure barrier alignment after the producer count changes.
Result<QueryPlan> WindowedPlan(uint32_t agg_tasks) {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("ws");
  qb.Ingress("events");
  qb.AddStage("agg", agg_tasks)
      .WithSubstreams(6)
      .ReadsFrom({"events"})
      .WindowAggregate("w", WindowSpec::Tumbling(kSecond), count,
                       /*allowed_lateness=*/0, WindowEmitMode::kOnClose)
      .WritesTo("panes");
  qb.AddStage("fmt", 2)
      .ReadsFrom({"panes"})
      .Map([](StreamRecord r) { return r; })
      .Sink("ws");
  return qb.Build();
}

constexpr int kKeys = 24;

// Key j contributes j % 4 + 1 + w records to window w — every key's count
// differs between windows, so a state mixup shows up in the output bytes.
int Occurrences(int j, int window) { return j % 4 + 1 + window; }

void FeedWindow(IngressProducer& producer, int window) {
  TimeNs start = static_cast<TimeNs>(window) * kSecond;
  int i = 0;
  for (int j = 0; j < kKeys; ++j) {
    for (int occ = 0; occ < Occurrences(j, window); ++occ) {
      producer.Send("k" + std::to_string(j), "x",
                    start + (++i) * kMillisecond);
    }
  }
}

// One far-future record per ingress substream pushes every task's watermark
// past both data windows, closing all panes deterministically.
void FeedClosers(IngressProducer& producer) {
  std::set<uint32_t> covered;
  for (int m = 0; covered.size() < 6 && m < 10000; ++m) {
    std::string key = "close" + std::to_string(m);
    uint32_t sub = HashPartition(key, 6);
    if (covered.insert(sub).second) {
      producer.Send(key, "x", 10 * kSecond);
    }
  }
}

uint64_t ExpectedPanes() { return kKeys * 2; }

// Records FeedWindow(w) produces.
uint64_t WindowRecords(int window) {
  uint64_t n = 0;
  for (int j = 0; j < kKeys; ++j) {
    n += static_cast<uint64_t>(Occurrences(j, window));
  }
  return n;
}

// Sum of records processed by the agg stage's *current* generation (the
// first `tasks` indices; scale-down leftovers are excluded).
uint64_t AggProcessed(Engine& engine, uint32_t tasks) {
  uint64_t total = 0;
  for (uint32_t i = 0; i < tasks; ++i) {
    TaskRuntime* rt = engine.tasks()->FindTask("ws/agg/" + std::to_string(i));
    if (rt != nullptr) {
      total += rt->records_processed();
    }
  }
  return total;
}

// Committed egress as a canonical sorted multiset of
// "key\tvalue\tevent_time" lines (cross-substream order is meaningless).
Result<std::multiset<std::string>> CollectOutput(Engine& engine) {
  std::multiset<std::string> lines;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("fmt", sub);
    if (!consumer.ok()) {
      return consumer.status();
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return records.status();
    }
    for (const auto& r : *records) {
      lines.insert(std::string(r.data.key) + "\t" +
                   std::string(r.data.value) + "\t" +
                   std::to_string(r.data.event_time));
    }
  }
  return lines;
}

// Runs the pipeline, optionally rescaling `agg` between the two data
// windows, and returns the committed output. With `restart_after_seal` the
// whole new generation is crash-restarted after its handoff sealed (first
// post-rescale cut / completed checkpoint) — recovery must then come from
// that newer point, not the retained handoff cursors.
Result<std::multiset<std::string>> RunScenario(ProtocolKind protocol,
                                               uint32_t shards,
                                               uint32_t initial_tasks,
                                               uint32_t rescale_to,
                                               bool restart_after_seal =
                                                   false) {
  EngineOptions options;
  options.config = FastConfig(protocol);
  options.config.log_shards = shards;
  Engine engine(std::move(options));
  auto plan = WindowedPlan(initial_tasks);
  if (!plan.ok()) {
    return plan.status();
  }
  IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  auto producer = engine.NewProducer("gen", "events");
  if (!producer.ok()) {
    return producer.status();
  }

  // Each phase is fully absorbed before the next is sent: a task reads its
  // substreams in arbitrary interleave, so without the barrier a later
  // phase's high event times could race ahead on one substream and mark
  // another substream's in-flight records late (lateness is 0 here). The
  // barrier counts records the tasks actually ran through their operators —
  // log-side lag probes are not a barrier, since appends become readable
  // only once the metalog sequences them.
  auto drain = [&](uint32_t tasks, uint64_t processed,
                   const char* what) -> Status {
    if (!WaitFor([&] { return AggProcessed(engine, tasks) >= processed; },
                 10 * kSecond)) {
      return DeadlineExceededError(std::string("agg never absorbed ") +
                                   what);
    }
    return OkStatus();
  };

  FeedWindow(**producer, 1);
  IMPELLER_RETURN_IF_ERROR((*producer)->Flush().status());
  IMPELLER_RETURN_IF_ERROR(drain(initial_tasks, WindowRecords(1),
                                 "window 1"));

  uint64_t ckpt_before_rescale = 0;
  if (rescale_to != 0) {
    if (protocol == ProtocolKind::kAlignedCheckpoint) {
      ckpt_before_rescale =
          engine.tasks()->barrier_coordinator()->LatestCompleted();
    }
    // Rescale with window 1 fully absorbed into keyed state but not yet
    // fired: the pane accumulators must migrate for the output to be right.
    IMPELLER_RETURN_IF_ERROR(
        engine.tasks()->RescaleStage("agg", rescale_to));
  }

  // Post-rescale generations start their processed counters at zero; window
  // 1 was fully committed before the handoff, so it is never reprocessed.
  uint32_t current_tasks = rescale_to != 0 ? rescale_to : initial_tasks;
  uint64_t already = rescale_to != 0 ? 0 : WindowRecords(1);
  FeedWindow(**producer, 2);
  IMPELLER_RETURN_IF_ERROR((*producer)->Flush().status());
  IMPELLER_RETURN_IF_ERROR(drain(current_tasks, already + WindowRecords(2),
                                 "window 2"));

  if (restart_after_seal && rescale_to != 0) {
    // Wait for the handoff to seal: a post-rescale cut (marker protocols)
    // or a checkpoint completed after the rescale (aligned). The retained
    // handoff cursors are stale from this point on; a restart must not
    // rewind to them (regression: re-processed records would double-apply
    // state and re-emit under fresh sequence numbers dedup cannot filter).
    bool sealed;
    if (protocol == ProtocolKind::kAlignedCheckpoint) {
      sealed = WaitFor(
          [&] {
            return engine.tasks()->barrier_coordinator()->LatestCompleted() >
                   ckpt_before_rescale;
          },
          10 * kSecond);
    } else {
      sealed = WaitFor(
          [&] {
            for (uint32_t i = 0; i < rescale_to; ++i) {
              TaskRuntime* rt =
                  engine.tasks()->FindTask("ws/agg/" + std::to_string(i));
              if (rt == nullptr || rt->markers_written() == 0) {
                return false;
              }
            }
            return true;
          },
          10 * kSecond);
    }
    if (!sealed) {
      return DeadlineExceededError("handoff never sealed post-rescale");
    }
    for (uint32_t i = 0; i < rescale_to; ++i) {
      auto stats =
          engine.tasks()->RestartTask("ws/agg/" + std::to_string(i));
      if (!stats.ok()) {
        return stats.status();
      }
    }
  }

  FeedClosers(**producer);
  IMPELLER_RETURN_IF_ERROR((*producer)->Flush().status());

  Counter* out = engine.metrics()->GetCounter("out/ws");
  if (!WaitFor([&] { return out->Get() >= ExpectedPanes(); },
               30 * kSecond)) {
    return DeadlineExceededError(
        "only " + std::to_string(out->Get()) + "/" +
        std::to_string(ExpectedPanes()) + " panes fired");
  }
  engine.Stop();
  return CollectOutput(engine);
}

class RescaleStateTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, uint32_t>> {};

TEST_P(RescaleStateTest, ScaleUpAndDownMatchUnrescaledRun) {
  auto [protocol, shards] = GetParam();

  auto baseline = RunScenario(protocol, shards, 2, 0);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->size(), ExpectedPanes());

  auto scaled_up = RunScenario(protocol, shards, 2, 4);
  ASSERT_TRUE(scaled_up.ok()) << scaled_up.status().ToString();
  EXPECT_EQ(*scaled_up, *baseline)
      << "scale-up 2->4 must not change the committed bytes";

  auto scaled_down = RunScenario(protocol, shards, 3, 1);
  ASSERT_TRUE(scaled_down.ok()) << scaled_down.status().ToString();
  EXPECT_EQ(*scaled_down, *baseline)
      << "scale-down 3->1 must not change the committed bytes";
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, uint32_t>>&
        info) {
  std::string name = ProtocolKindName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_shards" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndShards, RescaleStateTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kProgressMarking,
                                         ProtocolKind::kKafkaTxn,
                                         ProtocolKind::kAlignedCheckpoint,
                                         ProtocolKind::kUnsafe),
                       ::testing::Values(1u, 3u)),
    ParamName);

// --- restart after the handoff sealed ---
//
// The rescale handoff is retained on the task entries so a crash mid-handoff
// can redo it; once the new generation commits its first post-rescale cut
// the handoff is sealed and later restarts recover from the task's own
// newer cut/checkpoint. The stale handoff cursors must then be ignored —
// rewinding inputs while state and out_seq come from the newer cut breaks
// exactly-once. kUnsafe is excluded: it makes no exactly-once claim.
class RescaleRestartTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RescaleRestartTest, RestartAfterSealedHandoffMatchesBaseline) {
  ProtocolKind protocol = GetParam();

  auto baseline = RunScenario(protocol, 3, 2, 0);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->size(), ExpectedPanes());

  auto up = RunScenario(protocol, 3, 2, 4, /*restart_after_seal=*/true);
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_EQ(*up, *baseline)
      << "restart after a sealed scale-up handoff changed committed bytes";

  auto down = RunScenario(protocol, 3, 3, 1, /*restart_after_seal=*/true);
  ASSERT_TRUE(down.ok()) << down.status().ToString();
  EXPECT_EQ(*down, *baseline)
      << "restart after a sealed scale-down handoff changed committed bytes";
}

INSTANTIATE_TEST_SUITE_P(
    ExactlyOnceProtocols, RescaleRestartTest,
    ::testing::Values(ProtocolKind::kProgressMarking, ProtocolKind::kKafkaTxn,
                      ProtocolKind::kAlignedCheckpoint),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = ProtocolKindName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

// --- autoscaler: unit level ---

TEST(AutoscalerTest, HysteresisCooldownAndBounds) {
  std::vector<StageStats> sample;
  std::vector<std::pair<std::string, uint32_t>> calls;
  AutoscaleOptions opt;
  opt.ewma_alpha = 1.0;  // no smoothing: the test controls the signal
  opt.up_threshold = 1000;
  opt.down_threshold = 50;
  opt.up_ticks = 2;
  opt.down_ticks = 3;
  opt.cooldown = 0;
  Autoscaler::Hooks hooks;
  hooks.probe = [&] { return sample; };
  hooks.rescale = [&](const std::string& stage, uint32_t n) {
    calls.emplace_back(stage, n);
    sample[0].current_tasks = n;
    return OkStatus();
  };
  Autoscaler scaler(opt, std::move(hooks), MonotonicClock::Get());

  StageStats s;
  s.stage = "agg";
  s.current_tasks = 2;
  s.num_substreams = 6;
  s.stateful = true;
  s.input_lag = 5000;
  sample = {s};

  scaler.RunOnce();  // first sample only seeds the EWMA
  scaler.RunOnce();  // streak 1
  EXPECT_TRUE(calls.empty()) << "hysteresis: one hot tick must not rescale";
  scaler.RunOnce();  // streak 2 -> act
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<std::string, uint32_t>{"agg", 4u}));

  sample[0].input_lag = 5000;
  scaler.RunOnce();
  scaler.RunOnce();
  scaler.RunOnce();  // doubling clamps to the substream budget
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[1].second, 6u) << "max tasks = num_substreams";

  sample[0].input_lag = 0;
  scaler.RunOnce();
  scaler.RunOnce();
  EXPECT_EQ(calls.size(), 2u) << "scale-down is lazier than scale-up";
  scaler.RunOnce();  // down streak 3 -> halve
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[2].second, 3u);

  EXPECT_EQ(scaler.decisions_up(), 2u);
  EXPECT_EQ(scaler.decisions_down(), 1u);
}

TEST(AutoscalerTest, OverrunsCountAsUpPressure) {
  std::vector<StageStats> sample;
  std::vector<uint32_t> targets;
  AutoscaleOptions opt;
  opt.ewma_alpha = 1.0;
  opt.up_threshold = 1000000;  // lag alone never triggers
  opt.up_ticks = 2;
  opt.cooldown = 0;
  Autoscaler::Hooks hooks;
  hooks.probe = [&] { return sample; };
  hooks.rescale = [&](const std::string&, uint32_t n) {
    targets.push_back(n);
    sample[0].current_tasks = n;
    return OkStatus();
  };
  Autoscaler scaler(opt, std::move(hooks), MonotonicClock::Get());

  StageStats s;
  s.stage = "agg";
  s.current_tasks = 1;
  s.num_substreams = 4;
  sample = {s};
  scaler.RunOnce();  // seed
  sample[0].commit_overruns = 3;
  scaler.RunOnce();
  sample[0].commit_overruns = 5;
  scaler.RunOnce();
  ASSERT_EQ(targets.size(), 1u)
      << "a stage missing its commit interval is overloaded even at low lag";
  EXPECT_EQ(targets[0], 2u);
}

TEST(AutoscalerTest, SingleSubstreamStageNeverScales) {
  std::vector<std::pair<std::string, uint32_t>> calls;
  AutoscaleOptions opt;
  opt.up_ticks = 1;
  opt.cooldown = 0;
  Autoscaler::Hooks hooks;
  StageStats s;
  s.stage = "solo";
  s.current_tasks = 1;
  s.num_substreams = 1;
  s.input_lag = 1u << 30;
  hooks.probe = [s] { return std::vector<StageStats>{s}; };
  hooks.rescale = [&](const std::string& stage, uint32_t n) {
    calls.emplace_back(stage, n);
    return OkStatus();
  };
  Autoscaler scaler(opt, std::move(hooks), MonotonicClock::Get());
  for (int i = 0; i < 5; ++i) {
    scaler.RunOnce();
  }
  EXPECT_TRUE(calls.empty());
}

// --- autoscaler: closed loop ---

TEST(AutoscalerTest, ClosedLoopScalesStatefulStageUnderBacklog) {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  options.config.autoscale.enabled = true;
  options.config.autoscale.tick_interval = 10 * kMillisecond;
  options.config.autoscale.up_threshold = 200;
  options.config.autoscale.up_ticks = 2;
  options.config.autoscale.cooldown = 100 * kMillisecond;
  options.config.autoscale.down_ticks = 100000;  // no churn while draining
  Engine engine(std::move(options));

  QueryBuilder qb("auto");
  qb.Ingress("in");
  qb.AddStage("count", 1)
      .WithSubstreams(6)
      .ReadsFrom({"in"})
      .Aggregate("c", count)
      .Sink("auto");
  auto plan = qb.Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "in");
  ASSERT_TRUE(producer.ok());

  // Keep the backlog alive until the controller reacts.
  uint64_t sent = 0;
  Clock* clock = MonotonicClock::Get();
  TimeNs deadline = clock->Now() + 20 * kSecond;
  while (engine.autoscaler()->decisions_up() == 0 &&
         clock->Now() < deadline) {
    for (int i = 0; i < 2000; ++i) {
      (*producer)->Send("k" + std::to_string(sent % 64), "x");
      ++sent;
    }
    ASSERT_TRUE((*producer)->Flush().ok());
    clock->SleepFor(5 * kMillisecond);
  }
  ASSERT_GE(engine.autoscaler()->decisions_up(), 1u)
      << "the controller never reacted to a sustained backlog";

  // The stage really runs wider now...
  uint32_t tasks_after = 0;
  for (const auto& s : engine.tasks()->CollectStageStats()) {
    if (s.stage == "count") {
      tasks_after = s.current_tasks;
    }
  }
  EXPECT_GT(tasks_after, 1u);
  EXPECT_GT(engine.metrics()->GetCounter("autoscale/up")->Get(), 0u);

  // ...and the mid-flight state migration lost nothing: drain and check
  // every per-key running count.
  Counter* out = engine.metrics()->GetCounter("out/auto");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= sent; }, 30 * kSecond));
  engine.Stop();
  std::map<std::string, int64_t> counts;
  for (uint32_t sub = 0; sub < 6; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    ASSERT_TRUE(consumer.ok());
    auto records = (*consumer)->PollAll();
    ASSERT_TRUE(records.ok());
    for (const auto& r : *records) {
      int64_t v = std::stoll(std::string(r.data.value));
      int64_t& slot = counts[std::string(r.data.key)];
      slot = std::max(slot, v);
    }
  }
  uint64_t total = 0;
  for (const auto& [key, n] : counts) {
    total += static_cast<uint64_t>(n);
  }
  EXPECT_EQ(total, sent) << "autoscaled rescale dropped or duplicated state";
}

}  // namespace
}  // namespace impeller
