// Unit tests for the shared log: total order, tag-selective reads, atomic
// multi-tag appends, conditional-append fencing, trim, and metadata.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/threading.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace {

AppendRequest Req(std::vector<std::string> tags, std::string payload) {
  AppendRequest req;
  req.tags = std::move(tags);
  req.payload = std::move(payload);
  return req;
}

TEST(SharedLogTest, AppendAssignsDenseLsns) {
  SharedLog log;
  for (uint64_t i = 0; i < 10; ++i) {
    auto lsn = log.Append(Req({"a"}, "p" + std::to_string(i)));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, i);
  }
  EXPECT_EQ(log.TailLsn(), 10u);
}

TEST(SharedLogTest, SelectiveReadFollowsTag) {
  SharedLog log;
  ASSERT_TRUE(log.Append(Req({"a"}, "1")).ok());
  ASSERT_TRUE(log.Append(Req({"b"}, "2")).ok());
  ASSERT_TRUE(log.Append(Req({"a"}, "3")).ok());

  auto first = log.ReadNext("a", 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, "1");
  auto second = log.ReadNext("a", first->lsn + 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, "3");
  EXPECT_EQ(log.ReadNext("a", second->lsn + 1).status().code(),
            StatusCode::kNotFound);
}

TEST(SharedLogTest, MultiTagAppendVisibleOnAllTags) {
  // The atomic multi-stream append of §3.2: one record, one LSN, readable
  // from every tagged substream.
  SharedLog log;
  auto lsn = log.Append(Req({"x/1", "x/2", "t/task"}, "marker"));
  ASSERT_TRUE(lsn.ok());
  for (const char* tag : {"x/1", "x/2", "t/task"}) {
    auto got = log.ReadNext(tag, 0);
    ASSERT_TRUE(got.ok()) << tag;
    EXPECT_EQ(got->lsn, *lsn);
    EXPECT_EQ(got->payload, "marker");
  }
}

TEST(SharedLogTest, ConditionalAppendFencesStaleInstance) {
  SharedLog log;
  log.MetaPut("inst/t1", 2);

  AppendRequest stale = Req({"a"}, "zombie");
  stale.cond_key = "inst/t1";
  stale.cond_value = 1;
  auto fenced = log.Append(std::move(stale));
  ASSERT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), StatusCode::kFenced);

  AppendRequest current = Req({"a"}, "live");
  current.cond_key = "inst/t1";
  current.cond_value = 2;
  EXPECT_TRUE(log.Append(std::move(current)).ok());
  EXPECT_EQ(log.stats().fenced_appends, 1u);
}

TEST(SharedLogTest, ConditionalAppendOnMissingKeyTreatsValueAsZero) {
  SharedLog log;
  AppendRequest req = Req({"a"}, "p");
  req.cond_key = "inst/unknown";
  req.cond_value = 0;
  EXPECT_TRUE(log.Append(std::move(req)).ok());
}

TEST(SharedLogTest, BatchAppendIsContiguousAndAllOrNothing) {
  SharedLog log;
  log.MetaPut("inst/t1", 5);
  std::vector<AppendRequest> batch;
  batch.push_back(Req({"a"}, "1"));
  AppendRequest fenced = Req({"b"}, "2");
  fenced.cond_key = "inst/t1";
  fenced.cond_value = 4;
  batch.push_back(std::move(fenced));
  auto lsns = log.AppendBatch(batch);
  ASSERT_FALSE(lsns.ok());
  EXPECT_EQ(lsns.status().code(), StatusCode::kFenced);
  EXPECT_EQ(log.TailLsn(), 0u) << "fenced batch must not append anything";

  std::vector<AppendRequest> ok_batch;
  for (int i = 0; i < 5; ++i) {
    ok_batch.push_back(Req({"a"}, std::to_string(i)));
  }
  auto ok = log.AppendBatch(ok_batch);
  ASSERT_TRUE(ok.ok());
  for (size_t i = 0; i < ok->size(); ++i) {
    EXPECT_EQ((*ok)[i], i);
  }
}

TEST(SharedLogTest, RejectedBatchLeavesRequestsIntactForRetry) {
  // AppendBatch's retry contract: on any failure the requests are untouched
  // (payloads not moved out), so a caller can re-issue the identical batch —
  // here after the fencing condition is repaired.
  SharedLog log;
  log.MetaPut("inst/t1", 5);
  std::vector<AppendRequest> batch;
  batch.push_back(Req({"a"}, "payload-a"));
  AppendRequest cond = Req({"b"}, "payload-b");
  cond.cond_key = "inst/t1";
  cond.cond_value = 4;
  batch.push_back(std::move(cond));

  ASSERT_EQ(log.AppendBatch(batch).status().code(), StatusCode::kFenced);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].payload, "payload-a");
  EXPECT_EQ(batch[1].payload, "payload-b");
  EXPECT_EQ(batch[1].cond_key, "inst/t1");

  log.MetaPut("inst/t1", 4);
  auto ok = log.AppendBatch(batch);
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->size(), 2u);
  auto got = log.ReadNext("b", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "payload-b");
}

TEST(SharedLogTest, TrimWakesBlockedAwaitNext) {
  // A reader blocked in AwaitNext on a record still in delivery must learn
  // about a concurrent Trim immediately, not after the delivery wait runs
  // out. The delivery latency is far beyond the assertion bound, so a fast
  // kTrimmed return is only explainable by Trim's wakeup.
  CalibratedLatencyParams params;
  params.ack_median = 1 * kMillisecond;
  params.ack_sigma = 0.01;
  params.delivery_median = 5 * kSecond;
  params.delivery_sigma = 0.01;
  SharedLogOptions opts;
  opts.latency = std::make_shared<CalibratedLatencyModel>(params, 1);
  SharedLog log(std::move(opts));

  ASSERT_TRUE(log.Append(Req({"a"}, "slow")).ok());
  TimeNs t0 = MonotonicClock::Get()->Now();
  JoiningThread trimmer([&log] {
    MonotonicClock::Get()->SleepFor(50 * kMillisecond);
    ASSERT_TRUE(log.Trim(1).ok());
  });
  auto got = log.AwaitNext("a", 0, 10 * kSecond);
  TimeNs elapsed = MonotonicClock::Get()->Now() - t0;
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTrimmed);
  EXPECT_LT(elapsed, 2 * kSecond);
}

TEST(SharedLogTest, ReadLastReturnsNewest) {
  SharedLog log;
  ASSERT_TRUE(log.Append(Req({"t/x"}, "old")).ok());
  ASSERT_TRUE(log.Append(Req({"other"}, "noise")).ok());
  ASSERT_TRUE(log.Append(Req({"t/x"}, "new")).ok());
  auto last = log.ReadLast("t/x");
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->payload, "new");
  EXPECT_EQ(log.ReadLast("missing").status().code(), StatusCode::kNotFound);
}

TEST(SharedLogTest, TrimDropsPrefixAndFlagsStaleCursors) {
  SharedLog log;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.Append(Req({"a"}, std::to_string(i))).ok());
  }
  ASSERT_TRUE(log.Trim(5).ok());
  EXPECT_EQ(log.TrimPoint(), 5u);
  // Cursor pointing at a trimmed record of this tag must error, not skip.
  EXPECT_EQ(log.ReadNext("a", 3).status().code(), StatusCode::kTrimmed);
  auto ok = log.ReadNext("a", 5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->payload, "5");
  // Direct read below the trim point errors.
  EXPECT_EQ(log.ReadAt(2).status().code(), StatusCode::kTrimmed);
  // Idempotent / stale trims are fine; beyond-tail trims are not.
  EXPECT_TRUE(log.Trim(5).ok());
  EXPECT_TRUE(log.Trim(2).ok());
  EXPECT_EQ(log.Trim(100).code(), StatusCode::kOutOfRange);
}

TEST(SharedLogTest, TrimOnlyFlagsTagsThatLostRecords) {
  SharedLog log;
  ASSERT_TRUE(log.Append(Req({"a"}, "0")).ok());   // lsn 0
  ASSERT_TRUE(log.Append(Req({"b"}, "1")).ok());   // lsn 1
  ASSERT_TRUE(log.Append(Req({"b"}, "2")).ok());   // lsn 2
  ASSERT_TRUE(log.Trim(2).ok());
  // Tag "b" lost lsn 1: cursor 0 on "b" is stale.
  EXPECT_EQ(log.ReadNext("b", 0).status().code(), StatusCode::kTrimmed);
  // But from 2 it reads fine.
  EXPECT_TRUE(log.ReadNext("b", 2).ok());
}

TEST(SharedLogTest, AwaitNextWakesOnAppend) {
  SharedLog log;
  JoiningThread appender([&log] {
    MonotonicClock::Get()->SleepFor(20 * kMillisecond);
    ASSERT_TRUE(log.Append(Req({"a"}, "late")).ok());
  });
  auto got = log.AwaitNext("a", 0, 2 * kSecond);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->payload, "late");
}

TEST(SharedLogTest, AwaitNextTimesOut) {
  SharedLog log;
  auto got = log.AwaitNext("never", 0, 30 * kMillisecond);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SharedLogTest, MetadataIncrementAndCas) {
  SharedLog log;
  EXPECT_EQ(log.MetaGet("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(log.MetaIncrement("k"), 1u);
  EXPECT_EQ(log.MetaIncrement("k"), 2u);
  EXPECT_EQ(*log.MetaGet("k"), 2u);
  EXPECT_FALSE(log.MetaCas("k", 1, 9));
  EXPECT_TRUE(log.MetaCas("k", 2, 9));
  EXPECT_EQ(*log.MetaGet("k"), 9u);
}

TEST(SharedLogTest, LatencyModelDelaysVisibility) {
  CalibratedLatencyParams params;
  params.ack_median = 2 * kMillisecond;
  params.ack_sigma = 0.01;
  params.delivery_median = 10 * kMillisecond;
  params.delivery_sigma = 0.01;
  SharedLogOptions opts;
  opts.latency = std::make_shared<CalibratedLatencyModel>(params, 1);
  SharedLog log(std::move(opts));

  TimeNs t0 = MonotonicClock::Get()->Now();
  auto lsn = log.Append(Req({"a"}, "delayed"));
  ASSERT_TRUE(lsn.ok());
  TimeNs acked = MonotonicClock::Get()->Now();
  EXPECT_GE(acked - t0, 1 * kMillisecond) << "append blocks for the ack";
  // Not yet visible to tag readers (delivery pending)...
  EXPECT_EQ(log.ReadNext("a", 0).status().code(), StatusCode::kNotFound);
  // ...but already durable for recovery reads.
  EXPECT_TRUE(log.ReadLast("a").ok());
  auto got = log.AwaitNext("a", 0, kSecond);
  ASSERT_TRUE(got.ok());
  TimeNs seen = MonotonicClock::Get()->Now();
  EXPECT_GE(seen - t0, 8 * kMillisecond);
}

TEST(SharedLogTest, ConcurrentAppendersGetUniqueLsns) {
  SharedLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<Lsn>> lsns(kThreads);
  {
    std::vector<JoiningThread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&log, &lsns, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto lsn = log.Append(
              AppendRequest{{"tag" + std::to_string(t)},
                            "p",
                            "",
                            0});
          ASSERT_TRUE(lsn.ok());
          lsns[t].push_back(*lsn);
        }
      });
    }
  }
  std::set<Lsn> all;
  for (const auto& per_thread : lsns) {
    // Per-appender LSNs must be strictly increasing (program order).
    for (size_t i = 1; i < per_thread.size(); ++i) {
      EXPECT_LT(per_thread[i - 1], per_thread[i]);
    }
    all.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.TailLsn(), static_cast<Lsn>(kThreads * kPerThread));
}

class TagFanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(TagFanoutSweep, OneRecordReadableFromNTags) {
  SharedLog log;
  int n = GetParam();
  std::vector<std::string> tags;
  for (int i = 0; i < n; ++i) {
    tags.push_back("fan/" + std::to_string(i));
  }
  auto lsn = log.Append(Req(tags, "fanout"));
  ASSERT_TRUE(lsn.ok());
  for (const auto& tag : tags) {
    auto got = log.ReadNext(tag, 0);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->lsn, *lsn);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanout, TagFanoutSweep,
                         ::testing::Values(1, 2, 8, 64, 256));

}  // namespace
}  // namespace impeller
