// Plan-layer tests: IR JSON round-trip, structural validation errors,
// each optimizer pass in isolation, fusion on linear / rekeyed / join /
// diamond shapes, lowering errors, and an end-to-end engine run of a
// lowered diamond plan (fan-out stage).
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/plan/explain.h"
#include "src/plan/ir.h"
#include "src/plan/json.h"
#include "src/plan/lowering.h"
#include "src/plan/optimizer.h"
#include "src/plan/passes/passes.h"
#include "src/plan/registry.h"
#include "tests/test_util.h"

// gtest-only build (no gmock linked): substring assertion by hand.
#define EXPECT_SUBSTR(haystack, needle)                   \
  EXPECT_NE((haystack).find(needle), std::string::npos)   \
      << "expected \"" << (needle) << "\" in:\n"          \
      << (haystack)

namespace impeller {
namespace plan {
namespace {

UdfRegistry TestRegistry() {
  UdfRegistry reg;
  reg.RegisterPredicate("nonempty",
                        [](const StreamRecord& r) { return !r.value.empty(); });
  reg.RegisterMap("tag", [](StreamRecord r) {
    r.value += "!";
    return r;
  });
  reg.RegisterKey("by_value", [](const StreamRecord& r) { return r.value; });
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  reg.RegisterAggregate("count", count);
  reg.RegisterJoin("concat", [](std::string_view a, std::string_view b) {
    return std::string(a) + "|" + std::string(b);
  });
  return reg;
}

// --- JSON document model ---

TEST(PlanJsonTest, RoundTripsValues) {
  auto parsed = Json::Parse(
      R"({"s": "a\"b", "n": 42, "f": 1.5, "b": true, "x": null,
          "a": [1, 2, 3], "o": {"k": "v"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s"), "a\"b");
  EXPECT_EQ(parsed->GetInt("n"), 42);
  ASSERT_NE(parsed->Find("a"), nullptr);
  EXPECT_EQ(parsed->Find("a")->size(), 3u);
  // Dump -> Parse -> Dump is a fixpoint.
  std::string dumped = parsed->Dump(2);
  auto reparsed = Json::Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(2), dumped);
}

TEST(PlanJsonTest, ErrorsCarryByteOffset) {
  auto bad = Json::Parse("{\"a\": }");
  ASSERT_FALSE(bad.ok());
  EXPECT_SUBSTR(bad.status().message(), "byte 6");
}

TEST(PlanJsonTest, RejectsDuplicateKeysAndTrailingGarbage) {
  EXPECT_FALSE(Json::Parse(R"({"a": 1, "a": 2})").ok());
  EXPECT_FALSE(Json::Parse("[1, 2] trailing").ok());
}

// --- IR construction + serialization ---

// filter -> key_by -> aggregate -> sink; node ids src_in, f2, k3, agg4,
// sink5 (the id counter covers sources too).
LogicalPlan SmallPlan() {
  PlanBuilder pb("t", 2);
  auto src = pb.Source("in");
  auto f = pb.Filter(src, "nonempty").Stage("head");
  auto k = pb.KeyBy(f, "by_value").Via("t.keyed");
  auto agg = pb.Aggregate(k, "store", "count");
  pb.Sink(agg, "t");
  auto built = pb.Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return *built;
}

TEST(PlanIrTest, JsonRoundTripIsLossless) {
  LogicalPlan original = SmallPlan();
  std::string json = original.ToJson();
  auto restored = LogicalPlan::FromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToJson(), json);
  EXPECT_EQ(restored->nodes.size(), original.nodes.size());
  EXPECT_EQ(restored->default_tasks, 2u);
  ASSERT_NE(restored->FindNode("f2"), nullptr);
  EXPECT_EQ(restored->FindNode("f2")->stage_hint, "head");
  EXPECT_EQ(restored->FindNode("k3")->stream, "t.keyed");
}

TEST(PlanIrTest, WindowAndJoinAttributesRoundTrip) {
  PlanBuilder pb("w", 1);
  auto l = pb.Source("l");
  auto r = pb.Source("r");
  auto j = pb.JoinStreams(l, r, "js", 5 * kSecond, "concat",
                          7 * kMillisecond);
  auto w = pb.WindowAggregate(
      j, "ws", WindowSpec::Sliding(10 * kSecond, 2 * kSecond), "count",
      3 * kMillisecond, WindowEmitMode::kEagerSuppressed, 50 * kMillisecond);
  pb.Sink(w, "w");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto restored = LogicalPlan::FromJson(built->ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const PlanNode* join = restored->FindNode("join3");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->join_window, 5 * kSecond);
  EXPECT_EQ(join->allowed_lateness, 7 * kMillisecond);
  EXPECT_EQ(join->inputs, (std::vector<std::string>{"src_l", "src_r"}));
  const PlanNode* wagg = restored->FindNode("wagg4");
  ASSERT_NE(wagg, nullptr);
  EXPECT_EQ(wagg->window_size, 10 * kSecond);
  EXPECT_EQ(wagg->window_slide, 2 * kSecond);
  EXPECT_EQ(wagg->emit_mode, WindowEmitMode::kEagerSuppressed);
  EXPECT_EQ(wagg->suppress_interval, 50 * kMillisecond);
  EXPECT_EQ(wagg->allowed_lateness, 3 * kMillisecond);
}

TEST(PlanIrTest, TopoOrderIsDeterministicAndRespectsEdges) {
  LogicalPlan p = SmallPlan();
  std::vector<std::string> order = p.TopoOrder();
  ASSERT_EQ(order.size(), p.nodes.size());
  auto pos = [&](const std::string& id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos("src_in"), pos("f2"));
  EXPECT_LT(pos("f2"), pos("k3"));
  EXPECT_LT(pos("agg4"), pos("sink5"));
  EXPECT_EQ(order, p.TopoOrder());
}

// --- validation errors ---

TEST(PlanValidateTest, RequiresSourceAndSink) {
  PlanBuilder pb("v");
  auto src = pb.Source("in");
  pb.Filter(src, "nonempty");
  auto no_sink = pb.Build();
  ASSERT_FALSE(no_sink.ok());
  EXPECT_SUBSTR(no_sink.status().message(), "no sink node");
}

TEST(PlanValidateTest, ReportsUnconsumedNode) {
  PlanBuilder pb("v");
  auto src = pb.Source("in");
  auto f = pb.Filter(src, "nonempty");
  pb.Map(f, "tag");  // dangling: m3
  pb.Sink(f, "v");
  auto built = pb.Build();
  ASSERT_FALSE(built.ok());
  EXPECT_SUBSTR(built.status().message(), "never consumed");
  EXPECT_SUBSTR(built.status().message(), "m3");
}

TEST(PlanValidateTest, ReportsDuplicateNodeId) {
  PlanBuilder pb("v");
  auto src = pb.Source("in");
  auto f = pb.Filter(src, "nonempty").Id("dup");
  pb.Map(f, "tag").Id("dup");
  Status st = pb.plan().Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_SUBSTR(st.message(), "duplicate node id 'dup'");
}

TEST(PlanValidateTest, ReportsUnknownInput) {
  LogicalPlan p = SmallPlan();
  p.FindNode("k3")->inputs[0] = "ghost";
  Status st = p.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_SUBSTR(st.message(), "reads unknown node 'ghost'");
  EXPECT_SUBSTR(st.message(), "k3");
}

TEST(PlanValidateTest, ReportsCycleWithNodeIds) {
  // A detached two-node cycle rides along a valid pipeline: each cycle node
  // is consumed (by the other), so only the acyclicity check can catch it.
  LogicalPlan p = SmallPlan();
  PlanNode a;
  a.id = "cyc_a";
  a.kind = OpKind::kFilter;
  a.expr = "nonempty";
  a.inputs = {"cyc_b"};
  PlanNode b;
  b.id = "cyc_b";
  b.kind = OpKind::kMap;
  b.expr = "tag";
  b.inputs = {"cyc_a"};
  p.nodes.push_back(std::move(a));
  p.nodes.push_back(std::move(b));
  Status st = p.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_SUBSTR(st.message(), "cycle");
  EXPECT_SUBSTR(st.message(), "cyc_a");
}

TEST(PlanValidateTest, PerKindAttributeChecksAreActionable) {
  {
    PlanBuilder pb("v");
    auto src = pb.Source("in");
    pb.Sink(pb.Filter(src, ""), "v");
    auto built = pb.Build();
    ASSERT_FALSE(built.ok());
    EXPECT_SUBSTR(built.status().message(), "expression handle");
  }
  {
    PlanBuilder pb("v");
    auto src = pb.Source("in");
    pb.Sink(pb.WindowAggregate(src, "s", WindowSpec::Tumbling(0), "count"),
            "v");
    auto built = pb.Build();
    ASSERT_FALSE(built.ok());
    EXPECT_SUBSTR(built.status().message(), "window_size");
  }
  {
    PlanBuilder pb("v");
    auto l = pb.Source("l");
    auto r = pb.Source("r");
    pb.Sink(pb.JoinStreams(l, r, "s", /*window=*/0, "concat"), "v");
    auto built = pb.Build();
    ASSERT_FALSE(built.ok());
    EXPECT_SUBSTR(built.status().message(), "join_window");
  }
  {
    PlanBuilder pb("v");
    auto src = pb.Source("in");
    pb.Sink(pb.TableAggregate(src, "s", /*group_key=*/"", "count"), "v");
    auto built = pb.Build();
    ASSERT_FALSE(built.ok());
    EXPECT_SUBSTR(built.status().message(), "group_key");
  }
}

TEST(PlanValidateTest, FromJsonValidates) {
  // Structurally well-formed JSON, semantically invalid plan (no sink).
  auto restored = LogicalPlan::FromJson(
      R"({"name": "x", "nodes": [
            {"id": "s", "kind": "source", "stream": "in"},
            {"id": "f", "kind": "filter", "inputs": ["s"], "expr": "p"}]})");
  ASSERT_FALSE(restored.ok());
  EXPECT_SUBSTR(restored.status().message(), "no sink node");
}

// --- optimizer passes in isolation ---

TEST(PushdownPassTest, HoistsFilterAboveDeclaredPureMap) {
  UdfRegistry reg = TestRegistry();
  reg.RegisterMap(
      "proj", [](StreamRecord r) { return r; },
      UdfTraits::Pure(/*reads=*/{"a"}, /*preserves=*/{"b"}));
  reg.RegisterPredicate(
      "sel_b", [](const StreamRecord&) { return true; },
      UdfTraits::Pure(/*reads=*/{"b"}));

  PlanBuilder pb("p");
  auto src = pb.Source("in");
  auto m = pb.Map(src, "proj");
  auto f = pb.Filter(m, "sel_b");
  pb.Sink(f, "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());

  LogicalPlan p = *built;
  PassContext ctx;
  ctx.plan = &p;
  ctx.registry = &reg;
  auto rewrites = MakePredicatePushdownPass()->Run(&ctx);
  ASSERT_TRUE(rewrites.ok()) << rewrites.status().ToString();
  EXPECT_EQ(*rewrites, 1);
  // filter now reads the source; map reads the filter.
  EXPECT_EQ(p.FindNode("f3")->inputs[0], "src_in");
  EXPECT_EQ(p.FindNode("m2")->inputs[0], "f3");
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PushdownPassTest, ConservativeTraitsBlockHoisting) {
  UdfRegistry reg = TestRegistry();  // no traits declared anywhere
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  auto f = pb.Filter(pb.Map(src, "tag"), "nonempty");
  pb.Sink(f, "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  LogicalPlan p = *built;
  PassContext ctx;
  ctx.plan = &p;
  ctx.registry = &reg;
  auto rewrites = MakePredicatePushdownPass()->Run(&ctx);
  ASSERT_TRUE(rewrites.ok());
  EXPECT_EQ(*rewrites, 0);
  EXPECT_EQ(p.FindNode("f3")->inputs[0], "m2");
}

TEST(PushdownPassTest, HoistsPastKeyByOnlyWhenKeyUnread) {
  UdfRegistry reg = TestRegistry();
  reg.RegisterPredicate(
      "value_only", [](const StreamRecord&) { return true; },
      UdfTraits::Pure(/*reads=*/{"v"}));
  // "nonempty" keeps the conservative default (reads_key = true).
  const std::vector<std::pair<std::string, int>> cases = {
      {"value_only", 1}, {"nonempty", 0}};
  for (const auto& [pred, expected_rewrites] : cases) {
    PlanBuilder pb("p");
    auto src = pb.Source("in");
    auto f = pb.Filter(pb.KeyBy(src, "by_value"), pred);
    pb.Sink(f, "p");
    auto built = pb.Build();
    ASSERT_TRUE(built.ok());
    LogicalPlan p = *built;
    PassContext ctx;
    ctx.plan = &p;
    ctx.registry = &reg;
    auto rewrites = MakePredicatePushdownPass()->Run(&ctx);
    ASSERT_TRUE(rewrites.ok());
    EXPECT_EQ(*rewrites, expected_rewrites) << pred;
  }
}

TEST(ProjectionPassTest, ComputesPrunableStreams) {
  UdfRegistry reg = TestRegistry();
  reg.RegisterSchema("in", {"a", "b", "c"});
  reg.RegisterMap("proj_a", [](StreamRecord r) { return r; },
                  UdfTraits::Pure(/*reads=*/{"a"}));
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Map(src, "proj_a"), "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  LogicalPlan p = *built;
  PassContext ctx;
  ctx.plan = &p;
  ctx.registry = &reg;
  auto pruned = MakeProjectionPruningPass()->Run(&ctx);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(*pruned, 1);
  ASSERT_EQ(ctx.pruned_fields.count("in"), 1u);
  EXPECT_EQ(ctx.pruned_fields["in"], (std::set<std::string>{"a"}));
}

TEST(ProjectionPassTest, UndeclaredUdfDisablesPruning) {
  UdfRegistry reg = TestRegistry();
  reg.RegisterSchema("in", {"a", "b", "c"});
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Map(src, "tag"), "p");  // "tag" has conservative traits
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  LogicalPlan p = *built;
  PassContext ctx;
  ctx.plan = &p;
  ctx.registry = &reg;
  auto pruned = MakeProjectionPruningPass()->Run(&ctx);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, 0);
  EXPECT_TRUE(ctx.pruned_fields.empty());
}

// --- fusion shapes ---

std::vector<std::vector<std::string>> FuseGroups(const LogicalPlan& p,
                                                 bool fuse = true) {
  LogicalPlan copy = p;
  UdfRegistry reg = TestRegistry();
  PassContext ctx;
  ctx.plan = &copy;
  ctx.registry = &reg;
  auto rewrites = MakeFusionPass(fuse)->Run(&ctx);
  EXPECT_TRUE(rewrites.ok()) << rewrites.status().ToString();
  return ctx.groups;
}

TEST(FusionPassTest, LinearStatelessChainFusesToOneStage) {
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Map(pb.Filter(src, "nonempty"), "tag"), "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  auto groups = FuseGroups(*built);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"f2", "m3", "sink4"}));
}

TEST(FusionPassTest, StatefulAfterKeyByStartsNewStage) {
  LogicalPlan p = SmallPlan();  // filter -> key_by -> aggregate -> sink
  auto groups = FuseGroups(p);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"f2", "k3"}));
  EXPECT_EQ(groups[1], (std::vector<std::string>{"agg4", "sink5"}));
}

TEST(FusionPassTest, StatelessAfterKeyByFuses) {
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Map(pb.KeyBy(src, "by_value"), "tag"), "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(FuseGroups(*built).size(), 1u);
}

TEST(FusionPassTest, JoinHeadsItsOwnStage) {
  PlanBuilder pb("p");
  auto l = pb.KeyBy(pb.Source("l"), "by_value");
  auto r = pb.KeyBy(pb.Source("r"), "by_value");
  auto j = pb.JoinStreams(l, r, "js", kSecond, "concat");
  pb.Sink(j, "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  auto groups = FuseGroups(*built);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[2].front(), "join5");
  EXPECT_EQ(groups[2].back(), "sink6");
}

TEST(FusionPassTest, DiamondSplitsAtFanOut) {
  PlanBuilder pb("d");
  auto src = pb.Source("in");
  auto m = pb.Map(src, "tag").Stage("split");
  auto left = pb.Filter(m, "nonempty").Stage("left");
  auto right = pb.Map(m, "tag").Stage("right");
  pb.Sink(left, "l");
  pb.Sink(right, "r");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  auto groups = FuseGroups(*built);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<std::string>{"m2"}));
  EXPECT_EQ(groups[1], (std::vector<std::string>{"f3", "sink5"}));
  EXPECT_EQ(groups[2], (std::vector<std::string>{"m4", "sink6"}));
}

TEST(FusionPassTest, DisabledFusionGivesEveryOperatorItsOwnStage) {
  LogicalPlan p = SmallPlan();  // 4 non-source nodes
  auto groups = FuseGroups(p, /*fuse=*/false);
  EXPECT_EQ(groups.size(), 4u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.size(), 1u);
  }
}

// --- optimizer + lowering ---

TEST(LoweringTest, MissingHandleErrorNamesHandleAndRegistration) {
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Filter(src, "no_such_predicate"), "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  UdfRegistry reg;  // empty
  auto optimized = Optimizer::Default().Run(*built, reg);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_FALSE(lowered.ok());
  EXPECT_SUBSTR(lowered.status().message(), "'no_such_predicate'");
  EXPECT_SUBSTR(lowered.status().message(), "RegisterPredicate");
}

TEST(LoweringTest, SharedIngressRejectedWithActionableError) {
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Filter(src, "nonempty"), "a");
  pb.Sink(pb.Map(src, "tag"), "b");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  UdfRegistry reg = TestRegistry();
  auto optimized = Optimizer::Default().Run(*built, reg);
  ASSERT_TRUE(optimized.ok());
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_FALSE(lowered.ok());
  EXPECT_SUBSTR(lowered.status().message(), "single-consumer");
}

TEST(LoweringTest, FusedPlanLowersWithHintsApplied) {
  LogicalPlan p = SmallPlan();
  UdfRegistry reg = TestRegistry();
  auto optimized = Optimizer::Default().Run(p, reg);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->hops_eliminated, 2);
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  ASSERT_EQ(lowered->query.stages.size(), 2u);
  EXPECT_EQ(lowered->query.stages[0].name, "head");  // stage_hint
  EXPECT_EQ(lowered->query.stages[1].name, "agg4");  // node-id fallback
  EXPECT_NE(lowered->query.FindStream("t.keyed"), nullptr);  // Via hint
  EXPECT_EQ(lowered->query.stages[0].num_tasks, 2u);  // default_tasks
  EXPECT_FALSE(lowered->query.stages[0].stateful);
  EXPECT_TRUE(lowered->query.stages[1].stateful);
}

TEST(LoweringTest, ProjectorInsertedForPrunedStream) {
  UdfRegistry reg = TestRegistry();
  reg.RegisterSchema("in", {"a", "b"});
  reg.RegisterMap("proj_a", [](StreamRecord r) { return r; },
                  UdfTraits::Pure(/*reads=*/{"a"}));
  reg.RegisterProjector("in", {"a"}, [](StreamRecord r) { return r; });
  PlanBuilder pb("p");
  auto src = pb.Source("in");
  pb.Sink(pb.Map(src, "proj_a"), "p");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok());
  auto optimized = Optimizer::Default().Run(*built, reg);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_EQ(optimized->pruned_fields.count("in"), 1u);
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  EXPECT_SUBSTR(lowered->stages[0].projection, "in");
  // projector + map + sink
  EXPECT_EQ(lowered->query.stages[0].operators.size(), 3u);
}

// --- explain ---

TEST(ExplainTest, TextShowsStagesStreamsAndEliminatedHops) {
  LogicalPlan p = SmallPlan();
  UdfRegistry reg = TestRegistry();
  auto optimized = Optimizer::Default().Run(p, reg);
  ASSERT_TRUE(optimized.ok());
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_TRUE(lowered.ok());
  std::string text = ExplainText(*lowered);
  EXPECT_SUBSTR(text, "== plan 't' ==");
  EXPECT_SUBSTR(text, "log hops eliminated by fusion: 2");
  EXPECT_SUBSTR(text, "stage head");
  EXPECT_SUBSTR(text, "t.keyed");
  EXPECT_SUBSTR(text, "filter(nonempty) -> key_by(by_value)");
  EXPECT_SUBSTR(text, "stateful");
  EXPECT_SUBSTR(text, "f2 => k3");
  std::string dot = ExplainDot(*lowered);
  EXPECT_SUBSTR(dot, "digraph \"t\"");
  EXPECT_SUBSTR(dot, "stage:head");
  EXPECT_SUBSTR(dot, "->");
}

// --- end-to-end: lowered diamond plan runs on the engine ---

TEST(PlanEndToEndTest, DiamondPlanFansOutToBothSinks) {
  PlanBuilder pb("d", 1);
  auto src = pb.Source("in");
  auto m = pb.Map(src, "tag").Stage("split");
  auto left = pb.Filter(m, "nonempty").Stage("left");
  auto right = pb.Map(m, "tag").Stage("right");
  pb.Sink(left, "l");
  pb.Sink(right, "r");
  auto built = pb.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  UdfRegistry reg = TestRegistry();
  auto optimized = Optimizer::Default().Run(*built, reg);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto lowered = LowerPlan(*optimized, reg);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  ASSERT_EQ(lowered->query.stages.size(), 3u);
  EXPECT_TRUE(lowered->stages[0].fans_out);

  EngineOptions options;
  options.config = testutil::FastConfig(ProtocolKind::kProgressMarking);
  options.name = "plan-e2e";
  Engine engine(std::move(options));
  ASSERT_TRUE(engine.Submit(lowered->query).ok());
  auto producer = engine.NewProducer("gen", "in");
  ASSERT_TRUE(producer.ok()) << producer.status().ToString();
  constexpr size_t kCount = 12;
  for (size_t i = 0; i < kCount; ++i) {
    (*producer)->Send("k" + std::to_string(i % 3), "v" + std::to_string(i),
                      kSecond + i * kMillisecond);
  }
  ASSERT_TRUE(testutil::FlushUntilDrained(**producer, engine.clock()).ok());

  auto count_egress = [&](const std::string& stage) -> size_t {
    auto consumer = engine.NewEgressConsumer(stage, 0);
    if (!consumer.ok()) {
      return 0;
    }
    auto records = (*consumer)->PollAll();
    return records.ok() ? records->size() : 0;
  };
  EXPECT_TRUE(testutil::WaitFor([&] {
    return count_egress("left") >= kCount && count_egress("right") >= kCount;
  })) << "left=" << count_egress("left")
      << " right=" << count_egress("right");
  engine.Stop();

  // Values confirm the per-branch chains: split tags once, right tags again.
  auto consumer = engine.NewEgressConsumer("right", 0);
  ASSERT_TRUE(consumer.ok());
  auto records = (*consumer)->PollAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), kCount);
  for (const auto& r : *records) {
    ASSERT_GE(r.data.value.size(), 2u);
    EXPECT_EQ(r.data.value.substr(r.data.value.size() - 2), "!!");
  }
}

}  // namespace
}  // namespace plan
}  // namespace impeller
