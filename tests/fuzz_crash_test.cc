// Crash-timing fuzz: inject crashes at randomized moments while data flows
// and verify the exactly-once invariant survives every interleaving — the
// paper's §3.3 claim ("maintain their invariants during arbitrary
// failures") exercised adversarially. Parameterized over protocol and seed.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

struct FuzzCase {
  ProtocolKind protocol;
  uint64_t seed;
};

class CrashFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrashFuzz, ExactlyOnceUnderRandomCrashes) {
  const FuzzCase& fuzz = GetParam();
  Rng rng(fuzz.seed);

  EngineOptions options;
  options.config = FastConfig(fuzz.protocol);
  options.config.commit_interval = 15 * kMillisecond;
  options.config.snapshot_interval = 120 * kMillisecond;
  Engine engine(std::move(options));
  auto plan = WordCountPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());

  const std::vector<std::string> victims = {"wc/split/0", "wc/split/1",
                                            "wc/count/0", "wc/count/1"};
  Clock* clock = engine.clock();
  int64_t lines_sent = 0;
  for (int round = 0; round < 8; ++round) {
    // A burst of input...
    int lines = static_cast<int>(rng.NextRange(5, 25));
    for (int i = 0; i < lines; ++i) {
      (*producer)->Send("k" + std::to_string(rng.NextBounded(16)),
                        "fuzz words here");
    }
    ASSERT_TRUE((*producer)->Flush().ok());
    lines_sent += lines;
    // ...a random pause so crashes land in different protocol phases...
    clock->SleepFor(rng.NextRange(1, 40) * kMillisecond);
    // ...then a crash of a random task, immediately restarted.
    const std::string& victim = victims[rng.NextBounded(victims.size())];
    auto stats = engine.tasks()->RestartTask(victim);
    ASSERT_TRUE(stats.ok()) << "round " << round << " victim " << victim
                            << ": " << stats.status().ToString();
  }

  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor(
      [&] { return out->Get() >= static_cast<uint64_t>(3 * lines_sent); },
      30 * kSecond))
      << out->Get() << "/" << 3 * lines_sent;
  engine.Stop();

  auto counts = ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["fuzz"], lines_sent);
  EXPECT_EQ((*counts)["words"], lines_sent);
  EXPECT_EQ((*counts)["here"], lines_sent);
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({ProtocolKind::kProgressMarking, seed});
  }
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    cases.push_back({ProtocolKind::kKafkaTxn, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashFuzz, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      std::string name = ProtocolKindName(info.param.protocol);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace impeller
