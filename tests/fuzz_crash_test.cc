// Crash-timing fuzz, smoke tier of the chaos harness (tests/chaos_test.cc):
// seeded FaultInjector schedules crash tasks and coordinators at randomized
// protocol phases while data flows, the auto-restart monitor brings them
// back, and the exactly-once invariant must survive every interleaving —
// the paper's §3.3 claim ("maintain their invariants during arbitrary
// failures") exercised adversarially. Parameterized over protocol and seed;
// a failure replays from its seed.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fault/fault.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;
using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

struct FuzzCase {
  ProtocolKind protocol;
  uint64_t seed;
};

// Crash points this protocol's tasks and coordinator pass through.
std::vector<std::string> CrashPoints(ProtocolKind protocol) {
  if (protocol == ProtocolKind::kKafkaTxn) {
    return {"task/flush/pre", "task/flush/post", "txn/phase2",
            "txn/post_commit"};
  }
  return {"task/commit/pre_marker", "task/commit/post_marker",
          "task/flush/pre", "task/flush/post"};
}

// One crash schedule per point, each firing once at a seed-chosen moment:
// the first is hit-counted (guaranteed to fire — flushes are frequent), the
// rest are probability-triggered so crashes land in different phases and
// different relative orders per seed.
std::vector<FaultSchedule> DeriveSchedules(ProtocolKind protocol, Rng& rng) {
  std::vector<FaultSchedule> schedules;
  std::vector<std::string> points = CrashPoints(protocol);
  for (size_t i = 0; i < points.size(); ++i) {
    FaultSchedule s;
    s.point = points[i];
    s.kind = FaultKind::kCrash;
    s.max_fires = 1;
    if (i == 0) {
      s.at_hit = static_cast<uint64_t>(rng.NextRange(2, 25));
    } else {
      s.probability = 0.01 + 0.04 * rng.NextDouble();
    }
    schedules.push_back(s);
  }
  return schedules;
}

class CrashFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrashFuzz, ExactlyOnceUnderSeededCrashSchedules) {
#if !defined(IMPELLER_FAULT_INJECTION_ENABLED)
  GTEST_SKIP() << "built with IMPELLER_FAULT_INJECTION=OFF";
#else
  const FuzzCase& fuzz = GetParam();
  Rng rng(fuzz.seed);

  EngineOptions options;
  options.config = FastConfig(fuzz.protocol);
  options.config.commit_interval = 15 * kMillisecond;
  options.config.snapshot_interval = 120 * kMillisecond;
  // Injected crashes are detected and restarted by the monitor, not the
  // test: that is the recovery path a deployment would take.
  options.config.auto_restart = true;
  options.config.heartbeat_interval = 10 * kMillisecond;
  options.config.failure_timeout = 200 * kMillisecond;
  Engine engine(std::move(options));
  auto plan = WordCountPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());

  Clock* clock = engine.clock();
  int64_t lines_sent = 0;
  {
    testutil::FaultArmGuard arm(DeriveSchedules(fuzz.protocol, rng),
                                fuzz.seed, engine.metrics());
    for (int round = 0; round < 8; ++round) {
      // A burst of input...
      int lines = static_cast<int>(rng.NextRange(5, 25));
      for (int i = 0; i < lines; ++i) {
        (*producer)->Send("k" + std::to_string(rng.NextBounded(16)),
                          "fuzz words here");
      }
      ASSERT_TRUE(testutil::FlushUntilDrained(**producer, clock).ok());
      lines_sent += lines;
      // ...then a random pause so crashes land in different phases.
      clock->SleepFor(rng.NextRange(1, 40) * kMillisecond);
    }
    // Settle while still armed: commits and flushes keep hitting the
    // schedules, so a hit-counted crash fires even after a short feed.
    clock->SleepFor(150 * kMillisecond);
  }  // disarm: recovery of the last crash runs fault-free

  EXPECT_GT(FaultInjector::Get().TotalFires(), 0u)
      << "seed " << fuzz.seed << " injected nothing";

  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor(
      [&] { return out->Get() >= static_cast<uint64_t>(3 * lines_sent); },
      30 * kSecond))
      << out->Get() << "/" << 3 * lines_sent;
  engine.Stop();

  auto counts = ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["fuzz"], lines_sent);
  EXPECT_EQ((*counts)["words"], lines_sent);
  EXPECT_EQ((*counts)["here"], lines_sent);
#endif
}

std::vector<FuzzCase> MakeCases() {
  std::vector<FuzzCase> cases;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    cases.push_back({ProtocolKind::kProgressMarking, seed});
  }
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    cases.push_back({ProtocolKind::kKafkaTxn, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashFuzz, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      std::string name = ProtocolKindName(info.param.protocol);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace impeller
