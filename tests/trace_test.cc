// Observability subsystem tests: TraceCollector ring buffers (wraparound,
// multi-thread drain, drain-while-recording), span nesting via the RAII
// macros, and a golden-file check of the Chrome trace_event exporter.
//
// The collector is a process-wide singleton, so every test drains it first
// and filters drained records by the tids it created.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>

#include "src/obs/trace_export.h"

namespace impeller {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Get().Enable();
    (void)TraceCollector::Get().Drain();  // discard leftovers of prior tests
  }
  void TearDown() override {
    TraceCollector::Get().Disable();
    (void)TraceCollector::Get().Drain();
    TraceCollector::Get().SetRingCapacity(8192);
  }
};

TEST_F(TraceTest, RecordsSpansAndInstants) {
  {
    SpanGuard span("log", "append");
    TraceCollector::Get().RecordInstant("protocol", "commit_event");
  }
  auto records = TraceCollector::Get().Drain();
  ASSERT_EQ(records.size(), 2u);
  // The instant closes before the span and drains first.
  EXPECT_TRUE(records[0].instant);
  EXPECT_STREQ(records[0].category, "protocol");
  EXPECT_STREQ(records[0].name, "commit_event");
  EXPECT_FALSE(records[1].instant);
  EXPECT_STREQ(records[1].category, "log");
  EXPECT_STREQ(records[1].name, "append");
  EXPECT_LE(records[1].start_ns, records[1].end_ns);
  EXPECT_EQ(records[1].tid, records[0].tid);
}

TEST_F(TraceTest, SpanNesting) {
  {
    SpanGuard outer("task", "outer");
    {
      SpanGuard inner("log", "inner");
    }
  }
  auto records = TraceCollector::Get().Drain();
  ASSERT_EQ(records.size(), 2u);
  const TraceRecord& inner = records[0];  // closes (and records) first
  const TraceRecord& outer = records[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceCollector::Get().Disable();
  {
    SpanGuard span("log", "ignored");
    TraceCollector::Get().RecordInstant("log", "ignored");
  }
  // A span opened while disabled stays inactive even if tracing is enabled
  // before it closes.
  {
    SpanGuard span("log", "opened_disabled");
    TraceCollector::Get().Enable();
  }
  EXPECT_TRUE(TraceCollector::Get().Drain().empty());
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  TraceCollector::Get().SetRingCapacity(16);
  uint64_t dropped_before = TraceCollector::Get().dropped();
  // A fresh thread gets a fresh ring with the new capacity.
  std::thread([] {
    for (int i = 0; i < 40; ++i) {
      SpanGuard span("log", i < 24 ? "old" : "new");
    }
  }).join();
  auto records = TraceCollector::Get().Drain();
  ASSERT_EQ(records.size(), 16u);
  for (const TraceRecord& r : records) {
    EXPECT_STREQ(r.name, "new") << "oldest records must be overwritten";
  }
  // Drained oldest-first within the surviving window.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].end_ns, records[i].end_ns);
  }
  EXPECT_EQ(TraceCollector::Get().dropped() - dropped_before, 24u);
}

TEST_F(TraceTest, MultiThreadDrain) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanGuard span("task", "work");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto records = TraceCollector::Get().Drain();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::set<uint32_t> tids;
  for (const TraceRecord& r : records) {
    tids.insert(r.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  // Exited threads' buffers are released after the drain; the next drain
  // must be empty, not a replay.
  EXPECT_TRUE(TraceCollector::Get().Drain().empty());
}

TEST_F(TraceTest, DrainWhileRecordingLosesNothingUnaccounted) {
  constexpr int kEvents = 20000;
  TraceCollector::Get().SetRingCapacity(64);  // force wraps under load
  uint64_t dropped_before = TraceCollector::Get().dropped();
  std::atomic<bool> done{false};
  size_t drained = 0;
  uint32_t worker_tid = 0;
  std::thread worker([&] {
    for (int i = 0; i < kEvents; ++i) {
      TraceCollector::Get().RecordInstant("log", "hammer");
    }
    done.store(true);
  });
  auto consume = [&] {
    for (const TraceRecord& r : TraceCollector::Get().Drain()) {
      drained++;
      worker_tid = r.tid;
    }
  };
  while (!done.load()) {
    consume();
  }
  worker.join();
  consume();
  uint64_t dropped = TraceCollector::Get().dropped() - dropped_before;
  EXPECT_EQ(drained + dropped, static_cast<uint64_t>(kEvents));
  EXPECT_NE(worker_tid, 0u);
}

#if defined(IMPELLER_TRACING_ENABLED)
TEST_F(TraceTest, MacrosRecordWhenCompiledIn) {
  {
    TRACE_SPAN("kv", "write_batch");
    TRACE_INSTANT("protocol", "barrier");
  }
  auto records = TraceCollector::Get().Drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_STREQ(records[0].name, "barrier");
  EXPECT_STREQ(records[1].name, "write_batch");
}
#else
TEST_F(TraceTest, MacrosCompileToNothingWhenDisabled) {
  {
    TRACE_SPAN("kv", "write_batch");
    TRACE_INSTANT("protocol", "barrier");
  }
  EXPECT_TRUE(TraceCollector::Get().Drain().empty());
}
#endif

TEST(TraceExportTest, ChromeEventJsonGolden) {
  TraceRecord span;
  span.category = "log";
  span.name = "append";
  span.start_ns = 1000;
  span.end_ns = 3500;
  span.tid = 1;
  span.depth = 0;
  EXPECT_EQ(ChromeTraceEventJson(span),
            "{\"name\":\"append\",\"cat\":\"log\",\"ph\":\"X\","
            "\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":1,"
            "\"args\":{\"depth\":0}}");

  TraceRecord instant;
  instant.category = "protocol";
  instant.name = "commit_event";
  instant.start_ns = instant.end_ns = 4000;
  instant.tid = 2;
  instant.depth = 1;
  instant.instant = true;
  EXPECT_EQ(ChromeTraceEventJson(instant),
            "{\"name\":\"commit_event\",\"cat\":\"protocol\",\"ph\":\"i\","
            "\"ts\":4.000,\"s\":\"t\",\"pid\":1,\"tid\":2,"
            "\"args\":{\"depth\":1}}");
}

TEST(TraceExportTest, EscapesControlAndQuoteCharacters) {
  TraceRecord r;
  r.category = "log";
  r.name = "we\"ird\\n\name";
  r.start_ns = 0;
  r.end_ns = 1;
  std::string json = ChromeTraceEventJson(r);
  EXPECT_NE(json.find("we\\\"ird\\\\n\\u000aame"), std::string::npos);
}

TEST(TraceExportTest, GoldenFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/impeller_trace_test.json";
  std::vector<TraceRecord> records;
  TraceRecord a;
  a.category = "log";
  a.name = "append";
  a.start_ns = 1000;
  a.end_ns = 3500;
  a.tid = 1;
  records.push_back(a);
  TraceRecord b;
  b.category = "task";
  b.name = "process_record";
  b.start_ns = 2000;
  b.end_ns = 2100;
  b.tid = 1;
  b.depth = 1;
  records.push_back(b);
  ASSERT_TRUE(WriteChromeTrace(path, records).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_EQ(content,
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
            "{\"name\":\"append\",\"cat\":\"log\",\"ph\":\"X\","
            "\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":1,"
            "\"args\":{\"depth\":0}},\n"
            "{\"name\":\"process_record\",\"cat\":\"task\",\"ph\":\"X\","
            "\"ts\":2.000,\"dur\":0.100,\"pid\":1,\"tid\":1,"
            "\"args\":{\"depth\":1}}"
            "]}\n");
}

TEST(TraceExportTest, WriterRejectsMisuse) {
  ChromeTraceWriter writer;
  EXPECT_FALSE(writer.Append({}).ok());
  EXPECT_TRUE(writer.Close().ok());  // closing a never-opened writer is a noop
  EXPECT_FALSE(writer.Open("/nonexistent-dir/zzz/trace.json").ok());
}

}  // namespace
}  // namespace obs
}  // namespace impeller
