// End-to-end correctness under realistic latency models: the same
// exactly-once guarantees must hold when appends take milliseconds and
// records propagate asynchronously (tests elsewhere run with zero latency
// for speed and determinism). Also validates the calibrated models against
// their Table 2 targets statistically.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

TEST(LatencyModelTest, BokiSampleStatisticsMatchTable2) {
  CalibratedLatencyModel model(CalibratedLatencyModel::BokiParams(), 7);
  LatencyHistogram hist;
  for (int i = 0; i < 20000; ++i) {
    LatencySample s = model.SampleAppend(16 * 1024, 10 * kMillisecond);
    hist.Record(s.ack + s.delivery);
  }
  // Table 2 "Impeller's log": p50 2546-2714 us, p99 3596-3832 us.
  EXPECT_NEAR(static_cast<double>(hist.p50()), 2.6e6, 0.35e6);
  EXPECT_NEAR(static_cast<double>(hist.p99()), 3.7e6, 0.8e6);
}

TEST(LatencyModelTest, KafkaIdleTailMatchesTable2Shape) {
  CalibratedLatencyModel model(CalibratedLatencyModel::KafkaParams(), 7);
  LatencyHistogram busy, idle;
  for (int i = 0; i < 20000; ++i) {
    LatencySample s = model.SampleAppend(16 * 1024, 10 * kMillisecond);
    busy.Record(s.ack + s.delivery);
    s = model.SampleAppend(16 * 1024, 100 * kMillisecond);
    idle.Record(s.ack + s.delivery);
  }
  // Busy partitions: lower latency than the shared log (Table 2 at 100
  // aps); idle partitions: elevated p50 and a heavy tail (Table 2 at 10
  // aps, where Kafka's p99 exceeds the log's).
  EXPECT_LT(busy.p50(), 2 * kMillisecond);
  EXPECT_GT(idle.p50(), busy.p50() + 300 * kMicrosecond);
  EXPECT_GT(idle.p99(), 3500 * kMicrosecond);
}

TEST(LatencyModelTest, ScaleKnobCompressesTime) {
  CalibratedLatencyParams params = CalibratedLatencyModel::BokiParams();
  params.scale = 0.1;
  CalibratedLatencyModel model(params, 7);
  LatencyHistogram hist;
  for (int i = 0; i < 2000; ++i) {
    LatencySample s = model.SampleAppend(100, 0);
    hist.Record(s.ack + s.delivery);
  }
  EXPECT_LT(hist.p50(), 400 * kMicrosecond);
  EXPECT_GT(hist.p50(), 100 * kMicrosecond);
}

TEST(LatencyModelTest, WordCountExactUnderBokiLatency) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  options.config.commit_interval = 50 * kMillisecond;
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), 3);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("k" + std::to_string(i), "real latency run");
  }
  ASSERT_TRUE((*producer)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 90; }, 20 * kSecond));
  engine.Stop();
  auto counts = ReadWordCounts(engine, 2);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["real"], 30);
  EXPECT_EQ((*counts)["latency"], 30);
  EXPECT_EQ((*counts)["run"], 30);
  // End-to-end latency reflects the model: several ms per hop at least.
  EXPECT_GT(engine.metrics()->Histogram("lat/wc")->p50(), 4 * kMillisecond);
}

TEST(LatencyModelTest, CrashRecoveryExactUnderLatency) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  options.config.commit_interval = 40 * kMillisecond;
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), 5);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");

  for (int i = 0; i < 20; ++i) {
    (*producer)->Send("k", "pre crash");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 40; }, 20 * kSecond));

  // Crash while markers and data are in flight through the modeled network.
  auto stats = engine.tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok());

  for (int i = 0; i < 20; ++i) {
    (*producer)->Send("k", "post");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 60; }, 20 * kSecond));
  engine.Stop();
  auto counts = ReadWordCounts(engine, 1);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["pre"], 20);
  EXPECT_EQ((*counts)["crash"], 20);
  EXPECT_EQ((*counts)["post"], 20);
}

}  // namespace
}  // namespace impeller
