// Fault-injection tests: crash/restart of stateless and stateful tasks
// (§3.3.2/§3.3.4), zombie fencing (§3.4), and checkpoint-accelerated
// recovery (§3.5, Table 4). All use the word-count pipeline and verify the
// exactly-once invariant: final per-word counts equal true occurrences.
#include <gtest/gtest.h>

#include <atomic>

#include "src/common/threading.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

class FailureRecoveryTest : public ::testing::Test {
 protected:
  void StartEngine(EngineConfig config, uint32_t tasks = 2) {
    tasks_ = tasks;
    EngineOptions options;
    options.config = config;
    engine_ = std::make_unique<Engine>(std::move(options));
    auto plan = WordCountPlan(tasks);
    ASSERT_TRUE(plan.ok());
    ASSERT_TRUE(engine_->Submit(std::move(*plan)).ok());
    auto producer = engine_->NewProducer("gen", "lines");
    ASSERT_TRUE(producer.ok());
    producer_ = std::move(*producer);
  }

  void SendLines(int n, const std::string& text) {
    for (int i = 0; i < n; ++i) {
      producer_->Send("line" + std::to_string(i), text);
      expected_words_ += CountWords(text);
    }
    ASSERT_TRUE(producer_->Flush().ok());
  }

  static int CountWords(const std::string& text) {
    std::istringstream s(text);
    std::string w;
    int n = 0;
    while (s >> w) {
      ++n;
    }
    return n;
  }

  void WaitDrained() {
    Counter* out = engine_->metrics()->GetCounter("out/wc");
    ASSERT_TRUE(WaitFor(
        [&] { return out->Get() >= static_cast<uint64_t>(expected_words_); },
        20 * kSecond))
        << "sink saw " << out->Get() << "/" << expected_words_;
  }

  void VerifyExactCounts(const std::map<std::string, int64_t>& expected) {
    engine_->Stop();
    auto counts = ReadWordCounts(*engine_, tasks_);
    ASSERT_TRUE(counts.ok()) << counts.status().ToString();
    for (const auto& [word, n] : expected) {
      EXPECT_EQ((*counts)[word], n) << "word " << word;
    }
  }

  std::unique_ptr<Engine> engine_;
  std::unique_ptr<IngressProducer> producer_;
  uint32_t tasks_ = 2;
  int expected_words_ = 0;
};

TEST_F(FailureRecoveryTest, StatelessTaskCrashAndRestart) {
  StartEngine(FastConfig(ProtocolKind::kProgressMarking));
  SendLines(30, "alpha beta");
  WaitDrained();

  auto stats = engine_->tasks()->RestartTask("wc/split/0");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  SendLines(30, "alpha gamma");
  WaitDrained();
  VerifyExactCounts({{"alpha", 60}, {"beta", 30}, {"gamma", 30}});
}

TEST_F(FailureRecoveryTest, StatefulTaskCrashAndRestart) {
  StartEngine(FastConfig(ProtocolKind::kProgressMarking));
  SendLines(30, "red green blue");
  WaitDrained();
  // Let the victim commit a marker so recovery has something to resume from
  // (a crash before the first marker legitimately starts fresh).
  TaskRuntime* victim = engine_->tasks()->FindTask("wc/count/0");
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(WaitFor([&] { return victim->markers_written() >= 1; }));

  auto stats = engine_->tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->performed) << "a marker existed: recovery must run";

  SendLines(30, "red green");
  WaitDrained();
  VerifyExactCounts({{"red", 60}, {"green", 60}, {"blue", 30}});
}

TEST_F(FailureRecoveryTest, CrashBeforeAnyMarkerStartsFresh) {
  EngineConfig config = FastConfig(ProtocolKind::kProgressMarking);
  config.commit_interval = 10 * kSecond;  // no marker will be written
  StartEngine(config, 1);
  SendLines(5, "word");
  MonotonicClock::Get()->SleepFor(100 * kMillisecond);
  auto stats = engine_->tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->performed);
  // After restart the task reprocesses from the beginning — exactly-once
  // output still holds because nothing was committed before the crash.
  WaitDrained();
  VerifyExactCounts({{"word", 5}});
}

TEST_F(FailureRecoveryTest, RepeatedCrashesStayExact) {
  StartEngine(FastConfig(ProtocolKind::kProgressMarking));
  std::map<std::string, int64_t> expected;
  for (int round = 0; round < 4; ++round) {
    SendLines(10, "crash loop words");
    expected["crash"] += 10;
    expected["loop"] += 10;
    expected["words"] += 10;
    WaitDrained();
    std::string victim =
        round % 2 == 0 ? "wc/count/0" : "wc/split/1";
    auto stats = engine_->tasks()->RestartTask(victim);
    ASSERT_TRUE(stats.ok()) << "round " << round;
  }
  SendLines(10, "crash");
  expected["crash"] += 10;
  WaitDrained();
  VerifyExactCounts(expected);
}

TEST_F(FailureRecoveryTest, ZombieIsFencedAndOutputExact) {
  StartEngine(FastConfig(ProtocolKind::kProgressMarking));
  SendLines(20, "zed york");
  WaitDrained();

  // The task manager wrongly declares count/0 dead and starts a
  // replacement; the old instance keeps running as a zombie (§3.4).
  TaskRuntime* zombie = engine_->tasks()->FindTask("wc/count/0");
  ASSERT_NE(zombie, nullptr);
  ASSERT_TRUE(engine_->tasks()->StartReplacement("wc/count/0").ok());

  SendLines(20, "zed quill");
  WaitDrained();

  // The zombie's next conditional marker append must be fenced.
  ASSERT_TRUE(WaitFor([&] { return zombie->finished(); }, 15 * kSecond));
  EXPECT_EQ(zombie->final_status().code(), StatusCode::kFenced);

  VerifyExactCounts({{"zed", 40}, {"york", 20}, {"quill", 20}});
}

TEST_F(FailureRecoveryTest, CheckpointAcceleratesRecovery) {
  // Table 4's mechanism: with checkpoints, recovery replays only the
  // change-log suffix after the snapshot.
  EngineConfig config = FastConfig(ProtocolKind::kProgressMarking);
  config.snapshot_interval = 150 * kMillisecond;
  StartEngine(config, 1);
  for (int round = 0; round < 6; ++round) {
    SendLines(20, "w" + std::to_string(round));
    MonotonicClock::Get()->SleepFor(80 * kMillisecond);
  }
  WaitDrained();
  // Let the checkpoint worker cover most of the change log.
  ASSERT_TRUE(WaitFor(
      [&] {
        return engine_->tasks()->checkpoint_worker()->checkpoints_written() >
               0;
      },
      5 * kSecond));
  MonotonicClock::Get()->SleepFor(200 * kMillisecond);

  auto stats = engine_->tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->used_checkpoint);
  // 120 change-log records exist in total; a checkpointed recovery must
  // replay far fewer.
  EXPECT_LT(stats->changelog_entries_read, 100u);

  SendLines(10, "w0");
  WaitDrained();
  VerifyExactCounts({{"w0", 30}, {"w5", 20}});
}

TEST_F(FailureRecoveryTest, RecoveryWithoutCheckpointReplaysEverything) {
  EngineConfig config = FastConfig(ProtocolKind::kProgressMarking);
  config.enable_checkpointing = false;
  StartEngine(config, 1);
  SendLines(50, "full replay");
  WaitDrained();
  // Let the count task write a marker covering all 100 state updates, so
  // recovery has a cut to replay to.
  TaskRuntime* count_task = engine_->tasks()->FindTask("wc/count/0");
  ASSERT_NE(count_task, nullptr);
  ASSERT_TRUE(WaitFor([&] { return count_task->markers_written() >= 1; }));
  MonotonicClock::Get()->SleepFor(100 * kMillisecond);

  auto stats = engine_->tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->performed);
  EXPECT_FALSE(stats->used_checkpoint);
  EXPECT_GE(stats->changelog_entries_read, 100u)
      << "100 word updates + markers must all be replayed";
  VerifyExactCounts({{"full", 50}, {"replay", 50}});
}

TEST_F(FailureRecoveryTest, AutoRestartReplacesCrashedTask) {
  EngineConfig config = FastConfig(ProtocolKind::kProgressMarking);
  config.auto_restart = true;
  config.heartbeat_interval = 20 * kMillisecond;
  config.failure_timeout = kSecond;
  StartEngine(config);
  SendLines(20, "auto heal");
  WaitDrained();
  ASSERT_TRUE(engine_->tasks()->CrashTask("wc/count/1").ok());
  // The monitor notices the crash (non-OK finish) and restarts it.
  ASSERT_TRUE(WaitFor(
      [&] {
        TaskRuntime* rt = engine_->tasks()->FindTask("wc/count/1");
        return rt != nullptr && rt->started() && !rt->finished();
      },
      10 * kSecond));
  SendLines(20, "auto");
  WaitDrained();
  VerifyExactCounts({{"auto", 40}, {"heal", 20}});
}

TEST_F(FailureRecoveryTest, StopRacingRestartNeverHangs) {
  // Engine::Stop joins the scheduler workers; a RestartTask racing it used
  // to submit a task nothing would ever run and then spin waiting for it to
  // start. The restart must either complete or fail with kUnavailable —
  // never hang, never crash.
  for (int round = 0; round < 5; ++round) {
    StartEngine(FastConfig(ProtocolKind::kProgressMarking));
    SendLines(10, "race word");
    WaitDrained();
    std::atomic<bool> done{false};
    JoiningThread restarter([&] {
      while (!done.load()) {
        auto stats = engine_->tasks()->RestartTask("wc/count/0");
        if (!stats.ok()) {
          EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable)
              << stats.status().ToString();
          return;  // shutdown fence observed
        }
      }
    });
    MonotonicClock::Get()->SleepFor((round + 1) * kMillisecond);
    engine_->Stop();
    done.store(true);
    restarter.Join();
    // Post-stop restarts fail cleanly too.
    auto late = engine_->tasks()->RestartTask("wc/count/0");
    EXPECT_FALSE(late.ok());
    EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
    expected_words_ = 0;
  }
}

}  // namespace
}  // namespace impeller
