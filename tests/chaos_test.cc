// Chaos harness: runs NEXMark Q1 under seeded adversarial fault schedules —
// append-ack delay spikes, transient kUnavailable appends, duplicate
// redeliveries, checkpoint-store hiccups, and crashes at every
// protocol-critical point — and asserts that the *committed* output is
// byte-identical to a fault-free run of the same input. This is the paper's
// exactly-once claim (§3.3-§3.5) under test: markers, fencing, duplicate
// suppression, and recovery must together make faults invisible in the
// committed stream.
//
// Every run is reproducible: the schedule set and every injection decision
// derive from one seed, printed on failure. Re-run a single failure with
// the same seed by filtering the test and reading the logged seed.
//
// kUnsafe gets only the benign schedules (delays, bounded transient errors,
// duplicates — no crashes): without progress tracking a crash legitimately
// loses state, which is Fig. 9's point, not a harness failure.
#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/retry.h"
#include "src/fault/fault.h"
#include "src/nexmark/events.h"
#include "src/nexmark/queries.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;

constexpr uint32_t kTasksPerStage = 2;
constexpr size_t kNumEvents = 120;
constexpr uint64_t kNumChaosSeeds = 8;
constexpr TimeNs kEventTimeBase = 1'000'000'000;  // synthetic, deterministic

// Nightly soak runs randomize the seed window: IMPELLER_CHAOS_SEED_BASE=N
// shifts the chaos seeds to N+1..N+kNumChaosSeeds. The base is logged so a
// soak failure replays locally with the same env var. Default (unset/empty)
// is 0, i.e. the fixed seeds 1..8 used by regular CI.
uint64_t ChaosSeedBase() {
  const char* env = std::getenv("IMPELLER_CHAOS_SEED_BASE");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  return std::strtoull(env, nullptr, 10);
}

EngineConfig ChaosConfig(ProtocolKind protocol) {
  EngineConfig config = testutil::FastConfig(protocol);
  // Crashed tasks must come back on their own, quickly.
  config.auto_restart = true;
  config.heartbeat_interval = 10 * kMillisecond;
  config.failure_timeout = 250 * kMillisecond;
  config.snapshot_interval = 150 * kMillisecond;
  return config;
}

// Deterministic bid stream: unique price and date_time per event, auction
// ids spread across substreams. Both the baseline and every chaos run feed
// exactly this sequence.
std::vector<Bid> MakeBids() {
  std::vector<Bid> bids;
  bids.reserve(kNumEvents);
  for (size_t i = 0; i < kNumEvents; ++i) {
    Bid bid;
    bid.auction = 1000 + i % 37;
    bid.bidder = i;
    bid.price = 100 + static_cast<int64_t>(i) * 7;
    bid.channel = "chaos";
    bid.url = "https://bid/" + std::to_string(i);
    bid.date_time = kEventTimeBase + static_cast<TimeNs>(i) * kMillisecond;
    bids.push_back(std::move(bid));
  }
  return bids;
}

// Crash points exercised per protocol — each protocol's own critical
// sections (ISSUE: marker append, txn phase 2 / post-commit ambiguity,
// checkpoint + barrier rounds), plus the output-flush edges all share.
std::vector<std::string> CrashPoints(ProtocolKind protocol) {
  switch (protocol) {
    case ProtocolKind::kProgressMarking:
      return {"task/commit/pre_marker", "task/commit/post_marker",
              "task/flush/pre", "task/flush/post"};
    case ProtocolKind::kKafkaTxn:
      return {"task/flush/pre", "task/flush/post", "txn/phase2",
              "txn/post_commit"};
    case ProtocolKind::kAlignedCheckpoint:
      return {"task/flush/pre", "task/flush/post", "task/checkpoint/mid",
              "barrier/inject"};
    case ProtocolKind::kUnsafe:
      return {};
  }
  return {};
}

// Derives one adversarial schedule set from (protocol, seed). Benign
// schedules (delay spikes, bounded transient errors, duplicate redelivery,
// checkpoint-store hiccups) apply to every protocol; crash schedules hit
// two seed-chosen protocol-critical points; with several shards one
// seed-chosen shard is additionally killed for good mid-run, exercising
// seal + epoch-bump failover underneath the protocol. Transient-error fire
// caps stay below RetryPolicy::max_attempts so errors alone can never
// exhaust a retry loop — errors test the Retrier, crashes test recovery.
std::vector<FaultSchedule> DeriveSchedules(ProtocolKind protocol,
                                           uint64_t seed, uint32_t shards) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull +
          static_cast<uint64_t>(protocol) * 0x100000001B3ull);
  std::vector<FaultSchedule> out;

  {
    // Append-ack delay spikes. every_n guarantees fires (appends are
    // plentiful), so every chaos run provably injected something.
    FaultSchedule s;
    s.point = "log/append";
    s.kind = FaultKind::kDelay;
    s.delay = static_cast<DurationNs>(rng.NextRange(1, 4)) * kMillisecond;
    s.every_n = static_cast<uint64_t>(rng.NextRange(20, 40));
    s.max_fires = 3;
    out.push_back(s);
  }
  {
    // Transient append unavailability, absorbed by the Retrier.
    FaultSchedule s;
    s.point = "log/append";
    s.kind = FaultKind::kError;
    s.every_n = static_cast<uint64_t>(rng.NextRange(15, 30));
    s.max_fires = static_cast<uint64_t>(rng.NextRange(2, 3));
    out.push_back(s);
  }
  {
    // Duplicate redelivery on the bid input path.
    FaultSchedule s;
    s.point = "log/read";
    s.kind = FaultKind::kDuplicate;
    s.detail_substr = "bids";
    s.every_n = static_cast<uint64_t>(rng.NextRange(25, 60));
    s.max_fires = 2;
    out.push_back(s);
  }
  {
    // Checkpoint-store write hiccup. Only a delay for kUnsafe: an error
    // there can escalate to a restart, which unsafe legitimately loses
    // data over.
    FaultSchedule s;
    s.point = "kv/write";
    s.kind = protocol != ProtocolKind::kUnsafe && rng.NextDouble() < 0.5
                 ? FaultKind::kError
                 : FaultKind::kDelay;
    s.delay = 2 * kMillisecond;
    s.every_n = static_cast<uint64_t>(rng.NextRange(2, 5));
    s.max_fires = 2;
    out.push_back(s);
  }

  if (shards > 1) {
    // Permanently kill one seed-chosen shard once it has admitted a few
    // records: every later append it sees fails, the failure detector
    // seals it, and the log re-places traffic at the next placement epoch.
    // The committed output must not care which sequencer ordered it.
    FaultSchedule s;
    s.point = "log/shard/append";
    s.kind = FaultKind::kError;
    s.detail_substr = "/s" + std::to_string(rng.NextBounded(shards));
    s.at_lsn = static_cast<uint64_t>(rng.NextRange(3, 10));
    s.max_fires = 0;  // unlimited: the shard never comes back
    out.push_back(s);
  }

  std::vector<std::string> points = CrashPoints(protocol);
  if (!points.empty()) {
    size_t first = rng.NextBounded(points.size());
    size_t second =
        (first + 1 + rng.NextBounded(points.size() - 1)) % points.size();
    for (size_t idx : {first, second}) {
      FaultSchedule s;
      s.point = points[idx];
      s.kind = FaultKind::kCrash;
      s.at_hit = static_cast<uint64_t>(rng.NextRange(1, 6));
      s.max_fires = 1;
      out.push_back(s);
    }
  }
  return out;
}

// Canonicalizes the committed egress: one line per committed record,
// sorted. Cross-substream interleaving is nondeterministic even fault-free,
// so lines sort; everything else — which records committed, their keys,
// values, event times, and multiplicity — must match byte-for-byte.
Result<std::vector<std::string>> CollectCommitted(Engine& engine) {
  std::vector<std::string> lines;
  for (uint32_t sub = 0; sub < kTasksPerStage; ++sub) {
    auto consumer = engine.NewEgressConsumer("convert", sub);
    if (!consumer.ok()) {
      return consumer.status();
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return records.status();
    }
    for (const auto& r : *records) {
      auto bid = DecodeBid(r.data.value);
      if (!bid.ok()) {
        return bid.status();
      }
      lines.push_back(std::string(r.data.key) + "|" +
                      std::to_string(bid->price) + "|" +
                      std::to_string(bid->date_time / kMillisecond));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

size_t DistinctCommitted(Engine& engine) {
  auto lines = CollectCommitted(engine);
  if (!lines.ok()) {
    return 0;
  }
  return std::set<std::string>(lines->begin(), lines->end()).size();
}

struct ChaosOutcome {
  std::vector<std::string> lines;
  uint64_t fault_fires = 0;
  uint64_t retry_attempts = 0;
  uint64_t retry_retries = 0;
  uint64_t seals = 0;
  uint64_t epoch_bumps = 0;
};

// One full Q1 run: submit, feed the fixed bid stream in bursts (faults
// armed), disarm, wait for the committed output to converge, stop, read.
Result<ChaosOutcome> RunQ1(ProtocolKind protocol, uint64_t seed,
                           std::vector<FaultSchedule> schedules,
                           uint32_t shards) {
  EngineOptions options;
  options.config = ChaosConfig(protocol);
  options.config.log_shards = shards;
  options.name = "chaos";
  Engine engine(std::move(options));

  NexmarkQueryOptions query_options;
  query_options.tasks_per_stage = kTasksPerStage;
  auto plan = BuildNexmarkQuery(1, query_options);
  IMPELLER_RETURN_IF_ERROR(plan.status());
  IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  auto producer = engine.NewProducer("chaos-gen", "bids");
  IMPELLER_RETURN_IF_ERROR(producer.status());

  Clock* clock = engine.clock();
  std::vector<Bid> bids = MakeBids();
  {
    testutil::FaultArmGuard arm(std::move(schedules), seed,
                                engine.metrics());
    for (size_t start = 0; start < bids.size(); start += 40) {
      size_t end = std::min(start + 40, bids.size());
      for (size_t i = start; i < end; ++i) {
        (*producer)->Send(std::to_string(bids[i].auction),
                          EncodeBid(bids[i]), bids[i].date_time);
      }
      IMPELLER_RETURN_IF_ERROR(
          testutil::FlushUntilDrained(**producer, clock));
      // Let commits, crashes, and restarts interleave with the feed.
      clock->SleepFor(15 * kMillisecond);
    }
    // Give armed crash schedules whose at_hit has not been reached a last
    // few commit rounds to fire mid-stream.
    clock->SleepFor(100 * kMillisecond);
  }  // disarm: recovery now runs fault-free

  ChaosOutcome outcome;
  outcome.fault_fires = FaultInjector::Get().TotalFires();
  outcome.retry_attempts =
      engine.metrics()->GetCounter("retry/attempts")->Get();
  outcome.retry_retries = engine.metrics()->GetCounter("retry/retries")->Get();
  outcome.seals = engine.metrics()->GetCounter("log/seals")->Get();
  outcome.epoch_bumps =
      engine.metrics()->GetCounter("log/epoch_bumps")->Get();

  // Convergence: every input must eventually commit exactly once; restarts
  // after the last crash take up to failure_timeout plus replay.
  testutil::WaitFor([&] { return DistinctCommitted(engine) >= kNumEvents; },
                    30 * kSecond);
  engine.Stop();

  auto lines = CollectCommitted(engine);
  IMPELLER_RETURN_IF_ERROR(lines.status());
  outcome.lines = std::move(*lines);
  return outcome;
}

// Parameterized over (protocol, shard count): exactly-once recovery and
// byte-identical committed output must hold whether the shared log runs
// one sequencer or several interleaved by the metalog.
class ChaosTest
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, uint32_t>> {};

TEST_P(ChaosTest, CommittedOutputIsIdenticalToFaultFreeRun) {
#if !defined(IMPELLER_FAULT_INJECTION_ENABLED)
  GTEST_SKIP() << "built with IMPELLER_FAULT_INJECTION=OFF";
#else
  auto [protocol, shards] = GetParam();

  auto baseline = RunQ1(protocol, /*seed=*/0, {}, shards);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->lines.size(), kNumEvents)
      << "fault-free run must commit every input exactly once";

  const uint64_t base = ChaosSeedBase();
  RecordProperty("chaos_seed_base", std::to_string(base));
  for (uint64_t seed = base + 1; seed <= base + kNumChaosSeeds; ++seed) {
    SCOPED_TRACE("protocol=" + std::string(ProtocolKindName(protocol)) +
                 " shards=" + std::to_string(shards) +
                 " chaos seed=" + std::to_string(seed) +
                 " (replay: IMPELLER_CHAOS_SEED_BASE=" + std::to_string(base) +
                 " reproduces the schedule set and every "
                 "injection decision)");
    auto run =
        RunQ1(protocol, seed, DeriveSchedules(protocol, seed, shards), shards);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->fault_fires, 0u)
        << "schedule set for seed " << seed << " never fired";
    EXPECT_EQ(run->lines, baseline->lines);
  }
#endif
}

std::string ProtocolTestName(
    const ::testing::TestParamInfo<std::tuple<ProtocolKind, uint32_t>>&
        info) {
  std::string name = ProtocolKindName(std::get<0>(info.param));
  std::replace(name.begin(), name.end(), '-', '_');
  return name + "_shards" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChaosTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kProgressMarking,
                                         ProtocolKind::kKafkaTxn,
                                         ProtocolKind::kAlignedCheckpoint,
                                         ProtocolKind::kUnsafe),
                       ::testing::Values(1u, 3u)),
    ProtocolTestName);

// ISSUE 7 acceptance: a fixed schedule permanently kills shard 1 of 3
// mid-run. The failure detector must seal it, the metalog must bump the
// placement epoch, and — for every protocol, including kUnsafe, since no
// task ever crashes — the committed output must be byte-identical to a
// fault-free run. Failover lives entirely below the protocols.
class ShardKillTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ShardKillTest, PermanentShardLossIsInvisibleInCommittedOutput) {
#if !defined(IMPELLER_FAULT_INJECTION_ENABLED)
  GTEST_SKIP() << "built with IMPELLER_FAULT_INJECTION=OFF";
#else
  ProtocolKind protocol = GetParam();
  constexpr uint32_t kShards = 3;

  auto baseline = RunQ1(protocol, /*seed=*/0, {}, kShards);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->lines.size(), kNumEvents)
      << "fault-free run must commit every input exactly once";

  FaultSchedule kill;
  kill.point = "log/shard/append";
  kill.kind = FaultKind::kError;
  kill.detail_substr = "/s1";  // victim: shard 1 of {0, 1, 2}
  kill.at_lsn = 3;             // dies after admitting a few records
  kill.max_fires = 0;          // unlimited: permanent loss, no rejoin
  auto run = RunQ1(protocol, /*seed=*/41, {kill}, kShards);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GE(run->seals, 1u) << "the dead shard must be sealed";
  EXPECT_GE(run->epoch_bumps, 1u)
      << "sealing must publish a new placement epoch";
  EXPECT_EQ(run->lines, baseline->lines)
      << "failover must be invisible in the committed stream";
#endif
}

std::string ShardKillTestName(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string name = ProtocolKindName(info.param);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ShardKillTest,
                         ::testing::Values(ProtocolKind::kProgressMarking,
                                           ProtocolKind::kKafkaTxn,
                                           ProtocolKind::kAlignedCheckpoint,
                                           ProtocolKind::kUnsafe),
                         ShardKillTestName);

// ISSUE 10 satellite: crash mid-handoff during a stateful rescale. Under
// the marker protocols the new generation acquires keyed state by replaying
// the old generation's changelogs up to their final cuts, then transfers
// ownership by re-appending the acquired state under its own id; only its
// first commit cut seals the handoff. The injected crash lands exactly
// between acquisition and transfer ("task/rescale/handoff"). The restart
// must redo the whole handoff from the sources — the acquired-but-untransferred
// state was never covered by a cut, so nothing of the crashed attempt may
// leak into the committed stream.
constexpr int kHandoffKeys = 24;
constexpr int kHandoffRounds = 3;  // per phase; two phases around the rescale
constexpr size_t kPhaseLines =
    static_cast<size_t>(kHandoffKeys) * kHandoffRounds;

// Running per-key count whose stateful stage is over-partitioned (6
// substreams on 2 tasks) and therefore rescalable in both directions. Each
// input record emits one update (key, running count), so the committed
// output of the whole run is a fixed multiset — counts 1..6 per key — no
// matter which generation or task emitted each line.
Result<QueryPlan> HandoffCountPlan() {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("rh");
  qb.Ingress("nums");
  qb.AddStage("count", kTasksPerStage)
      .WithSubstreams(6)
      .ReadsFrom({"nums"})
      .Aggregate("c", count)
      .WritesTo("counts");
  qb.AddStage("fmt", kTasksPerStage)
      .ReadsFrom({"counts"})
      .Map([](StreamRecord r) { return r; })
      .Sink("rh");
  return qb.Build();
}

Result<std::vector<std::string>> CollectHandoffCommitted(Engine& engine) {
  std::vector<std::string> lines;
  for (uint32_t sub = 0; sub < kTasksPerStage; ++sub) {
    auto consumer = engine.NewEgressConsumer("fmt", sub);
    if (!consumer.ok()) {
      return consumer.status();
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return records.status();
    }
    for (const auto& r : *records) {
      lines.push_back(std::string(r.data.key) + "|" +
                      std::string(r.data.value));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

size_t DistinctHandoffCommitted(Engine& engine) {
  auto lines = CollectHandoffCommitted(engine);
  if (!lines.ok()) {
    return 0;
  }
  return std::set<std::string>(lines->begin(), lines->end()).size();
}

// One run: feed phase 1, wait for it to commit, rescale the stateful stage
// (crash schedule armed), feed phase 2, wait for convergence. rescale_to ==
// 0 is the fault-free never-rescaled baseline.
Result<ChaosOutcome> RunHandoffRescale(ProtocolKind protocol, uint64_t seed,
                                       uint32_t rescale_to,
                                       std::vector<FaultSchedule> schedules) {
  EngineOptions options;
  options.config = ChaosConfig(protocol);
  options.name = "handoff-chaos";
  Engine engine(std::move(options));
  auto plan = HandoffCountPlan();
  IMPELLER_RETURN_IF_ERROR(plan.status());
  IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  auto producer = engine.NewProducer("chaos-gen", "nums");
  IMPELLER_RETURN_IF_ERROR(producer.status());
  Clock* clock = engine.clock();

  auto feed = [&](int phase) -> Status {
    for (int round = 0; round < kHandoffRounds; ++round) {
      TimeNs et = kEventTimeBase +
                  static_cast<TimeNs>(phase * kHandoffRounds + round) *
                      kMillisecond;
      for (int j = 0; j < kHandoffKeys; ++j) {
        (*producer)->Send("hk" + std::to_string(j), "x", et);
      }
    }
    return testutil::FlushUntilDrained(**producer, clock);
  };
  auto committed_at_least = [&](size_t n) -> Status {
    if (!testutil::WaitFor(
            [&] { return DistinctHandoffCommitted(engine) >= n; },
            30 * kSecond)) {
      return DeadlineExceededError(
          "only " + std::to_string(DistinctHandoffCommitted(engine)) + "/" +
          std::to_string(n) + " lines committed");
    }
    return OkStatus();
  };

  IMPELLER_RETURN_IF_ERROR(feed(0));
  // The rescale must find real keyed state to move: phase 1 fully committed
  // means every key's count is 1..3 in the stage's stores.
  IMPELLER_RETURN_IF_ERROR(committed_at_least(kPhaseLines));

  ChaosOutcome outcome;
  if (rescale_to != 0) {
    testutil::FaultArmGuard arm(std::move(schedules), seed, engine.metrics());
    IMPELLER_RETURN_IF_ERROR(
        engine.tasks()->RescaleStage("count", rescale_to));
    // The crash fires on a new task's recovery thread shortly after spawn;
    // wait for it so the disarm below cannot race the handoff attempt.
    testutil::WaitFor(
        [&] { return FaultInjector::Get().TotalFires() > 0; }, 5 * kSecond);
    IMPELLER_RETURN_IF_ERROR(feed(1));
    // Let the monitor notice the dead task and redo the handoff while the
    // schedule is still armed (max_fires=1 keeps the redo crash-free).
    clock->SleepFor(100 * kMillisecond);
    outcome.fault_fires = FaultInjector::Get().TotalFires();
  } else {
    IMPELLER_RETURN_IF_ERROR(feed(1));
  }

  IMPELLER_RETURN_IF_ERROR(committed_at_least(2 * kPhaseLines));
  engine.Stop();
  auto lines = CollectHandoffCommitted(engine);
  IMPELLER_RETURN_IF_ERROR(lines.status());
  outcome.lines = std::move(*lines);
  return outcome;
}

// Parameterized over the marker protocols — the changelog-mediated handoff
// (and its crash window) only exists where markers do; aligned/unsafe hand
// state over in memory before the new generation starts.
class RescaleHandoffCrashTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RescaleHandoffCrashTest, CrashBetweenAcquireAndTransferIsInvisible) {
#if !defined(IMPELLER_FAULT_INJECTION_ENABLED)
  GTEST_SKIP() << "built with IMPELLER_FAULT_INJECTION=OFF";
#else
  ProtocolKind protocol = GetParam();

  auto baseline = RunHandoffRescale(protocol, /*seed=*/0, /*rescale_to=*/0,
                                    {});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->lines.size(), 2 * kPhaseLines)
      << "fault-free never-rescaled run must commit every update once";

  const uint64_t base = ChaosSeedBase();
  RecordProperty("chaos_seed_base", std::to_string(base));
  for (uint64_t seed = base + 1; seed <= base + kNumChaosSeeds; ++seed) {
    // Odd seeds split the state 2 -> 3 tasks, even seeds merge it 2 -> 1;
    // the seed also picks which new task's handoff attempt dies.
    uint32_t rescale_to = (seed % 2 == 1) ? kTasksPerStage + 1 : 1;
    Rng rng(seed * 0x9E3779B97F4A7C15ull +
            static_cast<uint64_t>(protocol) * 0x100000001B3ull);
    FaultSchedule crash;
    crash.point = "task/rescale/handoff";
    crash.kind = FaultKind::kCrash;
    crash.at_hit = 1 + rng.NextBounded(rescale_to);
    crash.max_fires = 1;
    SCOPED_TRACE("protocol=" + std::string(ProtocolKindName(protocol)) +
                 " rescale_to=" + std::to_string(rescale_to) +
                 " chaos seed=" + std::to_string(seed) +
                 " (replay: IMPELLER_CHAOS_SEED_BASE=" + std::to_string(base) +
                 ")");
    auto run = RunHandoffRescale(protocol, seed, rescale_to, {crash});
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->fault_fires, 0u)
        << "mid-handoff crash for seed " << seed << " never fired";
    EXPECT_EQ(run->lines, baseline->lines)
        << "a crash between state acquisition and ownership transfer must "
           "be invisible in the committed stream";
  }
#endif
}

INSTANTIATE_TEST_SUITE_P(MarkerProtocols, RescaleHandoffCrashTest,
                         ::testing::Values(ProtocolKind::kProgressMarking,
                                           ProtocolKind::kKafkaTxn),
                         ShardKillTestName);

}  // namespace
}  // namespace impeller
