// Shared helpers for integration tests: a word-count pipeline (the paper's
// running example, Fig. 1/3), fast engine configurations, and wait loops.
#ifndef IMPELLER_TESTS_TEST_UTIL_H_
#define IMPELLER_TESTS_TEST_UTIL_H_

#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/core/engine.h"
#include "src/fault/fault.h"

namespace impeller {
namespace testutil {

// Arms the process-wide fault injector for one scope. Always declare it
// *after* the Engine whose MetricsRegistry it feeds: the destructor disarms
// (detaching the registry) before the engine dies.
struct FaultArmGuard {
  FaultArmGuard(std::vector<fault::FaultSchedule> schedules, uint64_t seed,
                MetricsRegistry* metrics = nullptr) {
    fault::FaultInjector::Get().Arm(std::move(schedules), seed, metrics);
  }
  ~FaultArmGuard() { fault::FaultInjector::Get().Disarm(); }
};

// Flushes until every buffered record is durably appended. Injected append
// failures past the retry budget leave batches buffered; a real gateway
// keeps flushing, and so does the harness.
inline Status FlushUntilDrained(IngressProducer& producer, Clock* clock) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (producer.buffered() == 0) {
      return OkStatus();
    }
    if (!producer.Flush().ok()) {
      clock->SleepFor(2 * kMillisecond);
    }
  }
  return producer.buffered() == 0 ? OkStatus()
                                  : UnavailableError("flush never drained");
}

inline EngineConfig FastConfig(ProtocolKind protocol) {
  EngineConfig config;
  config.protocol = protocol;
  config.commit_interval = 20 * kMillisecond;
  config.snapshot_interval = 300 * kMillisecond;
  config.output_flush_interval = 5 * kMillisecond;
  config.poll_interval = kMillisecond;
  config.timer_interval = 10 * kMillisecond;
  config.auto_restart = false;  // tests inject faults deterministically
  return config;
}

// Word count: split lines into words, count per word, sink "wc".
inline Result<QueryPlan> WordCountPlan(uint32_t tasks = 2) {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("wc");
  qb.Ingress("lines");
  qb.AddStage("split", tasks)
      .ReadsFrom({"lines"})
      .FlatMap([](StreamRecord r, std::vector<StreamRecord>* out) {
        std::istringstream stream(r.value);
        std::string word;
        while (stream >> word) {
          out->push_back({word, "1", r.event_time});
        }
      })
      .WritesTo("words");
  qb.AddStage("count", tasks)
      .ReadsFrom({"words"})
      .Aggregate("counts", count)
      .Sink("wc");
  return qb.Build();
}

// Polls `predicate` until true or `timeout`; returns whether it held.
inline bool WaitFor(const std::function<bool()>& predicate,
                    DurationNs timeout = 10 * kSecond) {
  Clock* clock = MonotonicClock::Get();
  TimeNs deadline = clock->Now() + timeout;
  while (clock->Now() < deadline) {
    if (predicate()) {
      return true;
    }
    clock->SleepFor(2 * kMillisecond);
  }
  return predicate();
}

// Reads the word-count egress (every substream) and returns the highest
// count observed per word — with exactly-once semantics this must equal the
// true occurrence count.
inline Result<std::map<std::string, int64_t>> ReadWordCounts(
    Engine& engine, uint32_t tasks = 2) {
  std::map<std::string, int64_t> counts;
  for (uint32_t sub = 0; sub < tasks; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    if (!consumer.ok()) {
      return consumer.status();
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return records.status();
    }
    for (const auto& r : *records) {
      int64_t value = std::stoll(std::string(r.data.value));
      int64_t& slot = counts[std::string(r.data.key)];
      slot = std::max(slot, value);
    }
  }
  return counts;
}

}  // namespace testutil
}  // namespace impeller

#endif  // IMPELLER_TESTS_TEST_UTIL_H_
