// The zero-copy OutputBuffer: records encoded in place into one contiguous
// flush buffer, framing-inclusive pending-byte accounting, single shared
// allocation per flush, and retry safety across transient append failures.
#include <gtest/gtest.h>

#include "src/core/output_buffer.h"
#include "src/core/record.h"
#include "src/core/stream.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace {

RecordHeader SampleHeader(uint64_t seq) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q1/map/0";
  h.instance = 1;
  h.seq = seq;
  return h;
}

void EncodeRecordInto(OutputBuffer& buffer, OutputBuffer::Kind kind,
                      const std::string& tag, uint64_t seq,
                      std::string_view key, std::string_view value) {
  BinaryWriter& w = buffer.StartRecord(kind, tag);
  AppendEnvelopeHeader(w, RecordType::kData, "q1/map/0", 1, seq);
  AppendDataBody(w, key, value, 42);
  buffer.FinishRecord();
}

TEST(OutputBufferTest, PendingBytesCountFullFramedPayload) {
  SharedLog log;
  OutputBuffer buffer(&log, 1 << 20);
  EXPECT_EQ(buffer.pending_bytes(), 0u);

  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 1, "key",
                   "value");
  // The framed payload is envelope header + body — exactly what the
  // owning encoders would have produced for the same record.
  RecordHeader h = SampleHeader(1);
  size_t framed = EncodeEnvelope(h, EncodeDataBody({"key", "value", 42})).size();
  EXPECT_EQ(buffer.pending_bytes(), framed);
  EXPECT_EQ(buffer.pending_records(), 1u);

  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 2, "key2",
                   "value2");
  EXPECT_GT(buffer.pending_bytes(), framed);
}

TEST(OutputBufferTest, NeedsFlushTripsOnFramedBytes) {
  SharedLog log;
  OutputBuffer buffer(&log, 64);
  EXPECT_FALSE(buffer.NeedsFlush());
  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 1, "key",
                   std::string(64, 'v'));
  EXPECT_TRUE(buffer.NeedsFlush());
}

TEST(OutputBufferTest, FlushedRecordsShareOneAllocationAndDecode) {
  SharedLog log;
  OutputBuffer buffer(&log, 1 << 20);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", seq,
                     "k" + std::to_string(seq), "v" + std::to_string(seq));
  }
  auto result = buffer.Flush();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records, 3u);
  EXPECT_NE(result->first_output, kInvalidLsn);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.pending_bytes(), 0u);

  // Every flushed record decodes from the log; their payloads are slices
  // of one shared buffer, not per-record copies.
  Lsn from = 0;
  const std::string* shared_base = nullptr;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    auto entry = log.ReadNext("d/X/0", from);
    ASSERT_TRUE(entry.ok());
    from = entry->lsn + 1;
    auto env = DecodeEnvelopeView(entry->payload.view());
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(env->seq, seq);
    auto data = DecodeDataView(env->body);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->key, "k" + std::to_string(seq));
    const std::string* base = &*entry->payload.buffer();
    if (shared_base == nullptr) {
      shared_base = base;
    } else {
      EXPECT_EQ(shared_base, base) << "records must share one flush buffer";
    }
  }
}

TEST(OutputBufferTest, ChangeLogAndOutputReportSeparateFirstLsns) {
  SharedLog log;
  OutputBuffer buffer(&log, 1 << 20);
  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 1, "k", "v");
  {
    BinaryWriter& w =
        buffer.StartRecord(OutputBuffer::Kind::kChangeLog, "c/q1/map/0");
    AppendEnvelopeHeader(w, RecordType::kChangeLog, "q1/map/0", 1, 2);
    AppendChangeLogBody(w, ChangeLogView{"store", "key", false, "val"});
    buffer.FinishRecord();
  }
  auto result = buffer.Flush();
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->first_output, kInvalidLsn);
  EXPECT_NE(result->first_changelog, kInvalidLsn);
  EXPECT_LT(result->first_output, result->first_changelog);
}

TEST(OutputBufferTest, PrebuiltAddAccountsFramedBytesAndFlushes) {
  SharedLog log;
  OutputBuffer buffer(&log, 1 << 20);
  RecordHeader h = SampleHeader(5);
  std::string payload = EncodeEnvelope(h, EncodeDataBody({"pk", "pv", 7}));
  size_t framed = payload.size();
  AppendRequest req;
  req.tags = {"d/X/0"};
  req.payload = std::move(payload);
  buffer.Add(OutputBuffer::Kind::kOutput, std::move(req));
  EXPECT_EQ(buffer.pending_bytes(), framed);

  auto result = buffer.Flush();
  ASSERT_TRUE(result.ok());
  auto entry = log.ReadNext("d/X/0", 0);
  ASSERT_TRUE(entry.ok());
  auto env = DecodeEnvelopeView(entry->payload.view());
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->seq, 5u);
}

TEST(OutputBufferTest, MixedSealedAndFreshEpochsFlushInOrder) {
  // Records from a sealed (flushed-but-kept) epoch and a fresh epoch must
  // both survive: seal pins the old bytes while new records encode into a
  // new buffer. Interleave two flushes and verify global seq order.
  SharedLog log;
  OutputBuffer buffer(&log, 1 << 20);
  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 1, "a", "1");
  ASSERT_TRUE(buffer.Flush().ok());
  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 2, "b", "2");
  EncodeRecordInto(buffer, OutputBuffer::Kind::kOutput, "d/X/0", 3, "c", "3");
  ASSERT_TRUE(buffer.Flush().ok());

  Lsn from = 0;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    auto entry = log.ReadNext("d/X/0", from);
    ASSERT_TRUE(entry.ok());
    from = entry->lsn + 1;
    auto env = DecodeEnvelopeView(entry->payload.view());
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(env->seq, seq);
  }
}

}  // namespace
}  // namespace impeller
