// Unit tests for the checkpoint store (Kvrocks substitute): operations,
// batches, prefix scans, and WAL-based crash recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/kvstore/kv_store.h"

namespace impeller {
namespace {

std::string TempWalPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("impeller_kv_") + name + "_" +
           std::to_string(::getpid()) + ".wal"))
      .string();
}

TEST(KvStoreTest, PutGetDelete) {
  KvStore store;
  ASSERT_TRUE(store.Put("a", "1").ok());
  ASSERT_TRUE(store.Put("b", "2").ok());
  EXPECT_EQ(*store.Get("a"), "1");
  EXPECT_TRUE(store.Contains("b"));
  ASSERT_TRUE(store.Delete("a").ok());
  EXPECT_EQ(store.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteKeepsLatest) {
  KvStore store;
  ASSERT_TRUE(store.Put("k", "old").ok());
  ASSERT_TRUE(store.Put("k", "new").ok());
  EXPECT_EQ(*store.Get("k"), "new");
}

TEST(KvStoreTest, WriteBatchIsAtomicInMemory) {
  KvStore store;
  std::vector<KvWriteOp> ops;
  ops.push_back({"x", "1"});
  ops.push_back({"y", "2"});
  ops.push_back({"x", std::nullopt});
  ASSERT_TRUE(store.WriteBatch(std::move(ops)).ok());
  EXPECT_FALSE(store.Contains("x"));
  EXPECT_EQ(*store.Get("y"), "2");
}

TEST(KvStoreTest, ScanPrefixOrdered) {
  KvStore store;
  ASSERT_TRUE(store.Put("ckpt/t2", "b").ok());
  ASSERT_TRUE(store.Put("ckpt/t1", "a").ok());
  ASSERT_TRUE(store.Put("other", "z").ok());
  auto rows = store.ScanPrefix("ckpt/");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "ckpt/t1");
  EXPECT_EQ(rows[1].first, "ckpt/t2");
}

TEST(KvStoreTest, WalRecoveryRestoresState) {
  std::string wal = TempWalPath("recovery");
  std::remove(wal.c_str());
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Put("alpha", "1").ok());
    ASSERT_TRUE(store.Put("beta", "2").ok());
    ASSERT_TRUE(store.Delete("alpha").ok());
    ASSERT_TRUE(store.Put("gamma", std::string(10000, 'g')).ok());
  }
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Recover().ok());
    EXPECT_FALSE(store.Contains("alpha"));
    EXPECT_EQ(*store.Get("beta"), "2");
    EXPECT_EQ(store.Get("gamma")->size(), 10000u);
  }
  std::remove(wal.c_str());
}

TEST(KvStoreTest, TornWalTailIsIgnored) {
  std::string wal = TempWalPath("torn");
  std::remove(wal.c_str());
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Put("good", "1").ok());
  }
  {
    // Simulate a torn write: append garbage that looks like a huge record.
    std::FILE* f = std::fopen(wal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t len = 1 << 20;
    std::fwrite(&len, 4, 1, f);
    std::fwrite("partial", 1, 7, f);
    std::fclose(f);
  }
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Recover().ok());
    EXPECT_EQ(*store.Get("good"), "1");
    EXPECT_EQ(store.size(), 1u);
  }
  std::remove(wal.c_str());
}

TEST(KvStoreTest, CorruptWalChecksumTruncates) {
  std::string wal = TempWalPath("corrupt");
  std::remove(wal.c_str());
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Put("first", "1").ok());
    ASSERT_TRUE(store.Put("second", "2").ok());
  }
  {
    // Flip a byte in the middle of the second record's body.
    std::FILE* f = std::fopen(wal.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -6, SEEK_END);
    char c = 0x5A;
    std::fwrite(&c, 1, 1, f);
    std::fclose(f);
  }
  {
    KvStoreOptions opts;
    opts.wal_path = wal;
    KvStore store(opts);
    ASSERT_TRUE(store.Recover().ok());
    EXPECT_EQ(*store.Get("first"), "1");
    EXPECT_FALSE(store.Contains("second"))
        << "the corrupt suffix must be dropped";
  }
  std::remove(wal.c_str());
}

TEST(KvStoreTest, LatencyModelChargesWrites) {
  CalibratedLatencyParams params;
  params.ack_median = 3 * kMillisecond;
  params.ack_sigma = 0.01;
  KvStoreOptions opts;
  opts.latency = std::make_shared<CalibratedLatencyModel>(params, 1);
  KvStore store(opts);
  TimeNs t0 = MonotonicClock::Get()->Now();
  ASSERT_TRUE(store.Put("k", "v").ok());
  EXPECT_GE(MonotonicClock::Get()->Now() - t0, 2 * kMillisecond);
}

}  // namespace
}  // namespace impeller
