// Engine/TaskManager API-contract tests: misuse is rejected with clear
// errors instead of undefined behaviour.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::WordCountPlan;

TEST(EngineApiTest, ProducersRequireSubmittedPlan) {
  Engine engine{EngineOptions{}};
  EXPECT_EQ(engine.NewProducer("gen", "lines").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.NewEgressConsumer("count", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineApiTest, ProducerOnlyForIngressStreams) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  EXPECT_FALSE(engine.NewProducer("gen", "words").ok())
      << "internal streams are not ingress";
  EXPECT_FALSE(engine.NewProducer("gen", "missing").ok());
  EXPECT_TRUE(engine.NewProducer("gen", "lines").ok());
  engine.Stop();
}

TEST(EngineApiTest, EgressConsumerValidatesStageAndSubstream) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  EXPECT_FALSE(engine.NewEgressConsumer("split", 0).ok())
      << "split has no sink";
  EXPECT_FALSE(engine.NewEgressConsumer("count", 9).ok());
  EXPECT_TRUE(engine.NewEgressConsumer("count", 1).ok());
  engine.Stop();
}

TEST(EngineApiTest, OneQueryPerEngine) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto second = WordCountPlan(1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.Submit(std::move(*second)).code(),
            StatusCode::kInvalidArgument)
      << "one shared log per query (paper §3.1)";
  engine.Stop();
}

TEST(EngineApiTest, UnknownTaskOperationsFail) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  EXPECT_EQ(engine.tasks()->CrashTask("nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(engine.tasks()->RestartTask("nope").ok());
  EXPECT_EQ(engine.tasks()->StartReplacement("nope").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.tasks()->FindTask("nope"), nullptr);
  engine.Stop();
}

TEST(EngineApiTest, TaskIdsEnumerateEveryStageTask) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(2);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto ids = engine.tasks()->AllTaskIds();
  EXPECT_EQ(ids.size(), 4u);
  for (const auto& id : ids) {
    TaskRuntime* rt = engine.tasks()->FindTask(id);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->instance(), 1u) << "first instances are minted as 1";
  }
  engine.Stop();
}

TEST(EngineApiTest, StopIsIdempotent) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kProgressMarking);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  engine.Stop();
  engine.Stop();  // second stop is a no-op, not a crash
}

TEST(EngineApiTest, MetricsRegistryIsStable) {
  MetricsRegistry registry;
  LatencyHistogram* h1 = registry.Histogram("a");
  Counter* c1 = registry.GetCounter("a");
  EXPECT_EQ(registry.Histogram("a"), h1) << "same name, same instance";
  EXPECT_EQ(registry.GetCounter("a"), c1);
  h1->Record(5);
  c1->Add(3);
  registry.ResetAll();
  EXPECT_EQ(h1->Count(), 0u);
  EXPECT_EQ(c1->Get(), 0u);
  EXPECT_EQ(registry.HistogramNames().size(), 1u);
}

}  // namespace
}  // namespace impeller
