// Cross-protocol tests (§5.1 baselines): the same word-count pipeline must
// produce exactly-once output under progress marking, Kafka-style
// transactions, aligned checkpointing, and (absent failures) unsafe mode;
// plus protocol-specific behaviours: transaction phase structure, fencing
// through the coordinator, and aligned-checkpoint global rollback.
#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "src/protocols/barrier_coordinator.h"
#include "src/protocols/txn_coordinator.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using testutil::FastConfig;
using testutil::ReadWordCounts;
using testutil::WaitFor;
using testutil::WordCountPlan;

class ProtocolSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolSweep, WordCountProducesExactCounts) {
  EngineOptions options;
  options.config = FastConfig(GetParam());
  Engine engine(std::move(options));
  auto plan = WordCountPlan();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 40; ++i) {
    (*producer)->Send("l" + std::to_string(i), "apple banana apple");
  }
  ASSERT_TRUE((*producer)->Flush().ok());

  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 120; }, 20 * kSecond))
      << ProtocolKindName(GetParam()) << ": " << out->Get() << "/120";
  MonotonicClock::Get()->SleepFor(100 * kMillisecond);
  EXPECT_EQ(out->Get(), 120u) << "no duplicates without failures";
  engine.Stop();

  auto counts = ReadWordCounts(engine);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["apple"], 80);
  EXPECT_EQ((*counts)["banana"], 40);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolSweep,
    ::testing::Values(ProtocolKind::kProgressMarking, ProtocolKind::kKafkaTxn,
                      ProtocolKind::kAlignedCheckpoint, ProtocolKind::kUnsafe),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      std::string name = ProtocolKindName(info.param);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(TxnCoordinatorTest, TwoPhaseCommitAppendsControlRecords) {
  SharedLog log;
  TxnCoordinatorOptions options;
  options.rpc_median = 10 * kMicrosecond;
  TxnCoordinator coordinator(&log, MonotonicClock::Get(), options);
  coordinator.Start();

  log.MetaPut(InstanceMetaKey("q/s/0"), 1);
  TxnRequest request;
  request.task_id = "q/s/0";
  request.instance = 1;
  request.output_tags = {"d/out/0", "d/out/1"};
  request.task_log_tag = TaskLogTag("q/s/0");
  request.input_ends = {{"d/in/0", 42}};
  auto future = coordinator.CommitTransaction(std::move(request));
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  future->wait();
  EXPECT_TRUE(future->get().ok());
  EXPECT_EQ(coordinator.committed_txns(), 1u);

  // Transaction stream: registration, pre-commit, committed.
  int txn_stream_records = 0;
  Lsn cursor = 0;
  while (true) {
    auto entry = log.ReadNext(coordinator.txn_stream_tag(), cursor);
    if (!entry.ok()) {
      break;
    }
    cursor = entry->lsn + 1;
    ++txn_stream_records;
  }
  EXPECT_EQ(txn_stream_records, 3);

  // Each output substream got its commit control record.
  for (const char* tag : {"d/out/0", "d/out/1"}) {
    auto entry = log.ReadNext(tag, 0);
    ASSERT_TRUE(entry.ok()) << tag;
    auto env = DecodeEnvelope(entry->payload);
    ASSERT_TRUE(env.ok());
    EXPECT_EQ(env->header.type, RecordType::kTxnControl);
    auto body = DecodeTxnControlBody(env->body);
    ASSERT_TRUE(body.ok());
    EXPECT_EQ(body->kind, TxnControlKind::kCommit);
  }
  // The task-log commit record carries the input ends for recovery.
  auto task_log = log.ReadLast(TaskLogTag("q/s/0"));
  ASSERT_TRUE(task_log.ok());
  auto env = DecodeEnvelope(task_log->payload);
  ASSERT_TRUE(env.ok());
  auto body = DecodeTxnControlBody(env->body);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(body->input_ends.size(), 1u);
  EXPECT_EQ(body->input_ends[0].second, 42u);
  coordinator.Stop();
}

TEST(TxnCoordinatorTest, SupersededInstanceIsFenced) {
  SharedLog log;
  TxnCoordinatorOptions options;
  options.rpc_median = 10 * kMicrosecond;
  TxnCoordinator coordinator(&log, MonotonicClock::Get(), options);
  coordinator.Start();
  log.MetaPut(InstanceMetaKey("q/s/0"), 5);
  TxnRequest request;
  request.task_id = "q/s/0";
  request.instance = 4;  // stale
  request.task_log_tag = TaskLogTag("q/s/0");
  auto future = coordinator.CommitTransaction(std::move(request));
  ASSERT_FALSE(future.ok());
  EXPECT_EQ(future.status().code(), StatusCode::kFenced);
  coordinator.Stop();
}

TEST(KafkaTxnRecoveryTest, CrashAndRestartStaysExact) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kKafkaTxn);
  Engine engine(std::move(options));
  auto plan = WordCountPlan();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("l", "kiwi mango");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 60; }, 20 * kSecond));

  auto stats = engine.tasks()->RestartTask("wc/count/0");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  for (int i = 0; i < 30; ++i) {
    (*producer)->Send("l", "kiwi");
  }
  ASSERT_TRUE((*producer)->Flush().ok());
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 90; }, 20 * kSecond));
  engine.Stop();
  auto counts = ReadWordCounts(engine);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["kiwi"], 60);
  EXPECT_EQ((*counts)["mango"], 30);
}

TEST(AlignedCheckpointTest, CheckpointsCompleteAndStatePersists) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kAlignedCheckpoint);
  options.config.commit_interval = 50 * kMillisecond;
  Engine engine(std::move(options));
  auto plan = WordCountPlan();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  for (int i = 0; i < 20; ++i) {
    (*producer)->Send("l", "pear plum");
    ASSERT_TRUE((*producer)->Flush().ok());
    MonotonicClock::Get()->SleepFor(10 * kMillisecond);
  }
  BarrierCoordinator* coordinator = engine.tasks()->barrier_coordinator();
  ASSERT_NE(coordinator, nullptr);
  ASSERT_TRUE(WaitFor([&] { return coordinator->LatestCompleted() >= 2; },
                      20 * kSecond))
      << "completed " << coordinator->LatestCompleted() << " checkpoints";
  // Snapshots for every task exist in the checkpoint store.
  uint64_t id = coordinator->LatestCompleted();
  for (const auto& task : engine.tasks()->AllTaskIds()) {
    EXPECT_TRUE(engine.checkpoint_store()->Contains(
        "actl/" + task + "/" + std::to_string(id)))
        << task;
  }
  engine.Stop();
}

TEST(AlignedCheckpointTest, GlobalRollbackRecoversExactCounts) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kAlignedCheckpoint);
  options.config.commit_interval = 40 * kMillisecond;
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");

  for (int i = 0; i < 25; ++i) {
    (*producer)->Send("l", "fig date");
    ASSERT_TRUE((*producer)->Flush().ok());
    MonotonicClock::Get()->SleepFor(8 * kMillisecond);
  }
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 50; }, 20 * kSecond));
  BarrierCoordinator* coordinator = engine.tasks()->barrier_coordinator();
  ASSERT_TRUE(WaitFor([&] { return coordinator->LatestCompleted() >= 1; },
                      20 * kSecond));

  // Fail the whole query: every task restarts from the completed
  // checkpoint; re-executed outputs are deduplicated by producer seq.
  for (const auto& task : engine.tasks()->AllTaskIds()) {
    auto stats = engine.tasks()->RestartTask(task);
    ASSERT_TRUE(stats.ok()) << task << ": " << stats.status().ToString();
  }
  for (int i = 0; i < 25; ++i) {
    (*producer)->Send("l", "fig");
    ASSERT_TRUE((*producer)->Flush().ok());
    MonotonicClock::Get()->SleepFor(4 * kMillisecond);
  }
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 75; }, 20 * kSecond));
  engine.Stop();

  auto counts = ReadWordCounts(engine, 1);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)["fig"], 50);
  EXPECT_EQ((*counts)["date"], 25);
}

TEST(UnsafeModeTest, NoMarkersAreWritten) {
  EngineOptions options;
  options.config = FastConfig(ProtocolKind::kUnsafe);
  Engine engine(std::move(options));
  auto plan = WordCountPlan(1);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.Submit(std::move(*plan)).ok());
  auto producer = engine.NewProducer("gen", "lines");
  ASSERT_TRUE(producer.ok());
  (*producer)->Send("l", "x y z");
  ASSERT_TRUE((*producer)->Flush().ok());
  Counter* out = engine.metrics()->GetCounter("out/wc");
  ASSERT_TRUE(WaitFor([&] { return out->Get() >= 3; }));
  TaskRuntime* task = engine.tasks()->FindTask("wc/count/0");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->markers_written(), 0u);
  engine.Stop();
  // The task log stays empty in unsafe mode.
  EXPECT_EQ(engine.log()->ReadLast("t/wc/count/0").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace impeller
