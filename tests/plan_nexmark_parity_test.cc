// The plan layer's correctness oracle: NEXMark Q1-Q8 authored on the
// declarative plan API must be indistinguishable from the hand-written
// imperative builders in queries.cc.
//
// Two levels of parity:
//  1. Structural — the lowered QueryPlan matches the imperative one stage
//     for stage (names, order, tasks, substreams, statefulness, input and
//     output streams, operator counts) and stream for stream, for all
//     eight queries. Both paths call the same named UDFs (udfs.h), so
//     structural equality pins runtime equality up to operator wiring.
//  2. Runtime — the committed egress of a plan-built query is
//     byte-identical to the imperative build's: fault-free across all four
//     protocols and shards {1, 3}, and under the seeded chaos harness at
//     shards = 3. Also: fusion off (every operator its own stage) commits
//     the same bytes as fusion on — more hops, same answer.
#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/fault.h"
#include "src/nexmark/events.h"
#include "src/nexmark/plan_queries.h"
#include "src/nexmark/queries.h"
#include "src/nexmark/udfs.h"
#include "tests/test_util.h"

namespace impeller {
namespace {

using fault::FaultKind;
using fault::FaultSchedule;

constexpr uint32_t kTasksPerStage = 2;
constexpr size_t kNumEvents = 120;
constexpr TimeNs kEventTimeBase = 1'000'000'000;

NexmarkQueryOptions ParityOptions() {
  NexmarkQueryOptions opt;
  opt.tasks_per_stage = kTasksPerStage;
  return opt;
}

// --- structural parity, Q1-Q8 ---

void ExpectStructurallyEqual(const QueryPlan& imperative,
                             const QueryPlan& from_plan) {
  EXPECT_EQ(imperative.name, from_plan.name);

  ASSERT_EQ(imperative.stages.size(), from_plan.stages.size());
  for (size_t i = 0; i < imperative.stages.size(); ++i) {
    SCOPED_TRACE("stage #" + std::to_string(i));
    const StageSpec& a = imperative.stages[i];
    const StageSpec& b = from_plan.stages[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_tasks, b.num_tasks);
    EXPECT_EQ(a.num_substreams, b.num_substreams);
    EXPECT_EQ(a.stateful, b.stateful);
    EXPECT_EQ(a.inputs, b.inputs);
    ASSERT_EQ(a.outputs.size(), b.outputs.size()) << a.name;
    for (size_t j = 0; j < a.outputs.size(); ++j) {
      EXPECT_EQ(a.outputs[j].stream, b.outputs[j].stream);
    }
    EXPECT_EQ(a.operators.size(), b.operators.size()) << a.name;
  }

  ASSERT_EQ(imperative.streams.size(), from_plan.streams.size());
  auto ia = imperative.streams.begin();
  auto ib = from_plan.streams.begin();
  for (; ia != imperative.streams.end(); ++ia, ++ib) {
    SCOPED_TRACE("stream '" + ia->first + "'");
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.external, ib->second.external);
    EXPECT_EQ(ia->second.egress, ib->second.egress);
    EXPECT_EQ(ia->second.producer_stage, ib->second.producer_stage);
    EXPECT_EQ(ia->second.consumer_stage, ib->second.consumer_stage);
    EXPECT_EQ(ia->second.num_substreams, ib->second.num_substreams);
  }
}

class StructuralParityTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuralParityTest, FusedPlanLowersToImperativeQueryPlan) {
  int number = GetParam();
  NexmarkQueryOptions opt = ParityOptions();
  auto imperative = BuildNexmarkQuery(number, opt);
  ASSERT_TRUE(imperative.ok()) << imperative.status().ToString();
  auto plan = nexmark::BuildNexmarkPlanQuery(number, opt, /*fuse=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExpectStructurallyEqual(*imperative, plan->lowered.query);

  // With fusion on, the sinking stage keeps its imperative name.
  auto sink_stage = nexmark::PlanSinkStage(plan->lowered);
  ASSERT_TRUE(sink_stage.ok()) << sink_stage.status().ToString();
  EXPECT_EQ(*sink_stage, NexmarkSinkStage(number));

  // The logical plan survives a JSON round trip and re-lowers identically.
  auto restored = plan::LogicalPlan::FromJson(plan->logical.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ToJson(), plan->logical.ToJson());
}

TEST_P(StructuralParityTest, UnfusedPlanHasOneStagePerOperator) {
  int number = GetParam();
  NexmarkQueryOptions opt = ParityOptions();
  auto fused = nexmark::BuildNexmarkPlanQuery(number, opt, /*fuse=*/true);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  auto unfused = nexmark::BuildNexmarkPlanQuery(number, opt, /*fuse=*/false);
  ASSERT_TRUE(unfused.ok()) << unfused.status().ToString();

  size_t sources = 0;
  for (const auto& node : fused->logical.nodes) {
    sources += node.kind == plan::OpKind::kSource ? 1 : 0;
  }
  // One stage per non-source node; no hop ever fused.
  EXPECT_EQ(unfused->lowered.query.stages.size(),
            unfused->logical.nodes.size() - sources);
  EXPECT_EQ(unfused->lowered.hops_eliminated, 0);
  EXPECT_GT(fused->lowered.hops_eliminated, 0);
  EXPECT_LT(fused->lowered.query.stages.size(),
            unfused->lowered.query.stages.size());
}

INSTANTIATE_TEST_SUITE_P(AllQueries, StructuralParityTest,
                         ::testing::Range(1, 9),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

// --- runtime parity: committed egress bytes ---

// Deterministic bid stream (mirrors tests/chaos_test.cc).
std::vector<Bid> MakeBids() {
  std::vector<Bid> bids;
  bids.reserve(kNumEvents);
  for (size_t i = 0; i < kNumEvents; ++i) {
    Bid bid;
    // Every fifth bid lands on a sampled auction (multiple of 123) so Q2's
    // selection keeps a deterministic, nonempty, proper subset.
    bid.auction = (i % 5 == 0) ? 123 * (1 + static_cast<int64_t>(i) % 7)
                               : 1000 + i % 37;
    bid.bidder = i;
    bid.price = 100 + static_cast<int64_t>(i) * 7;
    bid.channel = "parity";
    bid.url = "https://bid/" + std::to_string(i);
    bid.date_time = kEventTimeBase + static_cast<TimeNs>(i) * kMillisecond;
    bids.push_back(std::move(bid));
  }
  return bids;
}

// How many of the fixed bids each bids-only query commits: Q1 converts all
// of them, Q2 keeps the sampled-auction subset — computed with the same
// named predicate the query runs.
size_t ExpectedCommitted(int number) {
  if (number == 1) {
    return kNumEvents;
  }
  size_t kept = 0;
  for (const auto& bid : MakeBids()) {
    StreamRecord r{std::to_string(bid.auction), EncodeBid(bid),
                   bid.date_time};
    kept += nexmark::BidOnSampledAuction(r) ? 1 : 0;
  }
  return kept;
}

Result<std::vector<std::string>> CollectCommitted(Engine& engine,
                                                  const std::string& stage) {
  std::vector<std::string> lines;
  for (uint32_t sub = 0; sub < kTasksPerStage; ++sub) {
    auto consumer = engine.NewEgressConsumer(stage, sub);
    if (!consumer.ok()) {
      return consumer.status();
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return records.status();
    }
    for (const auto& r : *records) {
      // Raw key and value bytes: any lowering divergence shows up here.
      lines.push_back(std::string(r.data.key) + "|" +
                      std::string(r.data.value) + "|" +
                      std::to_string(r.data.event_time / kMillisecond));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

size_t DistinctCommitted(Engine& engine, const std::string& stage) {
  auto lines = CollectCommitted(engine, stage);
  if (!lines.ok()) {
    return 0;
  }
  return std::set<std::string>(lines->begin(), lines->end()).size();
}

enum class BuildMode { kImperative, kPlanFused, kPlanUnfused };

// One full run of a bids-only query (Q1 or Q2), built imperatively or via
// the plan layer, optionally under armed fault schedules. Returns the
// sorted committed egress lines.
Result<std::vector<std::string>> RunQuery(int number, BuildMode mode,
                                          ProtocolKind protocol,
                                          uint64_t seed,
                                          std::vector<FaultSchedule> schedules,
                                          uint32_t shards) {
  EngineOptions options;
  options.config = testutil::FastConfig(protocol);
  options.config.auto_restart = true;
  options.config.heartbeat_interval = 10 * kMillisecond;
  options.config.failure_timeout = 250 * kMillisecond;
  options.config.snapshot_interval = 150 * kMillisecond;
  options.config.log_shards = shards;
  options.name = "parity";
  Engine engine(std::move(options));

  NexmarkQueryOptions query_options = ParityOptions();
  std::string sink_stage;
  if (mode == BuildMode::kImperative) {
    auto plan = BuildNexmarkQuery(number, query_options);
    IMPELLER_RETURN_IF_ERROR(plan.status());
    sink_stage = NexmarkSinkStage(number);
    IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  } else {
    auto plan = nexmark::BuildNexmarkPlanQuery(
        number, query_options, /*fuse=*/mode == BuildMode::kPlanFused);
    IMPELLER_RETURN_IF_ERROR(plan.status());
    IMPELLER_ASSIGN_OR_RETURN(sink_stage,
                              nexmark::PlanSinkStage(plan->lowered));
    IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(plan->lowered.query)));
  }
  auto producer = engine.NewProducer("parity-gen", "bids");
  IMPELLER_RETURN_IF_ERROR(producer.status());

  Clock* clock = engine.clock();
  std::vector<Bid> bids = MakeBids();
  {
    testutil::FaultArmGuard arm(std::move(schedules), seed, engine.metrics());
    for (size_t start = 0; start < bids.size(); start += 40) {
      size_t end = std::min(start + 40, bids.size());
      for (size_t i = start; i < end; ++i) {
        (*producer)->Send(std::to_string(bids[i].auction), EncodeBid(bids[i]),
                          bids[i].date_time);
      }
      IMPELLER_RETURN_IF_ERROR(testutil::FlushUntilDrained(**producer, clock));
      clock->SleepFor(15 * kMillisecond);
    }
    clock->SleepFor(100 * kMillisecond);
  }  // disarm: recovery runs fault-free

  size_t expected = ExpectedCommitted(number);
  testutil::WaitFor(
      [&] { return DistinctCommitted(engine, sink_stage) >= expected; },
      30 * kSecond);
  engine.Stop();
  return CollectCommitted(engine, sink_stage);
}

// Fault-free: all four protocols, shards 1 and 3. Q1's plan build must
// commit byte-identical output to the imperative build.
class RuntimeParityTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RuntimeParityTest, Q1PlanOutputMatchesImperativeFaultFree) {
  ProtocolKind protocol = GetParam();
  for (uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto imperative =
        RunQuery(1, BuildMode::kImperative, protocol, /*seed=*/0, {}, shards);
    ASSERT_TRUE(imperative.ok()) << imperative.status().ToString();
    ASSERT_EQ(imperative->size(), kNumEvents);
    auto from_plan =
        RunQuery(1, BuildMode::kPlanFused, protocol, /*seed=*/0, {}, shards);
    ASSERT_TRUE(from_plan.ok()) << from_plan.status().ToString();
    EXPECT_EQ(*from_plan, *imperative);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, RuntimeParityTest,
    ::testing::Values(ProtocolKind::kProgressMarking, ProtocolKind::kKafkaTxn,
                      ProtocolKind::kAlignedCheckpoint, ProtocolKind::kUnsafe),
    [](const auto& info) {
      std::string name = ProtocolKindName(info.param);
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](unsigned char c) { return !std::isalnum(c); }),
                 name.end());
      return name;
    });

TEST(RuntimeParityFixedTest, Q2PlanOutputMatchesImperativeFaultFree) {
  size_t expected = ExpectedCommitted(2);
  ASSERT_GT(expected, 0u) << "sampling predicate must keep some bids";
  ASSERT_LT(expected, kNumEvents) << "sampling predicate must drop some bids";
  auto imperative = RunQuery(2, BuildMode::kImperative,
                             ProtocolKind::kProgressMarking, /*seed=*/0, {},
                             /*shards=*/3);
  ASSERT_TRUE(imperative.ok()) << imperative.status().ToString();
  ASSERT_EQ(imperative->size(), expected);
  auto from_plan = RunQuery(2, BuildMode::kPlanFused,
                            ProtocolKind::kProgressMarking, /*seed=*/0, {},
                            /*shards=*/3);
  ASSERT_TRUE(from_plan.ok()) << from_plan.status().ToString();
  EXPECT_EQ(*from_plan, *imperative);
}

// Fusion ablation sanity: with fusion disabled Q1 runs as three
// single-operator stages — two extra log hops — and still commits exactly
// the same bytes.
TEST(RuntimeParityFixedTest, Q1UnfusedPlanCommitsSameBytesAsFused) {
  auto fused = RunQuery(1, BuildMode::kPlanFused,
                        ProtocolKind::kProgressMarking, /*seed=*/0, {},
                        /*shards=*/1);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  ASSERT_EQ(fused->size(), kNumEvents);
  auto unfused = RunQuery(1, BuildMode::kPlanUnfused,
                          ProtocolKind::kProgressMarking, /*seed=*/0, {},
                          /*shards=*/1);
  ASSERT_TRUE(unfused.ok()) << unfused.status().ToString();
  EXPECT_EQ(*unfused, *fused);
}

// Chaos: same benign-fault schedule armed for both builds at shards = 3;
// the committed output must match the fault-free imperative baseline (and
// therefore each other). Crash/recovery chaos on the imperative path is
// tests/chaos_test.cc's job; here the faults prove the *plan-built* stages
// retry, dedupe, and commit like the imperative ones.
TEST(RuntimeParityFixedTest, Q1PlanMatchesImperativeUnderFaults) {
#if !defined(IMPELLER_FAULT_INJECTION_ENABLED)
  GTEST_SKIP() << "built with IMPELLER_FAULT_INJECTION=OFF";
#else
  constexpr uint64_t kSeed = 17;
  auto make_schedules = [] {
    std::vector<FaultSchedule> out;
    {
      FaultSchedule s;  // append-ack delay spikes
      s.point = "log/append";
      s.kind = FaultKind::kDelay;
      s.delay = 2 * kMillisecond;
      s.every_n = 25;
      s.max_fires = 3;
      out.push_back(s);
    }
    {
      FaultSchedule s;  // transient append errors, absorbed by the Retrier
      s.point = "log/append";
      s.kind = FaultKind::kError;
      s.every_n = 20;
      s.max_fires = 2;
      out.push_back(s);
    }
    {
      FaultSchedule s;  // duplicate redelivery on the bid input
      s.point = "log/read";
      s.kind = FaultKind::kDuplicate;
      s.detail_substr = "bids";
      s.every_n = 30;
      s.max_fires = 2;
      out.push_back(s);
    }
    return out;
  };

  auto baseline = RunQuery(1, BuildMode::kImperative,
                           ProtocolKind::kProgressMarking, /*seed=*/0, {},
                           /*shards=*/3);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->size(), kNumEvents);

  auto imperative = RunQuery(1, BuildMode::kImperative,
                             ProtocolKind::kProgressMarking, kSeed,
                             make_schedules(), /*shards=*/3);
  ASSERT_TRUE(imperative.ok()) << imperative.status().ToString();
  EXPECT_EQ(*imperative, *baseline);

  auto from_plan = RunQuery(1, BuildMode::kPlanFused,
                            ProtocolKind::kProgressMarking, kSeed,
                            make_schedules(), /*shards=*/3);
  ASSERT_TRUE(from_plan.ok()) << from_plan.status().ToString();
  EXPECT_EQ(*from_plan, *baseline);
#endif
}

}  // namespace
}  // namespace impeller
