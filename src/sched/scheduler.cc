#include "src/sched/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace impeller {
namespace sched {

namespace {

inline void BumpCounter(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Add(n);
  }
}

// Floor for idle re-runs: a zero-delay kIdle must not hot-spin the worker.
constexpr DurationNs kMinIdleDelay = 10 * kMicrosecond;
// Upper bound on a parked worker's nap: a submit notifies immediately; a
// sleeper becoming due while every worker naps is caught within this bound.
constexpr DurationNs kMaxParkNap = 2 * kMillisecond;

}  // namespace

WorkStealingScheduler::WorkStealingScheduler(SchedulerOptions options)
    : options_(std::move(options)) {
  clock_ = options_.clock != nullptr ? options_.clock : MonotonicClock::Get();
  // Default: one worker per hardware thread, floored at 4. On small
  // machines a single worker would serialize independent tasks behind each
  // other's blocking steps (recovery, modeled-latency commits), starving
  // heartbeats; a few OS threads restore preemptive sharing there.
  uint32_t n = options_.workers != 0
                   ? options_.workers
                   : std::max(4u, std::thread::hardware_concurrency());
  for (uint32_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    if (options_.metrics != nullptr) {
      worker->steps_counter = options_.metrics->GetCounter(
          "sched/worker" + std::to_string(i) + "/steps");
    }
    workers_.push_back(std::move(worker));
  }
  if (options_.metrics != nullptr) {
    steps_total_ = options_.metrics->GetCounter("sched/steps");
    steals_total_ = options_.metrics->GetCounter("sched/steals");
    parks_total_ = options_.metrics->GetCounter("sched/parks");
  }
}

WorkStealingScheduler::~WorkStealingScheduler() { Stop(); }

void WorkStealingScheduler::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stopping_.store(false);
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void WorkStealingScheduler::Stop() {
  stopping_.store(true);
  park_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
  threads_.clear();
  // Release every entity that never reported kDone. Workers are joined, so
  // all live entities sit in a run queue or the sleep queue.
  std::vector<Entity*> orphans;
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    orphans.insert(orphans.end(), worker->queue.begin(),
                   worker->queue.end());
    worker->queue.clear();
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    while (!sleepers_.empty()) {
      orphans.push_back(sleepers_.top().entity);
      sleepers_.pop();
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    live_.clear();
  }
  done_cv_.notify_all();
  for (Entity* e : orphans) {
    delete e;
  }
  running_.store(false);
}

Ticket WorkStealingScheduler::Submit(StepFn step, uint32_t affinity,
                                     std::string label) {
  auto* entity = new Entity();
  entity->step = std::move(step);
  entity->home = affinity % static_cast<uint32_t>(workers_.size());
  entity->label = std::move(label);
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    entity->ticket = next_ticket_++;
    live_[entity->ticket] = entity;
  }
  Ticket ticket = entity->ticket;
  {
    Worker& home = *workers_[entity->home];
    std::lock_guard<std::mutex> lock(home.mu);
    home.queue.push_back(entity);
  }
  park_cv_.notify_all();
  return ticket;
}

void WorkStealingScheduler::Wait(Ticket ticket) {
  if (ticket == kInvalidTicket) {
    return;
  }
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return live_.find(ticket) == live_.end(); });
}

bool WorkStealingScheduler::Finished(Ticket ticket) const {
  if (ticket == kInvalidTicket) {
    return true;
  }
  std::lock_guard<std::mutex> lock(done_mu_);
  return live_.find(ticket) == live_.end();
}

WorkStealingScheduler::Entity* WorkStealingScheduler::PopLocal(
    uint32_t index) {
  Worker& worker = *workers_[index];
  std::lock_guard<std::mutex> lock(worker.mu);
  if (worker.queue.empty()) {
    return nullptr;
  }
  Entity* e = worker.queue.front();  // owner pops FIFO
  worker.queue.pop_front();
  return e;
}

WorkStealingScheduler::Entity* WorkStealingScheduler::PopDueSleeper(
    TimeNs now) {
  std::lock_guard<std::mutex> lock(sleep_mu_);
  if (sleepers_.empty() || sleepers_.top().due > now) {
    return nullptr;
  }
  Entity* e = sleepers_.top().entity;
  sleepers_.pop();
  return e;
}

WorkStealingScheduler::Entity* WorkStealingScheduler::Steal(uint32_t thief) {
  uint32_t n = static_cast<uint32_t>(workers_.size());
  for (uint32_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(thief + i) % n];
    std::vector<Entity*> taken;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      size_t count = (victim.queue.size() + 1) / 2;  // steal half
      for (size_t k = 0; k < count; ++k) {
        taken.push_back(victim.queue.back());  // thief takes from the back
        victim.queue.pop_back();
      }
    }
    if (taken.empty()) {
      continue;
    }
    steals_.fetch_add(taken.size(), std::memory_order_relaxed);
    BumpCounter(steals_total_, taken.size());
    Entity* run = taken.back();
    taken.pop_back();
    if (!taken.empty()) {
      Worker& self = *workers_[thief];
      std::lock_guard<std::mutex> lock(self.mu);
      for (auto rit = taken.rbegin(); rit != taken.rend(); ++rit) {
        self.queue.push_back(*rit);
      }
    }
    return run;
  }
  return nullptr;
}

void WorkStealingScheduler::Park(uint32_t index) {
  (void)index;
  std::unique_lock<std::mutex> lock(sleep_mu_);
  if (stopping_.load(std::memory_order_relaxed)) {
    return;
  }
  parks_.fetch_add(1, std::memory_order_relaxed);
  BumpCounter(parks_total_);
  DurationNs nap = kMaxParkNap;
  if (!sleepers_.empty()) {
    TimeNs now = clock_->Now();
    if (sleepers_.top().due <= now) {
      return;  // runnable sleeper: loop around and pick it up
    }
    nap = std::min<DurationNs>(nap, sleepers_.top().due - now);
  }
  park_cv_.wait_for(lock, std::chrono::nanoseconds(nap));
}

void WorkStealingScheduler::Finish(Entity* entity) {
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    live_.erase(entity->ticket);
  }
  done_cv_.notify_all();
  delete entity;
}

void WorkStealingScheduler::WorkerLoop(uint32_t index) {
  Worker& self = *workers_[index];
  while (!stopping_.load(std::memory_order_relaxed)) {
    Entity* e = PopLocal(index);
    if (e == nullptr) {
      e = PopDueSleeper(clock_->Now());
    }
    if (e == nullptr) {
      e = Steal(index);
    }
    if (e == nullptr) {
      Park(index);
      continue;
    }
    StepResult result = e->step();
    steps_.fetch_add(1, std::memory_order_relaxed);
    BumpCounter(steps_total_);
    BumpCounter(self.steps_counter);
    switch (result.outcome) {
      case StepOutcome::kReady: {
        std::lock_guard<std::mutex> lock(self.mu);
        self.queue.push_back(e);
        break;
      }
      case StepOutcome::kIdle: {
        TimeNs due =
            clock_->Now() + std::max(result.idle_delay, kMinIdleDelay);
        std::lock_guard<std::mutex> lock(sleep_mu_);
        sleepers_.push({due, e});
        break;
      }
      case StepOutcome::kDone:
        Finish(e);
        break;
    }
  }
}

}  // namespace sched
}  // namespace impeller
