// A work-stealing multicore scheduler for cooperative step-based tasks
// (Hazelcast Jet's one-thread-per-core execution model; see PAPERS.md).
//
// Entities are step functions: each call runs one bounded slice of work and
// reports kReady (run me again), kIdle (nothing to do; re-run after a
// delay), or kDone (finished; release me). Workers own mutex-protected
// run-queues; an owner pops FIFO from the front, a thief steals half from
// the back of a victim's queue. Idle entities park in a global time-ordered
// sleep queue that any worker drains. Workers with nothing runnable park on
// a condition variable with a bounded nap, so a submit or a due sleeper
// wakes them promptly.
//
// Placement: Submit takes an affinity hint mapped onto a home worker
// (affinity % workers). The engine passes a task's input shard so a stage's
// readers start near their shard's records; stealing redistributes from
// there when load skews.
#ifndef IMPELLER_SRC_SCHED_SCHEDULER_H_
#define IMPELLER_SRC_SCHED_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"

namespace impeller {
namespace sched {

enum class StepOutcome : uint8_t { kReady, kIdle, kDone };

struct StepResult {
  StepOutcome outcome = StepOutcome::kReady;
  DurationNs idle_delay = 0;  // kIdle only: re-run no sooner than this

  static StepResult Ready() { return {StepOutcome::kReady, 0}; }
  static StepResult Idle(DurationNs delay) {
    return {StepOutcome::kIdle, delay};
  }
  static StepResult Done() { return {StepOutcome::kDone, 0}; }
};

using StepFn = std::function<StepResult()>;
using Ticket = uint64_t;
constexpr Ticket kInvalidTicket = 0;

struct SchedulerOptions {
  uint32_t workers = 0;  // 0 = max(hardware concurrency, 4)
  Clock* clock = nullptr;
  MetricsRegistry* metrics = nullptr;  // "sched/*" counters when set
  std::string name = "sched";
};

class WorkStealingScheduler {
 public:
  explicit WorkStealingScheduler(SchedulerOptions options = {});
  ~WorkStealingScheduler();

  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  void Start();  // idempotent
  // Joins the workers. Entities that have not reported kDone are released
  // without further steps and their tickets complete; callers that need a
  // clean finish must stop their entities and Wait first.
  void Stop();

  // Registers an entity; it starts stepping once the scheduler runs.
  // `affinity` picks the home worker (affinity % workers); `label` is for
  // diagnostics.
  Ticket Submit(StepFn step, uint32_t affinity = 0, std::string label = {});

  // Blocks until the entity behind `ticket` reported kDone (or the
  // scheduler stopped). Unknown or already-finished tickets return
  // immediately.
  void Wait(Ticket ticket);
  bool Finished(Ticket ticket) const;

  uint32_t workers() const {
    return static_cast<uint32_t>(workers_.size());
  }
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }

 private:
  struct Entity {
    StepFn step;
    Ticket ticket = kInvalidTicket;
    uint32_t home = 0;
    std::string label;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Entity*> queue;
    Counter* steps_counter = nullptr;  // "sched/worker<i>/steps"
  };

  struct Sleeper {
    TimeNs due = 0;
    Entity* entity = nullptr;
    bool operator>(const Sleeper& other) const { return due > other.due; }
  };

  void WorkerLoop(uint32_t index);
  Entity* PopLocal(uint32_t index);
  Entity* PopDueSleeper(TimeNs now);
  Entity* Steal(uint32_t thief);
  void Park(uint32_t index);
  void Finish(Entity* entity);

  SchedulerOptions options_;
  Clock* clock_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Sleep queue + worker parking.
  std::mutex sleep_mu_;
  std::condition_variable park_cv_;
  std::priority_queue<Sleeper, std::vector<Sleeper>, std::greater<Sleeper>>
      sleepers_;

  // Ticket lifecycle. `live_` holds every submitted-but-unfinished ticket.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::unordered_map<Ticket, Entity*> live_;
  Ticket next_ticket_ = 1;

  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> parks_{0};
  Counter* steps_total_ = nullptr;
  Counter* steals_total_ = nullptr;
  Counter* parks_total_ = nullptr;
};

}  // namespace sched
}  // namespace impeller

#endif  // IMPELLER_SRC_SCHED_SCHEDULER_H_
