// Fault-injection subsystem (DESIGN.md §"Fault model"): a process-wide
// FaultInjector with named injection points, a seeded RNG, and declarative
// FaultSchedules. Instrumented sites — the shared log's append/read paths,
// the checkpoint store's write path, the task runtime's commit/flush/
// checkpoint phases, and both protocol coordinators — probe the injector and
// apply whatever action it returns: a simulated crash, a transient
// kUnavailable error, an added latency spike, or a duplicate redelivery.
//
// Faults are what the paper's exactly-once argument (§3.3-§3.5) is *about*;
// because the log, store, and tasks are simulated in-process, injecting at
// these seams produces exactly the failure modes a distributed deployment
// would see (lost acks, zombie writers, redelivered records, crashed
// workers) while keeping every run reproducible from one seed.
//
// Usage at an injection point (the point name MUST be a string literal —
// trace records and counters keep the pointer / build names from it):
//
//   if (auto f = IMPELLER_FAULT_PROBE("log/append", options_.name, lsn)) {
//     if (f.kind == fault::FaultKind::kError) {
//       return UnavailableError("injected append failure");
//     }
//     ...
//   }
//
// When the IMPELLER_FAULT_INJECTION CMake option is OFF the macro expands to
// an empty constant and the whole branch folds away — mirroring
// IMPELLER_TRACING. When ON but disarmed, a probe costs one relaxed atomic
// load.
#ifndef IMPELLER_SRC_FAULT_FAULT_H_
#define IMPELLER_SRC_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"

namespace impeller {
namespace fault {

// LSN value meaning "no log position for this hit".
constexpr uint64_t kNoLsn = ~0ull;

enum class FaultKind {
  kNone = 0,
  kCrash,      // site simulates a task/coordinator crash
  kError,      // site returns a transient kUnavailable
  kDelay,      // site sleeps `delay` before proceeding
  kDuplicate,  // log read path redelivers the current record once more
};

const char* FaultKindName(FaultKind kind);

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  DurationNs delay = 0;  // kDelay only
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

// One declarative injection rule. A schedule matches a hit when the point
// name is equal and (if non-empty) `detail_substr` occurs in the hit's
// detail string; whether a matching hit *fires* is decided by the trigger.
struct FaultSchedule {
  std::string point;              // injection-point name, exact match
  FaultKind kind = FaultKind::kError;
  std::string detail_substr;      // substring filter on the hit detail

  // Trigger — the first set field (in this order) decides:
  //   probability > 0   fire i.i.d. with this probability per matching hit
  //   every_n > 0       fire on every Nth matching hit
  //   at_hit > 0        fire once, at the at_hit-th matching hit
  //   at_lsn != kNoLsn  fire once the hit's lsn reaches at_lsn
  double probability = 0.0;
  uint64_t every_n = 0;
  uint64_t at_hit = 0;
  uint64_t at_lsn = kNoLsn;

  uint64_t max_fires = 1;  // 0 = unlimited
  DurationNs delay = kMillisecond;  // injected latency for kDelay
};

// Process-wide injector. Arm() installs a schedule set with a seed; every
// decision thereafter is a pure function of (seed, hit sequence), so a
// failing chaos run replays from its printed seed. Disarm() must be called
// before the MetricsRegistry passed to Arm() is destroyed.
class FaultInjector {
 public:
  static FaultInjector& Get();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Replaces all schedules, reseeds the RNG, resets per-point fire counts,
  // and enables injection. `metrics` (optional) receives "fault/<point>"
  // and "fault/fires" counters.
  void Arm(std::vector<FaultSchedule> schedules, uint64_t seed,
           MetricsRegistry* metrics = nullptr);

  // Disables injection, clears schedules, and detaches the registry.
  // Cumulative fire counts survive until the next Arm().
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Slow path behind Probe(): matches `point`/`detail` against the armed
  // schedules and returns the first firing schedule's action.
  FaultAction Evaluate(const char* point, std::string_view detail,
                       uint64_t lsn);

  // Cumulative fires for one point / across all points since the last Arm().
  uint64_t FireCount(std::string_view point) const;
  uint64_t TotalFires() const;

 private:
  FaultInjector() = default;

  struct ArmedSchedule {
    FaultSchedule spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ArmedSchedule> schedules_;
  Rng rng_{1};
  MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, uint64_t, std::less<>> fires_;
};

// Fast-path wrapper: one relaxed load when disarmed.
inline FaultAction Probe(const char* point, std::string_view detail,
                         uint64_t lsn = kNoLsn) {
  FaultInjector& injector = FaultInjector::Get();
  if (!injector.armed()) {
    return {};
  }
  return injector.Evaluate(point, detail, lsn);
}

}  // namespace fault
}  // namespace impeller

#if defined(IMPELLER_FAULT_INJECTION_ENABLED)
#define IMPELLER_FAULT_PROBE(point, detail, lsn) \
  ::impeller::fault::Probe(point, detail, lsn)
#else
// Arguments are not evaluated; the empty action constant-folds every
// `if (auto f = IMPELLER_FAULT_PROBE(...))` branch away.
#define IMPELLER_FAULT_PROBE(point, detail, lsn) \
  (::impeller::fault::FaultAction{})
#endif  // IMPELLER_FAULT_INJECTION_ENABLED

#endif  // IMPELLER_SRC_FAULT_FAULT_H_
