#include "src/fault/fault.h"

#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace impeller {
namespace fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kError:
      return "error";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::vector<FaultSchedule> schedules, uint64_t seed,
                        MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  schedules_.clear();
  schedules_.reserve(schedules.size());
  for (auto& spec : schedules) {
    ArmedSchedule armed;
    armed.spec = std::move(spec);
    schedules_.push_back(std::move(armed));
  }
  rng_.Seed(seed);
  metrics_ = metrics;
  fires_.clear();
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  schedules_.clear();
  metrics_ = nullptr;
}

FaultAction FaultInjector::Evaluate(const char* point, std::string_view detail,
                                    uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) {
    return {};  // lost the race with Disarm()
  }
  for (ArmedSchedule& armed : schedules_) {
    const FaultSchedule& spec = armed.spec;
    if (spec.point != point) {
      continue;
    }
    if (!spec.detail_substr.empty() &&
        detail.find(spec.detail_substr) == std::string_view::npos) {
      continue;
    }
    armed.hits++;
    if (spec.max_fires > 0 && armed.fires >= spec.max_fires) {
      continue;
    }
    bool fire = false;
    if (spec.probability > 0.0) {
      fire = rng_.NextBool(spec.probability);
    } else if (spec.every_n > 0) {
      fire = (armed.hits % spec.every_n) == 0;
    } else if (spec.at_hit > 0) {
      fire = armed.hits == spec.at_hit;
    } else if (spec.at_lsn != kNoLsn) {
      fire = lsn != kNoLsn && lsn >= spec.at_lsn;
    }
    if (!fire) {
      continue;
    }
    armed.fires++;
    fires_[spec.point]++;
    if (metrics_ != nullptr) {
      metrics_->GetCounter("fault/fires")->Add();
      metrics_->GetCounter("fault/" + spec.point)->Add();
    }
    TRACE_INSTANT("fault", point);
    LOG_DEBUG << "fault: fired " << FaultKindName(spec.kind) << " at " << point
              << " (detail=" << std::string(detail)
              << " hits=" << armed.hits << ")";
    FaultAction action;
    action.kind = spec.kind;
    action.delay = spec.delay;
    return action;
  }
  return {};
}

uint64_t FaultInjector::FireCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fires_.find(point);
  return it == fires_.end() ? 0 : it->second;
}

uint64_t FaultInjector::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [point, count] : fires_) {
    total += count;
  }
  return total;
}

}  // namespace fault
}  // namespace impeller
