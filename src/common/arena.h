// Per-epoch bump arena for transient record batches, plus a string pool
// that recycles std::string capacity across records. Both are owned by the
// task runtime and reset at marker/commit boundaries, so steady-state record
// processing between commits performs no heap allocation for record-sized
// scratch (see DESIGN.md §12 "data-plane memory model").
#ifndef IMPELLER_SRC_COMMON_ARENA_H_
#define IMPELLER_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace impeller {

// Chained-block bump allocator. Alloc() hands out raw bytes from the current
// block; Reset() rewinds to the start while keeping already-grown blocks, so
// a warmed arena serves an entire epoch without touching the heap. Returned
// memory is valid until the next Reset(); nothing is individually freed, so
// only trivially-destructible data may live here.
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = 4096)
      : min_block_(initial_block_bytes < 64 ? 64 : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Alloc(size_t n, size_t align = alignof(std::max_align_t)) {
    size_t off = (used_ + (align - 1)) & ~(align - 1);
    if (block_ == nullptr || off + n > cap_) {
      NewBlock(n);
      off = 0;
    }
    used_ = off + n;
    bytes_used_ += n;
    return block_ + off;
  }

  // Copies `s` into the arena; the returned view lives until Reset().
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) {
      return std::string_view();
    }
    char* p = Alloc(s.size(), 1);
    std::memcpy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  // Rewinds to the first block; grown blocks are kept (the largest becomes
  // the new first block) so capacity is retained across epochs.
  void Reset() {
    if (blocks_.size() > 1) {
      // Keep only the largest block so repeated epochs converge on one
      // allocation-free block of sufficient size.
      size_t best = 0;
      for (size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[best].size) {
          best = i;
        }
      }
      if (best != 0) {
        std::swap(blocks_[0], blocks_[best]);
      }
      blocks_.resize(1);
    }
    if (!blocks_.empty()) {
      block_ = blocks_[0].data.get();
      cap_ = blocks_[0].size;
    }
    used_ = 0;
    bytes_used_ = 0;
  }

  size_t bytes_used() const { return bytes_used_; }
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.size;
    }
    return total;
  }
  size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void NewBlock(size_t at_least) {
    size_t size = cap_ == 0 ? min_block_ : cap_ * 2;
    if (size < at_least) {
      size = at_least;
    }
    Block b;
    b.data = std::make_unique<char[]>(size);
    b.size = size;
    block_ = b.data.get();
    cap_ = size;
    used_ = 0;
    blocks_.push_back(std::move(b));
  }

  size_t min_block_;
  std::vector<Block> blocks_;
  char* block_ = nullptr;
  size_t cap_ = 0;
  size_t used_ = 0;
  size_t bytes_used_ = 0;
};

// Recycles std::string capacity for record key/value scratch. Acquire()
// returns a cleared string whose capacity survives from earlier use, so
// assigning record-sized views into it stops allocating once warm. Release()
// returns the capacity to the pool. Trim() (called at commit boundaries,
// alongside Arena::Reset) bounds how much idle capacity the pool retains.
class StringPool {
 public:
  explicit StringPool(size_t max_pooled = 64) : max_pooled_(max_pooled) {}

  std::string Acquire() {
    if (free_.empty()) {
      return std::string();
    }
    std::string s = std::move(free_.back());
    free_.pop_back();
    s.clear();
    return s;
  }

  void Release(std::string&& s) {
    if (free_.size() < max_pooled_ && s.capacity() > 0) {
      free_.push_back(std::move(s));
    }
  }

  void Trim(size_t keep) {
    if (free_.size() > keep) {
      free_.resize(keep);
    }
  }

  size_t pooled() const { return free_.size(); }

 private:
  size_t max_pooled_;
  std::vector<std::string> free_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_ARENA_H_
