#include "src/common/rng.h"

#include <cassert>

namespace impeller {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256++
  uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection for unbiased results.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double median, double sigma) {
  return median * std::exp(sigma * NextGaussian());
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  assert(n > 0);
  assert(exponent >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -exponent));
}

double ZipfGenerator::H(double x) const {
  if (exponent_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - exponent_) - 1.0) / (1.0 - exponent_);
}

double ZipfGenerator::HInverse(double x) const {
  if (exponent_ == 1.0) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - exponent_), 1.0 / (1.0 - exponent_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (exponent_ == 0.0) {
    return rng.NextBounded(n_);
  }
  while (true) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    }
    if (k > n_) {
      k = n_;
    }
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -exponent_)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace impeller
