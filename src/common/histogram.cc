#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace impeller {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

int LatencyHistogram::BucketFor(int64_t v) {
  if (v < 0) {
    v = 0;
  }
  if (v < kSubBuckets) {
    return static_cast<int>(v);
  }
  int msb = 63 - __builtin_clzll(static_cast<uint64_t>(v));
  int octave = msb - kSubBucketBits + 1;
  int sub = static_cast<int>(v >> octave) & (kSubBuckets - 1);
  int bucket = (octave + 1) * kSubBuckets + sub;
  return std::min(bucket, kNumBuckets - 1);
}

int64_t LatencyHistogram::BucketMidpoint(int bucket) {
  if (bucket < kSubBuckets) {
    return bucket;
  }
  // Inverse of BucketFor: bucket (octave, sub) covers values whose top bits
  // equal sub at shift `octave`, i.e. [sub << octave, (sub + 1) << octave).
  int octave = bucket / kSubBuckets - 1;
  int sub = bucket % kSubBuckets;
  int64_t base = static_cast<int64_t>(sub) << octave;
  int64_t width = static_cast<int64_t>(1) << octave;
  return base + width / 2;
}

void LatencyHistogram::Record(int64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t prev_max = max_.load(std::memory_order_relaxed);
  while (v > prev_max &&
         !max_.compare_exchange_weak(prev_max, v, std::memory_order_relaxed)) {
  }
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (v < prev_min &&
         !min_.compare_exchange_weak(prev_min, v, std::memory_order_relaxed)) {
  }
}

int64_t LatencyHistogram::Percentile(double p) const {
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * total));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return BucketMidpoint(i);
    }
  }
  return max_.load(std::memory_order_relaxed);
}

int64_t LatencyHistogram::Max() const {
  return count_.load(std::memory_order_relaxed) == 0
             ? 0
             : max_.load(std::memory_order_relaxed);
}

int64_t LatencyHistogram::Min() const {
  return count_.load(std::memory_order_relaxed) == 0
             ? 0
             : min_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Mean() const {
  uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t LatencyHistogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  int64_t om = other.max_.load(std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (om > prev &&
         !max_.compare_exchange_weak(prev, om, std::memory_order_relaxed)) {
  }
  int64_t omin = other.min_.load(std::memory_order_relaxed);
  int64_t prev_min = min_.load(std::memory_order_relaxed);
  while (omin < prev_min && !min_.compare_exchange_weak(
                                prev_min, omin, std::memory_order_relaxed)) {
  }
}

std::string FormatDurationNs(int64_t ns) {
  char buf[64];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  }
  return buf;
}

std::string LatencyHistogram::Summary() const {
  return "p50=" + FormatDurationNs(p50()) + " p99=" + FormatDurationNs(p99()) +
         " n=" + std::to_string(Count());
}

}  // namespace impeller
