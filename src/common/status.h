// Status and Result<T>: exception-free error propagation used across all
// Impeller modules. Modeled after absl::Status / StatusOr with a much smaller
// surface; errors carry a code plus a human-readable message.
#ifndef IMPELLER_SRC_COMMON_STATUS_H_
#define IMPELLER_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace impeller {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // key / LSN / tag does not exist
  kAlreadyExists,   // duplicate append, key collision
  kFenced,          // conditional append rejected (stale instance number)
  kSealed,          // shard sealed by failover; re-place at the new epoch
  kOutOfRange,      // LSN beyond tail or before trim point
  kTrimmed,         // record removed by garbage collection
  kUnavailable,     // component stopped or simulated failure in effect
  kInvalidArgument,
  kDataLoss,        // corrupt payload / failed deserialization
  kDeadlineExceeded,
  kAborted,         // transaction aborted (Kafka txn baseline)
  kInternal,
};

// Human-readable name for a status code ("kFenced" -> "FENCED").
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "FENCED: instance 3 superseded by 4" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FencedError(std::string msg) {
  return Status(StatusCode::kFenced, std::move(msg));
}
inline Status SealedError(std::string msg) {
  return Status(StatusCode::kSealed, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status TrimmedError(std::string msg) {
  return Status(StatusCode::kTrimmed, std::move(msg));
}
inline Status UnavailableError(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status AbortedError(std::string msg) {
  return Status(StatusCode::kAborted, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                 // NOLINT
  Result(Status status) : status_(std::move(status)) {          // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagate a non-OK status from an expression that yields Status.
#define IMPELLER_RETURN_IF_ERROR(expr)       \
  do {                                       \
    ::impeller::Status _st = (expr);         \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

// Assign the value of a Result<T> expression or propagate its status.
// Double expansion so __LINE__ resolves before pasting, making the
// temporary unique per use site (several uses may share a scope).
#define IMPELLER_STATUS_CONCAT_INNER(a, b) a##b
#define IMPELLER_STATUS_CONCAT(a, b) IMPELLER_STATUS_CONCAT_INNER(a, b)
#define IMPELLER_ASSIGN_OR_RETURN(lhs, expr) \
  IMPELLER_ASSIGN_OR_RETURN_IMPL(            \
      IMPELLER_STATUS_CONCAT(_res_, __LINE__), lhs, expr)
#define IMPELLER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_STATUS_H_
