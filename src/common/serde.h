// Compact binary serialization used for log payloads, progress markers,
// change-log entries, and checkpoints. Integers use LEB128 varints; strings
// and blobs are length-prefixed. Readers validate bounds and report
// kDataLoss instead of crashing on corrupt input.
#ifndef IMPELLER_SRC_COMMON_SERDE_H_
#define IMPELLER_SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace impeller {

// Writes either into an internally owned buffer (default) or, in
// append-into-caller-buffer mode, onto the tail of an external std::string.
// The external mode is what lets OutputBuffer accumulate many records in one
// contiguous flush buffer without a per-record intermediate string.
class BinaryWriter {
 public:
  BinaryWriter() : buf_(&owned_) {}
  explicit BinaryWriter(size_t reserve) : buf_(&owned_) {
    owned_.reserve(reserve);
  }
  // Append mode: all writes append to *sink, which must outlive the writer.
  // Pre-existing content of *sink is left untouched.
  explicit BinaryWriter(std::string* sink) : buf_(sink) {}

  // Copying/moving would leave buf_ pointing at the source's owned buffer.
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU8(uint8_t v) { buf_->push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteVarU64(uint64_t v);
  void WriteVarI64(int64_t v);  // zigzag encoded
  void WriteU32(uint32_t v) { WriteVarU64(v); }
  void WriteU64(uint64_t v) { WriteVarU64(v); }
  void WriteI64(int64_t v) { WriteVarI64(v); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t size);

  const std::string& data() const { return *buf_; }
  std::string_view view() const { return *buf_; }
  // Only meaningful for the owned-buffer mode; in append mode this moves the
  // caller's sink content out, which is almost never what you want.
  std::string Take() { return std::move(*buf_); }
  size_t size() const { return buf_->size(); }

 private:
  std::string owned_;
  std::string* buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<bool> ReadBool();
  Result<uint64_t> ReadVarU64();
  Result<int64_t> ReadVarI64();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64() { return ReadVarU64(); }
  Result<int64_t> ReadI64() { return ReadVarI64(); }
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  // Zero-copy variant: the returned view aliases the reader's underlying
  // buffer and is valid only while that buffer is alive.
  Result<std::string_view> ReadStringView();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  // The unconsumed tail of the buffer, as a view.
  std::string_view rest() const { return data_.substr(pos_); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_SERDE_H_
