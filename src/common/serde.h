// Compact binary serialization used for log payloads, progress markers,
// change-log entries, and checkpoints. Integers use LEB128 varints; strings
// and blobs are length-prefixed. Readers validate bounds and report
// kDataLoss instead of crashing on corrupt input.
#ifndef IMPELLER_SRC_COMMON_SERDE_H_
#define IMPELLER_SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace impeller {

class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buffer_.reserve(reserve); }

  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteVarU64(uint64_t v);
  void WriteVarI64(int64_t v);  // zigzag encoded
  void WriteU32(uint32_t v) { WriteVarU64(v); }
  void WriteU64(uint64_t v) { WriteVarU64(v); }
  void WriteI64(int64_t v) { WriteVarI64(v); }
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteBytes(const void* data, size_t size);

  const std::string& data() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<bool> ReadBool();
  Result<uint64_t> ReadVarU64();
  Result<int64_t> ReadVarI64();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64() { return ReadVarU64(); }
  Result<int64_t> ReadI64() { return ReadVarI64(); }
  Result<double> ReadDouble();
  Result<std::string> ReadString();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_SERDE_H_
