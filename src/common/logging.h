// Minimal leveled logger. Thread safe; writes to stderr. The level is read
// from the IMPELLER_LOG environment variable (debug/info/warn/error, default
// warn) so tests and benchmarks stay quiet unless asked.
#ifndef IMPELLER_SRC_COMMON_LOGGING_H_
#define IMPELLER_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace impeller {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal

#define IMPELLER_LOG(level)                                             \
  if (static_cast<int>(::impeller::LogLevel::level) <                   \
      static_cast<int>(::impeller::GlobalLogLevel()))                   \
    ;                                                                   \
  else                                                                  \
    ::impeller::log_internal::LogLine(::impeller::LogLevel::level,      \
                                      __FILE__, __LINE__)

#define LOG_DEBUG IMPELLER_LOG(kDebug)
#define LOG_INFO IMPELLER_LOG(kInfo)
#define LOG_WARN IMPELLER_LOG(kWarn)
#define LOG_ERROR IMPELLER_LOG(kError)

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_LOGGING_H_
