// Small threading utilities: a joining thread wrapper and a wait group.
#ifndef IMPELLER_SRC_COMMON_THREADING_H_
#define IMPELLER_SRC_COMMON_THREADING_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace impeller {

// std::jthread is unavailable in some libstdc++ configurations; this wrapper
// guarantees join-on-destruction without cooperative stop tokens.
class JoiningThread {
 public:
  JoiningThread() = default;
  template <typename F, typename... Args>
  explicit JoiningThread(F&& f, Args&&... args)
      : thread_(std::forward<F>(f), std::forward<Args>(args)...) {}

  JoiningThread(JoiningThread&&) = default;
  JoiningThread& operator=(JoiningThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  JoiningThread(const JoiningThread&) = delete;
  JoiningThread& operator=(const JoiningThread&) = delete;

  ~JoiningThread() { Join(); }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  bool joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

class WaitGroup {
 public:
  void Add(int n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_THREADING_H_
