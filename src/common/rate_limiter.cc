#include "src/common/rate_limiter.h"

#include <algorithm>

namespace impeller {

RateLimiter::RateLimiter(double events_per_sec, Clock* clock,
                         int64_t max_burst)
    : rate_(events_per_sec), clock_(clock), max_burst_(max_burst) {
  last_refill_ = clock_->Now();
}

void RateLimiter::Refill(TimeNs now) {
  if (now <= last_refill_) {
    return;
  }
  double elapsed_sec = static_cast<double>(now - last_refill_) / 1e9;
  available_ = std::min(available_ + elapsed_sec * rate_,
                        static_cast<double>(max_burst_));
  last_refill_ = now;
}

void RateLimiter::Acquire(int64_t n) {
  if (rate_ <= 0.0) {
    return;
  }
  while (true) {
    Refill(clock_->Now());
    if (available_ >= static_cast<double>(n)) {
      available_ -= static_cast<double>(n);
      return;
    }
    double deficit = static_cast<double>(n) - available_;
    DurationNs wait = static_cast<DurationNs>(deficit / rate_ * 1e9) + 1;
    clock_->SleepFor(std::min<DurationNs>(wait, 50 * kMillisecond));
  }
}

int64_t RateLimiter::AvailableNow() {
  if (rate_ <= 0.0) {
    return max_burst_;
  }
  Refill(clock_->Now());
  return static_cast<int64_t>(available_);
}

}  // namespace impeller
