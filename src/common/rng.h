// Deterministic random number generation: splitmix64-seeded xoshiro256++,
// plus the samplers the workloads need (uniform, lognormal for latency
// models, zipf for NEXMark key skew).
#ifndef IMPELLER_SRC_COMMON_RNG_H_
#define IMPELLER_SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace impeller {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextRange(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Lognormal with given median and sigma (of the underlying normal).
  double NextLogNormal(double median, double sigma);

  // True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

// Zipf-distributed generator over [0, n). Uses the rejection-inversion
// method (Hörmann & Derflinger) so setup is O(1) and sampling O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double exponent);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double exponent_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_RNG_H_
