// Pacing helper for workload generators: emits permits at a fixed rate with
// catch-up (bursts after a stall are bounded by max_burst).
#ifndef IMPELLER_SRC_COMMON_RATE_LIMITER_H_
#define IMPELLER_SRC_COMMON_RATE_LIMITER_H_

#include <cstdint>

#include "src/common/clock.h"

namespace impeller {

class RateLimiter {
 public:
  // events_per_sec <= 0 means unlimited.
  RateLimiter(double events_per_sec, Clock* clock, int64_t max_burst = 4096);

  // Blocks (sleeps on the clock) until n permits are available, then
  // consumes them.
  void Acquire(int64_t n = 1);

  // Non-blocking: how many permits are currently available (bounded by
  // max_burst).
  int64_t AvailableNow();

  double rate() const { return rate_; }

 private:
  void Refill(TimeNs now);

  double rate_;
  Clock* clock_;
  int64_t max_burst_;
  double available_ = 0.0;
  TimeNs last_refill_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_RATE_LIMITER_H_
