#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace impeller {

namespace {

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("IMPELLER_LOG");
    if (env == nullptr) {
      return static_cast<int>(LogLevel::kWarn);
    }
    if (std::strcmp(env, "debug") == 0) {
      return static_cast<int>(LogLevel::kDebug);
    }
    if (std::strcmp(env, "info") == 0) {
      return static_cast<int>(LogLevel::kInfo);
    }
    if (std::strcmp(env, "error") == 0) {
      return static_cast<int>(LogLevel::kError);
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() {
  return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed));
}

void SetGlobalLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace log_internal {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  static std::mutex mu;
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

}  // namespace log_internal

}  // namespace impeller
