// Bounded blocking MPMC queue used for task mailboxes and the generator ->
// ingress path. Close() wakes all waiters; readers drain remaining items
// before observing closure.
#ifndef IMPELLER_SRC_COMMON_QUEUE_H_
#define IMPELLER_SRC_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace impeller {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  // Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Pop with a deadline; nullopt on timeout or on closed-and-drained.
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_QUEUE_H_
