#include "src/common/metrics.h"

namespace impeller {

LatencyHistogram* MetricsRegistry::Histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<LatencyHistogram>();
  }
  return slot.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) {
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, h] : histograms_) {
    h->Reset();
  }
  for (auto& [_, c] : counters_) {
    c->Reset();
  }
}

}  // namespace impeller
