// Clock abstraction: benchmarks and the engine run on MonotonicClock (real
// time); unit tests that need determinism use ManualClock. All times are
// nanoseconds since an arbitrary epoch.
#ifndef IMPELLER_SRC_COMMON_CLOCK_H_
#define IMPELLER_SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace impeller {

using TimeNs = int64_t;
using DurationNs = int64_t;

constexpr DurationNs kMicrosecond = 1000;
constexpr DurationNs kMillisecond = 1000 * kMicrosecond;
constexpr DurationNs kSecond = 1000 * kMillisecond;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeNs Now() const = 0;
  virtual void SleepFor(DurationNs d) = 0;
};

// Wall-clock-backed monotonic clock.
class MonotonicClock final : public Clock {
 public:
  TimeNs Now() const override;
  void SleepFor(DurationNs d) override;

  // Process-wide shared instance.
  static MonotonicClock* Get();
};

// Manually advanced clock for deterministic tests. SleepFor advances the
// clock immediately (single-threaded use).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNs start = 0) : now_(start) {}

  TimeNs Now() const override { return now_.load(std::memory_order_acquire); }
  void SleepFor(DurationNs d) override { Advance(d); }
  void Advance(DurationNs d) {
    now_.fetch_add(d, std::memory_order_acq_rel);
  }
  void Set(TimeNs t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeNs> now_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_CLOCK_H_
