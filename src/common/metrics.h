// Process-wide metrics registry: named latency histograms and counters.
// Sinks record end-to-end event-time latency here; benchmarks and tests read
// the results.
#ifndef IMPELLER_SRC_COMMON_METRICS_H_
#define IMPELLER_SRC_COMMON_METRICS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/histogram.h"

namespace impeller {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  // Returned pointers stay valid for the registry's lifetime.
  LatencyHistogram* Histogram(std::string_view name);
  Counter* GetCounter(std::string_view name);

  std::vector<std::string> HistogramNames() const;
  std::vector<std::string> CounterNames() const;
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_METRICS_H_
