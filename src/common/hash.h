// Hashing helpers: 64-bit FNV-1a for strings (stable across runs, used to
// assign records to substreams) and a mixing finalizer for integer keys.
#ifndef IMPELLER_SRC_COMMON_HASH_H_
#define IMPELLER_SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace impeller {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

constexpr uint64_t Fnv1a(std::string_view data,
                         uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Finalizer from splitmix64: turns sequential integer keys into
// well-distributed hashes.
constexpr uint64_t MixU64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Maps a key hash to one of n partitions.
constexpr uint32_t PartitionFor(uint64_t key_hash, uint32_t num_partitions) {
  return static_cast<uint32_t>(MixU64(key_hash) % num_partitions);
}

// Transparent hasher for heterogeneous lookup in std::string-keyed
// containers: find(std::string_view) probes without materializing a
// temporary std::string (hot on the per-read tag-index path).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return static_cast<size_t>(Fnv1a(s));
  }
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_HASH_H_
