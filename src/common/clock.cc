#include "src/common/clock.h"

#include <thread>

namespace impeller {

TimeNs MonotonicClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void MonotonicClock::SleepFor(DurationNs d) {
  if (d <= 0) {
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

MonotonicClock* MonotonicClock::Get() {
  static MonotonicClock clock;
  return &clock;
}

}  // namespace impeller
