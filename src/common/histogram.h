// Latency recorder: log-bucketed histogram with ~1% relative precision,
// cheap concurrent recording, and percentile queries. Used by the shared-log
// latency benchmarks and the NEXMark event-time latency harness.
#ifndef IMPELLER_SRC_COMMON_HISTOGRAM_H_
#define IMPELLER_SRC_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace impeller {

class LatencyHistogram {
 public:
  LatencyHistogram();

  // Records one sample (nanoseconds). Thread safe, lock free.
  void Record(int64_t value_ns);

  // Percentile in [0, 100]; returns the representative value of the bucket
  // containing that rank. Returns 0 when empty.
  int64_t Percentile(double p) const;

  int64_t p50() const { return Percentile(50.0); }
  int64_t p99() const { return Percentile(99.0); }
  int64_t Max() const;
  int64_t Min() const;
  double Mean() const;
  uint64_t Count() const;

  void Reset();

  // Merges counts from another histogram.
  void MergeFrom(const LatencyHistogram& other);

  // "p50=2.71ms p99=3.60ms n=1234"
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;  // covers > 10^12 ns
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  static int BucketFor(int64_t v);
  static int64_t BucketMidpoint(int bucket);

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  std::atomic<int64_t> min_{INT64_MAX};
};

// Formats nanoseconds as a short human string ("2.71ms", "540us").
std::string FormatDurationNs(int64_t ns);

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_HISTOGRAM_H_
