#include "src/common/serde.h"

namespace impeller {

void BinaryWriter::WriteVarU64(uint64_t v) {
  while (v >= 0x80) {
    buf_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  buf_->push_back(static_cast<char>(v));
}

void BinaryWriter::WriteVarI64(int64_t v) {
  // ZigZag: small-magnitude negatives stay small on the wire.
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  WriteVarU64(zz);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char raw[8];
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<char>((bits >> (8 * i)) & 0xFF);
  }
  buf_->append(raw, 8);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteVarU64(s.size());
  buf_->append(s.data(), s.size());
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  buf_->append(static_cast<const char*>(data), size);
}

Result<uint8_t> BinaryReader::ReadU8() {
  if (pos_ >= data_.size()) {
    return DataLossError("ReadU8 past end of buffer");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<bool> BinaryReader::ReadBool() {
  auto v = ReadU8();
  if (!v.ok()) {
    return v.status();
  }
  return *v != 0;
}

Result<uint64_t> BinaryReader::ReadVarU64() {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return DataLossError("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 63 && byte > 1) {
      return DataLossError("varint overflows u64");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
    shift += 7;
  }
}

Result<int64_t> BinaryReader::ReadVarI64() {
  auto zz = ReadVarU64();
  if (!zz.ok()) {
    return zz.status();
  }
  uint64_t v = *zz;
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

Result<uint32_t> BinaryReader::ReadU32() {
  auto v = ReadVarU64();
  if (!v.ok()) {
    return v.status();
  }
  if (*v > UINT32_MAX) {
    return DataLossError("u32 out of range");
  }
  return static_cast<uint32_t>(*v);
}

Result<double> BinaryReader::ReadDouble() {
  if (pos_ + 8 > data_.size()) {
    return DataLossError("truncated double");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  auto v = ReadStringView();
  if (!v.ok()) {
    return v.status();
  }
  return std::string(*v);
}

Result<std::string_view> BinaryReader::ReadStringView() {
  auto len = ReadVarU64();
  if (!len.ok()) {
    return len.status();
  }
  if (*len > remaining()) {
    return DataLossError("string length exceeds buffer");
  }
  std::string_view out = data_.substr(pos_, *len);
  pos_ += *len;
  return out;
}

}  // namespace impeller
