#include "src/common/status.h"

namespace impeller {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFenced:
      return "FENCED";
    case StatusCode::kSealed:
      return "SEALED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kTrimmed:
      return "TRIMMED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace impeller
