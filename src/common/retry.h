// Capped exponential backoff with jitter for log-client paths. The shared
// log can return transient kUnavailable errors (real deployments: leader
// failover, quorum loss; here: the fault injector) that the exactly-once
// protocols must absorb without losing or duplicating records — the
// AppendBatch contract (requests untouched on failure) makes blind re-issue
// safe, and fencing makes it zombie-safe.
//
// Header-only on purpose: Retrier's template body instantiates in consumer
// translation units (task runtime, output buffer, coordinators), which all
// already link impeller_obs — so impeller_common itself never depends on the
// obs layer.
#ifndef IMPELLER_SRC_COMMON_RETRY_H_
#define IMPELLER_SRC_COMMON_RETRY_H_

#include <algorithm>
#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/obs/trace.h"

namespace impeller {

struct RetryPolicy {
  int max_attempts = 5;                       // total tries, including first
  DurationNs initial_backoff = 500 * kMicrosecond;
  double multiplier = 2.0;
  DurationNs max_backoff = 20 * kMillisecond;
  double jitter = 0.25;  // each backoff scaled by U[1-jitter, 1+jitter]
  // Total elapsed-time budget across all attempts, backoff sleeps included
  // (0 = unbounded). A permanently failed dependency stops costing time
  // here even when max_attempts would allow further tries.
  DurationNs max_elapsed = 30 * kSecond;
};

// Only kUnavailable is transient. kFenced in particular must NOT be retried:
// it means this writer is a zombie and retrying would fight the replacement.
// kSealed likewise: the shard is gone for good — the log client re-places
// the batch at the new placement epoch instead of hammering a sealed
// sequencer.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

namespace retry_internal {

inline const Status& GetStatus(const Status& status) { return status; }

template <typename T>
inline const Status& GetStatus(const Result<T>& result) {
  return result.status();
}

}  // namespace retry_internal

// Runs an operation under a RetryPolicy. Shared freely across threads (the
// coordinators' worker loops and the runtime's timer thread may retry
// concurrently); the jitter RNG is the only mutable state and is seeded so
// backoff sequences are reproducible per owner.
class Retrier {
 public:
  Retrier(RetryPolicy policy, uint64_t seed, Clock* clock = nullptr,
          MetricsRegistry* metrics = nullptr)
      : policy_(policy), rng_(seed), clock_(clock) {
    if (clock_ == nullptr) {
      clock_ = MonotonicClock::Get();
    }
    if (metrics != nullptr) {
      attempts_ = metrics->GetCounter("retry/attempts");
      retries_ = metrics->GetCounter("retry/retries");
      exhausted_ = metrics->GetCounter("retry/exhausted");
    }
  }

  // fn: () -> Status or () -> Result<T>. Returns the first non-retryable
  // outcome, or the last attempt's outcome once attempts or the elapsed-time
  // budget are exhausted.
  // `op` names the operation for trace events; must be a string literal.
  template <typename Fn>
  auto Run(const char* op, Fn&& fn) -> decltype(fn()) {
    TimeNs start = clock_->Now();
    int attempt = 0;
    DurationNs backoff = policy_.initial_backoff;
    while (true) {
      ++attempt;
      if (attempts_ != nullptr) {
        attempts_->Add();
      }
      auto outcome = fn();
      const Status& status = retry_internal::GetStatus(outcome);
      if (status.ok() || !IsRetryable(status) ||
          attempt >= policy_.max_attempts) {
        if (!status.ok() && IsRetryable(status) && exhausted_ != nullptr) {
          exhausted_->Add();
        }
        return outcome;
      }
      DurationNs sleep = JitteredBackoff(backoff);
      if (policy_.max_elapsed > 0 &&
          (clock_->Now() - start) + sleep >= policy_.max_elapsed) {
        // The next backoff would blow the total budget: give up now rather
        // than sleep into a deadline we already know we'll miss.
        if (exhausted_ != nullptr) {
          exhausted_->Add();
        }
        TRACE_INSTANT("retry", "budget_exhausted");
        return outcome;
      }
      if (retries_ != nullptr) {
        retries_->Add();
      }
      TRACE_INSTANT("retry", op);
      clock_->SleepFor(sleep);
      backoff = std::min<DurationNs>(
          static_cast<DurationNs>(backoff * policy_.multiplier),
          policy_.max_backoff);
    }
  }

  const RetryPolicy& policy() const { return policy_; }

 private:
  DurationNs JitteredBackoff(DurationNs backoff) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    double scale = 1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    return std::max<DurationNs>(1, static_cast<DurationNs>(backoff * scale));
  }

  RetryPolicy policy_;
  std::mutex rng_mu_;
  Rng rng_;
  Clock* clock_;
  Counter* attempts_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* exhausted_ = nullptr;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_COMMON_RETRY_H_
