#include "src/protocols/txn_coordinator.h"

#include "src/common/logging.h"
#include "src/core/record.h"
#include "src/core/stream.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

TxnCoordinator::TxnCoordinator(SharedLog* log, Clock* clock,
                               TxnCoordinatorOptions options)
    : log_(log),
      clock_(clock),
      options_(std::move(options)),
      rng_(options_.seed),
      retrier_(options_.retry, options_.seed ^ 0xC0FFEEULL, clock_,
               options_.metrics) {
  txn_stream_tag_ = "x/" + options_.name;
}

TxnCoordinator::~TxnCoordinator() { Stop(); }

void TxnCoordinator::Start() {
  if (running_.exchange(true)) {
    return;
  }
  worker_ = JoiningThread([this] { WorkerLoop(); });
}

void TxnCoordinator::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  phase2_.Close();
  worker_.Join();
}

void TxnCoordinator::SleepRpc() {
  DurationNs d;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    d = static_cast<DurationNs>(rng_.NextLogNormal(
        static_cast<double>(options_.rpc_median), options_.rpc_sigma));
  }
  clock_->SleepFor(d);
}

Status TxnCoordinator::AppendTxnStream(TxnControlKind kind, uint64_t txn_id,
                                       const std::string& task_id,
                                       uint64_t instance) {
  TxnControlBody body;
  body.kind = kind;
  body.txn_id = txn_id;
  RecordHeader header;
  header.type = RecordType::kTxnControl;
  header.producer = task_id;
  header.instance = instance;
  header.seq = coord_seq_.fetch_add(1) + 1;
  AppendRequest req;
  req.tags.push_back(txn_stream_tag_);
  req.payload = EncodeEnvelope(header, EncodeTxnControlBody(body));
  std::vector<AppendRequest> batch;
  batch.push_back(std::move(req));
  auto lsns =
      retrier_.Run("txn_stream_append", [&] { return log_->AppendBatch(batch); });
  if (!lsns.ok()) {
    return lsns.status();
  }
  return OkStatus();
}

Result<std::shared_future<Status>> TxnCoordinator::CommitTransaction(
    TxnRequest request) {
  // Phase one runs synchronously on the committing task's thread: two RPC
  // round trips plus two coordinator log appends (§3.6).
  TRACE_SPAN("protocol", "txn_phase1");
  if (!running_.load()) {
    return UnavailableError("coordinator stopped");
  }
  uint64_t txn_id = next_txn_id_.fetch_add(1);

  // Fencing: a superseded instance must not start a transaction (Kafka's
  // producer-epoch fencing).
  auto current = log_->MetaGet(InstanceMetaKey(request.task_id));
  if (current.ok() && *current != request.instance) {
    return FencedError("instance " + std::to_string(request.instance) +
                       " superseded by " + std::to_string(*current));
  }
  // Fault probe: a delay here widens the race between this epoch check and
  // the conditional phase-2 appends — a replacement instance minted in the
  // gap must still fence this zombie at the log (the appends are conditional
  // on the instance key, so correctness never rests on this check).
  if (auto f = IMPELLER_FAULT_PROBE("txn/fence_check", request.task_id,
                                    fault::kNoLsn);
      f.kind == fault::FaultKind::kDelay) {
    clock_->SleepFor(f.delay);
  }

  // Phase one, step 1: register written streams with the coordinator.
  SleepRpc();  // task -> coordinator
  IMPELLER_RETURN_IF_ERROR(AppendTxnStream(TxnControlKind::kRegistration,
                                           txn_id, request.task_id,
                                           request.instance));
  SleepRpc();  // coordinator -> task

  // Phase one, step 2: ask the coordinator to commit; it appends the
  // pre-commit record before replying.
  SleepRpc();  // task -> coordinator
  IMPELLER_RETURN_IF_ERROR(AppendTxnStream(TxnControlKind::kPreCommit, txn_id,
                                           request.task_id,
                                           request.instance));

  auto pending = std::make_unique<PendingTxn>();
  pending->request = std::move(request);
  pending->txn_id = txn_id;
  std::shared_future<Status> done = pending->done.get_future().share();
  if (!phase2_.Push(std::move(pending))) {
    return UnavailableError("coordinator stopped");
  }
  SleepRpc();  // coordinator -> task (pre-commit response)
  return done;
}

void TxnCoordinator::WorkerLoop() {
  while (true) {
    auto item = phase2_.Pop();
    if (!item.has_value()) {
      return;  // closed and drained
    }
    PendingTxn& txn = **item;
    const TxnRequest& req = txn.request;
    TRACE_SPAN("protocol", "txn_phase2");

    // Fault probe: the coordinator dies (or errors) before writing any
    // commit record — the transaction aborts cleanly and the task's next
    // commit re-covers the epoch.
    if (auto f = IMPELLER_FAULT_PROBE("txn/phase2", req.task_id,
                                      fault::kNoLsn)) {
      if (f.kind == fault::FaultKind::kCrash ||
          f.kind == fault::FaultKind::kError) {
        LOG_INFO << "txn " << txn.txn_id << ": injected phase-2 abort";
        txn.done.set_value(
            UnavailableError("injected coordinator failure in phase 2"));
        continue;
      }
      if (f.kind == fault::FaultKind::kDelay) {
        clock_->SleepFor(f.delay);
      }
    }

    // Phase two: one commit control record per registered substream. The
    // commit record on the task-log substream carries the input ends used
    // for recovery.
    std::vector<AppendRequest> batch;
    for (const std::string& tag : req.output_tags) {
      TxnControlBody body;
      body.kind = TxnControlKind::kCommit;
      body.txn_id = txn.txn_id;
      RecordHeader header;
      header.type = RecordType::kTxnControl;
      header.producer = req.task_id;
      header.instance = req.instance;
      header.seq = coord_seq_.fetch_add(1) + 1;
      AppendRequest append;
      append.tags.push_back(tag);
      append.cond_key = InstanceMetaKey(req.task_id);
      append.cond_value = req.instance;
      append.payload = EncodeEnvelope(header, EncodeTxnControlBody(body));
      batch.push_back(std::move(append));
    }
    {
      TxnControlBody body;
      body.kind = TxnControlKind::kCommit;
      body.txn_id = txn.txn_id;
      body.input_ends = req.input_ends;
      body.changelog_from = req.changelog_from;
      RecordHeader header;
      header.type = RecordType::kTxnControl;
      header.producer = req.task_id;
      header.instance = req.instance;
      header.seq = coord_seq_.fetch_add(1) + 1;
      AppendRequest append;
      append.tags.push_back(req.task_log_tag);
      append.cond_key = InstanceMetaKey(req.task_id);
      append.cond_value = req.instance;
      append.payload = EncodeEnvelope(header, EncodeTxnControlBody(body));
      batch.push_back(std::move(append));
    }
    auto lsns = retrier_.Run("txn_phase2_append",
                             [&] { return log_->AppendBatch(batch); });
    if (!lsns.ok()) {
      LOG_WARN << "txn " << txn.txn_id << " phase 2 failed: "
               << lsns.status().ToString();
      txn.done.set_value(lsns.status());
      continue;
    }
    // Fault probe: the coordinator dies after the commit records are durable
    // but before acknowledging — the classic 2PC ambiguity. Downstream
    // consumers already see the transaction as committed; the task observes
    // a failure, restarts, and recovers to the committed cut on its task
    // log, so the epoch is NOT re-executed.
    if (auto f = IMPELLER_FAULT_PROBE("txn/post_commit", req.task_id,
                                      fault::kNoLsn);
        f.kind == fault::FaultKind::kCrash ||
        f.kind == fault::FaultKind::kError) {
      LOG_INFO << "txn " << txn.txn_id << ": injected post-commit failure";
      committed_.fetch_add(1);
      txn.done.set_value(
          UnavailableError("injected coordinator failure after commit"));
      continue;
    }
    Status final = AppendTxnStream(TxnControlKind::kTxnCommitted, txn.txn_id,
                                   req.task_id, req.instance);
    committed_.fetch_add(1);
    txn.done.set_value(final);
  }
}

}  // namespace impeller
