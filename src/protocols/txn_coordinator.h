// The Kafka Streams transaction protocol re-implemented over the shared log,
// mirroring paper §3.6 and the in-Impeller baseline of §5.1.
//
// Phase one (synchronous, on the calling task's thread): the task registers
// the substreams it wrote this transaction — the coordinator appends a
// registration record to its transaction stream — then requests commit; the
// coordinator appends a pre-commit record and replies. Each interaction pays
// a modeled RPC latency plus a real log append.
//
// Phase two (asynchronous, coordinator worker thread): the coordinator
// appends a commit control record to every registered substream (committing
// the task's records below that control record's LSN for downstream
// consumers), then a transaction-committed record to its transaction
// stream, and finally resolves the future handed back to the task. A task
// cannot start committing transaction N+1 before N's future resolves.
#ifndef IMPELLER_SRC_PROTOCOLS_TXN_COORDINATOR_H_
#define IMPELLER_SRC_PROTOCOLS_TXN_COORDINATOR_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/queue.h"
#include "src/common/retry.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/threading.h"
#include "src/core/marker.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

struct TxnCoordinatorOptions {
  std::string name = "txn-coord";
  // One-way RPC latency between a task and the coordinator (gRPC over the
  // cluster network in the paper's setup).
  DurationNs rpc_median = 300 * kMicrosecond;
  double rpc_sigma = 0.3;
  uint64_t seed = 42;
  // Optional: retry/* counters for the coordinator's log appends.
  MetricsRegistry* metrics = nullptr;
  RetryPolicy retry;
};

struct TxnRequest {
  std::string task_id;
  uint64_t instance = 0;
  // Substreams written during this transaction (output substream tags and
  // the change-log tag).
  std::vector<std::string> output_tags;
  // The task's LSN-stream (its task-log tag): receives a commit record
  // carrying the input ends for recovery.
  std::string task_log_tag;
  std::vector<std::pair<std::string, Lsn>> input_ends;
  Lsn changelog_from = kInvalidLsn;
};

class TxnCoordinator {
 public:
  TxnCoordinator(SharedLog* log, Clock* clock,
                 TxnCoordinatorOptions options = {});
  ~TxnCoordinator();

  void Start();
  void Stop();

  // Runs phase one synchronously; returns a future resolved when phase two
  // commits the transaction. kFenced when the instance was superseded.
  Result<std::shared_future<Status>> CommitTransaction(TxnRequest request);

  const std::string& txn_stream_tag() const { return txn_stream_tag_; }
  uint64_t committed_txns() const { return committed_.load(); }

 private:
  struct PendingTxn {
    TxnRequest request;
    uint64_t txn_id;
    std::promise<Status> done;
  };

  void SleepRpc();
  void WorkerLoop();
  Status AppendTxnStream(TxnControlKind kind, uint64_t txn_id,
                         const std::string& task_id, uint64_t instance);

  SharedLog* log_;
  Clock* clock_;
  TxnCoordinatorOptions options_;
  std::string txn_stream_tag_;

  std::mutex rng_mu_;
  Rng rng_;
  Retrier retrier_;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> coord_seq_{0};
  BlockingQueue<std::unique_ptr<PendingTxn>> phase2_;
  JoiningThread worker_;
  std::atomic<bool> running_{false};
};

}  // namespace impeller

#endif  // IMPELLER_SRC_PROTOCOLS_TXN_COORDINATOR_H_
