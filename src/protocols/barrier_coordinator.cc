#include "src/protocols/barrier_coordinator.h"

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/commit_tracker.h"
#include "src/core/marker.h"
#include "src/core/record.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

namespace {

std::string CompletedMetaKey(const std::string& query) {
  return "ackpt-meta/" + query;
}

}  // namespace

BarrierCoordinator::BarrierCoordinator(SharedLog* log,
                                       KvStore* checkpoint_store,
                                       Clock* clock,
                                       BarrierCoordinatorOptions options)
    : log_(log), store_(checkpoint_store), clock_(clock),
      options_(std::move(options)),
      retrier_(options_.retry, options_.seed, clock_, options_.metrics) {}

BarrierCoordinator::~BarrierCoordinator() { Stop(); }

void BarrierCoordinator::Configure(
    std::vector<std::string> ingress_substreams,
    std::vector<std::string> task_ids) {
  ingress_substreams_ = std::move(ingress_substreams);
  task_ids_ = std::move(task_ids);
}

void BarrierCoordinator::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = JoiningThread([this] { Loop(); });
}

void BarrierCoordinator::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  cv_.notify_all();
  thread_.Join();
}

Status BarrierCoordinator::InjectBarriers(uint64_t checkpoint_id) {
  TRACE_SPAN("protocol", "inject_barriers");
  // Fault probe: a coordinator failure here just skips this round — no task
  // ever sees checkpoint_id, the Loop logs and moves on to the next
  // interval (Flink's coordinator-failover behavior, minus the re-election
  // delay).
  if (auto f = IMPELLER_FAULT_PROBE("barrier/inject", options_.query,
                                    checkpoint_id)) {
    if (f.kind == fault::FaultKind::kCrash ||
        f.kind == fault::FaultKind::kError) {
      return UnavailableError("injected barrier-injection failure");
    }
    if (f.kind == fault::FaultKind::kDelay) {
      clock_->SleepFor(f.delay);
    }
  }
  // One barrier record per ingress substream: Kafka/Flink have no atomic
  // multi-partition append, so the baseline does not get one either. The
  // per-substream appends share one batch ack (parallel producer requests).
  std::vector<AppendRequest> batch;
  BarrierBody body;
  body.checkpoint_id = checkpoint_id;
  for (const std::string& tag : ingress_substreams_) {
    RecordHeader header;
    header.type = RecordType::kBarrier;
    header.producer = "ckpt-coord/" + options_.query;
    header.instance = kIngressInstance;
    header.seq = seq_.fetch_add(1) + 1;
    AppendRequest req;
    req.tags.push_back(tag);
    req.payload = EncodeEnvelope(header, EncodeBarrierBody(body));
    batch.push_back(std::move(req));
  }
  if (batch.empty()) {
    return InvalidArgumentError("no ingress substreams configured");
  }
  auto lsns = retrier_.Run("barrier_inject",
                           [&] { return log_->AppendBatch(batch); });
  if (!lsns.ok()) {
    return lsns.status();
  }
  return OkStatus();
}

void BarrierCoordinator::Loop() {
  while (running_.load()) {
    clock_->SleepFor(options_.interval);
    if (!running_.load()) {
      return;
    }
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = started_.load() + 1;
      inflight_id_ = id;
      pending_acks_ = std::set<std::string>(task_ids_.begin(),
                                            task_ids_.end());
    }
    started_.fetch_add(1);
    Status st = InjectBarriers(id);
    if (!st.ok()) {
      LOG_WARN << "checkpoint " << id << " barrier injection failed: "
               << st.ToString();
      continue;
    }
    // Wait for all acknowledgements (or the timeout; a timed-out checkpoint
    // is abandoned and the next round proceeds — Flink's failure handling).
    std::unique_lock<std::mutex> lock(mu_);
    bool complete = cv_.wait_for(
        lock, std::chrono::nanoseconds(options_.ack_timeout), [this] {
          return pending_acks_.empty() || !running_.load();
        });
    if (!running_.load()) {
      return;
    }
    if (!complete || !pending_acks_.empty()) {
      LOG_WARN << "checkpoint " << id << " timed out with "
               << pending_acks_.size() << " missing acks";
      continue;
    }
    inflight_id_ = 0;
    lock.unlock();
    BinaryWriter w;
    w.WriteVarU64(id);
    Status put = store_->Put(CompletedMetaKey(options_.query), w.view());
    if (!put.ok()) {
      LOG_WARN << "checkpoint " << id << " meta write failed";
      continue;
    }
    latest_completed_.store(id);
  }
}

void BarrierCoordinator::AckCheckpoint(const std::string& task_id,
                                       uint64_t checkpoint_id) {
  TRACE_INSTANT("protocol", "checkpoint_ack");
  std::lock_guard<std::mutex> lock(mu_);
  if (checkpoint_id != inflight_id_) {
    return;  // stale ack for an abandoned checkpoint
  }
  pending_acks_.erase(task_id);
  if (pending_acks_.empty()) {
    cv_.notify_all();
  }
}

Result<uint64_t> BarrierCoordinator::ReadCompletedId(
    KvStore* store, const std::string& query) {
  auto raw = store->Get(CompletedMetaKey(query));
  if (!raw.ok()) {
    return raw.status();
  }
  BinaryReader r(*raw);
  auto id = r.ReadVarU64();
  if (!id.ok()) {
    return id.status();
  }
  return *id;
}

}  // namespace impeller
