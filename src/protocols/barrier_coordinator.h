// Flink-style aligned checkpointing (paper §5.1 "Aligned checkpoint"): a
// coordinator periodically injects checkpoint barriers into every ingress
// substream; barriers flow with the data through each stage; a task aligns
// barriers across its input channels, synchronously snapshots its state to
// the checkpoint store, forwards the barrier, and acknowledges. When every
// task has acknowledged, the checkpoint is complete and becomes the global
// recovery point. At most one checkpoint is in flight (matching the paper's
// configuration).
#ifndef IMPELLER_SRC_PROTOCOLS_BARRIER_COORDINATOR_H_
#define IMPELLER_SRC_PROTOCOLS_BARRIER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/common/threading.h"
#include "src/kvstore/kv_store.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

struct BarrierCoordinatorOptions {
  std::string query;
  DurationNs interval = 100 * kMillisecond;
  DurationNs ack_timeout = 10 * kSecond;
  // Optional: retry/* counters for barrier-injection appends.
  MetricsRegistry* metrics = nullptr;
  RetryPolicy retry;
  uint64_t seed = 17;
};

class BarrierCoordinator {
 public:
  BarrierCoordinator(SharedLog* log, KvStore* checkpoint_store, Clock* clock,
                     BarrierCoordinatorOptions options);
  ~BarrierCoordinator();

  // `ingress_substreams`: one tag per (ingress stream, substream) pair to
  // inject barriers into. `task_ids`: every task that must acknowledge.
  void Configure(std::vector<std::string> ingress_substreams,
                 std::vector<std::string> task_ids);

  void Start();
  void Stop();

  // Called by tasks after persisting their snapshot for `checkpoint_id`.
  void AckCheckpoint(const std::string& task_id, uint64_t checkpoint_id);

  // Id of the latest globally completed checkpoint; 0 when none.
  uint64_t LatestCompleted() const { return latest_completed_.load(); }

  // Recovery helper: reads the completed-checkpoint id from the checkpoint
  // store (survives coordinator restarts).
  static Result<uint64_t> ReadCompletedId(KvStore* store,
                                          const std::string& query);

  uint64_t checkpoints_started() const { return started_.load(); }

 private:
  void Loop();
  Status InjectBarriers(uint64_t checkpoint_id);

  SharedLog* log_;
  KvStore* store_;
  Clock* clock_;
  BarrierCoordinatorOptions options_;
  Retrier retrier_;

  std::vector<std::string> ingress_substreams_;
  std::vector<std::string> task_ids_;

  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t inflight_id_ = 0;
  std::set<std::string> pending_acks_;

  std::atomic<uint64_t> latest_completed_{0};
  std::atomic<uint64_t> started_{0};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> seq_{0};
  JoiningThread thread_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_PROTOCOLS_BARRIER_COORDINATOR_H_
