// A Kafka-like partitioned log: topics split into partitions, each partition
// an independent, totally ordered log addressed by per-partition offsets.
// Unlike the shared log there is NO cross-partition total order, NO tag
// metadata, and NO atomic multi-partition append — which is exactly why
// Kafka Streams needs the two-phase transaction protocol the paper compares
// against (§3.6). Appends go through the Kafka-calibrated latency model.
#ifndef IMPELLER_SRC_SHAREDLOG_PARTITIONED_LOG_H_
#define IMPELLER_SRC_SHAREDLOG_PARTITIONED_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sharedlog/latency_model.h"

namespace impeller {

using Offset = uint64_t;

struct PartitionRecord {
  Offset offset = 0;
  std::string key;
  std::string payload;
  TimeNs append_time = 0;
  TimeNs visible_time = 0;
};

struct PartitionedLogOptions {
  std::shared_ptr<LatencyModel> latency;  // default zero latency
  Clock* clock = nullptr;                 // default MonotonicClock
};

class PartitionedLog {
 public:
  explicit PartitionedLog(PartitionedLogOptions options = {});

  // Creating an existing topic with a different partition count is an error.
  Status CreateTopic(std::string_view topic, uint32_t partitions);
  Result<uint32_t> PartitionCount(std::string_view topic) const;

  // Appends one record; blocks for the modeled ack latency; returns the
  // assigned offset within (topic, partition).
  Result<Offset> Append(std::string_view topic, uint32_t partition,
                        std::string key, std::string payload);

  // Batch append to a single partition with one shared ack latency.
  Result<std::vector<Offset>> AppendBatch(
      std::string_view topic, uint32_t partition,
      std::vector<std::pair<std::string, std::string>> records);

  // Reads the record at `offset` if visible; kNotFound when the partition
  // has no visible record there yet.
  Result<PartitionRecord> Read(std::string_view topic, uint32_t partition,
                               Offset offset);

  // Blocking read with timeout.
  Result<PartitionRecord> AwaitRead(std::string_view topic,
                                    uint32_t partition, Offset offset,
                                    DurationNs timeout);

  // Next offset to be assigned in the partition.
  Result<Offset> EndOffset(std::string_view topic, uint32_t partition) const;

 private:
  struct Partition {
    std::deque<PartitionRecord> records;
    Offset next_offset = 0;
    TimeNs last_append_time = 0;
  };

  // Caller holds mu_.
  Partition* FindPartitionLocked(std::string_view topic, uint32_t partition);
  const Partition* FindPartitionLocked(std::string_view topic,
                                       uint32_t partition) const;

  PartitionedLogOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::vector<Partition>> topics_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_PARTITIONED_LOG_H_
