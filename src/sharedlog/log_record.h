// Log record and append-request types for the shared log (Boki-style).
// A record carries an LSN assigned by the log, a set of string tags used for
// selective reads, and an opaque payload. Conditional appends are fenced on
// the log's key-value configuration metadata (used for zombie fencing,
// paper §3.4).
#ifndef IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_
#define IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace impeller {

using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = std::numeric_limits<Lsn>::max();

struct AppendRequest {
  std::vector<std::string> tags;
  std::string payload;

  // Conditional append: succeeds only while the log's metadata entry
  // `cond_key` equals `cond_value` (empty key = unconditional). The check is
  // atomic with LSN assignment, which is what makes fencing airtight.
  std::string cond_key;
  uint64_t cond_value = 0;
};

struct LogEntry {
  Lsn lsn = kInvalidLsn;
  std::vector<std::string> tags;
  std::string payload;
  TimeNs append_time = 0;   // when the producer issued the append
  TimeNs visible_time = 0;  // when readers can first observe it
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_
