// Log record and append-request types for the shared log (Boki-style).
// A record carries an LSN assigned by the log, a set of string tags used for
// selective reads, and an opaque payload. Conditional appends are fenced on
// the log's key-value configuration metadata (used for zombie fencing,
// paper §3.4).
#ifndef IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_
#define IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace impeller {

using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = std::numeric_limits<Lsn>::max();

// Refcounted slice of an immutable payload buffer. The log stores payloads
// as PayloadRefs, so copying a LogEntry out of the log (Read/AwaitNext) bumps
// a refcount instead of copying bytes, and many records batched into one
// contiguous flush buffer share a single allocation. A PayloadRef (and any
// string_view taken from it) keeps its backing buffer alive, including past
// Trim of the underlying log entries.
class PayloadRef {
 public:
  PayloadRef() = default;
  // Wraps an owning string (one shared buffer, no byte copy).
  PayloadRef(std::string s)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<const std::string>(std::move(s))),
        off_(0),
        len_(buf_->size()) {}
  PayloadRef(const char* s) : PayloadRef(std::string(s)) {}  // NOLINT
  // Slice of a shared buffer; `off`/`len` must lie within *buf.
  PayloadRef(std::shared_ptr<const std::string> buf, size_t off, size_t len)
      : buf_(std::move(buf)), off_(off), len_(len) {}

  std::string_view view() const {
    return buf_ ? std::string_view(buf_->data() + off_, len_)
                : std::string_view();
  }
  operator std::string_view() const { return view(); }  // NOLINT
  std::string ToString() const { return std::string(view()); }

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  // The shared backing buffer (may cover more than this slice).
  const std::shared_ptr<const std::string>& buffer() const { return buf_; }

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.view() == b.view();
  }
  // Template so that comparisons against string literals / std::string are
  // exact matches instead of ambiguous user-defined conversions.
  template <typename T,
            typename = std::enable_if_t<
                std::is_convertible_v<const T&, std::string_view> &&
                !std::is_same_v<std::decay_t<T>, PayloadRef>>>
  friend bool operator==(const PayloadRef& a, const T& b) {
    return a.view() == std::string_view(b);
  }

 private:
  std::shared_ptr<const std::string> buf_;
  size_t off_ = 0;
  size_t len_ = 0;
};

struct AppendRequest {
  std::vector<std::string> tags;
  PayloadRef payload;

  // Conditional append: succeeds only while the log's metadata entry
  // `cond_key` equals `cond_value` (empty key = unconditional). The check is
  // atomic with LSN assignment, which is what makes fencing airtight.
  std::string cond_key;
  uint64_t cond_value = 0;
};

struct LogEntry {
  Lsn lsn = kInvalidLsn;
  std::vector<std::string> tags;
  PayloadRef payload;
  TimeNs append_time = 0;   // when the producer issued the append
  TimeNs visible_time = 0;  // when readers can first observe it
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_LOG_RECORD_H_
