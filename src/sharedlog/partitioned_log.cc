#include "src/sharedlog/partitioned_log.h"

namespace impeller {

PartitionedLog::PartitionedLog(PartitionedLogOptions options)
    : options_(std::move(options)) {
  if (options_.clock == nullptr) {
    options_.clock = MonotonicClock::Get();
  }
  clock_ = options_.clock;
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<ZeroLatencyModel>();
  }
}

Status PartitionedLog::CreateTopic(std::string_view topic,
                                   uint32_t partitions) {
  if (partitions == 0) {
    return InvalidArgumentError("topic needs at least one partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(std::string(topic));
  if (it != topics_.end()) {
    if (it->second.size() != partitions) {
      return AlreadyExistsError("topic exists with different partitioning");
    }
    return OkStatus();
  }
  topics_[std::string(topic)] = std::vector<Partition>(partitions);
  return OkStatus();
}

Result<uint32_t> PartitionedLog::PartitionCount(std::string_view topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(std::string(topic));
  if (it == topics_.end()) {
    return NotFoundError("unknown topic " + std::string(topic));
  }
  return static_cast<uint32_t>(it->second.size());
}

PartitionedLog::Partition* PartitionedLog::FindPartitionLocked(
    std::string_view topic, uint32_t partition) {
  auto it = topics_.find(std::string(topic));
  if (it == topics_.end() || partition >= it->second.size()) {
    return nullptr;
  }
  return &it->second[partition];
}

const PartitionedLog::Partition* PartitionedLog::FindPartitionLocked(
    std::string_view topic, uint32_t partition) const {
  auto it = topics_.find(std::string(topic));
  if (it == topics_.end() || partition >= it->second.size()) {
    return nullptr;
  }
  return &it->second[partition];
}

Result<Offset> PartitionedLog::Append(std::string_view topic,
                                      uint32_t partition, std::string key,
                                      std::string payload) {
  std::vector<std::pair<std::string, std::string>> batch;
  batch.emplace_back(std::move(key), std::move(payload));
  auto offsets = AppendBatch(topic, partition, std::move(batch));
  if (!offsets.ok()) {
    return offsets.status();
  }
  return (*offsets)[0];
}

Result<std::vector<Offset>> PartitionedLog::AppendBatch(
    std::string_view topic, uint32_t partition,
    std::vector<std::pair<std::string, std::string>> records) {
  if (records.empty()) {
    return InvalidArgumentError("empty batch");
  }
  TimeNs start = clock_->Now();
  size_t batch_bytes = 0;
  for (const auto& [k, v] : records) {
    batch_bytes += k.size() + v.size();
  }
  LatencySample latency;
  std::vector<Offset> offsets;
  offsets.reserve(records.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    Partition* p = FindPartitionLocked(topic, partition);
    if (p == nullptr) {
      return NotFoundError("unknown topic/partition");
    }
    DurationNs idle_gap = (p->last_append_time == 0)
                              ? 0
                              : start - p->last_append_time;
    p->last_append_time = start;
    latency = options_.latency->SampleAppend(batch_bytes, idle_gap);
    for (auto& [key, payload] : records) {
      PartitionRecord rec;
      rec.offset = p->next_offset++;
      rec.key = std::move(key);
      rec.payload = std::move(payload);
      rec.append_time = start;
      rec.visible_time = start + latency.ack + latency.delivery;
      offsets.push_back(rec.offset);
      p->records.push_back(std::move(rec));
    }
  }
  cv_.notify_all();
  clock_->SleepFor(latency.ack);
  return offsets;
}

Result<PartitionRecord> PartitionedLog::Read(std::string_view topic,
                                             uint32_t partition,
                                             Offset offset) {
  std::lock_guard<std::mutex> lock(mu_);
  const Partition* p = FindPartitionLocked(topic, partition);
  if (p == nullptr) {
    return NotFoundError("unknown topic/partition");
  }
  if (offset >= p->next_offset) {
    return NotFoundError("offset beyond partition end");
  }
  const PartitionRecord& rec = p->records[offset];
  if (rec.visible_time > clock_->Now()) {
    return NotFoundError("record not yet visible");
  }
  return rec;
}

Result<PartitionRecord> PartitionedLog::AwaitRead(std::string_view topic,
                                                  uint32_t partition,
                                                  Offset offset,
                                                  DurationNs timeout) {
  TimeNs deadline = clock_->Now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const Partition* p = FindPartitionLocked(topic, partition);
    if (p == nullptr) {
      return NotFoundError("unknown topic/partition");
    }
    TimeNs now = clock_->Now();
    if (offset < p->next_offset) {
      const PartitionRecord& rec = p->records[offset];
      if (rec.visible_time <= now) {
        return rec;
      }
      if (now >= deadline) {
        return DeadlineExceededError("AwaitRead timed out");
      }
      cv_.wait_for(lock, std::chrono::nanoseconds(
                             std::min(rec.visible_time, deadline) - now));
      continue;
    }
    if (now >= deadline) {
      return DeadlineExceededError("AwaitRead timed out");
    }
    cv_.wait_for(lock, std::chrono::nanoseconds(deadline - now));
  }
}

Result<Offset> PartitionedLog::EndOffset(std::string_view topic,
                                         uint32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Partition* p = FindPartitionLocked(topic, partition);
  if (p == nullptr) {
    return NotFoundError("unknown topic/partition");
  }
  return p->next_offset;
}

}  // namespace impeller
