#include "src/sharedlog/latency_model.h"

#include <algorithm>

namespace impeller {

CalibratedLatencyModel::CalibratedLatencyModel(CalibratedLatencyParams params,
                                               uint64_t seed)
    : params_(params), rng_(seed) {}

LatencySample CalibratedLatencyModel::SampleAppend(size_t batch_bytes,
                                                   DurationNs idle_gap) {
  std::lock_guard<std::mutex> lock(mu_);
  double ack = rng_.NextLogNormal(
      static_cast<double>(params_.ack_median), params_.ack_sigma);
  double delivery = rng_.NextLogNormal(
      static_cast<double>(params_.delivery_median), params_.delivery_sigma);
  ack += params_.per_byte_ns * static_cast<double>(batch_bytes);
  if (params_.idle_threshold > 0 && idle_gap > params_.idle_threshold) {
    double staleness = std::min(
        1.0, static_cast<double>(idle_gap - params_.idle_threshold) /
                 static_cast<double>(4 * params_.idle_threshold));
    ack += staleness * rng_.NextLogNormal(
                           static_cast<double>(params_.idle_median),
                           params_.idle_sigma);
  }
  LatencySample s;
  s.ack = static_cast<DurationNs>(ack * params_.scale);
  s.delivery = static_cast<DurationNs>(delivery * params_.scale);
  return s;
}

CalibratedLatencyParams CalibratedLatencyModel::BokiParams() {
  CalibratedLatencyParams p;
  // Target (Table 2, 16 KiB record): p50 ~2.55-2.71 ms, p99 ~3.6-3.8 ms,
  // nearly flat across 10-100 appends/s with a slight drop at high rates.
  p.ack_median = static_cast<DurationNs>(1.80 * kMillisecond);
  p.ack_sigma = 0.16;
  p.delivery_median = static_cast<DurationNs>(0.62 * kMillisecond);
  p.delivery_sigma = 0.20;
  p.per_byte_ns = 2.0;  // ~0.03 ms for a 16 KiB record
  p.idle_threshold = 15 * kMillisecond;
  p.idle_median = static_cast<DurationNs>(0.15 * kMillisecond);
  p.idle_sigma = 0.25;
  return p;
}

CalibratedLatencyParams CalibratedLatencyModel::KafkaParams() {
  CalibratedLatencyParams p;
  // Target (Table 2): p50 1.45 ms at 100 aps rising to ~2.1 ms at 10 aps;
  // p99 2.9 ms at 100 aps rising to ~4.4 ms at 10 aps (heavy idle tail).
  p.ack_median = static_cast<DurationNs>(0.95 * kMillisecond);
  p.ack_sigma = 0.22;
  p.delivery_median = static_cast<DurationNs>(0.44 * kMillisecond);
  p.delivery_sigma = 0.20;
  p.per_byte_ns = 2.0;
  p.idle_threshold = 12 * kMillisecond;
  p.idle_median = static_cast<DurationNs>(0.70 * kMillisecond);
  p.idle_sigma = 0.50;
  return p;
}

}  // namespace impeller
