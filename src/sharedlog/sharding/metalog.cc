#include "src/sharedlog/sharding/metalog.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

Metalog::Metalog(std::string log_name, Clock* clock)
    : log_name_(std::move(log_name)), clock_(clock) {}

void Metalog::AttachShards(std::vector<LogShard*> shards) {
  shards_ = std::move(shards);
  sequenced_upto_.assign(shards_.size(), 0);
  global_of_.assign(shards_.size(), {});
  global_of_base_.assign(shards_.size(), 0);
}

void Metalog::PublishCutLocked() {
  uint64_t sequenced = 0;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    uint64_t drained = shards_[s]->Sequence(
        sequenced_upto_[s], next_lsn_,
        [&](uint64_t local, Lsn global, const std::vector<std::string>& tags,
            TimeNs visible_time, TimeNs durable_time) {
          ViewEntry e;
          e.shard = s;
          e.local = local;
          e.visible_time = visible_time;
          e.durable_time = durable_time;
          entries_.push_back(e);
          for (const auto& tag : tags) {
            tag_index_[tag].push_back(global);
          }
          global_of_[s].push_back(global);
        });
    sequenced_upto_[s] += drained;
    next_lsn_ += drained;
    sequenced += drained;
  }
  if (sequenced > 0) {
    ++cuts_;
  }
}

std::vector<Lsn> Metalog::Sequence(uint32_t shard, uint64_t first_local,
                                   uint64_t count) {
  std::vector<Lsn> lsns(count, kInvalidLsn);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Sequencer stall: a kDelay here holds the ordering plane — every
    // shard's appends stay unsequenced (invisible to readers) until the
    // stall passes, though shard admission continues underneath.
    if (auto f = IMPELLER_FAULT_PROBE("log/metalog/cut", log_name_,
                                      next_lsn_);
        f.kind == fault::FaultKind::kDelay) {
      TRACE_INSTANT("log", "metalog_stall");
      clock_->SleepFor(f.delay);
    }
    PublishCutLocked();
    const std::deque<Lsn>& globals = global_of_[shard];
    uint64_t base = global_of_base_[shard];
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t local = first_local + i;
      if (local < base || local - base >= globals.size()) {
        // Only reachable if a trim raced past records still being acked —
        // GC floors trail commits, so this is a bug, not a fault scenario.
        LOG_ERROR << log_name_ << ": shard " << shard << " local " << local
                  << " sequenced out from under an appender";
        continue;
      }
      lsns[i] = globals[local - base];
    }
  }
  // Readers blocked in AwaitNext wake up and re-check visibility.
  cv_.notify_all();
  return lsns;
}

Lsn Metalog::SealCut() {
  Lsn boundary;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PublishCutLocked();
    boundary = next_lsn_;
  }
  // The final cut may have made records visible; wake blocked readers so
  // they re-check instead of waiting out their visibility estimate.
  cv_.notify_all();
  return boundary;
}

Lsn Metalog::FindFirstLocked(std::string_view tag, Lsn from) const {
  auto it = tag_index_.find(tag);
  if (it == tag_index_.end()) {
    return kInvalidLsn;
  }
  const std::vector<Lsn>& lsns = it->second;
  Lsn lower = std::max(from, base_lsn_);
  auto pos = std::lower_bound(lsns.begin(), lsns.end(), lower);
  if (pos == lsns.end()) {
    return kInvalidLsn;
  }
  return *pos;
}

const Metalog::ViewEntry* Metalog::SlotLocked(Lsn lsn) const {
  if (lsn < base_lsn_ || lsn >= next_lsn_) {
    return nullptr;
  }
  return &entries_[lsn - base_lsn_];
}

Result<LogEntry> Metalog::FetchLocked(const ViewEntry& entry) const {
  return shards_[entry.shard]->EntryAt(entry.local);
}

// Caller holds mu_. Serves (and clears) a fault-injected pending duplicate
// for `tag`: the record was already returned once, and is handed out again
// as if the consumer had re-fetched after a lost ack. Only a reader whose
// cursor has passed the record gets it — redelivery duplicates data, it
// must never let a reader skip ahead. Returns kInvalidLsn when no duplicate
// is due or the record has since been trimmed.
Lsn Metalog::TakePendingDuplicateLocked(std::string_view tag, Lsn from_lsn) {
  auto it = dup_pending_.find(tag);
  if (it == dup_pending_.end() || it->second >= from_lsn) {
    return kInvalidLsn;
  }
  Lsn lsn = it->second;
  dup_pending_.erase(it);
  if (SlotLocked(lsn) == nullptr) {
    return kInvalidLsn;
  }
  return lsn;
}

// Caller holds mu_. Fault probe on a successful tag read; a kDuplicate
// action arms redelivery of `lsn` on the next read of `tag`.
void Metalog::MaybeArmDuplicateLocked(std::string_view tag, Lsn lsn) {
  if (auto f = IMPELLER_FAULT_PROBE("log/read", tag, lsn);
      f.kind == fault::FaultKind::kDuplicate) {
    dup_pending_[std::string(tag)] = lsn;
  }
}

Result<LogEntry> Metalog::ReadNext(std::string_view tag, Lsn from_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Lsn dup = TakePendingDuplicateLocked(tag, from_lsn);
      dup != kInvalidLsn) {
    return FetchLocked(*SlotLocked(dup));
  }
  if (auto it = tag_trimmed_high_.find(tag);
      it != tag_trimmed_high_.end() && from_lsn <= it->second) {
    // The cursor provably points at a record of this tag that was garbage
    // collected; surface that instead of silently skipping data.
    return TrimmedError("cursor " + std::to_string(from_lsn) +
                        " at/below trimmed tag record " +
                        std::to_string(it->second));
  }
  Lsn lsn = FindFirstLocked(tag, from_lsn);
  if (lsn == kInvalidLsn) {
    return NotFoundError("no record with tag");
  }
  const ViewEntry* entry = SlotLocked(lsn);
  assert(entry != nullptr);
  if (entry->visible_time > clock_->Now()) {
    return NotFoundError("next record not yet visible");
  }
  MaybeArmDuplicateLocked(tag, lsn);
  return FetchLocked(*entry);
}

Result<LogEntry> Metalog::AwaitNext(std::string_view tag, Lsn from_lsn,
                                    DurationNs timeout) {
  TimeNs deadline = clock_->Now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (Lsn dup = TakePendingDuplicateLocked(tag, from_lsn);
        dup != kInvalidLsn) {
      return FetchLocked(*SlotLocked(dup));
    }
    if (auto it = tag_trimmed_high_.find(tag);
        it != tag_trimmed_high_.end() && from_lsn <= it->second) {
      return TrimmedError("cursor at/below trimmed tag record");
    }
    Lsn lsn = FindFirstLocked(tag, from_lsn);
    TimeNs now = clock_->Now();
    if (lsn != kInvalidLsn) {
      const ViewEntry* entry = SlotLocked(lsn);
      assert(entry != nullptr);
      if (entry->visible_time <= now) {
        MaybeArmDuplicateLocked(tag, lsn);
        return FetchLocked(*entry);
      }
      if (closed_) {
        return UnavailableError("log closed");
      }
      if (now >= deadline) {
        return DeadlineExceededError("AwaitNext timed out");
      }
      DurationNs wait = std::min(entry->visible_time, deadline) - now;
      cv_.wait_for(lock, std::chrono::nanoseconds(wait));
      continue;
    }
    if (closed_) {
      return UnavailableError("log closed");
    }
    if (now >= deadline) {
      return DeadlineExceededError("AwaitNext timed out");
    }
    cv_.wait_for(lock, std::chrono::nanoseconds(deadline - now));
  }
}

Result<LogEntry> Metalog::ReadLast(std::string_view tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tag_index_.find(tag);
  if (it == tag_index_.end() || it->second.empty()) {
    return NotFoundError("no record with tag");
  }
  TimeNs now = clock_->Now();
  const std::vector<Lsn>& lsns = it->second;
  for (auto rit = lsns.rbegin(); rit != lsns.rend(); ++rit) {
    const ViewEntry* entry = SlotLocked(*rit);
    if (entry == nullptr) {
      break;  // remaining entries are below the trim point
    }
    if (entry->durable_time <= now) {
      return FetchLocked(*entry);
    }
  }
  return NotFoundError("no durable record with tag");
}

Result<LogEntry> Metalog::ReadAt(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn < base_lsn_) {
    return TrimmedError("record trimmed");
  }
  const ViewEntry* entry = SlotLocked(lsn);
  if (entry == nullptr) {
    return OutOfRangeError("lsn beyond tail");
  }
  if (entry->durable_time > clock_->Now()) {
    return NotFoundError("record not yet durable");
  }
  return FetchLocked(*entry);
}

Lsn Metalog::TailLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Status Metalog::Trim(Lsn new_trim_point, uint64_t* records_dropped) {
  std::unique_lock<std::mutex> lock(mu_);
  if (records_dropped != nullptr) {
    *records_dropped = 0;
  }
  if (new_trim_point > next_lsn_) {
    return OutOfRangeError("trim point beyond tail");
  }
  if (new_trim_point <= base_lsn_) {
    return OkStatus();  // idempotent / stale trim
  }
  uint64_t dropped = new_trim_point - base_lsn_;
  // Per-shard trim prefix: a shard's local order is a subsequence of the
  // global order, so the records of shard s below the global trim point are
  // exactly a prefix of its local offsets.
  std::vector<uint64_t> shard_base(shards_.size(), 0);
  for (uint64_t i = 0; i < dropped; ++i) {
    const ViewEntry& e = entries_[i];
    shard_base[e.shard] = std::max(shard_base[e.shard], e.local + 1);
  }
  entries_.erase(entries_.begin(), entries_.begin() + dropped);
  base_lsn_ = new_trim_point;
  for (auto& [tag, lsns] : tag_index_) {
    auto pos = std::lower_bound(lsns.begin(), lsns.end(), base_lsn_);
    if (pos != lsns.begin()) {
      tag_trimmed_high_[tag] = *(pos - 1);
      lsns.erase(lsns.begin(), pos);
    }
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (shard_base[s] == 0) {
      continue;
    }
    uint64_t drop_locals = shard_base[s] > global_of_base_[s]
                               ? shard_base[s] - global_of_base_[s]
                               : 0;
    drop_locals = std::min<uint64_t>(drop_locals, global_of_[s].size());
    global_of_[s].erase(global_of_[s].begin(),
                        global_of_[s].begin() + drop_locals);
    global_of_base_[s] += drop_locals;
    shards_[s]->TrimTo(shard_base[s]);
  }
  if (records_dropped != nullptr) {
    *records_dropped = dropped;
  }
  lock.unlock();
  // Readers blocked in AwaitNext below the new trim point must observe
  // kTrimmed now, not after their visibility/deadline wait expires — on
  // every shard, not just the one holding the metalog tail.
  cv_.notify_all();
  return OkStatus();
}

Lsn Metalog::TrimPoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

void Metalog::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

uint64_t Metalog::cuts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cuts_;
}

}  // namespace impeller
