#include "src/sharedlog/sharding/failover.h"

namespace impeller {

ShardFailureDetector::ShardFailureDetector(FailoverOptions options,
                                           uint32_t num_shards, TimeNs now)
    : options_(options) {
  states_.resize(num_shards);
  for (auto& s : states_) {
    s.last_success = now;
  }
}

void ShardFailureDetector::RecordSuccess(uint32_t shard, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = states_[shard];
  s.consecutive = 0;
  s.last_success = now;
}

bool ShardFailureDetector::RecordFailure(uint32_t shard, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = states_[shard];
  ++s.consecutive;
  if (s.consecutive >= options_.suspect_after) {
    return true;
  }
  return options_.heartbeat_gap > 0 &&
         now - s.last_success > options_.heartbeat_gap;
}

void ShardFailureDetector::Reset(uint32_t shard, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = states_[shard];
  s.consecutive = 0;
  s.last_success = now;
}

int ShardFailureDetector::consecutive_failures(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_[shard].consecutive;
}

}  // namespace impeller
