// The metalog: the ordering plane of the sharded shared log (Scalog §3,
// Boki). Shards admit records at local offsets; the metalog periodically
// publishes a *cut* — the vector of shard tails — and the interleaving rule
// (shard order within a cut, cut order across cuts) maps every record to a
// unique, dense global LSN. Readers resolve tags and LSNs entirely through
// the metalog's view; payloads are fetched from the owning shard.
//
// Cut publication is cooperative: every appender publishes on its own
// sequencing call under the view mutex, batching in whatever other shards
// admitted since the last cut (a combining sequencer). There is no
// background ordering thread to stall, but a fault probe on
// "log/metalog/cut" can inject one (kDelay holds the view mutex — a
// sequencer stall that every shard's appenders and readers observe).
//
// Lock order: metalog (view) mutex -> shard mutex. Appenders never hold the
// view mutex during admission, so shard admission runs concurrently across
// shards even while a cut is being published.
#ifndef IMPELLER_SRC_SHAREDLOG_SHARDING_METALOG_H_
#define IMPELLER_SRC_SHAREDLOG_SHARDING_METALOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/sharding/shard.h"

namespace impeller {

class Metalog {
 public:
  Metalog(std::string log_name, Clock* clock);

  // Wires the shards in; called once before any other method. The metalog
  // does not own the shards.
  void AttachShards(std::vector<LogShard*> shards);

  // Publishes a cut covering at least locals [first_local, first_local +
  // count) of `shard` and returns their global LSNs. Infallible in normal
  // operation: the records were already admitted, so one cut always covers
  // them (entries racing with a concurrent trim come back as kInvalidLsn,
  // which cannot happen while GC floors trail the commit path).
  std::vector<Lsn> Sequence(uint32_t shard, uint64_t first_local,
                            uint64_t count);

  // Seal protocol step 2 (DESIGN.md §10): publishes one final cut draining
  // every shard's admitted tail — in particular everything the sealed shard
  // admitted before its sequencer was fenced — and returns the LSN boundary
  // (exclusive) of the sealed shard's contribution to the global order.
  // Because the cut drains admitted records only, the global order stays
  // dense across the reconfiguration: no LSN gaps, no reordering.
  Lsn SealCut();

  // Read-side mirror of the SharedLog API over the global view.
  Result<LogEntry> ReadNext(std::string_view tag, Lsn from_lsn);
  Result<LogEntry> AwaitNext(std::string_view tag, Lsn from_lsn,
                             DurationNs timeout);
  Result<LogEntry> ReadLast(std::string_view tag);
  Result<LogEntry> ReadAt(Lsn lsn);

  Lsn TailLsn() const;

  // Drops every sequenced record with lsn < new_trim_point from the view
  // and from the owning shards. `records_dropped` (optional) reports how
  // many records this call actually removed.
  Status Trim(Lsn new_trim_point, uint64_t* records_dropped);
  Lsn TrimPoint() const;

  // Shutdown: wakes every reader blocked in AwaitNext on any shard; they
  // observe kUnavailable once no more data can arrive. Reads of existing
  // records keep working after Close.
  void Close();

  // Number of cuts published that sequenced at least one record.
  uint64_t cuts() const;

 private:
  struct ViewEntry {
    uint32_t shard = 0;
    uint64_t local = 0;
    TimeNs visible_time = 0;
    TimeNs durable_time = 0;
  };

  // Drains every shard's unsequenced tail into the view as one cut,
  // assigning dense global LSNs in shard order. Caller holds mu_.
  void PublishCutLocked();

  // Smallest indexed LSN >= from for `tag`, or kInvalidLsn. Caller holds mu_.
  Lsn FindFirstLocked(std::string_view tag, Lsn from) const;

  // View entry for an LSN, or nullptr if trimmed / beyond the tail. Caller
  // holds mu_.
  const ViewEntry* SlotLocked(Lsn lsn) const;

  // Copies the record behind a view entry out of its shard (takes the shard
  // mutex; caller holds mu_).
  Result<LogEntry> FetchLocked(const ViewEntry& entry) const;

  // Fault-injection redelivery (kDuplicate on "log/read"); see the dup
  // handling in the unsharded log. Callers hold mu_.
  Lsn TakePendingDuplicateLocked(std::string_view tag, Lsn from_lsn);
  void MaybeArmDuplicateLocked(std::string_view tag, Lsn lsn);

  const std::string log_name_;
  Clock* clock_;
  std::vector<LogShard*> shards_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ViewEntry> entries_;  // entries_[i] has lsn base_lsn_ + i
  Lsn base_lsn_ = 0;               // == trim point
  Lsn next_lsn_ = 0;
  // Per shard: next local offset not yet sequenced.
  std::vector<uint64_t> sequenced_upto_;
  // Per shard: global LSN of each sequenced local offset >= global_of_base_
  // (pruned by Trim alongside the shard's records).
  std::vector<std::deque<Lsn>> global_of_;
  std::vector<uint64_t> global_of_base_;
  // Heterogeneous lookup (transparent hash/equal): per-read probes take the
  // caller's string_view directly, no temporary std::string.
  template <typename V>
  using TagMap = std::unordered_map<std::string, V, TransparentStringHash,
                                    std::equal_to<>>;
  TagMap<std::vector<Lsn>> tag_index_;
  // Highest LSN ever trimmed per tag: a cursor at or below this value has
  // provably missed records and must observe kTrimmed.
  TagMap<Lsn> tag_trimmed_high_;
  TagMap<Lsn> dup_pending_;
  uint64_t cuts_ = 0;
  bool closed_ = false;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_SHARDING_METALOG_H_
