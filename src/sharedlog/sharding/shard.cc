#include "src/sharedlog/sharding/shard.h"

#include <algorithm>

#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

LogShard::LogShard(uint32_t id, std::string log_name,
                   std::shared_ptr<LatencyModel> latency, Clock* clock)
    : id_(id),
      log_name_(std::move(log_name)),
      probe_detail_(log_name_ + "/s" + std::to_string(id)),
      latency_(std::move(latency)),
      clock_(clock) {
  last_append_time_ = clock_->Now();
}

Result<LogShard::AdmitOutcome> LogShard::Admit(
    std::vector<AppendRequest>& reqs, size_t batch_bytes,
    const FencingTable& meta) {
  TimeNs start = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  // Sealed check comes before the fault probes: a sealed shard's sequencer
  // is fenced — it must not consume injected faults or assign offsets, only
  // bounce the straggler back to the log client for re-placement.
  if (sealed_) {
    TRACE_INSTANT("log", "append_sealed");
    return SealedError("shard " + probe_detail_ +
                       " sealed; re-place at the current epoch");
  }
  DurationNs injected_ack_delay = 0;
  // Fault probes before any mutation: a transient append error (lost
  // quorum, leader failover) rejects the whole batch with the requests
  // untouched, so the caller's retry re-issues identical records. The
  // "log/append" probe keeps the unsharded detail/lsn contract (at one
  // shard the local offset IS the global LSN); "log/shard/append" targets a
  // single shard by name, modeling a one-shard outage.
  if (auto f = IMPELLER_FAULT_PROBE("log/append", log_name_, next_local_)) {
    if (f.kind == fault::FaultKind::kError) {
      TRACE_INSTANT("log", "append_unavailable");
      return UnavailableError("injected append failure on " + log_name_);
    }
    if (f.kind == fault::FaultKind::kDelay) {
      injected_ack_delay += f.delay;  // ack-latency spike, applied below
    }
  }
  if (auto f =
          IMPELLER_FAULT_PROBE("log/shard/append", probe_detail_,
                               next_local_)) {
    if (f.kind == fault::FaultKind::kError) {
      TRACE_INSTANT("log", "shard_unavailable");
      return UnavailableError("injected shard failure on " + probe_detail_);
    }
    if (f.kind == fault::FaultKind::kDelay) {
      injected_ack_delay += f.delay;
    }
  }
  // Fencing check is atomic with local-offset assignment: a zombie racing
  // with the task manager's MetaIncrement is linearized here — admission
  // happens-after the increment sees the new instance and rejects.
  for (const auto& r : reqs) {
    if (!r.cond_key.empty()) {
      uint64_t current = meta.ValueOrZero(r.cond_key);
      if (current != r.cond_value) {
        TRACE_INSTANT("log", "append_fenced");
        return FencedError("conditional append: " + r.cond_key + " is " +
                           std::to_string(current) + ", expected " +
                           std::to_string(r.cond_value));
      }
    }
  }
  DurationNs idle_gap = start - last_append_time_;
  last_append_time_ = start;
  LatencySample latency = latency_->SampleAppend(batch_bytes, idle_gap);
  // One ordering round per batch: rounds on the same shard serialize (the
  // shard's sequencer is a pipeline of depth one), rounds on different
  // shards overlap.
  TimeNs ack_start = std::max(start, busy_until_);
  TimeNs ack_done = ack_start + latency.ack;
  busy_until_ = ack_done;

  AdmitOutcome out;
  out.first_local = next_local_;
  out.count = reqs.size();
  out.ack_done = ack_done;
  out.injected_ack_delay = injected_ack_delay;
  for (auto& r : reqs) {
    Record rec;
    rec.entry.lsn = kInvalidLsn;  // stamped by the metalog at sequencing
    rec.entry.tags = std::move(r.tags);
    rec.entry.payload = std::move(r.payload);
    rec.entry.append_time = start;
    rec.entry.visible_time = ack_done + latency.delivery;
    rec.durable_time = ack_done;
    records_.push_back(std::move(rec));
    ++next_local_;
  }
  return out;
}

uint64_t LogShard::Sequence(uint64_t from_local, Lsn first_global,
                            const SequenceVisitor& visit) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sequenced = 0;
  for (uint64_t local = std::max(from_local, base_local_);
       local < next_local_; ++local) {
    Record& rec = records_[local - base_local_];
    rec.entry.lsn = first_global + sequenced;
    visit(local, rec.entry.lsn, rec.entry.tags, rec.entry.visible_time,
          rec.durable_time);
    ++sequenced;
  }
  return sequenced;
}

Result<LogEntry> LogShard::EntryAt(uint64_t local) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (local < base_local_) {
    return TrimmedError("record trimmed");
  }
  if (local >= next_local_) {
    return OutOfRangeError("local offset beyond shard tail");
  }
  return records_[local - base_local_].entry;
}

uint64_t LogShard::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_ = true;
  return next_local_;
}

void LogShard::Unseal() {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_ = false;
}

bool LogShard::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

void LogShard::TrimTo(uint64_t new_base_local) {
  std::lock_guard<std::mutex> lock(mu_);
  if (new_base_local <= base_local_) {
    return;
  }
  uint64_t dropped = std::min(new_base_local, next_local_) - base_local_;
  records_.erase(records_.begin(), records_.begin() + dropped);
  base_local_ = new_base_local;
}

}  // namespace impeller
