// Shard failure detection for the sharded shared log (DESIGN.md §10). The
// detector is the *suspicion* half of the seal protocol: it watches every
// shard's append outcomes and decides when a shard should be treated as
// dead. Sealing itself (final cut, durable seal record, epoch bump) is the
// log client's job — see SharedLog::SealShard.
//
// Two suspicion rules, mirroring a phi-accrual-style detector collapsed to
// its in-process essentials:
//  * consecutive failures: `suspect_after` kUnavailable admits in a row on
//    one shard with no intervening success;
//  * heartbeat gap: any failure on a shard whose last successful admit is
//    more than `heartbeat_gap` in the past. (A pure gap with no failure is
//    indistinguishable from idleness in-process, so the gap rule only fires
//    on evidence.)
#ifndef IMPELLER_SRC_SHAREDLOG_SHARDING_FAILOVER_H_
#define IMPELLER_SRC_SHAREDLOG_SHARDING_FAILOVER_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/clock.h"

namespace impeller {

struct FailoverOptions {
  // Suspect-and-seal automatically from the append path. When false, only
  // explicit SealShard calls reconfigure the log; failed appends keep
  // returning kUnavailable to the caller's retry policy.
  bool auto_seal = true;
  // Consecutive kUnavailable admits on one shard before it is suspected.
  // Must stay below RetryPolicy::max_attempts so a single retried append
  // crosses the threshold, seals, and still succeeds within its budget.
  int suspect_after = 3;
  // A failure on a shard that has not admitted successfully for this long
  // is suspected immediately, regardless of the consecutive count.
  DurationNs heartbeat_gap = 2 * kSecond;
};

class ShardFailureDetector {
 public:
  ShardFailureDetector(FailoverOptions options, uint32_t num_shards,
                       TimeNs now);

  // A successful admit: clears the shard's consecutive-failure streak and
  // refreshes its heartbeat.
  void RecordSuccess(uint32_t shard, TimeNs now);

  // A kUnavailable admit. Returns true when the shard is now suspect and
  // should be sealed.
  bool RecordFailure(uint32_t shard, TimeNs now);

  // Forgets the shard's history (sealed shards stop being tracked; rejoined
  // shards restart with a fresh heartbeat).
  void Reset(uint32_t shard, TimeNs now);

  int consecutive_failures(uint32_t shard) const;

  const FailoverOptions& options() const { return options_; }

 private:
  struct ShardState {
    int consecutive = 0;
    TimeNs last_success = 0;  // last successful admit (or attach/reset time)
  };

  const FailoverOptions options_;
  mutable std::mutex mu_;
  std::vector<ShardState> states_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_SHARDING_FAILOVER_H_
