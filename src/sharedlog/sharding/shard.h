// One shard of the sharded shared log (Scalog/Boki data plane). A shard is
// an independent sequencer: it admits batches under its own lock, assigns
// contiguous *local* offsets, runs the latency model, and checks conditional
// appends against the log's fencing metadata. Shards know nothing about
// global LSNs — the metalog (metalog.h) interleaves per-shard cuts into the
// total order and stamps each record's LSN at sequencing time.
//
// The latency model doubles as a per-shard sequencer capacity model: each
// admitted batch occupies the shard's ordering pipeline for its modeled ack
// duration (`busy_until_`), so concurrent appenders to one shard queue
// behind each other's ack rounds while appenders on different shards overlap
// — which is exactly the scaling argument of the paper's shared log.
#ifndef IMPELLER_SRC_SHAREDLOG_SHARDING_SHARD_H_
#define IMPELLER_SRC_SHAREDLOG_SHARDING_SHARD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sharedlog/latency_model.h"
#include "src/sharedlog/log_record.h"

namespace impeller {

// The log's key-value configuration metadata (paper §3.4), shared by every
// shard: conditional appends on any shard fence against one table, so a
// zombie's append races with the task manager's MetaIncrement exactly as it
// did in the unsharded log. Lock order: shard mutex may be held when taking
// this table's mutex, never the reverse.
class FencingTable {
 public:
  void Put(const std::string& key, uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    map_[key] = value;
  }

  Result<uint64_t> Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      return NotFoundError("no metadata key " + key);
    }
    return it->second;
  }

  uint64_t Increment(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return ++map_[key];
  }

  bool Cas(const std::string& key, uint64_t expected, uint64_t desired) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t& slot = map_[key];
    if (slot != expected) {
      return false;
    }
    slot = desired;
    return true;
  }

  // Missing keys read as 0 (the value conditional appends compare against).
  uint64_t ValueOrZero(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t> map_;
};

class LogShard {
 public:
  struct AdmitOutcome {
    uint64_t first_local = 0;  // local offset of the batch's first record
    uint64_t count = 0;
    // The modeled completion time of this batch's ordering round; the
    // appender sleeps until then (plus any injected ack-delay spike).
    TimeNs ack_done = 0;
    DurationNs injected_ack_delay = 0;
  };

  // `log_name` is the owning log's name (fault probes match on it);
  // `latency` may be shared across shards (models lock internally).
  LogShard(uint32_t id, std::string log_name,
           std::shared_ptr<LatencyModel> latency, Clock* clock);

  // Admits a batch: fault probes, fencing checks against `meta`, latency
  // sampling, and record storage at contiguous local offsets. All-or-nothing;
  // on any failure `reqs` is left intact for the caller's retry. Consumes
  // payloads (moves them into the shard) only on success.
  Result<AdmitOutcome> Admit(std::vector<AppendRequest>& reqs,
                             size_t batch_bytes, const FencingTable& meta);

  // Sequencing visitor: called once per record with its local offset and
  // freshly assigned global LSN.
  using SequenceVisitor = std::function<void(
      uint64_t local, Lsn global, const std::vector<std::string>& tags,
      TimeNs visible_time, TimeNs durable_time)>;

  // Stamps global LSNs `first_global, first_global+1, ...` onto every record
  // with local offset >= `from_local`, reporting each to `visit`. Returns
  // the number of records sequenced. Called by the metalog with its mutex
  // held; takes the shard mutex internally (metalog -> shard lock order).
  uint64_t Sequence(uint64_t from_local, Lsn first_global,
                    const SequenceVisitor& visit);

  // Copy of the record at `local` (global LSN already stamped). kTrimmed if
  // the shard has dropped it.
  Result<LogEntry> EntryAt(uint64_t local) const;

  // Drops all records with local offset < new_base_local.
  void TrimTo(uint64_t new_base_local);

  // Seals the shard's sequencer (failover, DESIGN.md §10): every subsequent
  // Admit is rejected with kSealed before it can assign a local offset, so a
  // zombie sequencer cannot extend the log past the final cut. Idempotent;
  // returns the shard's final local tail (next unassigned offset). Already-
  // admitted records stay readable and sequencable.
  uint64_t Seal();

  // Reopens a sealed shard (rejoin at a later placement epoch). Local
  // offsets continue from the pre-seal tail.
  void Unseal();

  bool sealed() const;

  uint32_t id() const { return id_; }

 private:
  struct Record {
    LogEntry entry;  // entry.lsn == kInvalidLsn until sequenced
    TimeNs durable_time = 0;
  };

  const uint32_t id_;
  const std::string log_name_;
  const std::string probe_detail_;  // "<log_name>/s<id>"
  std::shared_ptr<LatencyModel> latency_;
  Clock* clock_;

  mutable std::mutex mu_;
  bool sealed_ = false;
  std::deque<Record> records_;  // records_[i] has local offset base_local_+i
  uint64_t base_local_ = 0;
  uint64_t next_local_ = 0;
  TimeNs last_append_time_ = 0;
  TimeNs busy_until_ = 0;  // modeled sequencer pipeline occupancy
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_SHARDING_SHARD_H_
