// Latency models for the simulated log substrates. The models are calibrated
// against Table 2 of the paper (produce-to-consume latency of a 16 KiB record
// for Boki vs Kafka at 10/50/100 appends/s); see DESIGN.md §1.
//
// An append experiences:
//   ack      — time until the append is ordered + durable (the appender's
//              Append() call blocks this long; batched appends share it),
//   delivery — additional propagation until readers can observe the record.
// Both are sampled per batch. Kafka's model adds an idle penalty: a partition
// that has been quiet pays a cold-path cost with a heavy tail, which is why
// Kafka's p99 at 10 appends/s exceeds Boki's (Table 2) while its p50 is lower.
#ifndef IMPELLER_SRC_SHAREDLOG_LATENCY_MODEL_H_
#define IMPELLER_SRC_SHAREDLOG_LATENCY_MODEL_H_

#include <memory>
#include <mutex>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace impeller {

struct LatencySample {
  DurationNs ack = 0;
  DurationNs delivery = 0;
};

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // `batch_bytes`: total payload size of the batch being appended.
  // `idle_gap`: time since the previous append to the same log/partition.
  virtual LatencySample SampleAppend(size_t batch_bytes,
                                     DurationNs idle_gap) = 0;
};

// Zero latency everywhere; used by unit tests for determinism and speed.
class ZeroLatencyModel final : public LatencyModel {
 public:
  LatencySample SampleAppend(size_t, DurationNs) override { return {}; }
};

struct CalibratedLatencyParams {
  // Medians of the lognormal components.
  DurationNs ack_median = 0;
  double ack_sigma = 0.0;
  DurationNs delivery_median = 0;
  double delivery_sigma = 0.0;
  // Throughput-dependent term: cost per payload byte (models replication /
  // network bandwidth).
  double per_byte_ns = 0.0;
  // Idle penalty: after `idle_threshold` of silence, add a lognormal with
  // `idle_median`/`idle_sigma` scaled by how stale the partition is
  // (saturating at 1). Models cold batching paths / lazy fetch sessions.
  DurationNs idle_threshold = 0;
  DurationNs idle_median = 0;
  double idle_sigma = 0.0;
  // Global scale knob so benchmarks can compress wall-clock time.
  double scale = 1.0;
};

class CalibratedLatencyModel final : public LatencyModel {
 public:
  CalibratedLatencyModel(CalibratedLatencyParams params, uint64_t seed);

  LatencySample SampleAppend(size_t batch_bytes, DurationNs idle_gap) override;

  // Boki-like shared log: higher base (sequencer ordering round on every
  // append) but a thin, stable tail. Calibrated to Table 2 "Impeller's log".
  static CalibratedLatencyParams BokiParams();
  // Kafka: lower base latency, heavy idle tail. Calibrated to Table 2
  // "Kafka".
  static CalibratedLatencyParams KafkaParams();

 private:
  CalibratedLatencyParams params_;
  std::mutex mu_;
  Rng rng_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_LATENCY_MODEL_H_
