// A fault-tolerant, distributed, shared log in the style of Boki/Scalog,
// simulated in-process (see DESIGN.md §1 for the substitution argument).
//
// Semantics provided (paper §2.3, §3.1):
//  * a single global total order: every append gets a unique, dense LSN;
//  * string-tag metadata on each record, with an index supporting efficient
//    selective reads of the sub-sequence of records carrying a given tag;
//  * atomic multi-stream append: one record with N tags appears, at one LSN,
//    in all N logical substreams (the mechanism behind progress markers);
//  * conditional appends fenced on the log's key-value configuration
//    metadata (zombie fencing, §3.4);
//  * a trim API that garbage-collects a prefix of the log (§3.5);
//  * a calibrated latency model: appends block for an "ack" latency and
//    become visible to tag readers after an additional "delivery" latency.
//
// Thread safety: all public methods are safe to call concurrently.
#ifndef IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_
#define IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/sharedlog/latency_model.h"
#include "src/sharedlog/log_record.h"

namespace impeller {

struct SharedLogOptions {
  std::string name = "log";
  // Latency model applied to appends. Defaults to zero latency (tests).
  std::shared_ptr<LatencyModel> latency;
  Clock* clock = nullptr;  // defaults to MonotonicClock
  // Optional: when set, the log mirrors its SharedLogStats into "log/*"
  // counters so metric exporters see log traffic without polling stats().
  MetricsRegistry* metrics = nullptr;
};

struct SharedLogStats {
  uint64_t appends = 0;
  uint64_t records = 0;
  uint64_t fenced_appends = 0;
  uint64_t reads = 0;
  uint64_t trims = 0;
  uint64_t bytes_appended = 0;
  uint64_t records_trimmed = 0;
};

class SharedLog {
 public:
  explicit SharedLog(SharedLogOptions options = {});

  // Appends one record; blocks for the modeled ack latency and returns the
  // assigned LSN. Conditional appends (req.cond_key non-empty) fail with
  // kFenced when metadata[cond_key] != cond_value.
  Result<Lsn> Append(AppendRequest req);

  // Appends a batch atomically in arrival order with one shared ack latency
  // (models the 128 KiB output buffer flush, §5.3). If any conditional
  // check fails the whole batch is rejected with kFenced. Consumes the
  // requests (payloads are moved out) only on success; on any failure —
  // fencing, injected kUnavailable — `reqs` is left intact so callers can
  // retry the same batch without copying.
  Result<std::vector<Lsn>> AppendBatch(std::vector<AppendRequest>& reqs);

  // Selective read: the first record tagged `tag` with lsn >= from_lsn.
  // Returns records strictly in LSN order per tag: if the next matching
  // record exists but is not yet visible, reports kNotFound (non-blocking)
  // rather than skipping ahead.
  Result<LogEntry> ReadNext(std::string_view tag, Lsn from_lsn);

  // Blocking variant of ReadNext with a timeout (kDeadlineExceeded).
  Result<LogEntry> AwaitNext(std::string_view tag, Lsn from_lsn,
                             DurationNs timeout);

  // The newest *durable* record carrying `tag` (used by recovery to find the
  // tail of a task-log substream). Durable = append acked, which can be
  // slightly ahead of reader visibility.
  Result<LogEntry> ReadLast(std::string_view tag);

  // Direct read of a durable record by LSN.
  Result<LogEntry> ReadAt(Lsn lsn);

  // The LSN that the next append will receive.
  Lsn TailLsn() const;

  // Garbage collection: drops all records with lsn < new_trim_point.
  // Reading below the trim point reports kTrimmed.
  Status Trim(Lsn new_trim_point);
  Lsn TrimPoint() const;

  // --- Key-value configuration metadata (paper §3.4). ---
  void MetaPut(std::string_view key, uint64_t value);
  Result<uint64_t> MetaGet(std::string_view key) const;
  // Atomically increments (missing keys start at 0) and returns the new
  // value. Used by the task manager to mint instance numbers.
  uint64_t MetaIncrement(std::string_view key);
  bool MetaCas(std::string_view key, uint64_t expected, uint64_t desired);

  SharedLogStats stats() const;
  const std::string& name() const { return options_.name; }

 private:
  struct InternalRecord {
    LogEntry entry;
    TimeNs durable_time = 0;
    bool trimmed = false;
  };

  // Returns the smallest indexed LSN >= from for `tag`, or kInvalidLsn.
  // Caller holds mu_.
  Lsn FindFirstLocked(std::string_view tag, Lsn from) const;

  // Caller holds mu_. Slot for an LSN, or nullptr if trimmed/out of range.
  const InternalRecord* SlotLocked(Lsn lsn) const;

  // Fault-injection support (see dup_pending_). Callers hold mu_.
  const InternalRecord* TakePendingDuplicateLocked(std::string_view tag,
                                                   Lsn from_lsn);
  void MaybeArmDuplicateLocked(std::string_view tag, Lsn lsn);

  Result<std::vector<Lsn>> AppendBatchInternal(
      std::vector<AppendRequest>& reqs);

  // Pre-resolved "log/*" counters mirroring SharedLogStats; all nullptr when
  // no registry was configured.
  struct StatCounters {
    Counter* appends = nullptr;
    Counter* records = nullptr;
    Counter* fenced_appends = nullptr;
    Counter* reads = nullptr;
    Counter* trims = nullptr;
    Counter* bytes_appended = nullptr;
    Counter* records_trimmed = nullptr;
  };

  SharedLogOptions options_;
  Clock* clock_;
  StatCounters counters_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<InternalRecord> records_;  // records_[i] has lsn base_lsn_ + i
  Lsn base_lsn_ = 0;                    // == trim point
  Lsn next_lsn_ = 0;
  std::unordered_map<std::string, std::vector<Lsn>> tag_index_;
  // Highest LSN ever trimmed per tag: a cursor at or below this value has
  // provably missed records and must observe kTrimmed.
  std::unordered_map<std::string, Lsn> tag_trimmed_high_;
  // Fault injection (kDuplicate on "log/read"): LSN of a record already
  // returned for this tag that the next read should deliver again. Models a
  // consumer reconnecting after a lost ack and re-fetching from its previous
  // cursor.
  std::unordered_map<std::string, Lsn> dup_pending_;
  std::unordered_map<std::string, uint64_t> metadata_;
  TimeNs last_append_time_ = 0;
  SharedLogStats stats_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_
