// A fault-tolerant, distributed, shared log in the style of Boki/Scalog,
// simulated in-process (see DESIGN.md §1 for the substitution argument).
//
// Semantics provided (paper §2.3, §3.1):
//  * a single global total order: every append gets a unique, dense LSN;
//  * string-tag metadata on each record, with an index supporting efficient
//    selective reads of the sub-sequence of records carrying a given tag;
//  * atomic multi-stream append: one record with N tags appears, at one LSN,
//    in all N logical substreams (the mechanism behind progress markers);
//  * conditional appends fenced on the log's key-value configuration
//    metadata (zombie fencing, §3.4);
//  * a trim API that garbage-collects a prefix of the log (§3.5);
//  * a calibrated latency model: appends block for an "ack" latency and
//    become visible to tag readers after an additional "delivery" latency.
//
// Internally the log is sharded (DESIGN.md §8): each batch is placed on one
// shard by the hash of its first tag, admitted by that shard's sequencer at
// local offsets, and assigned its global LSNs when the metalog publishes
// the next cut. At `shards = 1` (the default) this degenerates to the
// classic single totally-ordered log. The public API is shard-agnostic;
// only placement (`ShardOfTag`) and `Close` expose the sharding.
//
// The log survives permanent shard failures (DESIGN.md §10): a failure
// detector suspects a shard after consecutive kUnavailable admits or a
// heartbeat gap, and the seal protocol fences its sequencer, finalizes its
// last metalog cut, writes a durable seal record, and bumps the *placement
// epoch* so `ShardOfTag` routes only to live shards. Straggler appends to a
// sealed shard bounce with kSealed and are transparently re-placed here, so
// callers never observe the reconfiguration. Sealed shards stay readable
// (reads go through the metalog view) and may rejoin at a later epoch.
//
// Thread safety: all public methods are safe to call concurrently.
#ifndef IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_
#define IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/sharedlog/latency_model.h"
#include "src/sharedlog/log_record.h"
#include "src/sharedlog/sharding/failover.h"
#include "src/sharedlog/sharding/metalog.h"
#include "src/sharedlog/sharding/shard.h"

namespace impeller {

// Tag carried by seal/rejoin control records: the log's reconfiguration
// history is itself a durable substream of the log.
inline constexpr char kLogSealTag[] = "!log/seal";

struct SharedLogOptions {
  std::string name = "log";
  // Latency model applied to appends. Defaults to zero latency (tests).
  std::shared_ptr<LatencyModel> latency;
  Clock* clock = nullptr;  // defaults to MonotonicClock
  // Optional: when set, the log mirrors its SharedLogStats into "log/*"
  // counters so metric exporters see log traffic without polling stats().
  MetricsRegistry* metrics = nullptr;
  // Number of shards (independent sequencers). 1 = the classic single
  // totally-ordered log; more shards admit batches concurrently while the
  // metalog interleaves their cuts into the global order.
  uint32_t shards = 1;
  // Failure detection / auto-seal knobs (DESIGN.md §10).
  FailoverOptions failover;
};

struct SharedLogStats {
  uint64_t appends = 0;
  uint64_t records = 0;
  uint64_t fenced_appends = 0;
  uint64_t sealed_appends = 0;  // straggler batches bounced off sealed shards
  uint64_t reads = 0;
  uint64_t trims = 0;
  uint64_t bytes_appended = 0;
  uint64_t records_trimmed = 0;
  uint64_t cuts = 0;  // metalog cuts that sequenced >= 1 record
  uint64_t seals = 0;
  uint64_t rejoins = 0;
  uint64_t placement_epoch = 0;  // current epoch, not a counter
};

class SharedLog {
 public:
  explicit SharedLog(SharedLogOptions options = {});

  // Appends one record; blocks for the modeled ack latency and returns the
  // assigned LSN. Conditional appends (req.cond_key non-empty) fail with
  // kFenced when metadata[cond_key] != cond_value.
  Result<Lsn> Append(AppendRequest req);

  // Appends a batch atomically in arrival order with one shared ack latency
  // (models the 128 KiB output buffer flush, §5.3). The whole batch lands
  // on one shard, so its LSNs are contiguous in the global order. If any
  // conditional check fails the whole batch is rejected with kFenced.
  // Consumes the requests (payloads are moved out) only on success; on any
  // failure — fencing, injected kUnavailable — `reqs` is left intact so
  // callers can retry the same batch without copying.
  Result<std::vector<Lsn>> AppendBatch(std::vector<AppendRequest>& reqs);

  // Selective read: the first record tagged `tag` with lsn >= from_lsn.
  // Returns records strictly in LSN order per tag: if the next matching
  // record exists but is not yet visible, reports kNotFound (non-blocking)
  // rather than skipping ahead.
  Result<LogEntry> ReadNext(std::string_view tag, Lsn from_lsn);

  // Blocking variant of ReadNext with a timeout (kDeadlineExceeded). After
  // Close() blocked readers on every shard wake with kUnavailable.
  Result<LogEntry> AwaitNext(std::string_view tag, Lsn from_lsn,
                             DurationNs timeout);

  // The newest *durable* record carrying `tag` (used by recovery to find the
  // tail of a task-log substream). Durable = append acked, which can be
  // slightly ahead of reader visibility.
  Result<LogEntry> ReadLast(std::string_view tag);

  // Direct read of a durable record by LSN.
  Result<LogEntry> ReadAt(Lsn lsn);

  // The next global LSN the metalog will assign.
  Lsn TailLsn() const;

  // Garbage collection: drops all records with lsn < new_trim_point.
  // Reading below the trim point reports kTrimmed. Wakes readers blocked in
  // AwaitNext on every shard.
  Status Trim(Lsn new_trim_point);
  Lsn TrimPoint() const;

  // Shutdown: wakes every reader blocked in AwaitNext (kUnavailable once no
  // data remains). Reads of existing records keep working; appends after
  // Close are still admitted (teardown stragglers).
  void Close();

  // --- Key-value configuration metadata (paper §3.4). ---
  void MetaPut(std::string_view key, uint64_t value);
  Result<uint64_t> MetaGet(std::string_view key) const;
  // Atomically increments (missing keys start at 0) and returns the new
  // value. Used by the task manager to mint instance numbers.
  uint64_t MetaIncrement(std::string_view key);
  bool MetaCas(std::string_view key, uint64_t expected, uint64_t desired);

  // Placement: the shard a batch whose first tag is `tag` lands on at the
  // current placement epoch. Used by the engine for shard-affine task
  // placement. (tag, epoch)-keyed: a seal or rejoin bumps the epoch and may
  // move the tag to a different live shard.
  uint32_t ShardOfTag(std::string_view tag) const;
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  // --- Failover: seal protocol & placement epochs (DESIGN.md §10). ---

  // Seals `shard` out of the placement: fences its sequencer (stragglers
  // observe kSealed), publishes the metalog's final cut for it, writes a
  // durable seal record tagged kLogSealTag into the global order, and
  // atomically bumps the placement epoch so new appends route only to live
  // shards. Idempotent; a concurrent caller blocks until the in-flight seal
  // finishes, then sees OK. Refuses (kUnavailable) to seal the last live
  // shard. Sealed shards stay fully readable.
  Status SealShard(uint32_t shard);

  // Re-admits a sealed shard at a new placement epoch: reopens its
  // sequencer at the pre-seal local tail, logs a rejoin record, and bumps
  // the epoch so placement includes it again. kInvalidArgument if the shard
  // is not sealed.
  Status RejoinShard(uint32_t shard);

  bool ShardSealed(uint32_t shard) const;
  // Current placement epoch; bumps by one on every seal and every rejoin.
  uint64_t placement_epoch() const;
  uint32_t num_live_shards() const;

  SharedLogStats stats() const;
  const std::string& name() const { return options_.name; }

 private:
  Result<std::vector<Lsn>> AppendBatchInternal(
      std::vector<AppendRequest>& reqs);

  // The shard a batch is placed on: hash of the first non-empty tag list's
  // first tag over the live-shard list, round-robin for untagged batches.
  uint32_t PlaceShard(const std::vector<AppendRequest>& reqs);

  // Appends the seal/rejoin audit record (tag kLogSealTag) to some live
  // shard, waiting out its ack so the record is durable before the epoch
  // bump. Best-effort under total outage: failure is logged, never fatal —
  // the epoch bump is the reconfiguration, the record is its history.
  void AppendControlRecord(const char* kind, uint32_t shard, Lsn boundary,
                           uint64_t final_local, uint64_t next_epoch);

  // Pre-resolved "log/*" counters mirroring SharedLogStats; all nullptr when
  // no registry was configured.
  struct StatCounters {
    Counter* appends = nullptr;
    Counter* records = nullptr;
    Counter* fenced_appends = nullptr;
    Counter* sealed_appends = nullptr;
    Counter* reads = nullptr;
    Counter* trims = nullptr;
    Counter* bytes_appended = nullptr;
    Counter* records_trimmed = nullptr;
    Counter* cuts = nullptr;
    Counter* seals = nullptr;
    Counter* rejoins = nullptr;
    Counter* epoch_bumps = nullptr;
    LatencyHistogram* seal_latency = nullptr;  // SealShard wall time
    // Per-shard appended-record counters ("log/shard<i>/records"); only
    // registered when the log actually has multiple shards.
    std::vector<Counter*> shard_records;
  };

  SharedLogOptions options_;
  Clock* clock_;
  StatCounters counters_;

  FencingTable meta_;
  std::vector<std::unique_ptr<LogShard>> shards_;
  Metalog metalog_;
  std::unique_ptr<ShardFailureDetector> detector_;
  std::atomic<uint64_t> rr_next_{0};  // round-robin for untagged batches

  // Serializes reconfigurations (seal/rejoin). Lock order: failover_mu_ ->
  // placement_mu_ / metalog mutex / shard mutex; never acquired while
  // holding any of those.
  std::mutex failover_mu_;
  // Guards the placement view. Leaf lock.
  mutable std::mutex placement_mu_;
  std::vector<uint32_t> live_;  // live shard ids, ascending
  uint64_t epoch_ = 0;

  mutable std::mutex stats_mu_;
  SharedLogStats stats_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_SHAREDLOG_SHARED_LOG_H_
