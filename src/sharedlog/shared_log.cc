#include "src/sharedlog/shared_log.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

namespace {

inline void Bump(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Add(n);
  }
}

}  // namespace

SharedLog::SharedLog(SharedLogOptions options)
    : options_(std::move(options)) {
  if (options_.clock == nullptr) {
    options_.clock = MonotonicClock::Get();
  }
  clock_ = options_.clock;
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<ZeroLatencyModel>();
  }
  if (options_.metrics != nullptr) {
    counters_.appends = options_.metrics->GetCounter("log/appends");
    counters_.records = options_.metrics->GetCounter("log/records");
    counters_.fenced_appends =
        options_.metrics->GetCounter("log/fenced_appends");
    counters_.reads = options_.metrics->GetCounter("log/reads");
    counters_.trims = options_.metrics->GetCounter("log/trims");
    counters_.bytes_appended =
        options_.metrics->GetCounter("log/bytes_appended");
    counters_.records_trimmed =
        options_.metrics->GetCounter("log/records_trimmed");
  }
  last_append_time_ = clock_->Now();
}

Result<Lsn> SharedLog::Append(AppendRequest req) {
  std::vector<AppendRequest> batch;
  batch.push_back(std::move(req));
  auto lsns = AppendBatchInternal(batch);
  if (!lsns.ok()) {
    return lsns.status();
  }
  return (*lsns)[0];
}

Result<std::vector<Lsn>> SharedLog::AppendBatch(
    std::vector<AppendRequest>& reqs) {
  if (reqs.empty()) {
    return InvalidArgumentError("empty append batch");
  }
  return AppendBatchInternal(reqs);
}

Result<std::vector<Lsn>> SharedLog::AppendBatchInternal(
    std::vector<AppendRequest>& reqs) {
  TRACE_SPAN("log", "append");
  TimeNs start = clock_->Now();
  size_t batch_bytes = 0;
  for (const auto& r : reqs) {
    batch_bytes += r.payload.size();
  }

  LatencySample latency;
  DurationNs injected_ack_delay = 0;
  std::vector<Lsn> lsns;
  lsns.reserve(reqs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fault probe before any mutation: a transient append error (lost
    // quorum, leader failover) rejects the whole batch with the requests
    // untouched, so the caller's retry re-issues identical records.
    if (auto f = IMPELLER_FAULT_PROBE("log/append", options_.name,
                                      next_lsn_)) {
      if (f.kind == fault::FaultKind::kError) {
        TRACE_INSTANT("log", "append_unavailable");
        return UnavailableError("injected append failure on " +
                                options_.name);
      }
      if (f.kind == fault::FaultKind::kDelay) {
        injected_ack_delay = f.delay;  // ack-latency spike, applied below
      }
    }
    // Fencing check is atomic with LSN assignment: a zombie racing with the
    // task manager's MetaIncrement is linearized here.
    for (const auto& r : reqs) {
      if (!r.cond_key.empty()) {
        auto it = metadata_.find(r.cond_key);
        uint64_t current = (it == metadata_.end()) ? 0 : it->second;
        if (current != r.cond_value) {
          stats_.fenced_appends += reqs.size();
          Bump(counters_.fenced_appends, reqs.size());
          TRACE_INSTANT("log", "append_fenced");
          return FencedError("conditional append: " + r.cond_key + " is " +
                             std::to_string(current) + ", expected " +
                             std::to_string(r.cond_value));
        }
      }
    }
    DurationNs idle_gap = start - last_append_time_;
    last_append_time_ = start;
    latency = options_.latency->SampleAppend(batch_bytes, idle_gap);
    for (auto& r : reqs) {
      InternalRecord rec;
      rec.entry.lsn = next_lsn_++;
      rec.entry.tags = std::move(r.tags);
      rec.entry.payload = std::move(r.payload);
      rec.entry.append_time = start;
      rec.entry.visible_time = start + latency.ack + latency.delivery;
      rec.durable_time = start + latency.ack;
      for (const auto& tag : rec.entry.tags) {
        tag_index_[tag].push_back(rec.entry.lsn);
      }
      lsns.push_back(rec.entry.lsn);
      records_.push_back(std::move(rec));
    }
    stats_.appends += 1;
    stats_.records += reqs.size();
    stats_.bytes_appended += batch_bytes;
  }
  Bump(counters_.appends);
  Bump(counters_.records, lsns.size());
  Bump(counters_.bytes_appended, batch_bytes);
  // Readers blocked in AwaitNext wake up and re-check visibility.
  cv_.notify_all();
  {
    // The appender observes the ack latency; records become visible to tag
    // readers only after the additional delivery latency (§2.3), so the gap
    // between this child span and the parent's end is exactly the modeled
    // ack round trip the protocols pay per sequential append.
    TRACE_SPAN("log", "append_ack_wait");
    clock_->SleepFor(latency.ack + injected_ack_delay);
  }
  return lsns;
}

Lsn SharedLog::FindFirstLocked(std::string_view tag, Lsn from) const {
  auto it = tag_index_.find(std::string(tag));
  if (it == tag_index_.end()) {
    return kInvalidLsn;
  }
  const std::vector<Lsn>& lsns = it->second;
  Lsn lower = std::max(from, base_lsn_);
  auto pos = std::lower_bound(lsns.begin(), lsns.end(), lower);
  if (pos == lsns.end()) {
    return kInvalidLsn;
  }
  return *pos;
}

const SharedLog::InternalRecord* SharedLog::SlotLocked(Lsn lsn) const {
  if (lsn < base_lsn_ || lsn >= next_lsn_) {
    return nullptr;
  }
  return &records_[lsn - base_lsn_];
}

// Caller holds mu_. Serves (and clears) a fault-injected pending duplicate
// for `tag`: the record was already returned once, and is handed out again
// as if the consumer had re-fetched after a lost ack. Only a reader whose
// cursor has passed the record gets it — redelivery duplicates data, it must
// never let a reader skip ahead. Returns nullptr when no duplicate is due or
// the record has since been trimmed.
const SharedLog::InternalRecord* SharedLog::TakePendingDuplicateLocked(
    std::string_view tag, Lsn from_lsn) {
  auto it = dup_pending_.find(std::string(tag));
  if (it == dup_pending_.end() || it->second >= from_lsn) {
    return nullptr;
  }
  Lsn lsn = it->second;
  dup_pending_.erase(it);
  return SlotLocked(lsn);
}

// Caller holds mu_. Fault probe on a successful tag read; a kDuplicate
// action arms redelivery of `lsn` on the next read of `tag`.
void SharedLog::MaybeArmDuplicateLocked(std::string_view tag, Lsn lsn) {
  if (auto f = IMPELLER_FAULT_PROBE("log/read", tag, lsn);
      f.kind == fault::FaultKind::kDuplicate) {
    dup_pending_[std::string(tag)] = lsn;
  }
}

Result<LogEntry> SharedLog::ReadNext(std::string_view tag, Lsn from_lsn) {
  TRACE_SPAN("log", "read_next");
  Bump(counters_.reads);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.reads++;
  if (const InternalRecord* dup = TakePendingDuplicateLocked(tag, from_lsn)) {
    return dup->entry;
  }
  if (auto it = tag_trimmed_high_.find(std::string(tag));
      it != tag_trimmed_high_.end() && from_lsn <= it->second) {
    // The cursor provably points at a record of this tag that was garbage
    // collected; surface that instead of silently skipping data.
    return TrimmedError("cursor " + std::to_string(from_lsn) +
                        " at/below trimmed tag record " +
                        std::to_string(it->second));
  }
  Lsn lsn = FindFirstLocked(tag, from_lsn);
  if (lsn == kInvalidLsn) {
    return NotFoundError("no record with tag");
  }
  const InternalRecord* rec = SlotLocked(lsn);
  assert(rec != nullptr);
  if (rec->entry.visible_time > clock_->Now()) {
    return NotFoundError("next record not yet visible");
  }
  MaybeArmDuplicateLocked(tag, lsn);
  return rec->entry;
}

Result<LogEntry> SharedLog::AwaitNext(std::string_view tag, Lsn from_lsn,
                                      DurationNs timeout) {
  TRACE_SPAN("log", "await_next");
  Bump(counters_.reads);
  TimeNs deadline = clock_->Now() + timeout;
  std::unique_lock<std::mutex> lock(mu_);
  stats_.reads++;
  while (true) {
    if (const InternalRecord* dup =
            TakePendingDuplicateLocked(tag, from_lsn)) {
      return dup->entry;
    }
    if (auto it = tag_trimmed_high_.find(std::string(tag));
        it != tag_trimmed_high_.end() && from_lsn <= it->second) {
      return TrimmedError("cursor at/below trimmed tag record");
    }
    Lsn lsn = FindFirstLocked(tag, from_lsn);
    TimeNs now = clock_->Now();
    if (lsn != kInvalidLsn) {
      const InternalRecord* rec = SlotLocked(lsn);
      assert(rec != nullptr);
      if (rec->entry.visible_time <= now) {
        MaybeArmDuplicateLocked(tag, lsn);
        return rec->entry;
      }
      if (now >= deadline) {
        return DeadlineExceededError("AwaitNext timed out");
      }
      DurationNs wait = std::min(rec->entry.visible_time, deadline) - now;
      cv_.wait_for(lock, std::chrono::nanoseconds(wait));
      continue;
    }
    if (now >= deadline) {
      return DeadlineExceededError("AwaitNext timed out");
    }
    cv_.wait_for(lock, std::chrono::nanoseconds(deadline - now));
  }
}

Result<LogEntry> SharedLog::ReadLast(std::string_view tag) {
  TRACE_SPAN("log", "read_last");
  Bump(counters_.reads);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.reads++;
  auto it = tag_index_.find(std::string(tag));
  if (it == tag_index_.end() || it->second.empty()) {
    return NotFoundError("no record with tag");
  }
  TimeNs now = clock_->Now();
  const std::vector<Lsn>& lsns = it->second;
  for (auto rit = lsns.rbegin(); rit != lsns.rend(); ++rit) {
    const InternalRecord* rec = SlotLocked(*rit);
    if (rec == nullptr) {
      break;  // remaining entries are below the trim point
    }
    if (rec->durable_time <= now) {
      return rec->entry;
    }
  }
  return NotFoundError("no durable record with tag");
}

Result<LogEntry> SharedLog::ReadAt(Lsn lsn) {
  TRACE_SPAN("log", "read_at");
  Bump(counters_.reads);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.reads++;
  if (lsn < base_lsn_) {
    return TrimmedError("record trimmed");
  }
  const InternalRecord* rec = SlotLocked(lsn);
  if (rec == nullptr) {
    return OutOfRangeError("lsn beyond tail");
  }
  if (rec->durable_time > clock_->Now()) {
    return NotFoundError("record not yet durable");
  }
  return rec->entry;
}

Lsn SharedLog::TailLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Status SharedLog::Trim(Lsn new_trim_point) {
  TRACE_SPAN("log", "trim");
  std::lock_guard<std::mutex> lock(mu_);
  if (new_trim_point > next_lsn_) {
    return OutOfRangeError("trim point beyond tail");
  }
  if (new_trim_point <= base_lsn_) {
    return OkStatus();  // idempotent / stale trim
  }
  uint64_t dropped = new_trim_point - base_lsn_;
  Bump(counters_.trims);
  Bump(counters_.records_trimmed, dropped);
  records_.erase(records_.begin(), records_.begin() + dropped);
  base_lsn_ = new_trim_point;
  for (auto& [tag, lsns] : tag_index_) {
    auto pos = std::lower_bound(lsns.begin(), lsns.end(), base_lsn_);
    if (pos != lsns.begin()) {
      tag_trimmed_high_[tag] = *(pos - 1);
      lsns.erase(lsns.begin(), pos);
    }
  }
  stats_.trims++;
  stats_.records_trimmed += dropped;
  // Readers blocked in AwaitNext below the new trim point must observe
  // kTrimmed now, not after their visibility/deadline wait expires.
  cv_.notify_all();
  return OkStatus();
}

Lsn SharedLog::TrimPoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_lsn_;
}

void SharedLog::MetaPut(std::string_view key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  metadata_[std::string(key)] = value;
}

Result<uint64_t> SharedLog::MetaGet(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metadata_.find(std::string(key));
  if (it == metadata_.end()) {
    return NotFoundError("no metadata key " + std::string(key));
  }
  return it->second;
}

uint64_t SharedLog::MetaIncrement(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  return ++metadata_[std::string(key)];
}

bool SharedLog::MetaCas(std::string_view key, uint64_t expected,
                        uint64_t desired) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& slot = metadata_[std::string(key)];
  if (slot != expected) {
    return false;
  }
  slot = desired;
  return true;
}

SharedLogStats SharedLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace impeller
