#include "src/sharedlog/shared_log.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace impeller {

namespace {

inline void Bump(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Add(n);
  }
}

}  // namespace

SharedLog::SharedLog(SharedLogOptions options)
    : options_(std::move(options)),
      metalog_(options_.name,
               options_.clock != nullptr ? options_.clock
                                         : MonotonicClock::Get()) {
  if (options_.clock == nullptr) {
    options_.clock = MonotonicClock::Get();
  }
  clock_ = options_.clock;
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<ZeroLatencyModel>();
  }
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<LogShard>(s, options_.name,
                                                 options_.latency, clock_));
  }
  std::vector<LogShard*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) {
    raw.push_back(shard.get());
  }
  metalog_.AttachShards(std::move(raw));
  if (options_.metrics != nullptr) {
    counters_.appends = options_.metrics->GetCounter("log/appends");
    counters_.records = options_.metrics->GetCounter("log/records");
    counters_.fenced_appends =
        options_.metrics->GetCounter("log/fenced_appends");
    counters_.reads = options_.metrics->GetCounter("log/reads");
    counters_.trims = options_.metrics->GetCounter("log/trims");
    counters_.bytes_appended =
        options_.metrics->GetCounter("log/bytes_appended");
    counters_.records_trimmed =
        options_.metrics->GetCounter("log/records_trimmed");
    if (shards_.size() > 1) {
      counters_.cuts = options_.metrics->GetCounter("log/cuts");
      for (uint32_t s = 0; s < shards_.size(); ++s) {
        counters_.shard_records.push_back(options_.metrics->GetCounter(
            "log/shard" + std::to_string(s) + "/records"));
      }
    }
  }
}

Result<Lsn> SharedLog::Append(AppendRequest req) {
  std::vector<AppendRequest> batch;
  batch.push_back(std::move(req));
  auto lsns = AppendBatchInternal(batch);
  if (!lsns.ok()) {
    return lsns.status();
  }
  return (*lsns)[0];
}

Result<std::vector<Lsn>> SharedLog::AppendBatch(
    std::vector<AppendRequest>& reqs) {
  if (reqs.empty()) {
    return InvalidArgumentError("empty append batch");
  }
  return AppendBatchInternal(reqs);
}

uint32_t SharedLog::ShardOfTag(std::string_view tag) const {
  if (shards_.size() == 1) {
    return 0;
  }
  return PartitionFor(Fnv1a(tag), static_cast<uint32_t>(shards_.size()));
}

uint32_t SharedLog::PlaceShard(const std::vector<AppendRequest>& reqs) {
  if (shards_.size() == 1) {
    return 0;
  }
  // The whole batch lands on one shard so that admission (and therefore the
  // batch's LSN range) stays atomic and contiguous. Tag-aware placement:
  // all batches of a substream hit the same shard, keeping that substream's
  // ordering on a single sequencer.
  for (const auto& r : reqs) {
    if (!r.tags.empty()) {
      return ShardOfTag(r.tags[0]);
    }
  }
  return static_cast<uint32_t>(rr_next_.fetch_add(1) % shards_.size());
}

Result<std::vector<Lsn>> SharedLog::AppendBatchInternal(
    std::vector<AppendRequest>& reqs) {
  TRACE_SPAN("log", "append");
  size_t batch_bytes = 0;
  for (const auto& r : reqs) {
    batch_bytes += r.payload.size();
  }
  uint32_t shard = PlaceShard(reqs);
  auto admitted = shards_[shard]->Admit(reqs, batch_bytes, meta_);
  if (!admitted.ok()) {
    if (admitted.status().code() == StatusCode::kFenced) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.fenced_appends += reqs.size();
      Bump(counters_.fenced_appends, reqs.size());
    }
    return admitted.status();
  }
  auto lsns = metalog_.Sequence(shard, admitted->first_local,
                                admitted->count);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.appends += 1;
    stats_.records += admitted->count;
    stats_.bytes_appended += batch_bytes;
  }
  Bump(counters_.appends);
  Bump(counters_.records, admitted->count);
  Bump(counters_.bytes_appended, batch_bytes);
  if (shard < counters_.shard_records.size()) {
    Bump(counters_.shard_records[shard], admitted->count);
  }
  {
    // The appender observes the ack latency; records become visible to tag
    // readers only after the additional delivery latency (§2.3), so the gap
    // between this child span and the parent's end is exactly the modeled
    // ack round trip the protocols pay per sequential append.
    TRACE_SPAN("log", "append_ack_wait");
    TimeNs wake = admitted->ack_done + admitted->injected_ack_delay;
    TimeNs now = clock_->Now();
    if (wake > now) {
      clock_->SleepFor(wake - now);
    }
  }
  return lsns;
}

Result<LogEntry> SharedLog::ReadNext(std::string_view tag, Lsn from_lsn) {
  TRACE_SPAN("log", "read_next");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadNext(tag, from_lsn);
}

Result<LogEntry> SharedLog::AwaitNext(std::string_view tag, Lsn from_lsn,
                                      DurationNs timeout) {
  TRACE_SPAN("log", "await_next");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.AwaitNext(tag, from_lsn, timeout);
}

Result<LogEntry> SharedLog::ReadLast(std::string_view tag) {
  TRACE_SPAN("log", "read_last");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadLast(tag);
}

Result<LogEntry> SharedLog::ReadAt(Lsn lsn) {
  TRACE_SPAN("log", "read_at");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadAt(lsn);
}

Lsn SharedLog::TailLsn() const { return metalog_.TailLsn(); }

Status SharedLog::Trim(Lsn new_trim_point) {
  TRACE_SPAN("log", "trim");
  uint64_t dropped = 0;
  Status st = metalog_.Trim(new_trim_point, &dropped);
  if (!st.ok() || dropped == 0) {
    return st;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.trims++;
    stats_.records_trimmed += dropped;
  }
  Bump(counters_.trims);
  Bump(counters_.records_trimmed, dropped);
  return OkStatus();
}

Lsn SharedLog::TrimPoint() const { return metalog_.TrimPoint(); }

void SharedLog::Close() { metalog_.Close(); }

void SharedLog::MetaPut(std::string_view key, uint64_t value) {
  meta_.Put(std::string(key), value);
}

Result<uint64_t> SharedLog::MetaGet(std::string_view key) const {
  return meta_.Get(std::string(key));
}

uint64_t SharedLog::MetaIncrement(std::string_view key) {
  return meta_.Increment(std::string(key));
}

bool SharedLog::MetaCas(std::string_view key, uint64_t expected,
                        uint64_t desired) {
  return meta_.Cas(std::string(key), expected, desired);
}

SharedLogStats SharedLog::stats() const {
  SharedLogStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.cuts = metalog_.cuts();
  return out;
}

}  // namespace impeller
