#include "src/sharedlog/shared_log.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

namespace {

inline void Bump(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Add(n);
  }
}

}  // namespace

SharedLog::SharedLog(SharedLogOptions options)
    : options_(std::move(options)),
      metalog_(options_.name,
               options_.clock != nullptr ? options_.clock
                                         : MonotonicClock::Get()) {
  if (options_.clock == nullptr) {
    options_.clock = MonotonicClock::Get();
  }
  clock_ = options_.clock;
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<ZeroLatencyModel>();
  }
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  for (uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<LogShard>(s, options_.name,
                                                 options_.latency, clock_));
  }
  std::vector<LogShard*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) {
    raw.push_back(shard.get());
  }
  metalog_.AttachShards(std::move(raw));
  detector_ = std::make_unique<ShardFailureDetector>(
      options_.failover, options_.shards, clock_->Now());
  live_.reserve(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    live_.push_back(s);
  }
  if (options_.metrics != nullptr) {
    counters_.appends = options_.metrics->GetCounter("log/appends");
    counters_.records = options_.metrics->GetCounter("log/records");
    counters_.fenced_appends =
        options_.metrics->GetCounter("log/fenced_appends");
    counters_.sealed_appends =
        options_.metrics->GetCounter("log/sealed_appends");
    counters_.reads = options_.metrics->GetCounter("log/reads");
    counters_.trims = options_.metrics->GetCounter("log/trims");
    counters_.bytes_appended =
        options_.metrics->GetCounter("log/bytes_appended");
    counters_.records_trimmed =
        options_.metrics->GetCounter("log/records_trimmed");
    counters_.seals = options_.metrics->GetCounter("log/seals");
    counters_.rejoins = options_.metrics->GetCounter("log/rejoins");
    counters_.epoch_bumps = options_.metrics->GetCounter("log/epoch_bumps");
    counters_.seal_latency = options_.metrics->Histogram("log/seal_latency");
    if (shards_.size() > 1) {
      counters_.cuts = options_.metrics->GetCounter("log/cuts");
      for (uint32_t s = 0; s < shards_.size(); ++s) {
        counters_.shard_records.push_back(options_.metrics->GetCounter(
            "log/shard" + std::to_string(s) + "/records"));
      }
    }
  }
}

Result<Lsn> SharedLog::Append(AppendRequest req) {
  std::vector<AppendRequest> batch;
  batch.push_back(std::move(req));
  auto lsns = AppendBatchInternal(batch);
  if (!lsns.ok()) {
    return lsns.status();
  }
  return (*lsns)[0];
}

Result<std::vector<Lsn>> SharedLog::AppendBatch(
    std::vector<AppendRequest>& reqs) {
  if (reqs.empty()) {
    return InvalidArgumentError("empty append batch");
  }
  return AppendBatchInternal(reqs);
}

uint32_t SharedLog::ShardOfTag(std::string_view tag) const {
  // (tag, epoch)-keyed placement: the hash picks a slot in the *live* shard
  // list, which changes only at epoch bumps. At epoch 0 every shard is live
  // and this is exactly the all-shards FNV placement.
  std::lock_guard<std::mutex> lock(placement_mu_);
  if (live_.size() == 1) {
    return live_[0];
  }
  return live_[PartitionFor(Fnv1a(tag), static_cast<uint32_t>(live_.size()))];
}

uint32_t SharedLog::PlaceShard(const std::vector<AppendRequest>& reqs) {
  // The whole batch lands on one shard so that admission (and therefore the
  // batch's LSN range) stays atomic and contiguous. Tag-aware placement:
  // all batches of a substream hit the same shard, keeping that substream's
  // ordering on a single sequencer (until an epoch bump moves the tag).
  for (const auto& r : reqs) {
    if (!r.tags.empty()) {
      return ShardOfTag(r.tags[0]);
    }
  }
  std::lock_guard<std::mutex> lock(placement_mu_);
  return live_[rr_next_.fetch_add(1) % live_.size()];
}

Result<std::vector<Lsn>> SharedLog::AppendBatchInternal(
    std::vector<AppendRequest>& reqs) {
  TRACE_SPAN("log", "append");
  size_t batch_bytes = 0;
  for (const auto& r : reqs) {
    batch_bytes += r.payload.size();
  }
  // Placement is (tag, epoch)-keyed, so each iteration re-reads the live
  // view: a batch bounced off a sealed shard (kSealed straggler) or a batch
  // whose failure pushed the detector over its threshold re-places at the
  // bumped epoch. At most one re-placement per epoch change, and only
  // shards-1 seals can ever happen, so the loop is bounded.
  Result<LogShard::AdmitOutcome> admitted =
      UnavailableError("no live shard admitted the batch");
  uint32_t shard = 0;
  for (uint32_t placement = 0; placement <= shards_.size(); ++placement) {
    shard = PlaceShard(reqs);
    admitted = shards_[shard]->Admit(reqs, batch_bytes, meta_);
    if (admitted.ok()) {
      detector_->RecordSuccess(shard, clock_->Now());
      break;
    }
    const Status& st = admitted.status();
    if (st.code() == StatusCode::kSealed) {
      // Straggler: the shard sealed between placement and admission. Join
      // the (possibly still in-flight) seal so the epoch bump is visible,
      // then re-place. The caller never sees the reconfiguration.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.sealed_appends += reqs.size();
      }
      Bump(counters_.sealed_appends, reqs.size());
      TRACE_INSTANT("log", "append_replaced");
      (void)SealShard(shard);
      continue;
    }
    if (st.code() == StatusCode::kUnavailable) {
      if (options_.failover.auto_seal &&
          detector_->RecordFailure(shard, clock_->Now())) {
        if (Status seal = SealShard(shard); seal.ok()) {
          // The suspect shard is sealed out; re-place immediately instead
          // of burning the caller's retry budget on a dead sequencer.
          continue;
        }
      }
      return st;
    }
    if (st.code() == StatusCode::kFenced) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.fenced_appends += reqs.size();
      Bump(counters_.fenced_appends, reqs.size());
    }
    return st;
  }
  if (!admitted.ok()) {
    return admitted.status();
  }
  auto lsns = metalog_.Sequence(shard, admitted->first_local,
                                admitted->count);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.appends += 1;
    stats_.records += admitted->count;
    stats_.bytes_appended += batch_bytes;
  }
  Bump(counters_.appends);
  Bump(counters_.records, admitted->count);
  Bump(counters_.bytes_appended, batch_bytes);
  if (shard < counters_.shard_records.size()) {
    Bump(counters_.shard_records[shard], admitted->count);
  }
  {
    // The appender observes the ack latency; records become visible to tag
    // readers only after the additional delivery latency (§2.3), so the gap
    // between this child span and the parent's end is exactly the modeled
    // ack round trip the protocols pay per sequential append.
    TRACE_SPAN("log", "append_ack_wait");
    TimeNs wake = admitted->ack_done + admitted->injected_ack_delay;
    TimeNs now = clock_->Now();
    if (wake > now) {
      clock_->SleepFor(wake - now);
    }
  }
  return lsns;
}

Result<LogEntry> SharedLog::ReadNext(std::string_view tag, Lsn from_lsn) {
  TRACE_SPAN("log", "read_next");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadNext(tag, from_lsn);
}

Result<LogEntry> SharedLog::AwaitNext(std::string_view tag, Lsn from_lsn,
                                      DurationNs timeout) {
  TRACE_SPAN("log", "await_next");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.AwaitNext(tag, from_lsn, timeout);
}

Result<LogEntry> SharedLog::ReadLast(std::string_view tag) {
  TRACE_SPAN("log", "read_last");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadLast(tag);
}

Result<LogEntry> SharedLog::ReadAt(Lsn lsn) {
  TRACE_SPAN("log", "read_at");
  Bump(counters_.reads);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.reads++;
  }
  return metalog_.ReadAt(lsn);
}

Lsn SharedLog::TailLsn() const { return metalog_.TailLsn(); }

Status SharedLog::Trim(Lsn new_trim_point) {
  TRACE_SPAN("log", "trim");
  uint64_t dropped = 0;
  Status st = metalog_.Trim(new_trim_point, &dropped);
  if (!st.ok() || dropped == 0) {
    return st;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.trims++;
    stats_.records_trimmed += dropped;
  }
  Bump(counters_.trims);
  Bump(counters_.records_trimmed, dropped);
  return OkStatus();
}

Lsn SharedLog::TrimPoint() const { return metalog_.TrimPoint(); }

void SharedLog::Close() { metalog_.Close(); }

void SharedLog::MetaPut(std::string_view key, uint64_t value) {
  meta_.Put(std::string(key), value);
}

Result<uint64_t> SharedLog::MetaGet(std::string_view key) const {
  return meta_.Get(std::string(key));
}

uint64_t SharedLog::MetaIncrement(std::string_view key) {
  return meta_.Increment(std::string(key));
}

bool SharedLog::MetaCas(std::string_view key, uint64_t expected,
                        uint64_t desired) {
  return meta_.Cas(std::string(key), expected, desired);
}

Status SharedLog::SealShard(uint32_t shard) {
  if (shard >= shards_.size()) {
    return InvalidArgumentError("no shard " + std::to_string(shard));
  }
  TRACE_SPAN("log", "seal_shard");
  TimeNs start = clock_->Now();
  // One reconfiguration at a time. A straggler that raced an in-flight seal
  // blocks here until the epoch bump is visible, then returns OK below.
  std::lock_guard<std::mutex> lock(failover_mu_);
  if (shards_[shard]->sealed()) {
    return OkStatus();
  }
  uint64_t next_epoch;
  {
    std::lock_guard<std::mutex> placement(placement_mu_);
    if (live_.size() <= 1) {
      return UnavailableError("refusing to seal shard " +
                              std::to_string(shard) +
                              ": it is the last live shard");
    }
    next_epoch = epoch_ + 1;
  }
  // Step 1: fence the sequencer. From here stragglers bounce with kSealed —
  // the zombie cannot extend the log past the final cut.
  uint64_t final_local = shards_[shard]->Seal();
  // An injected stall widens the window between the fence and the epoch
  // bump; the failover tests use it to hit stragglers deterministically.
  if (auto f = IMPELLER_FAULT_PROBE("log/seal", options_.name, shard);
      f.kind == fault::FaultKind::kDelay) {
    clock_->SleepFor(f.delay);
  }
  // Step 2: the metalog finalizes the shard's last cut. Everything admitted
  // before the fence gets its dense global LSN now, so readers merge across
  // the epoch boundary with no gaps and no reordering.
  Lsn boundary = metalog_.SealCut();
  // Step 3: durable seal record in the global order — reconfigurations are
  // part of the log's replayable history.
  AppendControlRecord("seal", shard, boundary, final_local, next_epoch);
  // Step 4: atomic epoch bump; placement flips to the survivors.
  {
    std::lock_guard<std::mutex> placement(placement_mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), shard), live_.end());
    epoch_ = next_epoch;
  }
  detector_->Reset(shard, clock_->Now());
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.seals++;
  }
  Bump(counters_.seals);
  Bump(counters_.epoch_bumps);
  if (counters_.seal_latency != nullptr) {
    counters_.seal_latency->Record(clock_->Now() - start);
  }
  TRACE_INSTANT("log", "epoch_bump");
  LOG_WARN << options_.name << ": sealed shard " << shard << " at boundary "
           << boundary << " (final local offset " << final_local
           << "), placement epoch " << next_epoch;
  return OkStatus();
}

Status SharedLog::RejoinShard(uint32_t shard) {
  if (shard >= shards_.size()) {
    return InvalidArgumentError("no shard " + std::to_string(shard));
  }
  TRACE_SPAN("log", "rejoin_shard");
  std::lock_guard<std::mutex> lock(failover_mu_);
  if (!shards_[shard]->sealed()) {
    return InvalidArgumentError("shard " + std::to_string(shard) +
                                " is not sealed");
  }
  uint64_t next_epoch;
  {
    std::lock_guard<std::mutex> placement(placement_mu_);
    next_epoch = epoch_ + 1;
  }
  // Reopen the sequencer first: the rejoin record is placed on the *old*
  // live view (this shard only becomes a placement target at the bump).
  shards_[shard]->Unseal();
  AppendControlRecord("rejoin", shard, metalog_.TailLsn(), 0, next_epoch);
  {
    std::lock_guard<std::mutex> placement(placement_mu_);
    live_.push_back(shard);
    std::sort(live_.begin(), live_.end());
    epoch_ = next_epoch;
  }
  detector_->Reset(shard, clock_->Now());
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.rejoins++;
  }
  Bump(counters_.rejoins);
  Bump(counters_.epoch_bumps);
  TRACE_INSTANT("log", "epoch_bump");
  LOG_INFO << options_.name << ": shard " << shard
           << " rejoined at placement epoch " << next_epoch;
  return OkStatus();
}

void SharedLog::AppendControlRecord(const char* kind, uint32_t shard,
                                    Lsn boundary, uint64_t final_local,
                                    uint64_t next_epoch) {
  std::vector<uint32_t> targets;
  {
    std::lock_guard<std::mutex> placement(placement_mu_);
    targets = live_;
  }
  std::vector<AppendRequest> batch(1);
  batch[0].tags = {std::string(kLogSealTag)};
  batch[0].payload = std::string(kind) + " shard=" + std::to_string(shard) +
                     " final_local=" + std::to_string(final_local) +
                     " boundary=" + std::to_string(boundary) +
                     " epoch=" + std::to_string(next_epoch);
  size_t bytes = batch[0].payload.size();
  for (uint32_t target : targets) {
    if (target == shard || shards_[target]->sealed()) {
      continue;  // the shard being sealed is fenced but still in `targets`
    }
    auto admitted = shards_[target]->Admit(batch, bytes, meta_);
    if (!admitted.ok()) {
      continue;  // that shard may be failing too; try the next survivor
    }
    metalog_.Sequence(target, admitted->first_local, admitted->count);
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.appends += 1;
      stats_.records += admitted->count;
      stats_.bytes_appended += bytes;
    }
    Bump(counters_.appends);
    Bump(counters_.records, admitted->count);
    Bump(counters_.bytes_appended, bytes);
    if (target < counters_.shard_records.size()) {
      Bump(counters_.shard_records[target], admitted->count);
    }
    // The record must be durable before the epoch bump publishes the
    // reconfiguration, exactly like a regular append's ack wait.
    TimeNs wake = admitted->ack_done + admitted->injected_ack_delay;
    TimeNs now = clock_->Now();
    if (wake > now) {
      clock_->SleepFor(wake - now);
    }
    return;
  }
  LOG_ERROR << options_.name << ": could not durably log " << kind
            << " record for shard " << shard
            << " on any live shard; proceeding with the epoch bump";
}

bool SharedLog::ShardSealed(uint32_t shard) const {
  return shard < shards_.size() && shards_[shard]->sealed();
}

uint64_t SharedLog::placement_epoch() const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  return epoch_;
}

uint32_t SharedLog::num_live_shards() const {
  std::lock_guard<std::mutex> lock(placement_mu_);
  return static_cast<uint32_t>(live_.size());
}

SharedLogStats SharedLog::stats() const {
  SharedLogStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.cuts = metalog_.cuts();
  out.placement_epoch = placement_epoch();
  return out;
}

}  // namespace impeller
