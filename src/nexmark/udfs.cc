#include "src/nexmark/udfs.h"

#include <cmath>
#include <utility>
#include <vector>

#include "src/common/serde.h"
#include "src/nexmark/events.h"

namespace impeller {
namespace nexmark {

namespace {

// --- small codecs shared by the aggregates ---

std::string EncodeU64(uint64_t v) {
  BinaryWriter w(10);
  w.WriteVarU64(v);
  return w.Take();
}

uint64_t DecodeU64(std::string_view raw, uint64_t fallback = 0) {
  BinaryReader r(raw);
  auto v = r.ReadVarU64();
  return v.ok() ? *v : fallback;
}

// (a, b) pair of varints.
std::string EncodeU64Pair(uint64_t a, uint64_t b) {
  BinaryWriter w(20);
  w.WriteVarU64(a);
  w.WriteVarU64(b);
  return w.Take();
}

bool DecodeU64Pair(std::string_view raw, uint64_t* a, uint64_t* b) {
  BinaryReader r(raw);
  auto first = r.ReadVarU64();
  auto second = r.ReadVarU64();
  if (!first.ok() || !second.ok()) {
    return false;
  }
  *a = *first;
  *b = *second;
  return true;
}

// WindowAggregateOperator emits value = varint(window start) + string(acc).
// The view variant aliases `raw`; valid while the input record lives.
bool DecodeWindowResult(std::string_view raw, TimeNs* start,
                        std::string_view* acc) {
  BinaryReader r(raw);
  auto s = r.ReadVarI64();
  auto a = r.ReadStringView();
  if (!s.ok() || !a.ok()) {
    return false;
  }
  *start = *s;
  *acc = *a;
  return true;
}

// Q4/Q6 join output: (auction id, category, seller, price) — enough for
// both the category average (Q4) and the seller average (Q6).
std::string EncodeWin(uint64_t auction, uint64_t category, uint64_t seller,
                      int64_t price) {
  BinaryWriter w(40);
  w.WriteVarU64(auction);
  w.WriteVarU64(category);
  w.WriteVarU64(seller);
  w.WriteVarI64(price);
  return w.Take();
}

struct Win {
  uint64_t auction = 0;
  uint64_t category = 0;
  uint64_t seller = 0;
  int64_t price = 0;
};

bool DecodeWin(std::string_view raw, Win* win) {
  BinaryReader r(raw);
  auto a = r.ReadVarU64();
  auto c = r.ReadVarU64();
  auto s = r.ReadVarU64();
  auto p = r.ReadVarI64();
  if (!a.ok() || !c.ok() || !s.ok() || !p.ok()) {
    return false;
  }
  win->auction = *a;
  win->category = *c;
  win->seller = *s;
  win->price = *p;
  return true;
}

}  // namespace

// --- predicates ---

bool NonEmptyValue(const StreamRecord& r) { return !r.value.empty(); }

bool BidOnSampledAuction(const StreamRecord& r) {
  auto bid = DecodeBidView(r.value);
  return bid.ok() && (*bid).auction % 123 == 0;
}

bool AuctionInCategory10(const StreamRecord& r) {
  auto a = DecodeAuctionView(r.value);
  return a.ok() && (*a).category == 10;
}

bool PersonInOrIdCa(const StreamRecord& r) {
  auto p = DecodePersonView(r.value);
  if (!p.ok()) {
    return false;
  }
  std::string_view s = (*p).state;
  return s == "OR" || s == "ID" || s == "CA";
}

// --- maps ---

StreamRecord ConvertUsdToEur(StreamRecord r) {
  auto bid = DecodeBidView(r.value);
  if (bid.ok()) {
    int64_t eur = static_cast<int64_t>(
        std::llround(static_cast<double>(bid->price) * 0.908));
    // Re-encode into thread-local scratch (the view aliases r.value, so the
    // output cannot be built in place), then swap into the record reusing
    // its capacity. Field order matches EncodeBid byte for byte.
    thread_local std::string scratch;
    scratch.clear();
    BinaryWriter w(&scratch);
    w.WriteVarU64(bid->auction);
    w.WriteVarU64(bid->bidder);
    w.WriteVarI64(eur);
    w.WriteString(bid->channel);
    w.WriteString(bid->url);
    w.WriteVarI64(bid->date_time);
    w.WriteString(bid->extra);
    r.value.assign(scratch);
  }
  return r;
}

StreamRecord PackQ5WindowCount(StreamRecord r) {
  TimeNs start = 0;
  std::string_view acc;
  if (DecodeWindowResult(r.value, &start, &acc)) {
    BinaryWriter w(32);
    w.WriteVarI64(start);
    w.WriteString(r.key);  // auction id
    w.WriteVarU64(DecodeU64(acc));
    r.value = w.Take();
  }
  return r;
}

// --- key extractors ---

std::string AuctionSellerKey(const StreamRecord& r) {
  auto a = DecodeAuctionView(r.value);
  return a.ok() ? std::to_string((*a).seller) : std::string();
}

std::string AuctionIdKey(const StreamRecord& r) {
  auto a = DecodeAuctionView(r.value);
  return a.ok() ? std::to_string((*a).id) : std::string();
}

std::string PersonIdKey(const StreamRecord& r) {
  auto p = DecodePersonView(r.value);
  return p.ok() ? std::to_string((*p).id) : std::string();
}

std::string BidAuctionKey(const StreamRecord& r) {
  auto b = DecodeBidView(r.value);
  return b.ok() ? std::to_string((*b).auction) : std::string();
}

std::string JoinedRowStateKey(const StreamRecord& r) {
  BinaryReader reader(r.value);
  auto name = reader.ReadStringView();
  auto city = reader.ReadStringView();
  auto state = reader.ReadStringView();
  (void)name;
  (void)city;
  return state.ok() ? std::string(*state) : std::string("?");
}

std::string WinCategoryKey(const StreamRecord& r) {
  Win win;
  return DecodeWin(r.value, &win) ? std::to_string(win.category)
                                  : std::string("?");
}

std::string WinSellerKey(const StreamRecord& r) {
  Win win;
  return DecodeWin(r.value, &win) ? std::to_string(win.seller)
                                  : std::string("?");
}

std::string WinAuctionKey(const StreamRecord& r) {
  Win win;
  return DecodeWin(r.value, &win) ? std::to_string(win.auction)
                                  : std::string("?");
}

std::string Q5WindowStartKey(const StreamRecord& r) {
  BinaryReader reader(r.value);
  auto start = reader.ReadVarI64();
  return start.ok() ? std::to_string(*start) : std::string("?");
}

std::string WindowStartKey(const StreamRecord& r) {
  TimeNs start = 0;
  std::string_view acc;
  if (DecodeWindowResult(r.value, &start, &acc)) {
    return std::to_string(start);
  }
  return std::string("?");
}

std::string RecordKey(const StreamRecord& r) { return r.key; }

// --- joins ---

std::string JoinAuctionWithPerson(std::string_view auction_raw,
                                  std::string_view person_raw) {
  auto a = DecodeAuctionView(auction_raw);
  auto p = DecodePersonView(person_raw);
  BinaryWriter w(96);
  if (a.ok() && p.ok()) {
    w.WriteString(p->name);
    w.WriteString(p->city);
    w.WriteString(p->state);
    w.WriteVarU64(a->id);
  }
  return w.Take();
}

std::string JoinBidWithAuction(std::string_view bid_raw,
                               std::string_view auction_raw) {
  auto b = DecodeBidView(bid_raw);
  auto a = DecodeAuctionView(auction_raw);
  if (!b.ok() || !a.ok()) {
    return std::string();
  }
  return EncodeWin(a->id, a->category, a->seller, b->price);
}

std::string JoinPersonWithAuction(std::string_view person_raw,
                                  std::string_view auction_raw) {
  auto p = DecodePersonView(person_raw);
  auto a = DecodeAuctionView(auction_raw);
  BinaryWriter w(48);
  if (p.ok() && a.ok()) {
    w.WriteVarU64(p->id);
    w.WriteString(p->name);
    w.WriteVarU64(a->id);
  }
  return w.Take();
}

// --- aggregates ---

AggregateFn CountAgg() {
  AggregateFn agg;
  agg.init = [] { return EncodeU64(0); };
  agg.add = [](std::string_view acc, const StreamRecord&) {
    return EncodeU64(DecodeU64(acc) + 1);
  };
  agg.remove = [](std::string_view acc, std::string_view) {
    uint64_t c = DecodeU64(acc);
    return EncodeU64(c > 0 ? c - 1 : 0);
  };
  return agg;
}

// Max-price accumulator over Win values: the accumulator IS the best Win.
AggregateFn MaxWinAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    Win best, candidate;
    bool have_best = !acc.empty() && DecodeWin(acc, &best);
    if (!DecodeWin(r.value, &candidate)) {
      return std::string(acc);
    }
    if (!have_best || candidate.price > best.price) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  return agg;
}

// (sum, count) average with retraction, over Win values.
AggregateFn AvgPriceAgg() {
  AggregateFn agg;
  agg.init = [] { return EncodeU64Pair(0, 0); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    uint64_t sum = 0, count = 0;
    DecodeU64Pair(acc, &sum, &count);
    Win win;
    if (DecodeWin(r.value, &win)) {
      sum += static_cast<uint64_t>(win.price);
      count += 1;
    }
    return EncodeU64Pair(sum, count);
  };
  agg.remove = [](std::string_view acc,
                  std::string_view old_value) -> std::string {
    uint64_t sum = 0, count = 0;
    DecodeU64Pair(acc, &sum, &count);
    Win win;
    if (DecodeWin(old_value, &win) && count > 0) {
      sum -= std::min(sum, static_cast<uint64_t>(win.price));
      count -= 1;
    }
    return EncodeU64Pair(sum, count);
  };
  return agg;
}

// Ring of the last 10 winning prices per seller; an update for an auction
// already in the ring replaces its price. Accumulator: sequence of
// (auction, price) pairs, newest last.
AggregateFn Last10WinsAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    Win win;
    if (!DecodeWin(r.value, &win)) {
      return std::string(acc);
    }
    std::vector<std::pair<uint64_t, int64_t>> ring;
    BinaryReader reader(acc);
    while (!reader.AtEnd()) {
      auto auction = reader.ReadVarU64();
      auto price = reader.ReadVarI64();
      if (!auction.ok() || !price.ok()) {
        break;
      }
      ring.emplace_back(*auction, *price);
    }
    bool replaced = false;
    for (auto& [auction, price] : ring) {
      if (auction == win.auction) {
        price = win.price;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      ring.emplace_back(win.auction, win.price);
      if (ring.size() > 10) {
        ring.erase(ring.begin());
      }
    }
    BinaryWriter w(ring.size() * 12);
    for (const auto& [auction, price] : ring) {
      w.WriteVarU64(auction);
      w.WriteVarI64(price);
    }
    return w.Take();
  };
  return agg;
}

AggregateFn HottestAuctionAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    auto count_of = [](std::string_view raw) -> uint64_t {
      BinaryReader reader(raw);
      auto start = reader.ReadVarI64();
      auto auction = reader.ReadStringView();
      auto count = reader.ReadVarU64();
      if (!start.ok() || !auction.ok() || !count.ok()) {
        return 0;
      }
      return *count;
    };
    if (acc.empty() || count_of(r.value) > count_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  return agg;
}

AggregateFn MaxBidAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    auto price_of = [](std::string_view raw) -> int64_t {
      auto b = DecodeBidView(raw);
      return b.ok() ? (*b).price : -1;
    };
    if (acc.empty() || price_of(r.value) > price_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  return agg;
}

AggregateFn MaxOfWindowMaxAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    auto price_of = [](std::string_view raw) -> int64_t {
      TimeNs start = 0;
      std::string_view bid_raw;
      if (!DecodeWindowResult(raw, &start, &bid_raw)) {
        return -1;
      }
      auto b = DecodeBidView(bid_raw);
      return b.ok() ? (*b).price : -1;
    };
    if (acc.empty() || price_of(r.value) > price_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  return agg;
}

}  // namespace nexmark
}  // namespace impeller
