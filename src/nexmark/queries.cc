#include "src/nexmark/queries.h"

#include <cmath>

#include "src/common/serde.h"
#include "src/nexmark/events.h"

namespace impeller {

namespace {

// --- small codecs shared by the aggregates ---

std::string EncodeU64(uint64_t v) {
  BinaryWriter w(10);
  w.WriteVarU64(v);
  return w.Take();
}

uint64_t DecodeU64(std::string_view raw, uint64_t fallback = 0) {
  BinaryReader r(raw);
  auto v = r.ReadVarU64();
  return v.ok() ? *v : fallback;
}

// (a, b) pair of varints.
std::string EncodeU64Pair(uint64_t a, uint64_t b) {
  BinaryWriter w(20);
  w.WriteVarU64(a);
  w.WriteVarU64(b);
  return w.Take();
}

bool DecodeU64Pair(std::string_view raw, uint64_t* a, uint64_t* b) {
  BinaryReader r(raw);
  auto first = r.ReadVarU64();
  auto second = r.ReadVarU64();
  if (!first.ok() || !second.ok()) {
    return false;
  }
  *a = *first;
  *b = *second;
  return true;
}

// WindowAggregateOperator emits value = varint(window start) + string(acc).
bool DecodeWindowResult(std::string_view raw, TimeNs* start,
                        std::string* acc) {
  BinaryReader r(raw);
  auto s = r.ReadVarI64();
  auto a = r.ReadString();
  if (!s.ok() || !a.ok()) {
    return false;
  }
  *start = *s;
  *acc = std::move(*a);
  return true;
}

AggregateFn CountAgg() {
  AggregateFn agg;
  agg.init = [] { return EncodeU64(0); };
  agg.add = [](std::string_view acc, const StreamRecord&) {
    return EncodeU64(DecodeU64(acc) + 1);
  };
  agg.remove = [](std::string_view acc, std::string_view) {
    uint64_t c = DecodeU64(acc);
    return EncodeU64(c > 0 ? c - 1 : 0);
  };
  return agg;
}

// --- Q1: currency conversion (USD -> EUR), map + filter ---

QueryBuilder MakeBuilder(int number) {
  return QueryBuilder("q" + std::to_string(number));
}

Result<QueryPlan> BuildQ1(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(1);
  qb.Ingress("bids");
  qb.AddStage("convert", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter([](const StreamRecord& r) { return !r.value.empty(); })
      .Map([](StreamRecord r) {
        auto bid = DecodeBid(r.value);
        if (bid.ok()) {
          bid->price = static_cast<int64_t>(
              std::llround(static_cast<double>(bid->price) * 0.908));
          r.value = EncodeBid(*bid);
        }
        return r;
      })
      .Sink("q1");
  return qb.Build();
}

// --- Q2: selection — bids on a sample of auctions ---

Result<QueryPlan> BuildQ2(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(2);
  qb.Ingress("bids");
  qb.AddStage("filter", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter([](const StreamRecord& r) {
        auto bid = DecodeBid(r.value);
        return bid.ok() && (*bid).auction % 123 == 0;
      })
      .Sink("q2");
  return qb.Build();
}

// --- Q3: local item suggestion — table-table join + group-by ---

Result<QueryPlan> BuildQ3(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(3);
  qb.Ingress("auctions").Ingress("persons");
  qb.AddStage("fa", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .Filter([](const StreamRecord& r) {
        auto a = DecodeAuction(r.value);
        return a.ok() && (*a).category == 10;
      })
      .KeyBy([](const StreamRecord& r) {
        auto a = DecodeAuction(r.value);
        return a.ok() ? std::to_string((*a).seller) : std::string();
      })
      .WritesTo("q3.auct");
  qb.AddStage("fp", opt.tasks_per_stage)
      .ReadsFrom({"persons"})
      .Filter([](const StreamRecord& r) {
        auto p = DecodePerson(r.value);
        if (!p.ok()) {
          return false;
        }
        const std::string& s = (*p).state;
        return s == "OR" || s == "ID" || s == "CA";
      })
      .KeyBy([](const StreamRecord& r) {
        auto p = DecodePerson(r.value);
        return p.ok() ? std::to_string((*p).id) : std::string();
      })
      .WritesTo("q3.pers");
  qb.AddStage("join", opt.tasks_per_stage)
      .ReadsFrom({"q3.auct", "q3.pers"})
      .JoinTables("q3j",
                  [](std::string_view auction_raw, std::string_view person_raw)
                      -> std::string {
                    auto a = DecodeAuction(auction_raw);
                    auto p = DecodePerson(person_raw);
                    BinaryWriter w(96);
                    if (a.ok() && p.ok()) {
                      w.WriteString(p->name);
                      w.WriteString(p->city);
                      w.WriteString(p->state);
                      w.WriteVarU64(a->id);
                    }
                    return w.Take();
                  })
      .KeyBy([](const StreamRecord& r) {
        BinaryReader reader(r.value);
        auto name = reader.ReadString();
        auto city = reader.ReadString();
        auto state = reader.ReadString();
        return state.ok() ? *state : std::string("?");
      })
      .WritesTo("q3.bystate");
  qb.AddStage("agg", opt.tasks_per_stage)
      .ReadsFrom({"q3.bystate"})
      .Aggregate("q3cnt", CountAgg())
      .Sink("q3");
  return qb.Build();
}

// --- Q4 helpers: bid x auction winning-bid pipeline shared with Q6 ---

// Join output: (auction id, category, seller, price) — enough for both Q4
// (category average) and Q6 (seller average).
std::string EncodeWin(uint64_t auction, uint64_t category, uint64_t seller,
                      int64_t price) {
  BinaryWriter w(40);
  w.WriteVarU64(auction);
  w.WriteVarU64(category);
  w.WriteVarU64(seller);
  w.WriteVarI64(price);
  return w.Take();
}

struct Win {
  uint64_t auction = 0;
  uint64_t category = 0;
  uint64_t seller = 0;
  int64_t price = 0;
};

bool DecodeWin(std::string_view raw, Win* win) {
  BinaryReader r(raw);
  auto a = r.ReadVarU64();
  auto c = r.ReadVarU64();
  auto s = r.ReadVarU64();
  auto p = r.ReadVarI64();
  if (!a.ok() || !c.ok() || !s.ok() || !p.ok()) {
    return false;
  }
  win->auction = *a;
  win->category = *c;
  win->seller = *s;
  win->price = *p;
  return true;
}

// Max-price accumulator over Win values: the accumulator IS the best Win.
AggregateFn MaxWinAgg() {
  AggregateFn agg;
  agg.init = [] { return std::string(); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    Win best, candidate;
    bool have_best = !acc.empty() && DecodeWin(acc, &best);
    if (!DecodeWin(r.value, &candidate)) {
      return std::string(acc);
    }
    if (!have_best || candidate.price > best.price) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  return agg;
}

// (sum, count) average with retraction, over Win values.
AggregateFn AvgPriceAgg() {
  AggregateFn agg;
  agg.init = [] { return EncodeU64Pair(0, 0); };
  agg.add = [](std::string_view acc, const StreamRecord& r) -> std::string {
    uint64_t sum = 0, count = 0;
    DecodeU64Pair(acc, &sum, &count);
    Win win;
    if (DecodeWin(r.value, &win)) {
      sum += static_cast<uint64_t>(win.price);
      count += 1;
    }
    return EncodeU64Pair(sum, count);
  };
  agg.remove = [](std::string_view acc,
                  std::string_view old_value) -> std::string {
    uint64_t sum = 0, count = 0;
    DecodeU64Pair(acc, &sum, &count);
    Win win;
    if (DecodeWin(old_value, &win) && count > 0) {
      sum -= std::min(sum, static_cast<uint64_t>(win.price));
      count -= 1;
    }
    return EncodeU64Pair(sum, count);
  };
  return agg;
}

// Shared first stages of Q4/Q6: key auctions by id and bids by auction,
// stream-stream join them, keep the running max (winning) bid per auction.
void AddWinningBidStages(QueryBuilder& qb, const NexmarkQueryOptions& opt,
                         const std::string& prefix) {
  qb.Ingress("bids").Ingress("auctions");
  qb.AddStage("ka", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .KeyBy([](const StreamRecord& r) {
        auto a = DecodeAuction(r.value);
        return a.ok() ? std::to_string((*a).id) : std::string();
      })
      .WritesTo(prefix + ".A");
  qb.AddStage("kb", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .KeyBy([](const StreamRecord& r) {
        auto b = DecodeBid(r.value);
        return b.ok() ? std::to_string((*b).auction) : std::string();
      })
      .WritesTo(prefix + ".B");
}

StageBuilder& AddWinBidJoinStage(QueryBuilder& qb,
                                 const NexmarkQueryOptions& opt,
                                 const std::string& prefix) {
  return qb.AddStage("winbid", opt.tasks_per_stage)
      .ReadsFrom({prefix + ".B", prefix + ".A"})
      .JoinStreams(
          prefix + "j", opt.join_window,
          [](std::string_view bid_raw, std::string_view auction_raw)
              -> std::string {
            auto b = DecodeBid(bid_raw);
            auto a = DecodeAuction(auction_raw);
            if (!b.ok() || !a.ok()) {
              return std::string();
            }
            return EncodeWin(a->id, a->category, a->seller, b->price);
          },
          opt.allowed_lateness)
      .Filter([](const StreamRecord& r) { return !r.value.empty(); })
      .Aggregate(prefix + "max", MaxWinAgg());
}

// --- Q4: average price of winning bids per category ---

Result<QueryPlan> BuildQ4(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(4);
  AddWinningBidStages(qb, opt, "q4");
  AddWinBidJoinStage(qb, opt, "q4")
      .KeyBy([](const StreamRecord& r) {
        Win win;
        return DecodeWin(r.value, &win) ? std::to_string(win.category)
                                        : std::string("?");
      })
      .WritesTo("q4.maxed");
  qb.AddStage("avg", opt.tasks_per_stage)
      .ReadsFrom({"q4.maxed"})
      .TableAggregate(
          "q4avg",
          /*group_key=*/[](const StreamRecord& r) { return r.key; },
          AvgPriceAgg(),
          /*row_key=*/
          [](const StreamRecord& r) {
            Win win;
            return DecodeWin(r.value, &win) ? std::to_string(win.auction)
                                            : std::string("?");
          })
      .Sink("q4");
  return qb.Build();
}

// --- Q5: hot items — sliding-window bid counts, per-window max ---

Result<QueryPlan> BuildQ5(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(5);
  qb.Ingress("bids");
  qb.AddStage("kb", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter([](const StreamRecord& r) { return !r.value.empty(); })
      .KeyBy([](const StreamRecord& r) {
        auto b = DecodeBid(r.value);
        return b.ok() ? std::to_string((*b).auction) : std::string();
      })
      .WritesTo("q5.byauction");
  qb.AddStage("win", opt.tasks_per_stage)
      .ReadsFrom({"q5.byauction"})
      // Kafka Streams semantics (§4): windowed counts emit eagerly as
      // suppressed updates, so result event times track fresh input.
      .WindowAggregate("q5w",
                       WindowSpec::Sliding(opt.q5_window, opt.q5_slide),
                       CountAgg(), opt.allowed_lateness,
                       WindowEmitMode::kEagerSuppressed)
      .Map([](StreamRecord r) {
        // (window, count) keyed by auction -> value carrying both so the
        // per-window max can repartition by window start.
        TimeNs start = 0;
        std::string acc;
        if (DecodeWindowResult(r.value, &start, &acc)) {
          BinaryWriter w(32);
          w.WriteVarI64(start);
          w.WriteString(r.key);  // auction id
          w.WriteVarU64(DecodeU64(acc));
          r.value = w.Take();
        }
        return r;
      })
      .KeyBy([](const StreamRecord& r) {
        BinaryReader reader(r.value);
        auto start = reader.ReadVarI64();
        return start.ok() ? std::to_string(*start) : std::string("?");
      })
      .WritesTo("q5.counts");
  AggregateFn hottest;
  hottest.init = [] { return std::string(); };
  hottest.add = [](std::string_view acc,
                   const StreamRecord& r) -> std::string {
    auto count_of = [](std::string_view raw) -> uint64_t {
      BinaryReader reader(raw);
      auto start = reader.ReadVarI64();
      auto auction = reader.ReadString();
      auto count = reader.ReadVarU64();
      if (!start.ok() || !auction.ok() || !count.ok()) {
        return 0;
      }
      return *count;
    };
    if (acc.empty() || count_of(r.value) > count_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  qb.AddStage("max", opt.tasks_per_stage)
      .ReadsFrom({"q5.counts"})
      .Aggregate("q5max", hottest)
      .Sink("q5");
  return qb.Build();
}

// --- Q6: average selling price per seller, last 10 closed auctions ---

Result<QueryPlan> BuildQ6(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(6);
  AddWinningBidStages(qb, opt, "q6");
  AddWinBidJoinStage(qb, opt, "q6")
      .KeyBy([](const StreamRecord& r) {
        Win win;
        return DecodeWin(r.value, &win) ? std::to_string(win.seller)
                                        : std::string("?");
      })
      .WritesTo("q6.wins");
  // Ring of the last 10 winning prices per seller; an update for an auction
  // already in the ring replaces its price. Accumulator: sequence of
  // (auction, price) pairs, newest last.
  AggregateFn last10;
  last10.init = [] { return std::string(); };
  last10.add = [](std::string_view acc,
                  const StreamRecord& r) -> std::string {
    Win win;
    if (!DecodeWin(r.value, &win)) {
      return std::string(acc);
    }
    std::vector<std::pair<uint64_t, int64_t>> ring;
    BinaryReader reader(acc);
    while (!reader.AtEnd()) {
      auto auction = reader.ReadVarU64();
      auto price = reader.ReadVarI64();
      if (!auction.ok() || !price.ok()) {
        break;
      }
      ring.emplace_back(*auction, *price);
    }
    bool replaced = false;
    for (auto& [auction, price] : ring) {
      if (auction == win.auction) {
        price = win.price;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      ring.emplace_back(win.auction, win.price);
      if (ring.size() > 10) {
        ring.erase(ring.begin());
      }
    }
    BinaryWriter w(ring.size() * 12);
    for (const auto& [auction, price] : ring) {
      w.WriteVarU64(auction);
      w.WriteVarI64(price);
    }
    return w.Take();
  };
  qb.AddStage("avg10", opt.tasks_per_stage)
      .ReadsFrom({"q6.wins"})
      .Aggregate("q6ring", last10)
      .Sink("q6");
  return qb.Build();
}

// --- Q7: highest bid per tumbling window ---

Result<QueryPlan> BuildQ7(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(7);
  qb.Ingress("bids");
  // Per-auction window maxima (the partial aggregation / "groupby" of
  // Table 3), then a global per-window max.
  AggregateFn max_bid;
  max_bid.init = [] { return std::string(); };
  max_bid.add = [](std::string_view acc,
                   const StreamRecord& r) -> std::string {
    auto price_of = [](std::string_view raw) -> int64_t {
      auto b = DecodeBid(raw);
      return b.ok() ? (*b).price : -1;
    };
    if (acc.empty() || price_of(r.value) > price_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  qb.AddStage("win", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter([](const StreamRecord& r) { return !r.value.empty(); })
      .WindowAggregate("q7w", WindowSpec::Tumbling(opt.q7_window), max_bid,
                       opt.allowed_lateness,
                       WindowEmitMode::kEagerSuppressed)
      .KeyBy([](const StreamRecord& r) {
        TimeNs start = 0;
        std::string acc;
        if (DecodeWindowResult(r.value, &start, &acc)) {
          return std::to_string(start);
        }
        return std::string("?");
      })
      .WritesTo("q7.partial");
  AggregateFn max_of_max;
  max_of_max.init = [] { return std::string(); };
  max_of_max.add = [](std::string_view acc,
                      const StreamRecord& r) -> std::string {
    auto price_of = [](std::string_view raw) -> int64_t {
      TimeNs start = 0;
      std::string bid_raw;
      if (!DecodeWindowResult(raw, &start, &bid_raw)) {
        return -1;
      }
      auto b = DecodeBid(bid_raw);
      return b.ok() ? (*b).price : -1;
    };
    if (acc.empty() || price_of(r.value) > price_of(acc)) {
      return std::string(r.value);
    }
    return std::string(acc);
  };
  qb.AddStage("max", opt.tasks_per_stage)
      .ReadsFrom({"q7.partial"})
      .Aggregate("q7max", max_of_max)
      .Sink("q7");
  return qb.Build();
}

// --- Q8: monitor new users — person x new-auction windowed join ---

Result<QueryPlan> BuildQ8(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(8);
  qb.Ingress("persons").Ingress("auctions");
  qb.AddStage("kp", opt.tasks_per_stage)
      .ReadsFrom({"persons"})
      .KeyBy([](const StreamRecord& r) {
        auto p = DecodePerson(r.value);
        return p.ok() ? std::to_string((*p).id) : std::string();
      })
      .WritesTo("q8.P");
  qb.AddStage("ka", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .KeyBy([](const StreamRecord& r) {
        auto a = DecodeAuction(r.value);
        return a.ok() ? std::to_string((*a).seller) : std::string();
      })
      .WritesTo("q8.A");
  qb.AddStage("join", opt.tasks_per_stage)
      .ReadsFrom({"q8.P", "q8.A"})
      .JoinStreams(
          "q8j", opt.q8_window,
          [](std::string_view person_raw, std::string_view auction_raw)
              -> std::string {
            auto p = DecodePerson(person_raw);
            auto a = DecodeAuction(auction_raw);
            BinaryWriter w(48);
            if (p.ok() && a.ok()) {
              w.WriteVarU64(p->id);
              w.WriteString(p->name);
              w.WriteVarU64(a->id);
            }
            return w.Take();
          },
          opt.allowed_lateness)
      .Aggregate("q8cnt", CountAgg())
      .Sink("q8");
  return qb.Build();
}

}  // namespace

Result<QueryPlan> BuildNexmarkQuery(int number,
                                    const NexmarkQueryOptions& options) {
  switch (number) {
    case 1:
      return BuildQ1(options);
    case 2:
      return BuildQ2(options);
    case 3:
      return BuildQ3(options);
    case 4:
      return BuildQ4(options);
    case 5:
      return BuildQ5(options);
    case 6:
      return BuildQ6(options);
    case 7:
      return BuildQ7(options);
    case 8:
      return BuildQ8(options);
    default:
      return InvalidArgumentError("NEXMark queries are numbered 1-8");
  }
}

std::vector<std::string> NexmarkIngressStreams(int number) {
  switch (number) {
    case 1:
    case 2:
    case 5:
    case 7:
      return {"bids"};
    case 3:
      return {"auctions", "persons"};
    case 4:
    case 6:
      return {"bids", "auctions"};
    case 8:
      return {"persons", "auctions"};
    default:
      return {};
  }
}

std::string NexmarkSinkName(int number) {
  return "q" + std::to_string(number);
}

std::string NexmarkSinkStage(int number) {
  switch (number) {
    case 1:
      return "convert";
    case 2:
      return "filter";
    case 3:
      return "agg";
    case 4:
      return "avg";
    case 5:
      return "max";
    case 6:
      return "avg10";
    case 7:
      return "max";
    case 8:
      return "join";
    default:
      return "";
  }
}

}  // namespace impeller
