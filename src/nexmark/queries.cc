#include "src/nexmark/queries.h"

#include "src/nexmark/udfs.h"

namespace impeller {

// Every operator body lives in src/nexmark/udfs.cc under a stable name, so
// the declarative plan path (src/nexmark/plan_queries.cc) lowers to
// byte-identical logic: both paths call the same functions.
using namespace nexmark;  // NOLINT(build/namespaces)

namespace {

QueryBuilder MakeBuilder(int number) {
  return QueryBuilder("q" + std::to_string(number));
}

// --- Q1: currency conversion (USD -> EUR), map + filter ---

Result<QueryPlan> BuildQ1(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(1);
  qb.Ingress("bids");
  qb.AddStage("convert", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter(NonEmptyValue)
      .Map(ConvertUsdToEur)
      .Sink("q1");
  return qb.Build();
}

// --- Q2: selection — bids on a sample of auctions ---

Result<QueryPlan> BuildQ2(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(2);
  qb.Ingress("bids");
  qb.AddStage("filter", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter(BidOnSampledAuction)
      .Sink("q2");
  return qb.Build();
}

// --- Q3: local item suggestion — table-table join + group-by ---

Result<QueryPlan> BuildQ3(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(3);
  qb.Ingress("auctions").Ingress("persons");
  qb.AddStage("fa", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .Filter(AuctionInCategory10)
      .KeyBy(AuctionSellerKey)
      .WritesTo("q3.auct");
  qb.AddStage("fp", opt.tasks_per_stage)
      .ReadsFrom({"persons"})
      .Filter(PersonInOrIdCa)
      .KeyBy(PersonIdKey)
      .WritesTo("q3.pers");
  qb.AddStage("join", opt.tasks_per_stage)
      .ReadsFrom({"q3.auct", "q3.pers"})
      .JoinTables("q3j", JoinAuctionWithPerson)
      .KeyBy(JoinedRowStateKey)
      .WritesTo("q3.bystate");
  qb.AddStage("agg", opt.tasks_per_stage)
      .ReadsFrom({"q3.bystate"})
      .Aggregate("q3cnt", CountAgg())
      .Sink("q3");
  return qb.Build();
}

// --- Q4 helpers: bid x auction winning-bid pipeline shared with Q6 ---

// Shared first stages of Q4/Q6: key auctions by id and bids by auction,
// stream-stream join them, keep the running max (winning) bid per auction.
void AddWinningBidStages(QueryBuilder& qb, const NexmarkQueryOptions& opt,
                         const std::string& prefix) {
  qb.Ingress("bids").Ingress("auctions");
  qb.AddStage("ka", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .KeyBy(AuctionIdKey)
      .WritesTo(prefix + ".A");
  qb.AddStage("kb", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .KeyBy(BidAuctionKey)
      .WritesTo(prefix + ".B");
}

StageBuilder& AddWinBidJoinStage(QueryBuilder& qb,
                                 const NexmarkQueryOptions& opt,
                                 const std::string& prefix) {
  return qb.AddStage("winbid", opt.tasks_per_stage)
      .ReadsFrom({prefix + ".B", prefix + ".A"})
      .JoinStreams(prefix + "j", opt.join_window, JoinBidWithAuction,
                   opt.allowed_lateness)
      .Filter(NonEmptyValue)
      .Aggregate(prefix + "max", MaxWinAgg());
}

// --- Q4: average price of winning bids per category ---

Result<QueryPlan> BuildQ4(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(4);
  AddWinningBidStages(qb, opt, "q4");
  AddWinBidJoinStage(qb, opt, "q4")
      .KeyBy(WinCategoryKey)
      .WritesTo("q4.maxed");
  qb.AddStage("avg", opt.tasks_per_stage)
      .ReadsFrom({"q4.maxed"})
      .TableAggregate("q4avg", /*group_key=*/RecordKey, AvgPriceAgg(),
                      /*row_key=*/WinAuctionKey)
      .Sink("q4");
  return qb.Build();
}

// --- Q5: hot items — sliding-window bid counts, per-window max ---

Result<QueryPlan> BuildQ5(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(5);
  qb.Ingress("bids");
  qb.AddStage("kb", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter(NonEmptyValue)
      .KeyBy(BidAuctionKey)
      .WritesTo("q5.byauction");
  qb.AddStage("win", opt.tasks_per_stage)
      .ReadsFrom({"q5.byauction"})
      // Kafka Streams semantics (§4): windowed counts emit eagerly as
      // suppressed updates, so result event times track fresh input.
      .WindowAggregate("q5w",
                       WindowSpec::Sliding(opt.q5_window, opt.q5_slide),
                       CountAgg(), opt.allowed_lateness,
                       WindowEmitMode::kEagerSuppressed)
      .Map(PackQ5WindowCount)
      .KeyBy(Q5WindowStartKey)
      .WritesTo("q5.counts");
  qb.AddStage("max", opt.tasks_per_stage)
      .ReadsFrom({"q5.counts"})
      .Aggregate("q5max", HottestAuctionAgg())
      .Sink("q5");
  return qb.Build();
}

// --- Q6: average selling price per seller, last 10 closed auctions ---

Result<QueryPlan> BuildQ6(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(6);
  AddWinningBidStages(qb, opt, "q6");
  AddWinBidJoinStage(qb, opt, "q6").KeyBy(WinSellerKey).WritesTo("q6.wins");
  qb.AddStage("avg10", opt.tasks_per_stage)
      .ReadsFrom({"q6.wins"})
      .Aggregate("q6ring", Last10WinsAgg())
      .Sink("q6");
  return qb.Build();
}

// --- Q7: highest bid per tumbling window ---

Result<QueryPlan> BuildQ7(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(7);
  qb.Ingress("bids");
  // Per-auction window maxima (the partial aggregation / "groupby" of
  // Table 3), then a global per-window max.
  qb.AddStage("win", opt.tasks_per_stage)
      .ReadsFrom({"bids"})
      .Filter(NonEmptyValue)
      .WindowAggregate("q7w", WindowSpec::Tumbling(opt.q7_window),
                       MaxBidAgg(), opt.allowed_lateness,
                       WindowEmitMode::kEagerSuppressed)
      .KeyBy(WindowStartKey)
      .WritesTo("q7.partial");
  qb.AddStage("max", opt.tasks_per_stage)
      .ReadsFrom({"q7.partial"})
      .Aggregate("q7max", MaxOfWindowMaxAgg())
      .Sink("q7");
  return qb.Build();
}

// --- Q8: monitor new users — person x new-auction windowed join ---

Result<QueryPlan> BuildQ8(const NexmarkQueryOptions& opt) {
  QueryBuilder qb = MakeBuilder(8);
  qb.Ingress("persons").Ingress("auctions");
  qb.AddStage("kp", opt.tasks_per_stage)
      .ReadsFrom({"persons"})
      .KeyBy(PersonIdKey)
      .WritesTo("q8.P");
  qb.AddStage("ka", opt.tasks_per_stage)
      .ReadsFrom({"auctions"})
      .KeyBy(AuctionSellerKey)
      .WritesTo("q8.A");
  qb.AddStage("join", opt.tasks_per_stage)
      .ReadsFrom({"q8.P", "q8.A"})
      .JoinStreams("q8j", opt.q8_window, JoinPersonWithAuction,
                   opt.allowed_lateness)
      .Aggregate("q8cnt", CountAgg())
      .Sink("q8");
  return qb.Build();
}

}  // namespace

Result<QueryPlan> BuildNexmarkQuery(int number,
                                    const NexmarkQueryOptions& options) {
  switch (number) {
    case 1:
      return BuildQ1(options);
    case 2:
      return BuildQ2(options);
    case 3:
      return BuildQ3(options);
    case 4:
      return BuildQ4(options);
    case 5:
      return BuildQ5(options);
    case 6:
      return BuildQ6(options);
    case 7:
      return BuildQ7(options);
    case 8:
      return BuildQ8(options);
    default:
      return InvalidArgumentError("NEXMark queries are numbered 1-8");
  }
}

std::vector<std::string> NexmarkIngressStreams(int number) {
  switch (number) {
    case 1:
    case 2:
    case 5:
    case 7:
      return {"bids"};
    case 3:
      return {"auctions", "persons"};
    case 4:
    case 6:
      return {"bids", "auctions"};
    case 8:
      return {"persons", "auctions"};
    default:
      return {};
  }
}

std::string NexmarkSinkName(int number) {
  return "q" + std::to_string(number);
}

std::string NexmarkSinkStage(int number) {
  switch (number) {
    case 1:
      return "convert";
    case 2:
      return "filter";
    case 3:
      return "agg";
    case 4:
      return "avg";
    case 5:
      return "max";
    case 6:
      return "avg10";
    case 7:
      return "max";
    case 8:
      return "join";
    default:
      return "";
  }
}

}  // namespace impeller
