#include "src/nexmark/events.h"

#include "src/common/serde.h"

namespace impeller {

std::string EncodePerson(const Person& p) {
  BinaryWriter w(kPersonTargetBytes + 16);
  w.WriteVarU64(p.id);
  w.WriteString(p.name);
  w.WriteString(p.email);
  w.WriteString(p.credit_card);
  w.WriteString(p.city);
  w.WriteString(p.state);
  w.WriteVarI64(p.date_time);
  w.WriteString(p.extra);
  return w.Take();
}

Result<Person> DecodePerson(std::string_view raw) {
  BinaryReader r(raw);
  Person p;
  auto id = r.ReadVarU64();
  auto name = r.ReadString();
  auto email = r.ReadString();
  auto cc = r.ReadString();
  auto city = r.ReadString();
  auto state = r.ReadString();
  auto dt = r.ReadVarI64();
  auto extra = r.ReadString();
  if (!id.ok() || !name.ok() || !email.ok() || !cc.ok() || !city.ok() ||
      !state.ok() || !dt.ok() || !extra.ok()) {
    return DataLossError("corrupt person event");
  }
  p.id = *id;
  p.name = std::move(*name);
  p.email = std::move(*email);
  p.credit_card = std::move(*cc);
  p.city = std::move(*city);
  p.state = std::move(*state);
  p.date_time = *dt;
  p.extra = std::move(*extra);
  return p;
}

std::string EncodeAuction(const Auction& a) {
  BinaryWriter w(kAuctionTargetBytes + 16);
  w.WriteVarU64(a.id);
  w.WriteString(a.item_name);
  w.WriteString(a.description);
  w.WriteVarI64(a.initial_bid);
  w.WriteVarI64(a.reserve);
  w.WriteVarI64(a.date_time);
  w.WriteVarI64(a.expires);
  w.WriteVarU64(a.seller);
  w.WriteVarU64(a.category);
  w.WriteString(a.extra);
  return w.Take();
}

Result<Auction> DecodeAuction(std::string_view raw) {
  BinaryReader r(raw);
  Auction a;
  auto id = r.ReadVarU64();
  auto item = r.ReadString();
  auto desc = r.ReadString();
  auto initial = r.ReadVarI64();
  auto reserve = r.ReadVarI64();
  auto dt = r.ReadVarI64();
  auto expires = r.ReadVarI64();
  auto seller = r.ReadVarU64();
  auto category = r.ReadVarU64();
  auto extra = r.ReadString();
  if (!id.ok() || !item.ok() || !desc.ok() || !initial.ok() ||
      !reserve.ok() || !dt.ok() || !expires.ok() || !seller.ok() ||
      !category.ok() || !extra.ok()) {
    return DataLossError("corrupt auction event");
  }
  a.id = *id;
  a.item_name = std::move(*item);
  a.description = std::move(*desc);
  a.initial_bid = *initial;
  a.reserve = *reserve;
  a.date_time = *dt;
  a.expires = *expires;
  a.seller = *seller;
  a.category = *category;
  a.extra = std::move(*extra);
  return a;
}

std::string EncodeBid(const Bid& b) {
  BinaryWriter w(kBidTargetBytes + 16);
  w.WriteVarU64(b.auction);
  w.WriteVarU64(b.bidder);
  w.WriteVarI64(b.price);
  w.WriteString(b.channel);
  w.WriteString(b.url);
  w.WriteVarI64(b.date_time);
  w.WriteString(b.extra);
  return w.Take();
}

Result<Bid> DecodeBid(std::string_view raw) {
  BinaryReader r(raw);
  Bid b;
  auto auction = r.ReadVarU64();
  auto bidder = r.ReadVarU64();
  auto price = r.ReadVarI64();
  auto channel = r.ReadString();
  auto url = r.ReadString();
  auto dt = r.ReadVarI64();
  auto extra = r.ReadString();
  if (!auction.ok() || !bidder.ok() || !price.ok() || !channel.ok() ||
      !url.ok() || !dt.ok() || !extra.ok()) {
    return DataLossError("corrupt bid event");
  }
  b.auction = *auction;
  b.bidder = *bidder;
  b.price = *price;
  b.channel = std::move(*channel);
  b.url = std::move(*url);
  b.date_time = *dt;
  b.extra = std::move(*extra);
  return b;
}

}  // namespace impeller
