#include "src/nexmark/events.h"

#include "src/common/serde.h"

namespace impeller {

std::string EncodePerson(const Person& p) {
  BinaryWriter w(kPersonTargetBytes + 16);
  w.WriteVarU64(p.id);
  w.WriteString(p.name);
  w.WriteString(p.email);
  w.WriteString(p.credit_card);
  w.WriteString(p.city);
  w.WriteString(p.state);
  w.WriteVarI64(p.date_time);
  w.WriteString(p.extra);
  return w.Take();
}

Result<PersonView> DecodePersonView(std::string_view raw) {
  BinaryReader r(raw);
  PersonView p;
  auto id = r.ReadVarU64();
  auto name = r.ReadStringView();
  auto email = r.ReadStringView();
  auto cc = r.ReadStringView();
  auto city = r.ReadStringView();
  auto state = r.ReadStringView();
  auto dt = r.ReadVarI64();
  auto extra = r.ReadStringView();
  if (!id.ok() || !name.ok() || !email.ok() || !cc.ok() || !city.ok() ||
      !state.ok() || !dt.ok() || !extra.ok()) {
    return DataLossError("corrupt person event");
  }
  p.id = *id;
  p.name = *name;
  p.email = *email;
  p.credit_card = *cc;
  p.city = *city;
  p.state = *state;
  p.date_time = *dt;
  p.extra = *extra;
  return p;
}

Result<Person> DecodePerson(std::string_view raw) {
  auto v = DecodePersonView(raw);
  if (!v.ok()) {
    return v.status();
  }
  Person p;
  p.id = v->id;
  p.name = std::string(v->name);
  p.email = std::string(v->email);
  p.credit_card = std::string(v->credit_card);
  p.city = std::string(v->city);
  p.state = std::string(v->state);
  p.date_time = v->date_time;
  p.extra = std::string(v->extra);
  return p;
}

std::string EncodeAuction(const Auction& a) {
  BinaryWriter w(kAuctionTargetBytes + 16);
  w.WriteVarU64(a.id);
  w.WriteString(a.item_name);
  w.WriteString(a.description);
  w.WriteVarI64(a.initial_bid);
  w.WriteVarI64(a.reserve);
  w.WriteVarI64(a.date_time);
  w.WriteVarI64(a.expires);
  w.WriteVarU64(a.seller);
  w.WriteVarU64(a.category);
  w.WriteString(a.extra);
  return w.Take();
}

Result<AuctionView> DecodeAuctionView(std::string_view raw) {
  BinaryReader r(raw);
  AuctionView a;
  auto id = r.ReadVarU64();
  auto item = r.ReadStringView();
  auto desc = r.ReadStringView();
  auto initial = r.ReadVarI64();
  auto reserve = r.ReadVarI64();
  auto dt = r.ReadVarI64();
  auto expires = r.ReadVarI64();
  auto seller = r.ReadVarU64();
  auto category = r.ReadVarU64();
  auto extra = r.ReadStringView();
  if (!id.ok() || !item.ok() || !desc.ok() || !initial.ok() ||
      !reserve.ok() || !dt.ok() || !expires.ok() || !seller.ok() ||
      !category.ok() || !extra.ok()) {
    return DataLossError("corrupt auction event");
  }
  a.id = *id;
  a.item_name = *item;
  a.description = *desc;
  a.initial_bid = *initial;
  a.reserve = *reserve;
  a.date_time = *dt;
  a.expires = *expires;
  a.seller = *seller;
  a.category = *category;
  a.extra = *extra;
  return a;
}

Result<Auction> DecodeAuction(std::string_view raw) {
  auto v = DecodeAuctionView(raw);
  if (!v.ok()) {
    return v.status();
  }
  Auction a;
  a.id = v->id;
  a.item_name = std::string(v->item_name);
  a.description = std::string(v->description);
  a.initial_bid = v->initial_bid;
  a.reserve = v->reserve;
  a.date_time = v->date_time;
  a.expires = v->expires;
  a.seller = v->seller;
  a.category = v->category;
  a.extra = std::string(v->extra);
  return a;
}

std::string EncodeBid(const Bid& b) {
  BinaryWriter w(kBidTargetBytes + 16);
  w.WriteVarU64(b.auction);
  w.WriteVarU64(b.bidder);
  w.WriteVarI64(b.price);
  w.WriteString(b.channel);
  w.WriteString(b.url);
  w.WriteVarI64(b.date_time);
  w.WriteString(b.extra);
  return w.Take();
}

Result<BidView> DecodeBidView(std::string_view raw) {
  BinaryReader r(raw);
  BidView b;
  auto auction = r.ReadVarU64();
  auto bidder = r.ReadVarU64();
  auto price = r.ReadVarI64();
  auto channel = r.ReadStringView();
  auto url = r.ReadStringView();
  auto dt = r.ReadVarI64();
  auto extra = r.ReadStringView();
  if (!auction.ok() || !bidder.ok() || !price.ok() || !channel.ok() ||
      !url.ok() || !dt.ok() || !extra.ok()) {
    return DataLossError("corrupt bid event");
  }
  b.auction = *auction;
  b.bidder = *bidder;
  b.price = *price;
  b.channel = *channel;
  b.url = *url;
  b.date_time = *dt;
  b.extra = *extra;
  return b;
}

Result<Bid> DecodeBid(std::string_view raw) {
  auto v = DecodeBidView(raw);
  if (!v.ok()) {
    return v.status();
  }
  Bid b;
  b.auction = v->auction;
  b.bidder = v->bidder;
  b.price = v->price;
  b.channel = std::string(v->channel);
  b.url = std::string(v->url);
  b.date_time = v->date_time;
  b.extra = std::string(v->extra);
  return b;
}

}  // namespace impeller
