// NEXMark event generator, following the structure of Apache Flink's
// reference implementation (paper §5.3): a deterministic event-id sequence
// rotates through 1 person : 3 auctions : 46 bids per 50 events (= 2% / 6% /
// 92%); bids target recently opened auctions with skewed (hot-key)
// popularity; events carry their generation time as event time.
#ifndef IMPELLER_SRC_NEXMARK_GENERATOR_H_
#define IMPELLER_SRC_NEXMARK_GENERATOR_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/nexmark/events.h"

namespace impeller {

struct NexmarkConfig {
  uint64_t first_event_id = 0;
  uint64_t num_categories = 5;
  // Active-auction window bids draw from.
  uint64_t num_in_flight_auctions = 100;
  // Hot-key skew for bid->auction popularity (paper uses NEXMark's default
  // skewed key popularity).
  double auction_zipf_exponent = 0.9;
  uint64_t num_active_people = 1000;
  DurationNs auction_duration = 10 * kSecond;
  // Per 50 events: 1 person, 3 auctions, 46 bids.
  uint32_t person_slots = 1;
  uint32_t auction_slots = 3;
};

class NexmarkGenerator {
 public:
  enum class Kind { kPerson, kAuction, kBid };

  struct Event {
    Kind kind = Kind::kBid;
    Person person;
    Auction auction;
    Bid bid;
    TimeNs event_time = 0;
  };

  NexmarkGenerator(NexmarkConfig config, uint64_t seed, Clock* clock);

  Event Next();

  uint64_t events_generated() const { return event_id_; }

 private:
  uint64_t NextPersonId();
  uint64_t NextAuctionId();
  uint64_t RandomAuctionId();
  uint64_t RandomPersonId();
  std::string Padding(size_t current, size_t target);

  NexmarkConfig config_;
  Rng rng_;
  ZipfGenerator auction_zipf_;
  Clock* clock_;
  uint64_t event_id_;
  uint64_t next_person_id_ = 1000;
  uint64_t next_auction_id_ = 1000;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_GENERATOR_H_
