#include "src/nexmark/driver.h"

#include "src/common/logging.h"

namespace impeller {

NexmarkDriver::NexmarkDriver(Engine* engine, NexmarkDriverOptions options)
    : engine_(engine),
      options_(options),
      generator_(options.generator, options.seed, engine->clock()),
      limiter_(options.events_per_sec, engine->clock(),
               /*max_burst=*/static_cast<int64_t>(
                   std::max(64.0, options.events_per_sec / 20.0))) {}

Result<std::unique_ptr<NexmarkDriver>> NexmarkDriver::Create(
    Engine* engine, int query_number, NexmarkDriverOptions options) {
  std::unique_ptr<NexmarkDriver> driver(
      new NexmarkDriver(engine, options));
  for (const std::string& stream : NexmarkIngressStreams(query_number)) {
    auto producer = engine->NewProducer("gen/" + stream, stream);
    if (!producer.ok()) {
      return producer.status();
    }
    driver->producers_[stream] = std::move(*producer);
  }
  if (driver->producers_.empty()) {
    return InvalidArgumentError("query has no ingress streams");
  }
  return driver;
}

NexmarkDriver::~NexmarkDriver() { Stop(); }

void NexmarkDriver::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = JoiningThread([this] { Loop(); });
}

void NexmarkDriver::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.Join();
}

void NexmarkDriver::RunFor(DurationNs duration) {
  Start();
  engine_->clock()->SleepFor(duration);
  Stop();
}

void NexmarkDriver::Dispatch(const NexmarkGenerator::Event& event) {
  switch (event.kind) {
    case NexmarkGenerator::Kind::kPerson: {
      auto it = producers_.find("persons");
      if (it != producers_.end()) {
        it->second->Send(std::to_string(event.person.id),
                         EncodePerson(event.person), event.event_time);
        sent_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    case NexmarkGenerator::Kind::kAuction: {
      auto it = producers_.find("auctions");
      if (it != producers_.end()) {
        it->second->Send(std::to_string(event.auction.id),
                         EncodeAuction(event.auction), event.event_time);
        sent_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    case NexmarkGenerator::Kind::kBid: {
      auto it = producers_.find("bids");
      if (it != producers_.end()) {
        it->second->Send(std::to_string(event.bid.auction),
                         EncodeBid(event.bid), event.event_time);
        sent_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

Status NexmarkDriver::FlushAll() {
  for (auto& [stream, producer] : producers_) {
    auto flushed = producer->Flush();
    if (!flushed.ok()) {
      return flushed.status();
    }
  }
  return OkStatus();
}

void NexmarkDriver::Loop() {
  Clock* clock = engine_->clock();
  TimeNs next_flush = clock->Now() + options_.flush_interval;
  while (running_.load(std::memory_order_relaxed)) {
    // Generate up to the permitted budget, then flush on the batch cadence.
    int64_t budget = limiter_.AvailableNow();
    if (budget <= 0) {
      limiter_.Acquire(1);
      Dispatch(generator_.Next());
    } else {
      limiter_.Acquire(budget);
      for (int64_t i = 0; i < budget; ++i) {
        Dispatch(generator_.Next());
      }
    }
    TimeNs now = clock->Now();
    if (now >= next_flush) {
      Status st = FlushAll();
      if (!st.ok()) {
        LOG_ERROR << "ingress flush failed: " << st.ToString();
        return;
      }
      next_flush = now + options_.flush_interval;
    } else {
      clock->SleepFor(
          std::min<DurationNs>(next_flush - now, 2 * kMillisecond));
    }
  }
  Status st = FlushAll();
  if (!st.ok()) {
    LOG_WARN << "final ingress flush failed: " << st.ToString();
  }
}

}  // namespace impeller
