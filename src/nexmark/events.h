// NEXMark event model (paper §5.3): an online auction site emitting a
// high-volume stream of new persons, new auctions, and bids. Average encoded
// sizes follow the paper — bids ~100 bytes, auctions ~500 bytes, persons
// ~200 bytes — via sized `extra` padding, and the stream mix is 92% bids,
// 6% auctions, 2% persons.
#ifndef IMPELLER_SRC_NEXMARK_EVENTS_H_
#define IMPELLER_SRC_NEXMARK_EVENTS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace impeller {

struct Person {
  uint64_t id = 0;
  std::string name;
  std::string email;
  std::string credit_card;
  std::string city;
  std::string state;
  TimeNs date_time = 0;
  std::string extra;
};

struct Auction {
  uint64_t id = 0;
  std::string item_name;
  std::string description;
  int64_t initial_bid = 0;
  int64_t reserve = 0;
  TimeNs date_time = 0;
  TimeNs expires = 0;
  uint64_t seller = 0;
  uint64_t category = 0;
  std::string extra;
};

struct Bid {
  uint64_t auction = 0;
  uint64_t bidder = 0;
  int64_t price = 0;  // cents
  std::string channel;
  std::string url;
  TimeNs date_time = 0;
  std::string extra;
};

// In-place views over an encoded event (DESIGN.md §12): string fields alias
// the input buffer, numeric fields are decoded. Valid only while the buffer
// outlives the view — UDF predicates and key extractors decode these instead
// of materializing owning structs per record.
struct PersonView {
  uint64_t id = 0;
  std::string_view name;
  std::string_view email;
  std::string_view credit_card;
  std::string_view city;
  std::string_view state;
  TimeNs date_time = 0;
  std::string_view extra;
};

struct AuctionView {
  uint64_t id = 0;
  std::string_view item_name;
  std::string_view description;
  int64_t initial_bid = 0;
  int64_t reserve = 0;
  TimeNs date_time = 0;
  TimeNs expires = 0;
  uint64_t seller = 0;
  uint64_t category = 0;
  std::string_view extra;
};

struct BidView {
  uint64_t auction = 0;
  uint64_t bidder = 0;
  int64_t price = 0;  // cents
  std::string_view channel;
  std::string_view url;
  TimeNs date_time = 0;
  std::string_view extra;
};

std::string EncodePerson(const Person& p);
Result<Person> DecodePerson(std::string_view raw);
Result<PersonView> DecodePersonView(std::string_view raw);
std::string EncodeAuction(const Auction& a);
Result<Auction> DecodeAuction(std::string_view raw);
Result<AuctionView> DecodeAuctionView(std::string_view raw);
std::string EncodeBid(const Bid& b);
Result<Bid> DecodeBid(std::string_view raw);
Result<BidView> DecodeBidView(std::string_view raw);

// Paper §5.3: "The average size for bid, auction and new user events are
// 100, 500 and 200 bytes respectively."
constexpr size_t kBidTargetBytes = 100;
constexpr size_t kAuctionTargetBytes = 500;
constexpr size_t kPersonTargetBytes = 200;

}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_EVENTS_H_
