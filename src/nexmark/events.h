// NEXMark event model (paper §5.3): an online auction site emitting a
// high-volume stream of new persons, new auctions, and bids. Average encoded
// sizes follow the paper — bids ~100 bytes, auctions ~500 bytes, persons
// ~200 bytes — via sized `extra` padding, and the stream mix is 92% bids,
// 6% auctions, 2% persons.
#ifndef IMPELLER_SRC_NEXMARK_EVENTS_H_
#define IMPELLER_SRC_NEXMARK_EVENTS_H_

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace impeller {

struct Person {
  uint64_t id = 0;
  std::string name;
  std::string email;
  std::string credit_card;
  std::string city;
  std::string state;
  TimeNs date_time = 0;
  std::string extra;
};

struct Auction {
  uint64_t id = 0;
  std::string item_name;
  std::string description;
  int64_t initial_bid = 0;
  int64_t reserve = 0;
  TimeNs date_time = 0;
  TimeNs expires = 0;
  uint64_t seller = 0;
  uint64_t category = 0;
  std::string extra;
};

struct Bid {
  uint64_t auction = 0;
  uint64_t bidder = 0;
  int64_t price = 0;  // cents
  std::string channel;
  std::string url;
  TimeNs date_time = 0;
  std::string extra;
};

std::string EncodePerson(const Person& p);
Result<Person> DecodePerson(std::string_view raw);
std::string EncodeAuction(const Auction& a);
Result<Auction> DecodeAuction(std::string_view raw);
std::string EncodeBid(const Bid& b);
Result<Bid> DecodeBid(std::string_view raw);

// Paper §5.3: "The average size for bid, auction and new user events are
// 100, 500 and 200 bytes respectively."
constexpr size_t kBidTargetBytes = 100;
constexpr size_t kAuctionTargetBytes = 500;
constexpr size_t kPersonTargetBytes = 200;

}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_EVENTS_H_
