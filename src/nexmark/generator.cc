#include "src/nexmark/generator.h"

namespace impeller {

namespace {

const char* const kFirstNames[] = {"Peter", "Paul",  "Luke",  "John",
                                   "Saul",  "Vicky", "Kate",  "Julie",
                                   "Sarah", "Deiter", "Walter"};
const char* const kLastNames[] = {"Shultz", "Abrams", "Spencer", "White",
                                  "Bartels", "Walton", "Smith",  "Jones",
                                  "Noris"};
const char* const kCities[] = {"Phoenix", "Palo Alto", "San Mateo",
                               "Boise",   "Portland",  "Bend",
                               "Redmond", "Seattle",   "Kent"};
const char* const kStates[] = {"AZ", "CA", "ID", "OR", "WA"};
const char* const kChannels[] = {"Google", "Facebook", "Baidu", "Apple"};
const char* const kItems[] = {"wkx mgee", "pmb vjla", "cgreen",   "avocado",
                              "tofu",     "figurine", "harpsichord"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&arr)[N]) {
  return arr[rng.NextBounded(N)];
}

}  // namespace

NexmarkGenerator::NexmarkGenerator(NexmarkConfig config, uint64_t seed,
                                   Clock* clock)
    : config_(config),
      rng_(seed),
      auction_zipf_(config.num_in_flight_auctions,
                    config.auction_zipf_exponent),
      clock_(clock),
      event_id_(config.first_event_id) {}

std::string NexmarkGenerator::Padding(size_t current, size_t target) {
  if (current >= target) {
    return std::string();
  }
  // ±20% jitter around the target so sizes are averages, not constants.
  size_t pad = target - current;
  int64_t jitter = rng_.NextRange(-static_cast<int64_t>(pad) / 5,
                                  static_cast<int64_t>(pad) / 5);
  return std::string(static_cast<size_t>(
                         std::max<int64_t>(0, static_cast<int64_t>(pad) +
                                                  jitter)),
                     'x');
}

uint64_t NexmarkGenerator::NextPersonId() { return next_person_id_++; }
uint64_t NexmarkGenerator::NextAuctionId() { return next_auction_id_++; }

uint64_t NexmarkGenerator::RandomAuctionId() {
  // Bids reference one of the most recently opened auctions, with zipf
  // popularity (rank 0 = hottest = most recent).
  uint64_t rank = auction_zipf_.Next(rng_);
  uint64_t newest = next_auction_id_ == 0 ? 0 : next_auction_id_ - 1;
  return rank >= newest ? 1000 : newest - rank;
}

uint64_t NexmarkGenerator::RandomPersonId() {
  uint64_t newest = next_person_id_ == 0 ? 0 : next_person_id_ - 1;
  uint64_t span = std::min<uint64_t>(config_.num_active_people, newest + 1);
  return newest - rng_.NextBounded(span);
}

NexmarkGenerator::Event NexmarkGenerator::Next() {
  uint64_t id = event_id_++;
  uint32_t slot = static_cast<uint32_t>(id % 50);
  TimeNs now = clock_->Now();

  Event event;
  event.event_time = now;
  if (slot < config_.person_slots) {
    event.kind = Kind::kPerson;
    Person& p = event.person;
    p.id = NextPersonId();
    p.name = std::string(Pick(rng_, kFirstNames)) + " " +
             Pick(rng_, kLastNames);
    p.email = p.name + "@example.com";
    p.credit_card = std::to_string(1000000000000000ull + rng_.NextU64() % 9000000000000000ull);
    p.city = Pick(rng_, kCities);
    p.state = Pick(rng_, kStates);
    p.date_time = now;
    size_t base = EncodePerson(p).size();
    p.extra = Padding(base, kPersonTargetBytes);
  } else if (slot < config_.person_slots + config_.auction_slots) {
    event.kind = Kind::kAuction;
    Auction& a = event.auction;
    a.id = NextAuctionId();
    a.item_name = Pick(rng_, kItems);
    a.description = "auction item description placeholder";
    a.initial_bid = rng_.NextRange(100, 1000);
    a.reserve = a.initial_bid + rng_.NextRange(100, 2000);
    a.date_time = now;
    a.expires = now + config_.auction_duration;
    a.seller = RandomPersonId();
    a.category = 10 + rng_.NextBounded(config_.num_categories);
    size_t base = EncodeAuction(a).size();
    a.extra = Padding(base, kAuctionTargetBytes);
  } else {
    event.kind = Kind::kBid;
    Bid& b = event.bid;
    b.auction = RandomAuctionId();
    b.bidder = RandomPersonId();
    b.price = rng_.NextRange(100, 100000);
    b.channel = Pick(rng_, kChannels);
    b.url = "https://auction.example.com/item/" + std::to_string(b.auction);
    b.date_time = now;
    size_t base = EncodeBid(b).size();
    b.extra = Padding(base, kBidTargetBytes);
  }
  return event;
}

}  // namespace impeller
