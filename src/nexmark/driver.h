// NexmarkDriver: the input-generation side of the evaluation (paper §5.3).
// A generator thread produces the person/auction/bid mix at a target rate
// and pushes events through IngressProducers, flushing batches on the
// paper's cadence (10 ms for Q1-2 style workloads, 100 ms otherwise).
#ifndef IMPELLER_SRC_NEXMARK_DRIVER_H_
#define IMPELLER_SRC_NEXMARK_DRIVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "src/common/rate_limiter.h"
#include "src/common/threading.h"
#include "src/core/engine.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"

namespace impeller {

struct NexmarkDriverOptions {
  double events_per_sec = 10000;
  DurationNs flush_interval = 10 * kMillisecond;
  uint64_t seed = 1;
  NexmarkConfig generator;
};

class NexmarkDriver {
 public:
  // Creates producers for the query's ingress streams on `engine` (which
  // must have the query submitted already).
  static Result<std::unique_ptr<NexmarkDriver>> Create(
      Engine* engine, int query_number, NexmarkDriverOptions options);

  ~NexmarkDriver();

  void Start();
  void Stop();

  // Blocking convenience: generate for `duration`, then stop.
  void RunFor(DurationNs duration);

  uint64_t events_sent() const { return sent_.load(); }

 private:
  NexmarkDriver(Engine* engine, NexmarkDriverOptions options);

  void Loop();
  void Dispatch(const NexmarkGenerator::Event& event);
  Status FlushAll();

  Engine* engine_;
  NexmarkDriverOptions options_;
  NexmarkGenerator generator_;
  RateLimiter limiter_;
  std::map<std::string, std::unique_ptr<IngressProducer>> producers_;
  std::atomic<uint64_t> sent_{0};
  std::atomic<bool> running_{false};
  JoiningThread thread_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_DRIVER_H_
