// Named NEXMark UDFs, factored out of the query builders so the same code
// backs both the imperative QueryBuilder path (src/nexmark/queries.cc) and
// the declarative plan path (src/nexmark/plan_queries.cc): a plan-built
// query and its imperative twin execute byte-identical logic by
// construction. Handle names used by the plan IR are the snake_case of the
// function names (see NexmarkUdfRegistry).
#ifndef IMPELLER_SRC_NEXMARK_UDFS_H_
#define IMPELLER_SRC_NEXMARK_UDFS_H_

#include <string>
#include <string_view>

#include "src/core/aggregate.h"
#include "src/core/operator.h"

namespace impeller {
namespace nexmark {

// --- predicates ---
bool NonEmptyValue(const StreamRecord& r);
bool BidOnSampledAuction(const StreamRecord& r);   // Q2: auction % 123 == 0
bool AuctionInCategory10(const StreamRecord& r);   // Q3
bool PersonInOrIdCa(const StreamRecord& r);        // Q3: OR / ID / CA

// --- maps ---
StreamRecord ConvertUsdToEur(StreamRecord r);  // Q1: price * 0.908
// Q5: (window, count) keyed by auction -> value carrying (start, auction,
// count) so the per-window max can repartition by window start.
StreamRecord PackQ5WindowCount(StreamRecord r);

// --- key extractors ---
std::string AuctionSellerKey(const StreamRecord& r);   // Q3 fa, Q8 ka
std::string AuctionIdKey(const StreamRecord& r);       // Q4/Q6 ka
std::string PersonIdKey(const StreamRecord& r);        // Q3 fp, Q8 kp
std::string BidAuctionKey(const StreamRecord& r);      // Q4/Q5/Q6 kb
std::string JoinedRowStateKey(const StreamRecord& r);  // Q3: state of row
std::string WinCategoryKey(const StreamRecord& r);     // Q4
std::string WinSellerKey(const StreamRecord& r);       // Q6
std::string WinAuctionKey(const StreamRecord& r);      // Q4 row identity
std::string Q5WindowStartKey(const StreamRecord& r);   // Q5 packed value
std::string WindowStartKey(const StreamRecord& r);     // Q7 window result
std::string RecordKey(const StreamRecord& r);          // passthrough r.key

// --- joins ---
std::string JoinAuctionWithPerson(std::string_view auction_raw,
                                  std::string_view person_raw);  // Q3
std::string JoinBidWithAuction(std::string_view bid_raw,
                               std::string_view auction_raw);    // Q4/Q6
std::string JoinPersonWithAuction(std::string_view person_raw,
                                  std::string_view auction_raw); // Q8

// --- aggregates ---
AggregateFn CountAgg();           // Q3/Q8 counts
AggregateFn MaxWinAgg();          // Q4/Q6 winning (max-price) bid
AggregateFn AvgPriceAgg();        // Q4 category average with retraction
AggregateFn Last10WinsAgg();      // Q6 ring of last 10 winning prices
AggregateFn HottestAuctionAgg();  // Q5 per-window max count
AggregateFn MaxBidAgg();          // Q7 per-auction window max
AggregateFn MaxOfWindowMaxAgg();  // Q7 global per-window max

}  // namespace nexmark
}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_UDFS_H_
