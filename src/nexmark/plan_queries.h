// NEXMark Q1-Q8 authored on the declarative plan layer (src/plan/): the
// logical plans here, optimized with fusion on, lower to QueryPlans
// structurally identical to the imperative builders in queries.cc — same
// stage names, stream names, operator chains, and UDFs (the named
// functions in udfs.h back both paths). tests/plan_nexmark_parity_test.cc
// holds that equivalence as the correctness oracle.
#ifndef IMPELLER_SRC_NEXMARK_PLAN_QUERIES_H_
#define IMPELLER_SRC_NEXMARK_PLAN_QUERIES_H_

#include "src/nexmark/queries.h"
#include "src/plan/explain.h"
#include "src/plan/ir.h"
#include "src/plan/lowering.h"
#include "src/plan/optimizer.h"
#include "src/plan/registry.h"

namespace impeller {
namespace nexmark {

// Registry mapping every NEXMark UDF handle to the shared named functions
// in udfs.h. Traits are left conservative: NEXMark plans are already
// hand-optimal, so pushdown/pruning must (and do) leave them untouched.
plan::UdfRegistry NexmarkUdfRegistry();

// The logical (pre-optimization) plan for query `number` (1-8).
Result<plan::LogicalPlan> BuildNexmarkLogicalPlan(
    int number, const NexmarkQueryOptions& options = {});

struct NexmarkPlanQuery {
  plan::LogicalPlan logical;
  plan::LoweredPlan lowered;
};

// Full pipeline: build the logical plan, run the optimizer (`fuse` false =
// every operator its own stage, the ablation baseline), lower it.
Result<NexmarkPlanQuery> BuildNexmarkPlanQuery(
    int number, const NexmarkQueryOptions& options = {}, bool fuse = true);

// Name of the lowered stage carrying the sink (its egress stream is
// "<query>.<stage>.out"). With fusion on this equals NexmarkSinkStage().
Result<std::string> PlanSinkStage(const plan::LoweredPlan& lowered);

}  // namespace nexmark
}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_PLAN_QUERIES_H_
