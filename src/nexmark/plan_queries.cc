#include "src/nexmark/plan_queries.h"

#include "src/nexmark/udfs.h"

namespace impeller {
namespace nexmark {

plan::UdfRegistry NexmarkUdfRegistry() {
  plan::UdfRegistry reg;
  // Traits stay conservative (reads everything) on purpose: these UDFs
  // decode whole event payloads, so no rewrite past them is provable.
  reg.RegisterPredicate("non_empty", NonEmptyValue);
  reg.RegisterPredicate("bid_on_sampled_auction", BidOnSampledAuction);
  reg.RegisterPredicate("auction_in_category10", AuctionInCategory10);
  reg.RegisterPredicate("person_in_or_id_ca", PersonInOrIdCa);

  reg.RegisterMap("usd_to_eur", ConvertUsdToEur);
  reg.RegisterMap("pack_q5_window_count", PackQ5WindowCount);

  reg.RegisterKey("auction_seller", AuctionSellerKey);
  reg.RegisterKey("auction_id", AuctionIdKey);
  reg.RegisterKey("person_id", PersonIdKey);
  reg.RegisterKey("bid_auction", BidAuctionKey);
  reg.RegisterKey("joined_row_state", JoinedRowStateKey);
  reg.RegisterKey("win_category", WinCategoryKey);
  reg.RegisterKey("win_seller", WinSellerKey);
  reg.RegisterKey("win_auction", WinAuctionKey);
  reg.RegisterKey("q5_window_start", Q5WindowStartKey);
  reg.RegisterKey("window_start", WindowStartKey);
  reg.RegisterKey("record_key", RecordKey);

  reg.RegisterJoin("auction_x_person", JoinAuctionWithPerson);
  reg.RegisterJoin("bid_x_auction", JoinBidWithAuction);
  reg.RegisterJoin("person_x_auction", JoinPersonWithAuction);

  reg.RegisterAggregate("count", CountAgg());
  reg.RegisterAggregate("max_win", MaxWinAgg());
  reg.RegisterAggregate("avg_price", AvgPriceAgg());
  reg.RegisterAggregate("last10_wins", Last10WinsAgg());
  reg.RegisterAggregate("hottest_auction", HottestAuctionAgg());
  reg.RegisterAggregate("max_bid", MaxBidAgg());
  reg.RegisterAggregate("max_of_window_max", MaxOfWindowMaxAgg());
  return reg;
}

namespace {

using plan::PlanBuilder;

PlanBuilder MakePlanBuilder(int number, const NexmarkQueryOptions& opt) {
  return PlanBuilder("q" + std::to_string(number), opt.tasks_per_stage);
}

Result<plan::LogicalPlan> PlanQ1(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(1, opt);
  auto bids = pb.Source("bids");
  auto f = pb.Filter(bids, "non_empty").Stage("convert");
  auto m = pb.Map(f, "usd_to_eur");
  pb.Sink(m, "q1");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ2(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(2, opt);
  auto bids = pb.Source("bids");
  auto f = pb.Filter(bids, "bid_on_sampled_auction").Stage("filter");
  pb.Sink(f, "q2");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ3(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(3, opt);
  auto auctions = pb.Source("auctions");
  auto persons = pb.Source("persons");
  auto fa = pb.Filter(auctions, "auction_in_category10").Stage("fa");
  auto ka = pb.KeyBy(fa, "auction_seller").Via("q3.auct");
  auto fp = pb.Filter(persons, "person_in_or_id_ca").Stage("fp");
  auto kp = pb.KeyBy(fp, "person_id").Via("q3.pers");
  auto j =
      pb.JoinTables(ka, kp, "q3j", "auction_x_person").Stage("join");
  auto ks = pb.KeyBy(j, "joined_row_state").Via("q3.bystate");
  auto agg = pb.Aggregate(ks, "q3cnt", "count").Stage("agg");
  pb.Sink(agg, "q3");
  return pb.Build();
}

// Shared Q4/Q6 prefix: key auctions by id and bids by auction, windowed
// stream-stream join (bids = input 0), running max (winning) bid. Returns
// the max-win aggregate node, to be re-keyed per query.
PlanBuilder::NodeRef AddWinningBidPlan(PlanBuilder& pb,
                                       const NexmarkQueryOptions& opt,
                                       const std::string& prefix) {
  auto bids = pb.Source("bids");
  auto auctions = pb.Source("auctions");
  auto ka = pb.KeyBy(auctions, "auction_id").Stage("ka").Via(prefix + ".A");
  auto kb = pb.KeyBy(bids, "bid_auction").Stage("kb").Via(prefix + ".B");
  auto j = pb.JoinStreams(kb, ka, prefix + "j", opt.join_window,
                          "bid_x_auction", opt.allowed_lateness)
               .Stage("winbid");
  auto f = pb.Filter(j, "non_empty");
  return pb.Aggregate(f, prefix + "max", "max_win");
}

Result<plan::LogicalPlan> PlanQ4(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(4, opt);
  auto maxed = AddWinningBidPlan(pb, opt, "q4");
  auto kc = pb.KeyBy(maxed, "win_category").Via("q4.maxed");
  auto avg = pb.TableAggregate(kc, "q4avg", /*group_key=*/"record_key",
                               "avg_price", /*row_key=*/"win_auction")
                 .Stage("avg");
  pb.Sink(avg, "q4");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ5(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(5, opt);
  auto bids = pb.Source("bids");
  auto f = pb.Filter(bids, "non_empty").Stage("kb");
  auto kb = pb.KeyBy(f, "bid_auction").Via("q5.byauction");
  auto w = pb.WindowAggregate(kb, "q5w",
                              WindowSpec::Sliding(opt.q5_window, opt.q5_slide),
                              "count", opt.allowed_lateness,
                              WindowEmitMode::kEagerSuppressed)
               .Stage("win");
  auto m = pb.Map(w, "pack_q5_window_count");
  auto kw = pb.KeyBy(m, "q5_window_start").Via("q5.counts");
  auto max = pb.Aggregate(kw, "q5max", "hottest_auction").Stage("max");
  pb.Sink(max, "q5");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ6(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(6, opt);
  auto maxed = AddWinningBidPlan(pb, opt, "q6");
  auto ks = pb.KeyBy(maxed, "win_seller").Via("q6.wins");
  auto avg = pb.Aggregate(ks, "q6ring", "last10_wins").Stage("avg10");
  pb.Sink(avg, "q6");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ7(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(7, opt);
  auto bids = pb.Source("bids");
  auto f = pb.Filter(bids, "non_empty").Stage("win");
  auto w = pb.WindowAggregate(f, "q7w", WindowSpec::Tumbling(opt.q7_window),
                              "max_bid", opt.allowed_lateness,
                              WindowEmitMode::kEagerSuppressed);
  auto kw = pb.KeyBy(w, "window_start").Via("q7.partial");
  auto max = pb.Aggregate(kw, "q7max", "max_of_window_max").Stage("max");
  pb.Sink(max, "q7");
  return pb.Build();
}

Result<plan::LogicalPlan> PlanQ8(const NexmarkQueryOptions& opt) {
  PlanBuilder pb = MakePlanBuilder(8, opt);
  auto persons = pb.Source("persons");
  auto auctions = pb.Source("auctions");
  auto kp = pb.KeyBy(persons, "person_id").Stage("kp").Via("q8.P");
  auto ka = pb.KeyBy(auctions, "auction_seller").Stage("ka").Via("q8.A");
  auto j = pb.JoinStreams(kp, ka, "q8j", opt.q8_window, "person_x_auction",
                          opt.allowed_lateness)
               .Stage("join");
  auto agg = pb.Aggregate(j, "q8cnt", "count");
  pb.Sink(agg, "q8");
  return pb.Build();
}

}  // namespace

Result<plan::LogicalPlan> BuildNexmarkLogicalPlan(
    int number, const NexmarkQueryOptions& options) {
  switch (number) {
    case 1:
      return PlanQ1(options);
    case 2:
      return PlanQ2(options);
    case 3:
      return PlanQ3(options);
    case 4:
      return PlanQ4(options);
    case 5:
      return PlanQ5(options);
    case 6:
      return PlanQ6(options);
    case 7:
      return PlanQ7(options);
    case 8:
      return PlanQ8(options);
    default:
      return InvalidArgumentError("NEXMark queries are numbered 1-8");
  }
}

Result<NexmarkPlanQuery> BuildNexmarkPlanQuery(
    int number, const NexmarkQueryOptions& options, bool fuse) {
  NexmarkPlanQuery out;
  IMPELLER_ASSIGN_OR_RETURN(out.logical,
                            BuildNexmarkLogicalPlan(number, options));
  plan::UdfRegistry registry = NexmarkUdfRegistry();
  IMPELLER_ASSIGN_OR_RETURN(plan::OptimizedPlan optimized,
                            plan::Optimizer::Default(fuse).Run(out.logical,
                                                               registry));
  IMPELLER_ASSIGN_OR_RETURN(out.lowered,
                            plan::LowerPlan(optimized, registry));
  return out;
}

Result<std::string> PlanSinkStage(const plan::LoweredPlan& lowered) {
  for (const auto& stage : lowered.stages) {
    for (const auto& output : stage.outputs) {
      const StreamSpec* spec = lowered.query.FindStream(output);
      if (spec != nullptr && spec->egress) {
        return stage.name;
      }
    }
  }
  return NotFoundError("plan '" + lowered.query.name +
                       "' has no sinking stage");
}

}  // namespace nexmark
}  // namespace impeller
