// NEXMark queries Q1-Q8 built on Impeller's public query API, with the
// operator mix of the paper's Table 3. Window durations default to the
// paper's where practical and are configurable for scaled-down runs.
#ifndef IMPELLER_SRC_NEXMARK_QUERIES_H_
#define IMPELLER_SRC_NEXMARK_QUERIES_H_

#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/query.h"

namespace impeller {

struct NexmarkQueryOptions {
  uint32_t tasks_per_stage = 2;
  // Q5: auctions with the most bids over `q5_window`, updated every
  // `q5_slide` (paper: 10 s / 2 s).
  DurationNs q5_window = 10 * kSecond;
  DurationNs q5_slide = 2 * kSecond;
  // Q7: highest bid per tumbling window (paper: 1 minute; scaled down by
  // default so benchmark points finish in seconds).
  DurationNs q7_window = 10 * kSecond;
  // Q8: persons joined with their new auctions within this window (paper:
  // 10 s).
  DurationNs q8_window = 10 * kSecond;
  // Q4/Q6: bid-auction stream-stream join window.
  DurationNs join_window = 10 * kSecond;
  DurationNs allowed_lateness = 100 * kMillisecond;
};

// Builds the plan for NEXMark query `number` (1-8).
Result<QueryPlan> BuildNexmarkQuery(int number,
                                    const NexmarkQueryOptions& options = {});

// Ingress streams the query consumes (subset of {"bids", "auctions",
// "persons"}).
std::vector<std::string> NexmarkIngressStreams(int number);

// The sink metric name ("q<N>"): latency histogram "lat/q<N>", output
// counter "out/q<N>".
std::string NexmarkSinkName(int number);

// Name of the final (sinking) stage of the query.
std::string NexmarkSinkStage(int number);

}  // namespace impeller

#endif  // IMPELLER_SRC_NEXMARK_QUERIES_H_
