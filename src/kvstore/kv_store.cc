#include "src/kvstore/kv_store.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/fault/fault.h"
#include "src/obs/trace.h"

namespace impeller {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
}  // namespace

KvStore::KvStore(KvStoreOptions options) : options_(std::move(options)) {
  if (options_.clock == nullptr) {
    options_.clock = MonotonicClock::Get();
  }
  clock_ = options_.clock;
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<ZeroLatencyModel>();
  }
  if (!options_.wal_path.empty()) {
    wal_ = std::fopen(options_.wal_path.c_str(), "ab+");
    if (wal_ == nullptr) {
      LOG_ERROR << "cannot open WAL " << options_.wal_path << ": "
                << std::strerror(errno);
    }
  }
}

KvStore::~KvStore() {
  if (wal_ != nullptr) {
    std::fclose(wal_);
  }
}

Status KvStore::Recover() {
  TRACE_SPAN("kv", "recover");
  if (options_.wal_path.empty()) {
    return OkStatus();
  }
  std::FILE* f = std::fopen(options_.wal_path.c_str(), "rb");
  if (f == nullptr) {
    return OkStatus();  // nothing to recover
  }
  std::string content;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);

  std::lock_guard<std::mutex> lock(mu_);
  data_.clear();
  size_t pos = 0;
  while (pos + 4 <= content.size()) {
    uint32_t len = 0;
    std::memcpy(&len, content.data() + pos, 4);
    if (pos + 4 + len + 8 > content.size()) {
      break;  // torn tail record: ignore, matching WAL semantics
    }
    std::string_view body(content.data() + pos + 4, len);
    uint64_t stored_sum = 0;
    std::memcpy(&stored_sum, content.data() + pos + 4 + len, 8);
    if (Fnv1a(body) != stored_sum) {
      LOG_WARN << "WAL checksum mismatch at byte " << pos << "; truncating";
      break;
    }
    BinaryReader reader(body);
    bool ok = true;
    while (!reader.AtEnd() && ok) {
      auto op = reader.ReadU8();
      auto key = reader.ReadString();
      if (!op.ok() || !key.ok()) {
        ok = false;
        break;
      }
      if (*op == kOpPut) {
        auto value = reader.ReadString();
        if (!value.ok()) {
          ok = false;
          break;
        }
        data_[*key] = *value;
      } else if (*op == kOpDelete) {
        data_.erase(*key);
      } else {
        ok = false;
      }
    }
    if (!ok) {
      return DataLossError("corrupt WAL record");
    }
    pos += 4 + len + 8;
  }
  return OkStatus();
}

Status KvStore::AppendWal(const std::vector<KvWriteOp>& ops) {
  if (wal_ == nullptr) {
    return OkStatus();
  }
  // Assemble the whole [len][body][checksum] frame in one reused buffer and
  // hand it to fwrite in a single call. The on-disk bytes are identical to
  // the previous three-write encoding.
  wal_frame_.clear();
  wal_frame_.resize(4);  // length prefix, patched once the body is encoded
  {
    BinaryWriter writer(&wal_frame_);
    for (const auto& op : ops) {
      if (op.value.has_value()) {
        writer.WriteU8(kOpPut);
        writer.WriteString(op.key);
        writer.WriteString(*op.value);
      } else {
        writer.WriteU8(kOpDelete);
        writer.WriteString(op.key);
      }
    }
  }
  uint32_t len = static_cast<uint32_t>(wal_frame_.size() - 4);
  uint64_t sum = Fnv1a(std::string_view(wal_frame_).substr(4));
  std::memcpy(wal_frame_.data(), &len, 4);
  wal_frame_.append(reinterpret_cast<const char*>(&sum), 8);
  if (std::fwrite(wal_frame_.data(), 1, wal_frame_.size(), wal_) !=
      wal_frame_.size()) {
    return InternalError("WAL write failed");
  }
  std::fflush(wal_);
  if (options_.fsync_writes) {
    ::fsync(fileno(wal_));
  }
  bytes_written_ += wal_frame_.size();
  return OkStatus();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  std::vector<KvWriteOp> ops;
  ops.push_back({std::string(key), std::string(value)});
  return WriteBatch(std::move(ops));
}

Status KvStore::Delete(std::string_view key) {
  std::vector<KvWriteOp> ops;
  ops.push_back({std::string(key), std::nullopt});
  return WriteBatch(std::move(ops));
}

Status KvStore::WriteBatch(std::vector<KvWriteOp> ops) {
  if (ops.empty()) {
    return OkStatus();
  }
  // Covers the WAL append plus the modeled synchronous remote-write wait —
  // the cost aligned checkpointing pays per snapshot (§5.3.3).
  TRACE_SPAN("kv", "write_batch");
  // Fault probe: a transient store error aborts the write before any state
  // changes (checkpoint paths abandon the snapshot and retry later); a delay
  // widens the window in which a fenced-off zombie can race a checkpoint.
  if (auto f = IMPELLER_FAULT_PROBE("kv/write", ops.front().key,
                                    fault::kNoLsn)) {
    if (f.kind == fault::FaultKind::kError) {
      return UnavailableError("injected kv write failure");
    }
    if (f.kind == fault::FaultKind::kDelay) {
      clock_->SleepFor(f.delay);
    }
  }
  size_t bytes = 0;
  for (const auto& op : ops) {
    bytes += op.key.size() + (op.value ? op.value->size() : 0);
  }
  LatencySample latency = options_.latency->SampleAppend(bytes, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    IMPELLER_RETURN_IF_ERROR(AppendWal(ops));
    for (auto& op : ops) {
      if (op.value.has_value()) {
        data_[std::move(op.key)] = std::move(*op.value);
      } else {
        data_.erase(op.key);
      }
    }
  }
  // Synchronous remote write: the caller waits for durability.
  clock_->SleepFor(latency.ack + latency.delivery);
  return OkStatus();
}

Result<std::string> KvStore::Get(std::string_view key) const {
  TRACE_SPAN("kv", "get");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(std::string(key));
  if (it == data_.end()) {
    return NotFoundError("no key " + std::string(key));
  }
  return it->second;
}

bool KvStore::Contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.count(std::string(key)) != 0;
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = data_.lower_bound(std::string(prefix)); it != data_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t KvStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

uint64_t KvStore::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

}  // namespace impeller
