// Durable key-value store standing in for Kvrocks as Impeller's checkpoint
// store (paper §3.5, §5.1). Writes are synchronous: each mutation is
// appended to a write-ahead log file (when configured) and charged the
// modeled remote-write latency, matching the paper's "synchronously flush
// appends to its write-ahead log" configuration. Recovery replays the WAL.
#ifndef IMPELLER_SRC_KVSTORE_KV_STORE_H_
#define IMPELLER_SRC_KVSTORE_KV_STORE_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/sharedlog/latency_model.h"

namespace impeller {

struct KvStoreOptions {
  // Path for the write-ahead log; empty keeps the store memory-only (unit
  // tests) while still charging write latency.
  std::string wal_path;
  // fsync after every batch. Expensive; benchmarks rely on the latency
  // model instead and keep this off.
  bool fsync_writes = false;
  // Latency charged per write batch (models the network + remote WAL
  // flush). Defaults to zero latency.
  std::shared_ptr<LatencyModel> latency;
  Clock* clock = nullptr;
};

struct KvWriteOp {
  std::string key;
  std::optional<std::string> value;  // nullopt = delete
};

class KvStore {
 public:
  explicit KvStore(KvStoreOptions options = {});
  ~KvStore();

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // Replays an existing WAL into memory. Call once before use when opening
  // a store over a pre-existing file.
  Status Recover();

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  // Atomic multi-key batch with one charged write latency.
  Status WriteBatch(std::vector<KvWriteOp> ops);

  Result<std::string> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;

  // All key-value pairs whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      std::string_view prefix) const;

  size_t size() const;
  uint64_t bytes_written() const;

 private:
  Status AppendWal(const std::vector<KvWriteOp>& ops);

  KvStoreOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::map<std::string, std::string> data_;
  std::FILE* wal_ = nullptr;
  // Reused frame scratch for AppendWal (guarded by mu_): the full
  // [len][body][checksum] frame is assembled here and written with one
  // fwrite, so steady-state WAL appends neither allocate nor split writes.
  std::string wal_frame_;
  uint64_t bytes_written_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_KVSTORE_KV_STORE_H_
