#include "src/core/task_runtime.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/stream.h"
#include "src/fault/fault.h"
#include "src/obs/alloc_stats.h"
#include "src/obs/trace.h"
#include "src/protocols/barrier_coordinator.h"
#include "src/protocols/txn_coordinator.h"

namespace impeller {

namespace {

std::string AlignedSnapshotKey(std::string_view task_id, uint64_t ckpt_id) {
  return "actl/" + std::string(task_id) + "/" + std::to_string(ckpt_id);
}

}  // namespace

// Routes an operator's emissions: output 0 feeds the next operator in the
// chain; outputs > 0 bypass the rest of the chain and go straight to the
// stage's output streams (how Branch fans out mid-chain).
class TaskRuntime::ChainCollector final : public Collector {
 public:
  ChainCollector(TaskRuntime* rt, size_t next) : rt_(rt), next_(next) {}
  void EmitTo(uint32_t output, StreamRecord record) override {
    if (output == 0) {
      rt_->operators_[next_]->Process(0, std::move(record),
                                      rt_->collectors_[next_].get());
    } else {
      rt_->EmitOutput(output, std::move(record));
    }
  }

 private:
  TaskRuntime* rt_;
  size_t next_;
};

// Terminal collector: every emission targets a stage output stream.
class TaskRuntime::StageCollector final : public Collector {
 public:
  explicit StageCollector(TaskRuntime* rt) : rt_(rt) {}
  void EmitTo(uint32_t output, StreamRecord record) override {
    rt_->EmitOutput(output, std::move(record));
  }

 private:
  TaskRuntime* rt_;
};

TaskRuntime::TaskRuntime(TaskWiring wiring)
    : wiring_(std::move(wiring)),
      task_id_(MakeTaskId(wiring_.plan->name, wiring_.stage->name,
                          wiring_.index)),
      tracker_(wiring_.config.protocol == ProtocolKind::kProgressMarking ||
               wiring_.config.protocol == ProtocolKind::kKafkaTxn),
      retrier_(wiring_.config.retry,
               wiring_.instance * 0x9E3779B97F4A7C15ull + wiring_.index,
               wiring_.clock, wiring_.metrics),
      output_buffer_(wiring_.log, wiring_.config.output_buffer_bytes,
                     &retrier_) {
  uses_markers_ = tracker_.read_committed();
  capture_changes_ = uses_markers_ && wiring_.stage->stateful;
  changelog_tag_ = ChangeLogTag(task_id_);
}

TaskRuntime::~TaskRuntime() = default;

Status TaskRuntime::final_status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return final_status_;
}

MapStateStore* TaskRuntime::GetStore(std::string_view name) {
  auto& slot = stores_[std::string(name)];
  if (slot == nullptr) {
    ChangeSink sink;
    if (capture_changes_) {
      sink = [this](const ChangeLogView& change) { OnStateChange(change); };
    }
    slot = std::make_unique<MapStateStore>(std::string(name), std::move(sink),
                                           &current_substream_);
  }
  return slot.get();
}

void TaskRuntime::OnStateChange(const ChangeLogView& change) {
  // Encoded straight into the output buffer's contiguous flush buffer: no
  // intermediate body / envelope / payload strings.
  BinaryWriter& w =
      output_buffer_.StartRecord(OutputBuffer::Kind::kChangeLog,
                                 changelog_tag_);
  AppendEnvelopeHeader(w, RecordType::kChangeLog, task_id_, wiring_.instance,
                       ++out_seq_);
  AppendChangeLogBody(w, change);
  output_buffer_.FinishRecord();
  epoch_touched_tags_.insert(changelog_tag_);
  epoch_dirty_ = true;
}

void TaskRuntime::EmitOutput(uint32_t output, StreamRecord record) {
  if (output >= wiring_.stage->outputs.size()) {
    LOG_ERROR << task_id_ << ": emission to undeclared output " << output;
    return;
  }
  const OutputSpec& spec = wiring_.stage->outputs[output];
  // Routing tags were precomputed at recovery; their count is the stream's
  // substream count, so no per-record plan lookups or tag building here.
  const std::vector<std::string>& tags = output_tags_[output];
  const uint32_t num_substreams = static_cast<uint32_t>(tags.size());
  uint32_t sub;
  if (output_is_egress_[output]) {
    sub = wiring_.index;  // egress: one substream per sinking task
  } else if (spec.partitioner) {
    sub = spec.partitioner(record.key, num_substreams);
  } else {
    sub = HashPartition(record.key, num_substreams);
  }
  BinaryWriter& w =
      output_buffer_.StartRecord(OutputBuffer::Kind::kOutput, tags[sub]);
  AppendEnvelopeHeader(w, RecordType::kData, task_id_, wiring_.instance,
                       ++out_seq_);
  AppendDataBody(w, record.key, record.value, record.event_time);
  output_buffer_.FinishRecord();
  epoch_touched_tags_.insert(tags[sub]);
  epoch_dirty_ = true;
  // Recycle the record's string capacity for the next input record.
  record_pool_.Release(std::move(record.key));
  record_pool_.Release(std::move(record.value));
}

std::vector<std::pair<std::string, Lsn>> TaskRuntime::CurrentInputEnds()
    const {
  std::vector<std::pair<std::string, Lsn>> ends;
  ends.reserve(readers_.size());
  for (const auto& reader : readers_) {
    ends.emplace_back(reader->tag(), reader->committed_floor());
  }
  return ends;
}

std::vector<std::string> TaskRuntime::DownstreamMarkerTags() const {
  std::vector<std::string> tags;
  for (const OutputSpec& out : wiring_.stage->outputs) {
    const StreamSpec& stream = wiring_.plan->streams.at(out.stream);
    for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
      tags.push_back(DataTag(out.stream, sub));
    }
  }
  tags.push_back(TaskLogTag(task_id_));
  if (capture_changes_) {
    tags.push_back(ChangeLogTag(task_id_));
  }
  return tags;
}

void TaskRuntime::PublishGcFloors() {
  if (wiring_.gc == nullptr) {
    return;
  }
  for (const auto& reader : readers_) {
    Lsn floor = reader->committed_floor();
    wiring_.gc->PublishFloor(task_id_ + "/in/" + reader->tag(),
                             floor == kInvalidLsn ? 0 : floor + 1);
  }
}

// --- Recovery ---

Status TaskRuntime::Recover() {
  TRACE_SPAN("task", "recover");
  TimeNs t0 = wiring_.clock->Now();

  for (const auto& factory : wiring_.stage->operators) {
    operators_.push_back(factory());
  }
  collectors_.reserve(operators_.size());
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (i + 1 < operators_.size()) {
      collectors_.push_back(std::make_unique<ChainCollector>(this, i + 1));
    } else {
      collectors_.push_back(std::make_unique<StageCollector>(this));
    }
  }

  // One reader per assigned substream of each input stream: task i owns
  // every substream s with s % num_tasks == i, so a stage over-partitioned
  // with WithSubstreams can later rescale without repartitioning upstream.
  for (size_t i = 0; i < wiring_.stage->inputs.size(); ++i) {
    const std::string& stream_name = wiring_.stage->inputs[i];
    const StreamSpec& stream = wiring_.plan->streams.at(stream_name);
    for (uint32_t sub = wiring_.index; sub < stream.num_substreams;
         sub += wiring_.stage->num_tasks) {
      readers_.push_back(std::make_unique<SubstreamReader>(
          wiring_.log, DataTag(stream_name, sub), static_cast<uint32_t>(i),
          &tracker_, /*start_lsn=*/0));
      reader_substreams_.push_back(sub);
      input_external_.push_back(stream.external);
      if (stream.external) {
        expected_barriers_.push_back(1);  // the coordinator's barrier
      } else {
        expected_barriers_.push_back(static_cast<uint32_t>(
            wiring_.plan->ProducersOf(stream_name).size()));
      }
    }
  }
  output_is_egress_.reserve(wiring_.stage->outputs.size());
  output_tags_.reserve(wiring_.stage->outputs.size());
  for (const OutputSpec& out : wiring_.stage->outputs) {
    const StreamSpec& stream = wiring_.plan->streams.at(out.stream);
    output_is_egress_.push_back(stream.egress);
    std::vector<std::string> tags;
    tags.reserve(stream.num_substreams);
    for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
      tags.push_back(DataTag(out.stream, sub));
    }
    output_tags_.push_back(std::move(tags));
  }
  reader_hooks_.on_barrier = nullptr;  // barriers handled via pending queue

  for (size_t i = 0; i < operators_.size(); ++i) {
    operators_[i]->Open(this);
  }

  Status st = OkStatus();
  switch (wiring_.config.protocol) {
    case ProtocolKind::kProgressMarking:
    case ProtocolKind::kKafkaTxn:
      st = RecoverFromMarker();
      break;
    case ProtocolKind::kAlignedCheckpoint: {
      bool use_handoff = wiring_.direct_handoff != nullptr;
      if (use_handoff) {
        // A checkpoint completed after the rescale supersedes the handoff:
        // its snapshot (state + cursors + out_seq) is the newer recovery
        // point for this task id.
        auto id = BarrierCoordinator::ReadCompletedId(
            wiring_.checkpoint_store, wiring_.plan->name);
        if (id.ok() && *id > wiring_.direct_handoff->completed_ckpt_at_handoff) {
          use_handoff = false;
        }
      }
      st = use_handoff ? RestoreDirectHandoff() : RecoverAligned();
      break;
    }
    case ProtocolKind::kUnsafe:
      // No progress tracking: start from the beginning — unless a rescale
      // handed over the old generation's state and cursors.
      if (wiring_.direct_handoff != nullptr) {
        st = RestoreDirectHandoff();
      }
      break;
  }
  if (!st.ok()) {
    return st;
  }

  // Rescale handoff: the manager collected every substream's consumed end
  // from the previous generation's final markers (substream ownership may
  // have moved between tasks, so our own task log is not authoritative).
  // The entry retains the handoff across monitor restarts, so these ends
  // may be stale by the time we run: once the task has committed its own
  // post-rescale cut (or checkpoint), the recovery above already positioned
  // the readers past them. Only ever advance a cursor — rewinding would
  // re-process records whose effects are already in the restored state and
  // re-emit them under fresh sequence numbers downstream dedup cannot
  // filter.
  if (!wiring_.initial_input_ends.empty()) {
    for (auto& reader : readers_) {
      auto it = wiring_.initial_input_ends.find(reader->tag());
      if (it != wiring_.initial_input_ends.end() &&
          it->second != kInvalidLsn && it->second + 1 > reader->next_lsn()) {
        reader->Restore(it->second + 1, it->second);
      }
    }
  }

  // Stateful rescale under a marker protocol: claim this task's substream
  // range from the old generation's changelogs. Skipped once our own first
  // post-rescale cut sealed the handoff.
  if (capture_changes_ && HandoffPending()) {
    IMPELLER_RETURN_IF_ERROR(PerformMarkerHandoff());
  }

  if (wiring_.gc != nullptr && capture_changes_ &&
      !wiring_.config.enable_checkpointing) {
    // Without checkpointing the entire change log must survive.
    wiring_.gc->PublishFloor(task_id_ + "/clog", 0);
  }
  last_input_ends_ = CurrentInputEnds();
  PublishGcFloors();
  PublishProgress();
  recovery_stats_.duration = wiring_.clock->Now() - t0;
  return OkStatus();
}

Status TaskRuntime::RecoverFromMarker() {
  auto last = wiring_.log->ReadLast(TaskLogTag(task_id_));
  if (!last.ok()) {
    if (last.status().code() == StatusCode::kNotFound) {
      return OkStatus();  // fresh start
    }
    return last.status();
  }
  auto env = DecodeEnvelope(last->payload);
  if (!env.ok()) {
    return env.status();
  }
  auto cut = ExtractCut(*env, last->lsn, task_id_);
  if (!cut.ok()) {
    return cut.status();
  }
  if (!cut->has_value()) {
    return InternalError("task-log tail is not a commit cut");
  }
  const CutInfo& info = **cut;
  recovery_stats_.performed = true;
  recovered_cut_lsn_ = info.lsn;
  marker_seq_ = info.marker_seq + 1;

  for (auto& reader : readers_) {
    for (const auto& [tag, end] : info.input_ends) {
      if (tag == reader->tag()) {
        if (end != kInvalidLsn) {
          reader->Restore(end + 1, end);
        }
        break;
      }
    }
  }

  if (!capture_changes_) {
    return OkStatus();
  }
  if (HandoffPending()) {
    // State comes from the handoff sources' changelogs, not our own
    // pre-rescale log (substream ownership moved between tasks).
    return OkStatus();
  }

  // Entries for substreams this generation does not own are someone else's
  // after a rescale; unowned entries belong to our own default substream.
  OwnerFilter keep_owned = [this](uint32_t& owner) {
    return ClaimOwner(owner, wiring_.index);
  };

  // Restore from the latest checkpoint, then replay the remaining change
  // log up to the marker (paper §3.3.4 / §3.5).
  Lsn replay_from = 0;
  auto meta_raw = wiring_.checkpoint_store->Get(CheckpointMetaKey(task_id_));
  if (meta_raw.ok()) {
    auto meta = DecodeCheckpointMeta(*meta_raw);
    if (meta.ok() && meta->cut_lsn != kInvalidLsn &&
        meta->cut_lsn <= info.lsn) {
      auto blob = wiring_.checkpoint_store->Get(CheckpointBlobKey(task_id_));
      if (blob.ok()) {
        auto sections = DecodeSnapshot(*blob);
        if (!sections.ok()) {
          return sections.status();
        }
        for (const auto& [name, data] : *sections) {
          constexpr std::string_view kStorePrefix = "store/";
          if (name.rfind(kStorePrefix, 0) == 0) {
            IMPELLER_RETURN_IF_ERROR(
                GetStore(name.substr(kStorePrefix.size()))
                    ->MergeSnapshot(data, keep_owned));
          }
        }
        replay_from = meta->next_replay_lsn;
        recovery_stats_.used_checkpoint = true;
      }
    }
  }
  if (replay_from <= info.lsn) {
    auto stats = ReplayChangelog(
        wiring_.log, task_id_, replay_from, info.lsn, info.txn_id,
        [this](const ChangeLogView& change) {
          uint32_t owner = change.substream;
          if (!ClaimOwner(owner, wiring_.index)) {
            return;
          }
          ChangeLogView normalized = change;
          normalized.substream = owner;
          GetStore(change.store)->ApplyChange(normalized);
        });
    if (!stats.ok()) {
      return stats.status();
    }
    recovery_stats_.changelog_entries_read = stats->entries_read;
    recovery_stats_.changes_applied = stats->changes_applied;
  }
  return OkStatus();
}

bool TaskRuntime::HandoffPending() const {
  if (wiring_.handoff_sources.empty()) {
    return false;
  }
  if (recovered_cut_lsn_ == kInvalidLsn) {
    return true;  // no post-rescale cut of our own yet
  }
  Lsn fence = 0;
  for (const auto& src : wiring_.handoff_sources) {
    if (src.cut_lsn != kInvalidLsn && src.cut_lsn > fence) {
      fence = src.cut_lsn;
    }
  }
  // Our first post-rescale cut is appended after every source's final cut,
  // so a higher own-cut LSN proves the handoff was sealed.
  return recovered_cut_lsn_ <= fence;
}

Status TaskRuntime::PerformMarkerHandoff() {
  TRACE_SPAN("task", "rescale_handoff");
  recovery_stats_.performed = true;
  for (const auto& src : wiring_.handoff_sources) {
    // A multi-source handoff replays several changelogs back to back; keep
    // the failure detector fed so it cannot mistake a long acquisition for
    // a dead task and fence the recovery mid-flight.
    heartbeat_.store(wiring_.clock->Now(), std::memory_order_relaxed);
    OwnerFilter keep = [this, &src](uint32_t& owner) {
      return ClaimOwner(owner, src.default_substream);
    };
    Lsn replay_from = 0;
    // Checkpoint acceleration: the source's checkpoint replaces the prefix
    // of its changelog as long as it does not outrun the source's final cut.
    auto meta_raw =
        wiring_.checkpoint_store->Get(CheckpointMetaKey(src.task_id));
    if (meta_raw.ok() && src.cut_lsn != kInvalidLsn) {
      auto meta = DecodeCheckpointMeta(*meta_raw);
      if (meta.ok() && meta->cut_lsn != kInvalidLsn &&
          meta->cut_lsn <= src.cut_lsn) {
        auto blob =
            wiring_.checkpoint_store->Get(CheckpointBlobKey(src.task_id));
        if (blob.ok()) {
          auto sections = DecodeSnapshot(*blob);
          if (!sections.ok()) {
            return sections.status();
          }
          for (const auto& [name, data] : *sections) {
            constexpr std::string_view kStorePrefix = "store/";
            if (name.rfind(kStorePrefix, 0) == 0) {
              IMPELLER_RETURN_IF_ERROR(
                  GetStore(name.substr(kStorePrefix.size()))
                      ->MergeSnapshot(data, keep));
            }
          }
          replay_from = meta->next_replay_lsn;
          recovery_stats_.used_checkpoint = true;
        }
      }
    }
    if (src.cut_lsn != kInvalidLsn && replay_from <= src.cut_lsn) {
      auto stats = ReplayChangelog(
          wiring_.log, src.task_id, replay_from, src.cut_lsn, src.txn_id,
          [this, &src](const ChangeLogView& change) {
            // A flood-era changelog can take longer than the failure
            // timeout to replay; stamp per entry so the monitor never
            // fences a live acquisition.
            heartbeat_.store(wiring_.clock->Now(),
                             std::memory_order_relaxed);
            uint32_t owner = change.substream;
            if (!ClaimOwner(owner, src.default_substream)) {
              return;
            }
            ChangeLogView normalized = change;
            normalized.substream = owner;
            GetStore(change.store)->ApplyChange(normalized);
          });
      if (!stats.ok()) {
        return stats.status();
      }
      recovery_stats_.changelog_entries_read += stats->entries_read;
      recovery_stats_.changes_applied += stats->changes_applied;
    }
  }
  // Ownership transfer: the acquired state is durable only in the sources'
  // changelogs, so re-append it under our own id. Our first cut then seals
  // the handoff; a crash before it leaves these appends uncommitted (no
  // covering cut — replay discards them) and a restart redoes the handoff
  // from the sources.
  if (MaybeInjectCrash("task/rescale/handoff")) {
    return UnavailableError("injected crash mid-handoff");
  }
  uint64_t bytes = 0;
  for (const auto& [name, store] : stores_) {
    store->ScanAll(
        [&](std::string_view key, std::string_view value, uint32_t owner) {
          OnStateChange(ChangeLogView{name, key, /*is_delete=*/false, value,
                                      owner});
          bytes += key.size() + value.size();
          return true;
        });
  }
  recovery_stats_.handoff_state_bytes = bytes;
  if (wiring_.metrics != nullptr) {
    wiring_.metrics->GetCounter("rescale/handoffs")->Add();
    wiring_.metrics->GetCounter("rescale/state_bytes")->Add(bytes);
  }
  return OkStatus();
}

Status TaskRuntime::RestoreDirectHandoff() {
  const DirectHandoff& handoff = *wiring_.direct_handoff;
  for (const auto& src : handoff.sources) {
    OwnerFilter keep = [this, &src](uint32_t& owner) {
      return ClaimOwner(owner, src.default_substream);
    };
    for (const auto& [name, snap] : src.stores) {
      IMPELLER_RETURN_IF_ERROR(GetStore(name)->MergeSnapshot(snap, keep));
    }
    if (src.task_id == task_id_) {
      // Continue the old generation's output sequence and dedup map: the
      // downstream duplicate filter is keyed (substream, producer) without
      // the instance, so a reset sequence would be swallowed silently.
      IMPELLER_RETURN_IF_ERROR(tracker_.RestoreSeqMap(src.seqmap));
      out_seq_ = src.out_seq;
    }
  }
  last_completed_ckpt_ = handoff.completed_ckpt_at_handoff;
  recovery_stats_.performed = true;
  return OkStatus();
}

DirectHandoff::Source TaskRuntime::ExportHandoff() const {
  DirectHandoff::Source src;
  src.task_id = task_id_;
  src.default_substream = wiring_.index;
  for (const auto& [name, store] : stores_) {
    src.stores[name] = store->SerializeSnapshot();
  }
  src.seqmap = tracker_.SerializeSeqMap();
  src.out_seq = out_seq_;
  src.input_ends = CurrentInputEnds();
  return src;
}

std::vector<std::pair<std::string, Lsn>> TaskRuntime::InputProgress() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  return progress_;
}

void TaskRuntime::PublishProgress() {
  std::lock_guard<std::mutex> lock(progress_mu_);
  if (progress_.size() != readers_.size()) {
    progress_.clear();
    progress_.reserve(readers_.size());
    for (const auto& reader : readers_) {
      progress_.emplace_back(reader->tag(), reader->committed_floor());
    }
    return;
  }
  for (size_t i = 0; i < readers_.size(); ++i) {
    progress_[i].second = readers_[i]->committed_floor();
  }
}

Status TaskRuntime::RecoverAligned() {
  auto id = BarrierCoordinator::ReadCompletedId(wiring_.checkpoint_store,
                                                wiring_.plan->name);
  if (!id.ok()) {
    return OkStatus();  // no completed checkpoint: fresh start
  }
  auto blob =
      wiring_.checkpoint_store->Get(AlignedSnapshotKey(task_id_, *id));
  if (!blob.ok()) {
    return OkStatus();  // this task never participated in that checkpoint
  }
  auto sections = DecodeSnapshot(*blob);
  if (!sections.ok()) {
    return sections.status();
  }
  for (const auto& [name, data] : *sections) {
    constexpr std::string_view kStorePrefix = "store/";
    if (name.rfind(kStorePrefix, 0) == 0) {
      IMPELLER_RETURN_IF_ERROR(
          GetStore(name.substr(kStorePrefix.size()))->RestoreSnapshot(data));
    } else if (name == "seqmap") {
      IMPELLER_RETURN_IF_ERROR(tracker_.RestoreSeqMap(data));
    } else if (name == "outseq") {
      BinaryReader r(data);
      auto seq = r.ReadVarU64();
      if (!seq.ok()) {
        return seq.status();
      }
      out_seq_ = *seq;
    } else if (name == "cursors") {
      BinaryReader r(data);
      auto n = r.ReadVarU64();
      if (!n.ok()) {
        return n.status();
      }
      for (uint64_t i = 0; i < *n; ++i) {
        auto tag = r.ReadString();
        auto lsn = r.ReadVarU64();
        if (!tag.ok() || !lsn.ok()) {
          return DataLossError("corrupt cursor section");
        }
        for (auto& reader : readers_) {
          if (reader->tag() == *tag) {
            reader->Restore(*lsn, *lsn == 0 ? kInvalidLsn : *lsn - 1);
          }
        }
      }
    }
  }
  last_completed_ckpt_ = *id;
  recovery_stats_.performed = true;
  recovery_stats_.used_checkpoint = true;
  return OkStatus();
}

// --- Input path ---

Result<size_t> TaskRuntime::PollInputs() {
  size_t total = 0;
  for (size_t slot = 0; slot < readers_.size(); ++slot) {
    // Only a crash aborts mid-poll: a graceful stop still drains (the
    // shutdown path relies on polling remaining committed input).
    if (Crashed()) {
      break;
    }
    SubstreamReader& reader = *readers_[slot];
    ready_scratch_.clear();
    pending_barriers_.clear();
    if (wiring_.config.protocol == ProtocolKind::kAlignedCheckpoint) {
      reader_hooks_.on_barrier = [this, slot](uint32_t,
                                              const EnvelopeView& h,
                                              const BarrierBody& b, Lsn lsn) {
        pending_barriers_.push_back({ready_scratch_.size(), slot,
                                     std::string(h.producer), b.checkpoint_id,
                                     lsn});
      };
    }
    auto n = reader.Poll(wiring_.config.max_records_per_poll,
                         &ready_scratch_, reader_hooks_);
    if (!n.ok()) {
      return n.status();
    }
    total += *n;
    // Interleave barrier application with record processing in the order
    // they appeared on the substream.
    size_t barrier_idx = 0;
    for (size_t i = 0; i < ready_scratch_.size(); ++i) {
      while (barrier_idx < pending_barriers_.size() &&
             pending_barriers_[barrier_idx].position <= i) {
        const PendingBarrier& pb = pending_barriers_[barrier_idx++];
        OnBarrier(pb.slot, pb.producer, pb.checkpoint_id, pb.lsn);
      }
      ProcessReady(slot, std::move(ready_scratch_[i]));
    }
    while (barrier_idx < pending_barriers_.size()) {
      const PendingBarrier& pb = pending_barriers_[barrier_idx++];
      OnBarrier(pb.slot, pb.producer, pb.checkpoint_id, pb.lsn);
    }
  }
  return total;
}

void TaskRuntime::ProcessReady(size_t slot, ReadyRecord record) {
  if (align_ckpt_id_ != 0 && IsBlocked(slot, record.header.producer)) {
    sidelined_.emplace_back(slot, std::move(record));
    return;
  }
  // Materialize owning strings for the operator chain from the in-place
  // views, reusing pooled capacity so the steady state allocates nothing.
  // This is the one remaining payload copy on the read path; account it.
  StreamRecord rec;
  rec.key = record_pool_.Acquire();
  rec.key.assign(record.data.key.data(), record.data.key.size());
  rec.value = record_pool_.Acquire();
  rec.value.assign(record.data.value.data(), record.data.value.size());
  rec.event_time = record.data.event_time;
  obs::RecordBytesCopied(rec.key.size() + rec.value.size());
  max_event_time_ = std::max(max_event_time_, rec.event_time);
  records_processed_.fetch_add(1, std::memory_order_relaxed);
  epoch_dirty_ = true;
  // State written while this record runs is owned by its input substream
  // (the ownership unit of rescaling); timer writes stay unowned.
  current_substream_ = reader_substreams_[slot];
  RunRecord(record.input, std::move(rec));
  current_substream_ = kUnownedSubstream;
}

void TaskRuntime::RunRecord(uint32_t input, StreamRecord record) {
  TRACE_SPAN("task", "process_record");
  operators_[0]->Process(input, std::move(record), collectors_[0].get());
}

void TaskRuntime::RunTimers(TimeNs now) {
  TRACE_SPAN("task", "timers");
  for (size_t i = 0; i < operators_.size(); ++i) {
    operators_[i]->OnTimer(now, collectors_[i].get());
  }
}

// --- Output / commit path ---

Status TaskRuntime::ApplyFlushResult(const OutputBuffer::FlushResult& result) {
  if (result.first_output != kInvalidLsn &&
      epoch_first_output_ == kInvalidLsn) {
    epoch_first_output_ = result.first_output;
  }
  if (result.first_changelog != kInvalidLsn &&
      epoch_first_changelog_ == kInvalidLsn) {
    epoch_first_changelog_ = result.first_changelog;
  }
  return OkStatus();
}

Status TaskRuntime::MaybeFlush(bool force) {
  if (output_buffer_.empty()) {
    return OkStatus();
  }
  if (!force && !output_buffer_.NeedsFlush()) {
    return OkStatus();
  }
  if (wiring_.config.protocol == ProtocolKind::kKafkaTxn &&
      txn_inflight_.valid()) {
    if (txn_inflight_.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      // Phase two still in flight: outputs must stay buffered (§3.6). Only
      // a full buffer forces a stall.
      if (output_buffer_.pending_bytes() <
          wiring_.config.txn_inflight_buffer_bytes) {
        return OkStatus();
      }
      txn_inflight_.wait();
    }
    Status st = txn_inflight_.get();
    txn_inflight_ = {};
    IMPELLER_RETURN_IF_ERROR(st);
  }
  if (MaybeInjectCrash("task/flush/pre")) {
    return UnavailableError("injected crash before flush");
  }
  TRACE_SPAN("task", "flush");
  auto result = output_buffer_.Flush();
  if (!result.ok()) {
    return result.status();
  }
  IMPELLER_RETURN_IF_ERROR(ApplyFlushResult(*result));
  if (MaybeInjectCrash("task/flush/post")) {
    // The flush is durable in the log but no marker covers it yet: the
    // restarted instance re-executes the epoch and commit filtering (or
    // egress seq-dedup) must hide the orphaned records.
    return UnavailableError("injected crash after flush");
  }
  return OkStatus();
}

bool TaskRuntime::MaybeInjectCrash(const char* point) {
  if (auto f = IMPELLER_FAULT_PROBE(point, task_id_, fault::kNoLsn)) {
    if (f.kind == fault::FaultKind::kCrash) {
      LOG_INFO << task_id_ << ": injected crash at " << point;
      Crash();
      return true;
    }
    if (f.kind == fault::FaultKind::kDelay) {
      wiring_.clock->SleepFor(f.delay);
    }
  }
  return false;
}

Status TaskRuntime::Commit() {
  switch (wiring_.config.protocol) {
    case ProtocolKind::kProgressMarking:
      return CommitProgressMarking();
    case ProtocolKind::kKafkaTxn:
      return CommitKafkaTxn();
    case ProtocolKind::kAlignedCheckpoint:
    case ProtocolKind::kUnsafe:
      // Aligned checkpoints are barrier-driven; unsafe never commits. Flush
      // so outputs keep flowing.
      return MaybeFlush(true);
  }
  return OkStatus();
}

Status TaskRuntime::CommitProgressMarking() {
  auto ends = CurrentInputEnds();
  if (!epoch_dirty_ && ends == last_input_ends_ && output_buffer_.empty()) {
    return OkStatus();  // idle epoch: nothing to commit
  }
  TRACE_SPAN("protocol", "commit_marker");
  IMPELLER_RETURN_IF_ERROR(MaybeFlush(true));
  if (MaybeInjectCrash("task/commit/pre_marker")) {
    // Outputs are durable but the marker is not: the epoch is uncommitted
    // and must be re-executed by the replacement instance.
    return UnavailableError("injected crash before marker append");
  }

  ProgressMarker marker;
  marker.marker_seq = marker_seq_;
  marker.input_ends = ends;
  marker.outputs_from = epoch_first_output_;
  marker.changelog_from = epoch_first_changelog_;

  RecordHeader header;
  header.type = RecordType::kProgressMarker;
  header.producer = task_id_;
  header.instance = wiring_.instance;
  header.seq = ++out_seq_;

  AppendRequest req;
  req.tags = DownstreamMarkerTags();
  req.cond_key = InstanceMetaKey(task_id_);
  req.cond_value = wiring_.instance;
  req.payload = EncodeEnvelope(header, EncodeProgressMarker(marker));

  // Retried through the batch API: AppendBatch leaves the request intact on
  // transient failure, so a retry re-appends the identical marker.
  std::vector<AppendRequest> marker_batch;
  marker_batch.push_back(std::move(req));
  auto lsns = retrier_.Run(
      "marker_append", [&] { return wiring_.log->AppendBatch(marker_batch); });
  if (!lsns.ok()) {
    return lsns.status();  // kFenced: this instance is a zombie
  }
  Lsn marker_lsn = (*lsns)[0];
  if (MaybeInjectCrash("task/commit/post_marker")) {
    // The marker is durable but this instance dies before acknowledging it:
    // the replacement recovers exactly to this marker's cut and resumes —
    // the committed-but-unacked case of §3.3.4.
    return UnavailableError("injected crash after marker append");
  }
  markers_written_.fetch_add(1);
  ++marker_seq_;
  last_input_ends_ = std::move(ends);
  epoch_first_output_ = kInvalidLsn;
  epoch_first_changelog_ = kInvalidLsn;
  epoch_dirty_ = false;
  epoch_touched_tags_.clear();
  ResetEpochScratch();
  if (wiring_.gc != nullptr) {
    wiring_.gc->PublishFloor(task_id_ + "/marker", marker_lsn);
  }
  PublishGcFloors();
  return OkStatus();
}

Status TaskRuntime::CommitKafkaTxn() {
  if (wiring_.txn_coordinator == nullptr) {
    return InternalError("kafka-txn protocol without a coordinator");
  }
  // A new transaction may need to wait for the in-progress one (§3.6).
  if (txn_inflight_.valid()) {
    txn_inflight_.wait();
    Status st = txn_inflight_.get();
    txn_inflight_ = {};
    IMPELLER_RETURN_IF_ERROR(st);
  }
  auto ends = CurrentInputEnds();
  if (!epoch_dirty_ && ends == last_input_ends_ && output_buffer_.empty()) {
    return OkStatus();
  }
  TRACE_SPAN("protocol", "commit_txn");
  IMPELLER_RETURN_IF_ERROR(MaybeFlush(true));

  TxnRequest req;
  req.task_id = task_id_;
  req.instance = wiring_.instance;
  req.output_tags.assign(epoch_touched_tags_.begin(),
                         epoch_touched_tags_.end());
  req.task_log_tag = TaskLogTag(task_id_);
  req.input_ends = ends;
  req.changelog_from = epoch_first_changelog_;

  auto future = wiring_.txn_coordinator->CommitTransaction(std::move(req));
  if (!future.ok()) {
    return future.status();  // kFenced: superseded instance
  }
  txn_inflight_ = *future;
  markers_written_.fetch_add(1);
  last_input_ends_ = std::move(ends);
  epoch_first_output_ = kInvalidLsn;
  epoch_first_changelog_ = kInvalidLsn;
  epoch_dirty_ = false;
  epoch_touched_tags_.clear();
  ResetEpochScratch();
  PublishGcFloors();
  return OkStatus();
}

// --- Aligned checkpointing ---

bool TaskRuntime::IsBlocked(size_t slot, std::string_view producer) const {
  // Only reached while an alignment is in progress, so materializing the
  // producer key here is off the steady-state path.
  return blocked_channels_.count({slot, "*"}) != 0 ||
         blocked_channels_.count({slot, std::string(producer)}) != 0;
}

void TaskRuntime::OnBarrier(size_t slot, const std::string& producer,
                            uint64_t checkpoint_id, Lsn lsn) {
  if (wiring_.config.protocol != ProtocolKind::kAlignedCheckpoint) {
    return;
  }
  TRACE_INSTANT("protocol", "barrier");
  if (checkpoint_id <= last_completed_ckpt_) {
    return;  // stale barrier from before our recovery point
  }
  if (align_ckpt_id_ != 0 && checkpoint_id != align_ckpt_id_) {
    // The coordinator abandoned the previous round; unblock and restart.
    LOG_WARN << task_id_ << ": abandoning checkpoint " << align_ckpt_id_
             << " for " << checkpoint_id;
    blocked_channels_.clear();
    auto pending = std::move(sidelined_);
    sidelined_.clear();
    align_ckpt_id_ = 0;
    for (auto& [pslot, record] : pending) {
      ProcessReady(pslot, std::move(record));
    }
  }
  if (align_ckpt_id_ == 0) {
    align_ckpt_id_ = checkpoint_id;
    barriers_arrived_.assign(readers_.size(), 0);
    align_cursor_snapshot_.assign(readers_.size(), kInvalidLsn);
  }
  if (align_cursor_snapshot_[slot] == kInvalidLsn) {
    align_cursor_snapshot_[slot] = lsn + 1;
  }
  blocked_channels_.insert(
      {slot, input_external_[slot] ? std::string("*") : producer});
  barriers_arrived_[slot]++;

  for (size_t i = 0; i < readers_.size(); ++i) {
    if (barriers_arrived_[i] < expected_barriers_[i]) {
      return;
    }
  }
  Status st = CompleteAlignment();
  if (!st.ok()) {
    LOG_WARN << task_id_ << ": checkpoint " << align_ckpt_id_
             << " failed: " << st.ToString();
  }
}

Status TaskRuntime::CompleteAlignment() {
  TRACE_SPAN("protocol", "align_checkpoint");
  uint64_t id = align_ckpt_id_;
  IMPELLER_RETURN_IF_ERROR(MaybeFlush(true));

  // Synchronous snapshot to the checkpoint store: state stores, the dedup
  // sequence map, input cursors, and the output sequence counter (so
  // re-executed outputs are byte-identical and deduplicable downstream).
  std::map<std::string, std::string> sections;
  for (const auto& [name, store] : stores_) {
    sections["store/" + name] = store->SerializeSnapshot();
  }
  sections["seqmap"] = tracker_.SerializeSeqMap();
  {
    BinaryWriter w;
    w.WriteVarU64(out_seq_);
    sections["outseq"] = w.Take();
  }
  {
    BinaryWriter w;
    w.WriteVarU64(readers_.size());
    for (size_t i = 0; i < readers_.size(); ++i) {
      w.WriteString(readers_[i]->tag());
      Lsn cur = align_cursor_snapshot_[i] != kInvalidLsn
                    ? align_cursor_snapshot_[i]
                    : readers_[i]->next_lsn();
      w.WriteVarU64(cur);
    }
    sections["cursors"] = w.Take();
  }
  IMPELLER_RETURN_IF_ERROR(wiring_.checkpoint_store->Put(
      AlignedSnapshotKey(task_id_, id), EncodeSnapshot(sections)));
  if (MaybeInjectCrash("task/checkpoint/mid")) {
    // Snapshot stored but barriers never forwarded: the round times out at
    // the coordinator, downstream unblocks on the next round's barriers, and
    // recovery falls back to the last *completed* checkpoint.
    return UnavailableError("injected crash mid-checkpoint");
  }

  // Forward the barrier to every downstream substream (not egress: nothing
  // aligns there).
  std::vector<AppendRequest> batch;
  for (size_t out_idx = 0; out_idx < wiring_.stage->outputs.size();
       ++out_idx) {
    if (output_is_egress_[out_idx]) {
      continue;
    }
    const OutputSpec& out = wiring_.stage->outputs[out_idx];
    const StreamSpec& stream = wiring_.plan->streams.at(out.stream);
    for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
      BarrierBody body;
      body.checkpoint_id = id;
      RecordHeader header;
      header.type = RecordType::kBarrier;
      header.producer = task_id_;
      header.instance = wiring_.instance;
      // Control records must not consume the data sequence counter:
      // re-executed data records after recovery would otherwise get shifted
      // seqs and be wrongly deduplicated downstream.
      header.seq = 0;
      AppendRequest req;
      req.tags.push_back(DataTag(out.stream, sub));
      req.payload = EncodeEnvelope(header, EncodeBarrierBody(body));
      batch.push_back(std::move(req));
    }
  }
  if (!batch.empty()) {
    auto lsns = retrier_.Run(
        "barrier_forward", [&] { return wiring_.log->AppendBatch(batch); });
    if (!lsns.ok()) {
      return lsns.status();
    }
  }
  if (wiring_.barrier_coordinator != nullptr) {
    wiring_.barrier_coordinator->AckCheckpoint(task_id_, id);
  }
  if (wiring_.gc != nullptr) {
    for (size_t i = 0; i < readers_.size(); ++i) {
      if (align_cursor_snapshot_[i] != kInvalidLsn) {
        wiring_.gc->PublishFloor(task_id_ + "/in/" + readers_[i]->tag(),
                                 align_cursor_snapshot_[i]);
      }
    }
  }
  last_completed_ckpt_ = id;
  align_ckpt_id_ = 0;
  blocked_channels_.clear();
  auto pending = std::move(sidelined_);
  sidelined_.clear();
  for (auto& [slot, record] : pending) {
    ProcessReady(slot, std::move(record));
  }
  ResetEpochScratch();
  return OkStatus();
}

// --- Main loop (cooperative state machine) ---

sched::StepResult TaskRuntime::Step() {
  switch (phase_) {
    case Phase::kInit:
      return StepInit();
    case Phase::kRunning:
      return StepRunning();
    case Phase::kDraining:
      return StepDraining();
    case Phase::kDone:
      return sched::StepResult::Done();
  }
  return sched::StepResult::Done();
}

sched::StepResult TaskRuntime::StepInit() {
  heartbeat_.store(wiring_.clock->Now());
  Status st = Recover();
  started_.store(true);
  if (!st.ok()) {
    LOG_ERROR << task_id_ << ": recovery failed: " << st.ToString();
    {
      std::lock_guard<std::mutex> lock(status_mu_);
      final_status_ = st;
    }
    phase_ = Phase::kDone;
    finished_.store(true);
    return sched::StepResult::Done();
  }
  const EngineConfig& cfg = wiring_.config;
  TimeNs now = wiring_.clock->Now();
  next_commit_ = now + cfg.commit_interval;
  next_timer_ = now + cfg.timer_interval;
  next_flush_ = now + cfg.output_flush_interval;
  run_status_ = OkStatus();
  phase_ = Phase::kRunning;
  return sched::StepResult::Ready();
}

sched::StepResult TaskRuntime::StepRunning() {
  const EngineConfig& cfg = wiring_.config;
  if (ShouldExit()) {
    if (Crashed() || !run_status_.ok()) {
      return FinishEpilogue();
    }
    // Graceful stop: drain remaining committed input (the task manager
    // stops stages in topological order, so upstream cuts are already
    // final), then flush and commit a final cut of our own.
    drain_quiet_ =
        std::max<DurationNs>(2 * cfg.poll_interval, 20 * kMillisecond);
    drain_deadline_ = wiring_.clock->Now() + 3 * kSecond;
    drain_quiet_until_ = wiring_.clock->Now() + drain_quiet_;
    phase_ = Phase::kDraining;
    return sched::StepResult::Ready();
  }
  heartbeat_.store(wiring_.clock->Now(), std::memory_order_relaxed);
  auto polled = PollInputs();
  if (!polled.ok()) {
    run_status_ = polled.status();
    return FinishEpilogue();
  }
  PublishProgress();
  TimeNs now = wiring_.clock->Now();
  if (now >= next_timer_) {
    RunTimers(now);
    next_timer_ = now + cfg.timer_interval;
  }
  bool force_flush = now >= next_flush_;
  if (force_flush) {
    next_flush_ = now + cfg.output_flush_interval;
  }
  run_status_ = MaybeFlush(force_flush);
  if (!run_status_.ok()) {
    return FinishEpilogue();
  }
  now = wiring_.clock->Now();
  if (now >= next_commit_) {
    if (now - next_commit_ >= cfg.commit_interval) {
      // A full interval late: the task cannot keep its commit cadence —
      // the backpressure signal the autoscaler watches.
      commit_overruns_.fetch_add(1, std::memory_order_relaxed);
      if (wiring_.metrics != nullptr) {
        wiring_.metrics->GetCounter("task/commit_overruns")->Add();
      }
    }
    run_status_ = Commit();
    if (!run_status_.ok()) {
      return FinishEpilogue();
    }
    next_commit_ = wiring_.clock->Now() + cfg.commit_interval;
  }
  if (*polled == 0) {
    return sched::StepResult::Idle(cfg.poll_interval);
  }
  return sched::StepResult::Ready();
}

sched::StepResult TaskRuntime::StepDraining() {
  const EngineConfig& cfg = wiring_.config;
  heartbeat_.store(wiring_.clock->Now(), std::memory_order_relaxed);
  TimeNs now = wiring_.clock->Now();
  if (Crashed() || !run_status_.ok() || now >= drain_deadline_ ||
      now >= drain_quiet_until_) {
    return FinishWithTail();
  }
  auto polled = PollInputs();
  if (!polled.ok()) {
    run_status_ = polled.status();
    return FinishWithTail();
  }
  // Keep the output cadence alive while draining: a rescale drain against a
  // live producer can last the full deadline (the inputs never go quiet),
  // and withholding every flush/commit until FinishWithTail would stall
  // downstream consumers for that whole window. Intermediate commits are
  // ordinary commits — the final cut still covers whatever remains.
  now = wiring_.clock->Now();
  if (now >= next_timer_) {
    RunTimers(now);
    next_timer_ = now + cfg.timer_interval;
  }
  bool force_flush = now >= next_flush_;
  if (force_flush) {
    next_flush_ = now + cfg.output_flush_interval;
  }
  run_status_ = MaybeFlush(force_flush);
  if (!run_status_.ok()) {
    return FinishWithTail();
  }
  if (wiring_.clock->Now() >= next_commit_) {
    run_status_ = Commit();
    if (!run_status_.ok()) {
      return FinishWithTail();
    }
    next_commit_ = wiring_.clock->Now() + cfg.commit_interval;
  }
  if (*polled > 0) {
    drain_quiet_until_ = wiring_.clock->Now() + drain_quiet_;
    return sched::StepResult::Ready();
  }
  return sched::StepResult::Idle(cfg.poll_interval);
}

sched::StepResult TaskRuntime::FinishWithTail() {
  Status flush = MaybeFlush(true);
  if (flush.ok()) {
    flush = Commit();
  }
  if (flush.ok() && txn_inflight_.valid()) {
    txn_inflight_.wait();
    flush = txn_inflight_.get();
    txn_inflight_ = {};
  }
  if (!flush.ok() && run_status_.ok()) {
    run_status_ = flush;
  }
  return FinishEpilogue();
}

sched::StepResult TaskRuntime::FinishEpilogue() {
  if (Crashed() && run_status_.ok()) {
    run_status_ = UnavailableError("task crashed (simulated server failure)");
  }
  if (!run_status_.ok() && run_status_.code() != StatusCode::kFenced &&
      !Crashed()) {
    LOG_WARN << task_id_ << " exited: " << run_status_.ToString();
  }
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    final_status_ = run_status_;
  }
  phase_ = Phase::kDone;
  finished_.store(true);
  return sched::StepResult::Done();
}

void TaskRuntime::Run() {
  while (true) {
    sched::StepResult r = Step();
    if (r.outcome == sched::StepOutcome::kDone) {
      return;
    }
    if (r.outcome == sched::StepOutcome::kIdle) {
      wiring_.clock->SleepFor(r.idle_delay);
    }
  }
}

}  // namespace impeller
