// Stream operator interface (paper §2.1, §4). A stage executes a chain of
// operators; the first operator in a chain may consume multiple input
// streams (joins), every other operator consumes its predecessor's output.
// Operators access keyed state exclusively through MapStateStore, which
// captures every mutation into the task's change log (§3.3.3).
#ifndef IMPELLER_SRC_CORE_OPERATOR_H_
#define IMPELLER_SRC_CORE_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/core/metrics.h"
#include "src/core/state_store.h"

namespace impeller {

// A record flowing between operators: a partitioning key, an opaque value
// (the application's serialization), and the originating event time used
// for end-to-end latency measurement (§5.3).
struct StreamRecord {
  std::string key;
  std::string value;
  TimeNs event_time = 0;
};

// Receives operator output. EmitTo routes to one of the stage's output
// streams (Branch); plain Emit targets output 0.
class Collector {
 public:
  virtual ~Collector() = default;
  virtual void EmitTo(uint32_t output, StreamRecord record) = 0;
  void Emit(StreamRecord record) { EmitTo(0, std::move(record)); }
};

// Facilities a task exposes to its operators.
class OperatorContext {
 public:
  virtual ~OperatorContext() = default;

  // Returns (creating on first use) a named state store whose mutations are
  // captured into the task's change log.
  virtual MapStateStore* GetStore(std::string_view name) = 0;

  virtual Clock* clock() = 0;
  virtual const std::string& task_id() const = 0;
  virtual uint32_t task_index() const = 0;
  virtual MetricsRegistry* metrics() = 0;

  // Largest event time observed by this task; watermark basis for
  // event-time windows.
  virtual TimeNs max_event_time() const = 0;
};

class Operator {
 public:
  virtual ~Operator() = default;

  // Called once before any Process; the context outlives the operator.
  virtual void Open(OperatorContext* ctx) {}

  // `input` is the index of the stage input stream the record arrived on
  // (always 0 for non-head operators).
  virtual void Process(uint32_t input, StreamRecord record,
                       Collector* out) = 0;

  // Invoked periodically (EngineConfig::timer_interval); window triggers and
  // state expiry live here.
  virtual void OnTimer(TimeNs now, Collector* out) {}

  virtual bool IsStateful() const { return false; }
};

using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_OPERATOR_H_
