#include "src/core/checkpoint.h"

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/gc.h"
#include "src/core/stream.h"

namespace impeller {

Result<std::optional<CutInfo>> ExtractCut(const Envelope& env, Lsn lsn,
                                          std::string_view task_id) {
  if (env.header.producer != task_id) {
    return std::optional<CutInfo>(std::nullopt);
  }
  if (env.header.type == RecordType::kProgressMarker) {
    auto marker = DecodeProgressMarker(env.body);
    if (!marker.ok()) {
      return marker.status();
    }
    CutInfo cut;
    cut.instance = env.header.instance;
    cut.lsn = lsn;
    cut.marker_seq = marker->marker_seq;
    cut.changelog_from = marker->changelog_from;
    cut.input_ends = std::move(marker->input_ends);
    return std::optional<CutInfo>(std::move(cut));
  }
  if (env.header.type == RecordType::kTxnControl) {
    auto body = DecodeTxnControlBody(env.body);
    if (!body.ok()) {
      return body.status();
    }
    if (body->kind != TxnControlKind::kCommit) {
      return std::optional<CutInfo>(std::nullopt);
    }
    CutInfo cut;
    cut.instance = env.header.instance;
    cut.lsn = lsn;
    cut.txn_id = body->txn_id;
    cut.changelog_from = body->changelog_from;
    cut.input_ends = std::move(body->input_ends);
    return std::optional<CutInfo>(std::move(cut));
  }
  return std::optional<CutInfo>(std::nullopt);
}

Result<ReplayStats> ReplayChangelog(
    SharedLog* log, const std::string& task_id, Lsn from_lsn, Lsn until_lsn,
    uint64_t until_txn_id,
    const std::function<void(const ChangeLogView&)>& apply) {
  ReplayStats stats;
  stats.next_lsn = from_lsn;
  if (until_lsn == kInvalidLsn) {
    return stats;  // no cut to replay to
  }
  (void)until_txn_id;
  std::string tag = ChangeLogTag(task_id);
  // Every record the replay must apply already has an assigned LSN <=
  // until_lsn (the recovery cut was read, so everything it covers is
  // sequenced), which makes the tag's sequenced tail a deterministic scan
  // bound. Tags whose cut lives elsewhere (kafka-txn commits cut to the
  // task log, not the changelog) would otherwise only terminate on a
  // quiet-timeout — stalling every recovery by the full timeout, long
  // enough for the failure detector to kill a live recovery.
  Lsn tag_tail;
  {
    auto last = log->ReadLast(tag);
    if (!last.ok()) {
      if (last.status().code() == StatusCode::kNotFound) {
        return stats;  // empty changelog: nothing to replay
      }
      return last.status();
    }
    tag_tail = last->lsn;
  }
  struct Pending {
    uint64_t instance;
    ChangeLogBody body;
  };
  std::vector<Pending> pending;
  Lsn cursor = from_lsn;
  while (true) {
    if (cursor > tag_tail) {
      return stats;  // sequenced suffix fully consumed
    }
    // The next record exists and is at most a delivery latency away from
    // visibility, so the timeout is a safety net, not a barrier.
    auto entry = log->AwaitNext(tag, cursor, 250 * kMillisecond);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kDeadlineExceeded) {
        return stats;
      }
      return InternalError("changelog replay failed at lsn " +
                           std::to_string(cursor) + ": " +
                           entry.status().ToString());
    }
    if (entry->lsn > until_lsn) {
      // First record beyond the recovery cut: uncommitted suffix or a later
      // (fenced) transaction — replay is complete.
      return stats;
    }
    cursor = entry->lsn + 1;
    stats.entries_read++;
    auto env = DecodeEnvelope(entry->payload);
    if (!env.ok()) {
      return env.status();
    }
    if (env->header.type == RecordType::kChangeLog) {
      auto body = DecodeChangeLogBody(env->body);
      if (!body.ok()) {
        return body.status();
      }
      pending.push_back({env->header.instance, std::move(*body)});
    } else {
      auto cut = ExtractCut(*env, entry->lsn, task_id);
      if (!cut.ok()) {
        return cut.status();
      }
      if (cut->has_value()) {
        // Apply committed changes; drop superseded instances' changes; keep
        // a newer instance's changes pending for its own first cut.
        std::vector<Pending> keep;
        for (auto& p : pending) {
          if (p.instance == (*cut)->instance) {
            apply(ChangeLogView{p.body.store, p.body.key, p.body.is_delete,
                                p.body.value, p.body.substream});
            stats.changes_applied++;
          } else if (p.instance > (*cut)->instance) {
            keep.push_back(std::move(p));
          }
        }
        pending = std::move(keep);
        stats.next_lsn = entry->lsn + 1;
        if (entry->lsn == until_lsn) {
          return stats;  // the recovery cut itself (marker protocols)
        }
      }
    }
  }
}

std::string EncodeSnapshot(
    const std::map<std::string, std::string>& sections) {
  BinaryWriter w;
  w.WriteVarU64(sections.size());
  for (const auto& [name, data] : sections) {
    w.WriteString(name);
    w.WriteString(data);
  }
  return w.Take();
}

Result<std::map<std::string, std::string>> DecodeSnapshot(
    std::string_view raw) {
  BinaryReader r(raw);
  auto n = r.ReadVarU64();
  if (!n.ok()) {
    return n.status();
  }
  std::map<std::string, std::string> sections;
  for (uint64_t i = 0; i < *n; ++i) {
    auto name = r.ReadString();
    if (!name.ok()) {
      return name.status();
    }
    auto data = r.ReadString();
    if (!data.ok()) {
      return data.status();
    }
    sections[std::move(*name)] = std::move(*data);
  }
  return sections;
}

std::string CheckpointBlobKey(std::string_view task_id) {
  return "ckpt/" + std::string(task_id);
}

std::string CheckpointMetaKey(std::string_view task_id) {
  return "ckptmeta/" + std::string(task_id);
}

std::string EncodeCheckpointMeta(const CheckpointMeta& meta) {
  BinaryWriter w;
  w.WriteVarU64(meta.cut_lsn);
  w.WriteVarU64(meta.next_replay_lsn);
  w.WriteVarU64(meta.marker_seq);
  return w.Take();
}

Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view raw) {
  BinaryReader r(raw);
  CheckpointMeta meta;
  auto cut = r.ReadVarU64();
  if (!cut.ok()) {
    return cut.status();
  }
  meta.cut_lsn = *cut;
  auto next = r.ReadVarU64();
  if (!next.ok()) {
    return next.status();
  }
  meta.next_replay_lsn = *next;
  auto seq = r.ReadVarU64();
  if (!seq.ok()) {
    return seq.status();
  }
  meta.marker_seq = *seq;
  return meta;
}

// --- CheckpointWorker ---

CheckpointWorker::CheckpointWorker(SharedLog* log, KvStore* store,
                                   Clock* clock, DurationNs interval,
                                   GcRegistry* gc)
    : log_(log), store_(store), clock_(clock), interval_(interval), gc_(gc) {}

CheckpointWorker::~CheckpointWorker() { Stop(); }

void CheckpointWorker::RegisterTask(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto shadow = std::make_unique<ShadowTask>();
  shadow->task_id = task_id;
  if (gc_ != nullptr) {
    gc_->PublishFloor("clog/" + task_id, 0);
  }
  tasks_.push_back(std::move(shadow));
}

void CheckpointWorker::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = JoiningThread([this] { Loop(); });
}

void CheckpointWorker::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.Join();
}

void CheckpointWorker::Loop() {
  TimeNs next = clock_->Now() + interval_;
  while (running_.load()) {
    TimeNs now = clock_->Now();
    if (now < next) {
      clock_->SleepFor(std::min<DurationNs>(next - now, 50 * kMillisecond));
      continue;
    }
    RunOnce();
    next = clock_->Now() + interval_;
  }
}

void CheckpointWorker::RunOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shadow : tasks_) {
    Status st = Advance(*shadow);
    if (!st.ok()) {
      LOG_WARN << "checkpoint advance for " << shadow->task_id
               << " failed: " << st.ToString();
      continue;
    }
    if (shadow->last_cut_lsn != kInvalidLsn &&
        shadow->last_cut_lsn != shadow->last_checkpointed_cut) {
      st = WriteCheckpoint(*shadow);
      if (!st.ok()) {
        LOG_WARN << "checkpoint write for " << shadow->task_id
                 << " failed: " << st.ToString();
      }
    }
  }
}

Status CheckpointWorker::Advance(ShadowTask& shadow) {
  std::string tag = ChangeLogTag(shadow.task_id);
  while (true) {
    auto entry = log_->ReadNext(tag, shadow.cursor);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) {
        return OkStatus();  // caught up
      }
      return entry.status();
    }
    shadow.cursor = entry->lsn + 1;
    auto env = DecodeEnvelope(entry->payload);
    if (!env.ok()) {
      return env.status();
    }
    if (env->header.type == RecordType::kChangeLog) {
      auto body = DecodeChangeLogBody(env->body);
      if (!body.ok()) {
        return body.status();
      }
      shadow.pending.push_back(
          {entry->lsn, env->header.instance, std::move(*body)});
      continue;
    }
    auto cut = ExtractCut(*env, entry->lsn, shadow.task_id);
    if (!cut.ok()) {
      return cut.status();
    }
    if (!cut->has_value()) {
      continue;
    }
    std::deque<ShadowTask::PendingChange> keep;
    for (auto& p : shadow.pending) {
      if (p.instance == (*cut)->instance) {
        auto& store = shadow.stores[p.body.store];
        if (store == nullptr) {
          store = std::make_unique<MapStateStore>(p.body.store, nullptr);
        }
        store->ApplyChange(p.body);
      } else if (p.instance > (*cut)->instance) {
        keep.push_back(std::move(p));
      }
    }
    shadow.pending = std::move(keep);
    shadow.last_cut_lsn = (*cut)->lsn;
    shadow.last_marker_seq = (*cut)->marker_seq;
  }
}

Status CheckpointWorker::WriteCheckpoint(ShadowTask& shadow) {
  std::map<std::string, std::string> sections;
  for (const auto& [name, store] : shadow.stores) {
    sections["store/" + name] = store->SerializeSnapshot();
  }
  CheckpointMeta meta;
  meta.cut_lsn = shadow.last_cut_lsn;
  meta.next_replay_lsn = shadow.last_cut_lsn + 1;
  meta.marker_seq = shadow.last_marker_seq;
  std::vector<KvWriteOp> batch;
  batch.push_back({CheckpointBlobKey(shadow.task_id),
                   EncodeSnapshot(sections)});
  batch.push_back({CheckpointMetaKey(shadow.task_id),
                   EncodeCheckpointMeta(meta)});
  IMPELLER_RETURN_IF_ERROR(store_->WriteBatch(std::move(batch)));
  shadow.last_checkpointed_cut = shadow.last_cut_lsn;
  checkpoints_.fetch_add(1);
  if (gc_ != nullptr) {
    // Change-log records below the checkpointed cut can be collected, but
    // the shadow's own cursor may trail the cut (pending uncommitted
    // suffix); never let GC outrun what we still need to read.
    gc_->PublishFloor("clog/" + shadow.task_id,
                      std::min(meta.next_replay_lsn, shadow.cursor));
  }
  return OkStatus();
}

}  // namespace impeller
