#include "src/core/commit_tracker.h"

#include "src/common/serde.h"
#include "src/obs/trace.h"

namespace impeller {

void CommitTracker::OnCommitEvent(std::string_view producer,
                                  uint64_t instance, Lsn commit_lsn) {
  // Marks when a consumer learns a producer's cut advanced — the moment
  // buffered kUnknown records become processable (§3.3.3).
  TRACE_INSTANT("protocol", "commit_event");
  auto it = cuts_.find(producer);
  if (it == cuts_.end()) {
    it = cuts_.emplace(std::string(producer), ProducerCut{}).first;
  }
  ProducerCut& cut = it->second;
  if (instance < cut.instance) {
    return;  // stale event from a superseded instance
  }
  if (instance > cut.instance) {
    cut.instance = instance;
    cut.committed_end = commit_lsn;
    return;
  }
  if (commit_lsn > cut.committed_end) {
    cut.committed_end = commit_lsn;
  }
}

CommitState CommitTracker::Classify(std::string_view producer,
                                    uint64_t instance, Lsn lsn) const {
  if (!read_committed_ || instance == kIngressInstance) {
    return CommitState::kCommitted;
  }
  auto it = cuts_.find(producer);
  if (it == cuts_.end()) {
    return CommitState::kUnknown;
  }
  const ProducerCut& cut = it->second;
  if (instance < cut.instance) {
    // Output of a superseded instance that was never committed before its
    // successor took over: permanently uncommitted.
    return CommitState::kDiscard;
  }
  if (instance > cut.instance) {
    // A restarted producer's output, not yet covered by any of its markers.
    return CommitState::kUnknown;
  }
  return lsn < cut.committed_end ? CommitState::kCommitted
                                 : CommitState::kUnknown;
}

bool CommitTracker::IsDuplicate(std::string_view substream_tag,
                                std::string_view producer, uint64_t instance,
                                uint64_t seq) {
  // With commit filtering on, instance/range checks already exclude replayed
  // outputs; sequence dedup is still needed for ingress producers (a
  // gateway retry can append the same event twice, §3.5).
  if (read_committed_ && instance != kIngressInstance) {
    return false;
  }
  key_scratch_.assign(substream_tag);
  key_scratch_ += '|';
  key_scratch_ += producer;
  auto it = max_seq_.find(key_scratch_);
  if (it == max_seq_.end()) {
    it = max_seq_.emplace(key_scratch_, 0).first;
  }
  uint64_t& max_seq = it->second;
  if (seq <= max_seq) {
    return true;
  }
  max_seq = seq;
  return false;
}

std::string CommitTracker::SerializeSeqMap() const {
  BinaryWriter w;
  w.WriteVarU64(max_seq_.size());
  for (const auto& [producer, seq] : max_seq_) {
    w.WriteString(producer);
    w.WriteVarU64(seq);
  }
  return w.Take();
}

Status CommitTracker::RestoreSeqMap(std::string_view raw) {
  max_seq_.clear();
  BinaryReader r(raw);
  auto n = r.ReadVarU64();
  if (!n.ok()) {
    return n.status();
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto producer = r.ReadString();
    if (!producer.ok()) {
      return producer.status();
    }
    auto seq = r.ReadVarU64();
    if (!seq.ok()) {
      return seq.status();
    }
    max_seq_[std::move(*producer)] = *seq;
  }
  return OkStatus();
}

}  // namespace impeller
