#include "src/core/commit_tracker.h"

#include "src/common/serde.h"
#include "src/obs/trace.h"

namespace impeller {

void CommitTracker::OnCommitEvent(const std::string& producer,
                                  uint64_t instance, Lsn commit_lsn) {
  // Marks when a consumer learns a producer's cut advanced — the moment
  // buffered kUnknown records become processable (§3.3.3).
  TRACE_INSTANT("protocol", "commit_event");
  ProducerCut& cut = cuts_[producer];
  if (instance < cut.instance) {
    return;  // stale event from a superseded instance
  }
  if (instance > cut.instance) {
    cut.instance = instance;
    cut.committed_end = commit_lsn;
    return;
  }
  if (commit_lsn > cut.committed_end) {
    cut.committed_end = commit_lsn;
  }
}

CommitState CommitTracker::Classify(const RecordHeader& header,
                                    Lsn lsn) const {
  if (!read_committed_ || header.instance == kIngressInstance) {
    return CommitState::kCommitted;
  }
  auto it = cuts_.find(header.producer);
  if (it == cuts_.end()) {
    return CommitState::kUnknown;
  }
  const ProducerCut& cut = it->second;
  if (header.instance < cut.instance) {
    // Output of a superseded instance that was never committed before its
    // successor took over: permanently uncommitted.
    return CommitState::kDiscard;
  }
  if (header.instance > cut.instance) {
    // A restarted producer's output, not yet covered by any of its markers.
    return CommitState::kUnknown;
  }
  return lsn < cut.committed_end ? CommitState::kCommitted
                                 : CommitState::kUnknown;
}

bool CommitTracker::IsDuplicate(std::string_view substream_tag,
                                const RecordHeader& header) {
  // With commit filtering on, instance/range checks already exclude replayed
  // outputs; sequence dedup is still needed for ingress producers (a
  // gateway retry can append the same event twice, §3.5).
  if (read_committed_ && header.instance != kIngressInstance) {
    return false;
  }
  std::string key(substream_tag);
  key += '|';
  key += header.producer;
  uint64_t& max_seq = max_seq_[key];
  if (header.seq <= max_seq) {
    return true;
  }
  max_seq = header.seq;
  return false;
}

std::string CommitTracker::SerializeSeqMap() const {
  BinaryWriter w;
  w.WriteVarU64(max_seq_.size());
  for (const auto& [producer, seq] : max_seq_) {
    w.WriteString(producer);
    w.WriteVarU64(seq);
  }
  return w.Take();
}

Status CommitTracker::RestoreSeqMap(std::string_view raw) {
  max_seq_.clear();
  BinaryReader r(raw);
  auto n = r.ReadVarU64();
  if (!n.ok()) {
    return n.status();
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto producer = r.ReadString();
    if (!producer.ok()) {
      return producer.status();
    }
    auto seq = r.ReadVarU64();
    if (!seq.ok()) {
      return seq.status();
    }
    max_seq_[std::move(*producer)] = *seq;
  }
  return OkStatus();
}

}  // namespace impeller
