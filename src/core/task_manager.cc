#include "src/core/task_manager.h"

#include "src/common/logging.h"
#include "src/core/stream.h"

namespace impeller {

TaskManager::TaskManager(SharedLog* log, KvStore* checkpoint_store,
                         EngineConfig config, MetricsRegistry* metrics,
                         Clock* clock, sched::WorkStealingScheduler* sched)
    : log_(log),
      checkpoint_store_(checkpoint_store),
      config_(config),
      metrics_(metrics),
      clock_(clock),
      sched_(sched) {}

TaskManager::~TaskManager() { Stop(); }

Status TaskManager::Submit(QueryPlan plan) {
  if (submitted_) {
    return InvalidArgumentError(
        "one TaskManager runs one query (one shared log per query, §3.1)");
  }
  if (config_.log_shards == 0) {
    return InvalidArgumentError(
        "log_shards must be >= 1: zero sequencers cannot order anything");
  }
  plan_ = std::move(plan);
  submitted_ = true;

  if (config_.protocol == ProtocolKind::kKafkaTxn) {
    TxnCoordinatorOptions opts;
    opts.name = plan_.name;
    opts.metrics = metrics_;
    opts.retry = config_.retry;
    txn_coordinator_ = std::make_unique<TxnCoordinator>(log_, clock_, opts);
    txn_coordinator_->Start();
  }
  if (config_.protocol == ProtocolKind::kAlignedCheckpoint) {
    BarrierCoordinatorOptions opts;
    opts.query = plan_.name;
    opts.interval = config_.commit_interval;
    opts.metrics = metrics_;
    opts.retry = config_.retry;
    barrier_coordinator_ = std::make_unique<BarrierCoordinator>(
        log_, checkpoint_store_, clock_, opts);
    std::vector<std::string> ingress_tags;
    for (const auto& [name, stream] : plan_.streams) {
      if (stream.external) {
        for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
          ingress_tags.push_back(DataTag(name, sub));
        }
      }
    }
    std::vector<std::string> task_ids;
    for (const auto& stage : plan_.stages) {
      for (uint32_t i = 0; i < stage.num_tasks; ++i) {
        task_ids.push_back(MakeTaskId(plan_.name, stage.name, i));
      }
    }
    barrier_coordinator_->Configure(std::move(ingress_tags),
                                    std::move(task_ids));
  }
  if (config_.enable_gc) {
    gc_worker_ = std::make_unique<GcWorker>(log_, &gc_registry_, clock_,
                                            config_.gc_interval);
  }
  bool marker_mode = config_.protocol == ProtocolKind::kProgressMarking ||
                     config_.protocol == ProtocolKind::kKafkaTxn;
  if (marker_mode && config_.enable_checkpointing) {
    checkpoint_worker_ = std::make_unique<CheckpointWorker>(
        log_, checkpoint_store_, clock_, config_.snapshot_interval,
        config_.enable_gc ? &gc_registry_ : nullptr);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& stage : plan_.stages) {
      for (uint32_t i = 0; i < stage.num_tasks; ++i) {
        std::string task_id = MakeTaskId(plan_.name, stage.name, i);
        TaskEntry& entry = tasks_[task_id];
        entry.stage = plan_.FindStage(stage.name);
        entry.index = i;
        if (checkpoint_worker_ != nullptr && stage.stateful) {
          checkpoint_worker_->RegisterTask(task_id);
        }
        IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id));
      }
    }
  }

  if (checkpoint_worker_ != nullptr) {
    checkpoint_worker_->Start();
  }
  if (gc_worker_ != nullptr) {
    gc_worker_->Start();
  }
  if (barrier_coordinator_ != nullptr) {
    barrier_coordinator_->Start();
  }
  running_.store(true);
  if (config_.auto_restart) {
    monitor_ = JoiningThread([this] { MonitorLoop(); });
  }
  return OkStatus();
}

Status TaskManager::SpawnLocked(TaskEntry& entry, const std::string& task_id,
                                const std::map<std::string, Lsn>* initial_ends) {
  // Mint the instance number atomically in the log's metadata: this is what
  // fences any still-running older instance (§3.4).
  uint64_t instance = log_->MetaIncrement(InstanceMetaKey(task_id));

  TaskWiring wiring;
  wiring.plan = &plan_;
  wiring.stage = entry.stage;
  wiring.index = entry.index;
  wiring.instance = instance;
  wiring.log = log_;
  wiring.checkpoint_store = checkpoint_store_;
  wiring.config = config_;
  wiring.metrics = metrics_;
  wiring.clock = clock_;
  wiring.txn_coordinator = txn_coordinator_.get();
  wiring.barrier_coordinator = barrier_coordinator_.get();
  wiring.gc = config_.enable_gc ? &gc_registry_ : nullptr;
  if (initial_ends != nullptr) {
    wiring.initial_input_ends = *initial_ends;
  }

  if (entry.runtime != nullptr) {
    entry.old.emplace_back(std::move(entry.runtime), entry.ticket);
    entry.ticket = sched::kInvalidTicket;
  }
  entry.runtime = std::make_unique<TaskRuntime>(std::move(wiring));
  TaskRuntime* rt = entry.runtime.get();
  entry.ticket = sched_->Submit([rt] { return rt->Step(); },
                                TaskAffinity(entry), task_id);
  return OkStatus();
}

uint32_t TaskManager::TaskAffinity(const TaskEntry& entry) const {
  if (entry.stage != nullptr && !entry.stage->inputs.empty()) {
    // First owned input substream (task i of T owns substreams s % T == i,
    // so substream `index` is always owned: num_tasks <= num_substreams).
    return log_->ShardOfTag(DataTag(entry.stage->inputs[0], entry.index));
  }
  return entry.index;
}

void TaskManager::Stop() {
  if (!submitted_) {
    return;
  }
  // Fences CrashTask/RestartTask/StartReplacement: a restart racing the
  // shutdown could otherwise submit a task to a scheduler whose workers are
  // already joined, and then spin forever waiting for it to start.
  stopping_.store(true);
  running_.store(false);
  monitor_.Join();
  // Stop stages in topological order so each stage's final cut is already
  // in the log when its consumer drains (graceful shutdown = a complete,
  // consistent run).
  std::vector<const StageSpec*> order = TopologicalStageOrder();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Zombies first: they are superseded and hold no obligations.
    for (auto& [id, entry] : tasks_) {
      for (auto& [rt, ticket] : entry.old) {
        rt->RequestStop();
      }
    }
  }
  for (const StageSpec* stage : order) {
    std::vector<std::string> ids;
    for (uint32_t i = 0; i < stage->num_tasks; ++i) {
      ids.push_back(MakeTaskId(plan_.name, stage->name, i));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& id : ids) {
      auto it = tasks_.find(id);
      if (it == tasks_.end()) {
        continue;
      }
      if (it->second.runtime != nullptr) {
        it->second.runtime->RequestStop();
      }
    }
    for (const auto& id : ids) {
      auto it = tasks_.find(id);
      if (it != tasks_.end()) {
        sched_->Wait(it->second.ticket);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : tasks_) {
      sched_->Wait(entry.ticket);
      for (auto& [rt, ticket] : entry.old) {
        sched_->Wait(ticket);
      }
    }
  }
  if (barrier_coordinator_ != nullptr) {
    barrier_coordinator_->Stop();
  }
  if (txn_coordinator_ != nullptr) {
    txn_coordinator_->Stop();
  }
  if (checkpoint_worker_ != nullptr) {
    checkpoint_worker_->Stop();
  }
  if (gc_worker_ != nullptr) {
    gc_worker_->Stop();
  }
}

Status TaskManager::CrashTask(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return UnavailableError("task manager is stopping");
  }
  auto it = tasks_.find(task_id);
  if (it == tasks_.end() || it->second.runtime == nullptr) {
    return NotFoundError("unknown task " + task_id);
  }
  it->second.runtime->Crash();
  return OkStatus();
}

Result<RecoveryStats> TaskManager::RestartTask(const std::string& task_id) {
  TaskRuntime* rt = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      return UnavailableError("task manager is stopping");
    }
    auto it = tasks_.find(task_id);
    if (it == tasks_.end()) {
      return NotFoundError("unknown task " + task_id);
    }
    TaskEntry& entry = it->second;
    if (entry.runtime != nullptr) {
      entry.runtime->Crash();
      sched_->Wait(entry.ticket);
    }
    IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id));
    rt = entry.runtime.get();
  }
  while (!rt->started() && !rt->finished()) {
    if (stopping_.load()) {
      // Shutdown owns the task now: Stop() requests its stop and waits its
      // ticket, so the restart's recovery never completes. Bail out rather
      // than spin against a draining scheduler.
      return UnavailableError("task manager stopped during restart");
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
  if (rt->finished() && !rt->final_status().ok()) {
    return rt->final_status();
  }
  return rt->recovery_stats();
}

Status TaskManager::StartReplacement(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return UnavailableError("task manager is stopping");
  }
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return NotFoundError("unknown task " + task_id);
  }
  // Deliberately do NOT stop the old instance: it becomes a zombie that the
  // conditional-append fence must neutralize.
  return SpawnLocked(it->second, task_id);
}

TaskRuntime* TaskManager::FindTask(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? nullptr : it->second.runtime.get();
}

std::vector<std::string> TaskManager::AllTaskIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, entry] : tasks_) {
    ids.push_back(id);
  }
  return ids;
}

bool TaskManager::AllTasksIdle() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : tasks_) {
    if (entry.runtime != nullptr && !entry.runtime->finished()) {
      return false;
    }
  }
  return true;
}

Status TaskManager::RescaleStage(const std::string& stage_name,
                                 uint32_t new_tasks) {
  StageSpec* stage = nullptr;
  for (auto& s : plan_.stages) {
    if (s.name == stage_name) {
      stage = &s;
    }
  }
  if (stage == nullptr) {
    return NotFoundError("unknown stage " + stage_name);
  }
  if (stage->stateful) {
    return InvalidArgumentError(
        "stateful stages cannot rescale yet (keyed state does not migrate)");
  }
  if (new_tasks == 0 || new_tasks > stage->num_substreams) {
    return InvalidArgumentError(
        "task count must be in [1, num_substreams] (" +
        std::to_string(stage->num_substreams) + ")");
  }
  if (config_.protocol != ProtocolKind::kProgressMarking &&
      config_.protocol != ProtocolKind::kKafkaTxn) {
    return InvalidArgumentError(
        "rescaling requires a marker protocol (substream handoff reads the "
        "final progress markers)");
  }

  uint32_t old_tasks = stage->num_tasks;
  std::vector<std::string> old_ids;
  for (uint32_t i = 0; i < old_tasks; ++i) {
    old_ids.push_back(MakeTaskId(plan_.name, stage->name, i));
  }

  // 1. Stop the old generation gracefully: each task drains and commits a
  //    final marker covering everything it consumed.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& id : old_ids) {
      auto it = tasks_.find(id);
      if (it != tasks_.end() && it->second.runtime != nullptr) {
        it->second.runtime->RequestStop();
      }
    }
    for (const auto& id : old_ids) {
      auto it = tasks_.find(id);
      if (it != tasks_.end()) {
        sched_->Wait(it->second.ticket);
      }
    }
  }

  // 2. Gather every substream's consumed end from the final markers.
  std::map<std::string, Lsn> ends;
  for (const auto& id : old_ids) {
    auto last = log_->ReadLast(TaskLogTag(id));
    if (!last.ok()) {
      continue;  // task never committed anything: its substreams start fresh
    }
    auto env = DecodeEnvelope(last->payload);
    if (!env.ok()) {
      return env.status();
    }
    auto cut = ExtractCut(*env, last->lsn, id);
    if (!cut.ok()) {
      return cut.status();
    }
    if (!cut->has_value()) {
      continue;
    }
    for (const auto& [tag, end] : (*cut)->input_ends) {
      Lsn& slot = ends[tag];
      if (end != kInvalidLsn && (slot == 0 || end > slot)) {
        slot = end;
      }
    }
  }

  // 3. Spawn the new generation; substream ownership is recomputed from the
  //    new task count, and the handed-off ends seed each reader's cursor.
  std::lock_guard<std::mutex> lock(mu_);
  stage->num_tasks = new_tasks;
  for (uint32_t i = 0; i < new_tasks; ++i) {
    std::string task_id = MakeTaskId(plan_.name, stage->name, i);
    TaskEntry& entry = tasks_[task_id];
    entry.stage = stage;
    entry.index = i;
    IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id, &ends));
  }
  return OkStatus();
}

std::vector<const StageSpec*> TaskManager::TopologicalStageOrder() const {
  // Kahn's algorithm over producer -> consumer stream edges.
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& stage : plan_.stages) {
    indegree[stage.name];  // ensure presence
  }
  for (const auto& [name, stream] : plan_.streams) {
    if (stream.external || stream.egress || stream.producer_stage.empty() ||
        stream.consumer_stage.empty()) {
      continue;
    }
    edges[stream.producer_stage].push_back(stream.consumer_stage);
    indegree[stream.consumer_stage]++;
  }
  std::vector<const StageSpec*> order;
  std::vector<std::string> ready;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) {
      ready.push_back(name);
    }
  }
  while (!ready.empty()) {
    std::string name = ready.back();
    ready.pop_back();
    order.push_back(plan_.FindStage(name));
    for (const auto& next : edges[name]) {
      if (--indegree[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (order.size() != plan_.stages.size()) {
    // Should be unreachable (Build() validates the DAG); fall back to
    // declaration order rather than dropping stages.
    order.clear();
    for (const auto& stage : plan_.stages) {
      order.push_back(&stage);
    }
  }
  return order;
}

void TaskManager::MonitorLoop() {
  while (running_.load()) {
    clock_->SleepFor(config_.heartbeat_interval);
    if (!running_.load()) {
      return;
    }
    std::vector<std::string> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TimeNs now = clock_->Now();
      for (auto& [id, entry] : tasks_) {
        TaskRuntime* rt = entry.runtime.get();
        if (rt == nullptr) {
          continue;
        }
        if (rt->finished()) {
          // Graceful exits and fenced zombies are final; crashes restart.
          Status st = rt->final_status();
          if (!st.ok() && st.code() != StatusCode::kFenced) {
            dead.push_back(id);
          }
          continue;
        }
        if (now - rt->last_heartbeat() > config_.failure_timeout) {
          dead.push_back(id);
        }
      }
    }
    for (const auto& id : dead) {
      LOG_WARN << "task " << id << " presumed failed; restarting";
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tasks_.find(id);
      if (it != tasks_.end()) {
        Status st = SpawnLocked(it->second, id);
        if (!st.ok()) {
          LOG_ERROR << "restart of " << id << " failed: " << st.ToString();
        }
      }
    }
  }
}

}  // namespace impeller
