#include "src/core/task_manager.h"

#include "src/common/logging.h"
#include "src/core/stream.h"

namespace impeller {

TaskManager::TaskManager(SharedLog* log, KvStore* checkpoint_store,
                         EngineConfig config, MetricsRegistry* metrics,
                         Clock* clock, sched::WorkStealingScheduler* sched)
    : log_(log),
      checkpoint_store_(checkpoint_store),
      config_(config),
      metrics_(metrics),
      clock_(clock),
      sched_(sched) {}

TaskManager::~TaskManager() { Stop(); }

Status TaskManager::Submit(QueryPlan plan) {
  if (submitted_) {
    return InvalidArgumentError(
        "one TaskManager runs one query (one shared log per query, §3.1)");
  }
  if (config_.log_shards == 0) {
    return InvalidArgumentError(
        "log_shards must be >= 1: zero sequencers cannot order anything");
  }
  plan_ = std::move(plan);
  submitted_ = true;

  if (config_.protocol == ProtocolKind::kKafkaTxn) {
    TxnCoordinatorOptions opts;
    opts.name = plan_.name;
    opts.metrics = metrics_;
    opts.retry = config_.retry;
    txn_coordinator_ = std::make_unique<TxnCoordinator>(log_, clock_, opts);
    txn_coordinator_->Start();
  }
  if (config_.protocol == ProtocolKind::kAlignedCheckpoint) {
    BarrierCoordinatorOptions opts;
    opts.query = plan_.name;
    opts.interval = config_.commit_interval;
    opts.metrics = metrics_;
    opts.retry = config_.retry;
    barrier_coordinator_ = std::make_unique<BarrierCoordinator>(
        log_, checkpoint_store_, clock_, opts);
    std::vector<std::string> ingress_tags;
    for (const auto& [name, stream] : plan_.streams) {
      if (stream.external) {
        for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
          ingress_tags.push_back(DataTag(name, sub));
        }
      }
    }
    std::vector<std::string> task_ids;
    for (const auto& stage : plan_.stages) {
      for (uint32_t i = 0; i < stage.num_tasks; ++i) {
        task_ids.push_back(MakeTaskId(plan_.name, stage.name, i));
      }
    }
    barrier_coordinator_->Configure(std::move(ingress_tags),
                                    std::move(task_ids));
  }
  if (config_.enable_gc) {
    gc_worker_ = std::make_unique<GcWorker>(log_, &gc_registry_, clock_,
                                            config_.gc_interval);
  }
  bool marker_mode = config_.protocol == ProtocolKind::kProgressMarking ||
                     config_.protocol == ProtocolKind::kKafkaTxn;
  if (marker_mode && config_.enable_checkpointing) {
    checkpoint_worker_ = std::make_unique<CheckpointWorker>(
        log_, checkpoint_store_, clock_, config_.snapshot_interval,
        config_.enable_gc ? &gc_registry_ : nullptr);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& stage : plan_.stages) {
      for (uint32_t i = 0; i < stage.num_tasks; ++i) {
        std::string task_id = MakeTaskId(plan_.name, stage.name, i);
        TaskEntry& entry = tasks_[task_id];
        entry.stage = plan_.FindStage(stage.name);
        entry.index = i;
        if (checkpoint_worker_ != nullptr && stage.stateful &&
            checkpoint_registered_.insert(task_id).second) {
          checkpoint_worker_->RegisterTask(task_id);
        }
        IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id));
      }
    }
  }

  if (checkpoint_worker_ != nullptr) {
    checkpoint_worker_->Start();
  }
  if (gc_worker_ != nullptr) {
    gc_worker_->Start();
  }
  if (barrier_coordinator_ != nullptr) {
    barrier_coordinator_->Start();
  }
  running_.store(true);
  if (config_.auto_restart) {
    monitor_ = JoiningThread([this] { MonitorLoop(); });
  }
  return OkStatus();
}

Status TaskManager::SpawnLocked(TaskEntry& entry, const std::string& task_id) {
  // Mint the instance number atomically in the log's metadata: this is what
  // fences any still-running older instance (§3.4).
  uint64_t instance = log_->MetaIncrement(InstanceMetaKey(task_id));

  TaskWiring wiring;
  wiring.plan = &plan_;
  wiring.stage = entry.stage;
  wiring.index = entry.index;
  wiring.instance = instance;
  wiring.log = log_;
  wiring.checkpoint_store = checkpoint_store_;
  wiring.config = config_;
  wiring.metrics = metrics_;
  wiring.clock = clock_;
  wiring.txn_coordinator = txn_coordinator_.get();
  wiring.barrier_coordinator = barrier_coordinator_.get();
  wiring.gc = config_.enable_gc ? &gc_registry_ : nullptr;
  // Rescale handoff lives on the entry so a monitor restart mid-handoff
  // re-passes it instead of losing the old generation's cursors and state.
  wiring.initial_input_ends = entry.handoff_ends;
  wiring.handoff_sources = entry.handoff_sources;
  wiring.direct_handoff = entry.direct_handoff;

  if (entry.runtime != nullptr) {
    entry.old.emplace_back(std::move(entry.runtime), entry.ticket);
    entry.ticket = sched::kInvalidTicket;
  }
  entry.runtime = std::make_unique<TaskRuntime>(std::move(wiring));
  TaskRuntime* rt = entry.runtime.get();
  entry.ticket = sched_->Submit([rt] { return rt->Step(); },
                                TaskAffinity(entry), task_id);
  return OkStatus();
}

uint32_t TaskManager::TaskAffinity(const TaskEntry& entry) const {
  if (entry.stage != nullptr && !entry.stage->inputs.empty()) {
    // First owned input substream (task i of T owns substreams s % T == i,
    // so substream `index` is always owned: num_tasks <= num_substreams).
    return log_->ShardOfTag(DataTag(entry.stage->inputs[0], entry.index));
  }
  return entry.index;
}

void TaskManager::Stop() {
  if (!submitted_) {
    return;
  }
  // Fences CrashTask/RestartTask/StartReplacement: a restart racing the
  // shutdown could otherwise submit a task to a scheduler whose workers are
  // already joined, and then spin forever waiting for it to start.
  stopping_.store(true);
  running_.store(false);
  monitor_.Join();
  // Stop stages in topological order so each stage's final cut is already
  // in the log when its consumer drains (graceful shutdown = a complete,
  // consistent run).
  std::vector<const StageSpec*> order = TopologicalStageOrder();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Zombies first: they are superseded and hold no obligations.
    for (auto& [id, entry] : tasks_) {
      for (auto& [rt, ticket] : entry.old) {
        rt->RequestStop();
      }
    }
  }
  for (const StageSpec* stage : order) {
    std::vector<std::string> ids;
    for (uint32_t i = 0; i < stage->num_tasks; ++i) {
      ids.push_back(MakeTaskId(plan_.name, stage->name, i));
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& id : ids) {
      auto it = tasks_.find(id);
      if (it == tasks_.end()) {
        continue;
      }
      if (it->second.runtime != nullptr) {
        it->second.runtime->RequestStop();
      }
    }
    for (const auto& id : ids) {
      auto it = tasks_.find(id);
      if (it != tasks_.end()) {
        sched_->Wait(it->second.ticket);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : tasks_) {
      sched_->Wait(entry.ticket);
      for (auto& [rt, ticket] : entry.old) {
        sched_->Wait(ticket);
      }
    }
  }
  if (barrier_coordinator_ != nullptr) {
    barrier_coordinator_->Stop();
  }
  if (txn_coordinator_ != nullptr) {
    txn_coordinator_->Stop();
  }
  if (checkpoint_worker_ != nullptr) {
    checkpoint_worker_->Stop();
  }
  if (gc_worker_ != nullptr) {
    gc_worker_->Stop();
  }
}

Status TaskManager::CrashTask(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return UnavailableError("task manager is stopping");
  }
  auto it = tasks_.find(task_id);
  if (it == tasks_.end() || it->second.runtime == nullptr) {
    return NotFoundError("unknown task " + task_id);
  }
  it->second.runtime->Crash();
  return OkStatus();
}

Result<RecoveryStats> TaskManager::RestartTask(const std::string& task_id) {
  TaskRuntime* rt = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      return UnavailableError("task manager is stopping");
    }
    auto it = tasks_.find(task_id);
    if (it == tasks_.end()) {
      return NotFoundError("unknown task " + task_id);
    }
    TaskEntry& entry = it->second;
    if (entry.runtime != nullptr) {
      entry.runtime->Crash();
      sched_->Wait(entry.ticket);
    }
    IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id));
    rt = entry.runtime.get();
  }
  while (!rt->started() && !rt->finished()) {
    if (stopping_.load()) {
      // Shutdown owns the task now: Stop() requests its stop and waits its
      // ticket, so the restart's recovery never completes. Bail out rather
      // than spin against a draining scheduler.
      return UnavailableError("task manager stopped during restart");
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
  if (rt->finished() && !rt->final_status().ok()) {
    return rt->final_status();
  }
  return rt->recovery_stats();
}

Status TaskManager::StartReplacement(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return UnavailableError("task manager is stopping");
  }
  auto it = tasks_.find(task_id);
  if (it == tasks_.end()) {
    return NotFoundError("unknown task " + task_id);
  }
  // Deliberately do NOT stop the old instance: it becomes a zombie that the
  // conditional-append fence must neutralize.
  return SpawnLocked(it->second, task_id);
}

TaskRuntime* TaskManager::FindTask(const std::string& task_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(task_id);
  return it == tasks_.end() ? nullptr : it->second.runtime.get();
}

std::vector<std::string> TaskManager::AllTaskIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, entry] : tasks_) {
    ids.push_back(id);
  }
  return ids;
}

bool TaskManager::AllTasksIdle() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entry] : tasks_) {
    if (entry.runtime != nullptr && !entry.runtime->finished()) {
      return false;
    }
  }
  return true;
}

namespace {

// Runs a function on scope exit; RescaleStage uses it so the barrier
// coordinator is resumed on every return path, including errors.
template <typename F>
class ScopeExit {
 public:
  explicit ScopeExit(F fn) : fn_(std::move(fn)) {}
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;
  ~ScopeExit() { fn_(); }

 private:
  F fn_;
};

// Newest committed cut on a task's log, or nullopt if it never committed.
// The tail record is the common case; a non-cut tail (e.g. an aborted
// transaction's control record left by a crash) falls back to a forward
// scan so the handoff still finds the last *committed* positions.
Result<std::optional<CutInfo>> LastCommittedCut(SharedLog* log,
                                                const std::string& task_id) {
  std::string tag = TaskLogTag(task_id);
  auto last = log->ReadLast(tag);
  if (!last.ok()) {
    return std::optional<CutInfo>(std::nullopt);
  }
  auto env = DecodeEnvelope(last->payload);
  if (!env.ok()) {
    return env.status();
  }
  auto cut = ExtractCut(*env, last->lsn, task_id);
  if (!cut.ok()) {
    return cut.status();
  }
  if (cut->has_value()) {
    return cut;
  }
  std::optional<CutInfo> best;
  Lsn cursor = 0;
  while (true) {
    auto entry = log->ReadNext(tag, cursor);
    if (!entry.ok()) {
      break;
    }
    cursor = entry->lsn + 1;
    auto e = DecodeEnvelope(entry->payload);
    if (!e.ok()) {
      return e.status();
    }
    auto c = ExtractCut(*e, entry->lsn, task_id);
    if (!c.ok()) {
      return c.status();
    }
    if (c->has_value()) {
      best = std::move(**c);
    }
  }
  return best;
}

}  // namespace

Status TaskManager::RescaleStage(const std::string& stage_name,
                                 uint32_t new_tasks) {
  StageSpec* stage = nullptr;
  for (auto& s : plan_.stages) {
    if (s.name == stage_name) {
      stage = &s;
    }
  }
  if (stage == nullptr) {
    return NotFoundError("unknown stage " + stage_name);
  }
  if (new_tasks == 0 || new_tasks > stage->num_substreams) {
    return InvalidArgumentError(
        "task count must be in [1, num_substreams] (" +
        std::to_string(stage->num_substreams) + ")");
  }
  if (stopping_.load()) {
    return UnavailableError("task manager is stopping");
  }
  // One rescale at a time: the autoscaler and tests may race.
  std::lock_guard<std::mutex> rescale_lock(rescale_mu_);
  uint32_t old_tasks = stage->num_tasks;
  if (new_tasks == old_tasks) {
    return OkStatus();
  }
  bool marker_mode = config_.protocol == ProtocolKind::kProgressMarking ||
                     config_.protocol == ProtocolKind::kKafkaTxn;
  bool aligned = config_.protocol == ProtocolKind::kAlignedCheckpoint;

  // Under aligned checkpointing the coordinator's task list is about to
  // change; pause it for the duration of the rescale so no checkpoint
  // round spans the generation switch. The scope guard resumes it on EVERY
  // exit path — a rescale that fails partway through must not leave
  // checkpointing permanently halted.
  bool paused_coordinator = false;
  if (aligned && barrier_coordinator_ != nullptr) {
    barrier_coordinator_->Stop();
    paused_coordinator = true;
  }
  ScopeExit resume_coordinator([this, paused_coordinator] {
    if (paused_coordinator && !stopping_.load()) {
      ResumeBarrierCoordinator();
    }
  });

  std::vector<std::string> old_ids;
  for (uint32_t i = 0; i < old_tasks; ++i) {
    old_ids.push_back(MakeTaskId(plan_.name, stage->name, i));
  }

  // 1. Stop the old generation gracefully: each task drains and commits a
  //    final cut covering everything it consumed. The entries are marked
  //    retired for the duration so the monitor cannot resurrect an old
  //    instance next to the new generation (a crash during the drain is
  //    fine: the handoff then starts from the task's last *committed* cut
  //    and the new generation redoes the uncommitted suffix).
  {
    std::vector<sched::Ticket> draining;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& id : old_ids) {
        auto it = tasks_.find(id);
        if (it == tasks_.end()) {
          continue;
        }
        it->second.retired = true;
        if (it->second.runtime != nullptr) {
          it->second.runtime->RequestStop();
        }
        draining.push_back(it->second.ticket);
      }
    }
    // Each graceful drain can take up to the drain deadline with live
    // producers; waiting outside mu_ keeps the monitor's heartbeat checks,
    // unrelated restarts, and stats collection responsive. The entries are
    // already retired, so the monitor cannot respawn them mid-wait.
    for (sched::Ticket ticket : draining) {
      sched_->Wait(ticket);
    }
  }

  // 2. Gather the handoff: every substream's consumed end, plus — for
  //    stateful stages — the state-ownership transfer material.
  std::map<std::string, Lsn> ends;
  std::vector<HandoffSource> sources;
  std::shared_ptr<DirectHandoff> direct;
  auto merge_ends = [&ends](const std::vector<std::pair<std::string, Lsn>>&
                                input_ends) {
    for (const auto& [tag, end] : input_ends) {
      if (end == kInvalidLsn) {
        continue;  // never consumed: do not plant a cursor at 0
      }
      auto [it, inserted] = ends.try_emplace(tag, end);
      if (!inserted && end > it->second) {
        it->second = end;
      }
    }
  };
  if (marker_mode) {
    // The changelog is the transfer medium: each old task's final cut names
    // the LSN up to which the new generation replays its changelog.
    for (uint32_t i = 0; i < old_tasks; ++i) {
      const std::string& id = old_ids[i];
      auto cut = LastCommittedCut(log_, id);
      if (!cut.ok()) {
        return cut.status();
      }
      if (!cut->has_value()) {
        continue;  // never committed: its substreams start fresh
      }
      merge_ends((*cut)->input_ends);
      if (stage->stateful) {
        HandoffSource src;
        src.task_id = id;
        src.default_substream = i;
        src.cut_lsn = (*cut)->lsn;
        src.txn_id = (*cut)->txn_id;
        sources.push_back(std::move(src));
      }
    }
  } else {
    // No changelog under aligned/unsafe: export the stopped runtimes' state
    // (and commit-tracker continuation) in memory instead.
    direct = std::make_shared<DirectHandoff>();
    direct->completed_ckpt_at_handoff =
        barrier_coordinator_ != nullptr
            ? barrier_coordinator_->LatestCompleted()
            : 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& id : old_ids) {
      auto it = tasks_.find(id);
      if (it == tasks_.end() || it->second.runtime == nullptr) {
        continue;
      }
      DirectHandoff::Source src = it->second.runtime->ExportHandoff();
      merge_ends(src.input_ends);
      direct->sources.push_back(std::move(src));
    }
  }

  // 3. Spawn the new generation; substream ownership is recomputed from the
  //    new task count, and the handoff seeds each task's wiring.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stage->num_tasks = new_tasks;
    for (uint32_t i = 0; i < new_tasks; ++i) {
      std::string task_id = MakeTaskId(plan_.name, stage->name, i);
      TaskEntry& entry = tasks_[task_id];
      entry.stage = stage;
      entry.index = i;
      entry.retired = false;
      entry.handoff_ends = ends;
      entry.handoff_sources = sources;
      entry.direct_handoff = direct;
      if (checkpoint_worker_ != nullptr && stage->stateful &&
          checkpoint_registered_.insert(task_id).second) {
        checkpoint_worker_->RegisterTask(task_id);
      }
      IMPELLER_RETURN_IF_ERROR(SpawnLocked(entry, task_id));
    }
    // Scale-down leftovers: keep the entries (their final cuts remain the
    // handoff sources) but never restart them — a respawn at index >=
    // num_tasks would own no substream and recompute the wrong range.
    for (uint32_t i = new_tasks; i < old_tasks; ++i) {
      auto it = tasks_.find(old_ids[i]);
      if (it != tasks_.end()) {
        it->second.retired = true;
      }
    }
  }

  if (aligned && barrier_coordinator_ != nullptr) {
    // A consumer's barrier alignment counts one barrier per producer task,
    // so the producer count baked into running consumers is now stale:
    // bounce them (graceful stop + respawn recovers from the latest
    // completed checkpoint; sequence dedup absorbs re-emissions).
    std::set<std::string> consumer_stages;
    for (const auto& [name, stream] : plan_.streams) {
      if (stream.producer_stage == stage_name &&
          !stream.consumer_stage.empty() &&
          stream.consumer_stage != stage_name) {
        consumer_stages.insert(stream.consumer_stage);
      }
    }
    std::vector<std::pair<std::string, sched::Ticket>> bounced;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& consumer : consumer_stages) {
        const StageSpec* cstage = plan_.FindStage(consumer);
        if (cstage == nullptr) {
          continue;
        }
        for (uint32_t i = 0; i < cstage->num_tasks; ++i) {
          std::string id = MakeTaskId(plan_.name, cstage->name, i);
          auto it = tasks_.find(id);
          if (it == tasks_.end()) {
            continue;
          }
          if (it->second.runtime != nullptr) {
            it->second.runtime->RequestStop();
          }
          bounced.emplace_back(std::move(id), it->second.ticket);
        }
      }
    }
    // Graceful drains run up to the drain deadline each; wait outside mu_
    // so the manager stays responsive (see step 1).
    for (const auto& [id, ticket] : bounced) {
      sched_->Wait(ticket);
    }
    // Respawn every bounced consumer even if one spawn fails — a stopped
    // task left behind would silently halt its stage.
    Status bounce_status = OkStatus();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, ticket] : bounced) {
        auto it = tasks_.find(id);
        if (it == tasks_.end()) {
          continue;
        }
        Status st = SpawnLocked(it->second, id);
        if (!st.ok()) {
          LOG_ERROR << "respawn of bounced consumer " << id
                    << " failed: " << st.ToString();
          if (bounce_status.ok()) {
            bounce_status = st;
          }
        }
      }
    }
    IMPELLER_RETURN_IF_ERROR(bounce_status);
  }

  // The resume_coordinator scope guard re-Configures and restarts the
  // barrier coordinator against the new task list on return.
  if (metrics_ != nullptr) {
    metrics_->GetCounter(new_tasks > old_tasks ? "rescale/up"
                                               : "rescale/down")
        ->Add();
  }
  return OkStatus();
}

void TaskManager::ResumeBarrierCoordinator() {
  std::vector<std::string> ingress_tags;
  std::vector<std::string> task_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, stream] : plan_.streams) {
      if (stream.external) {
        for (uint32_t sub = 0; sub < stream.num_substreams; ++sub) {
          ingress_tags.push_back(DataTag(name, sub));
        }
      }
    }
    for (const auto& s : plan_.stages) {
      for (uint32_t i = 0; i < s.num_tasks; ++i) {
        task_ids.push_back(MakeTaskId(plan_.name, s.name, i));
      }
    }
  }
  barrier_coordinator_->Configure(std::move(ingress_tags),
                                  std::move(task_ids));
  barrier_coordinator_->Start();
}

std::vector<StageStats> TaskManager::CollectStageStats() {
  struct Accum {
    StageStats stats;
    std::map<std::string, Lsn> floors;
  };
  std::vector<Accum> accums;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& stage : plan_.stages) {
      Accum a;
      a.stats.stage = stage.name;
      a.stats.current_tasks = stage.num_tasks;
      a.stats.num_substreams = stage.num_substreams;
      a.stats.stateful = stage.stateful;
      for (uint32_t i = 0; i < stage.num_tasks; ++i) {
        auto it = tasks_.find(MakeTaskId(plan_.name, stage.name, i));
        if (it == tasks_.end() || it->second.runtime == nullptr) {
          continue;
        }
        a.stats.commit_overruns += it->second.runtime->commit_overruns();
        for (const auto& [tag, floor] : it->second.runtime->InputProgress()) {
          a.floors[tag] = floor;  // substreams are task-disjoint
        }
      }
      accums.push_back(std::move(a));
    }
  }
  // Tail reads happen outside mu_: they hit the shared log, not the tasks.
  std::vector<StageStats> out;
  out.reserve(accums.size());
  for (auto& a : accums) {
    for (const auto& [tag, floor] : a.floors) {
      auto last = log_->ReadLast(tag);
      if (!last.ok()) {
        continue;  // empty substream: no backlog
      }
      uint64_t consumed = floor == kInvalidLsn ? 0 : floor + 1;
      uint64_t tail = last->lsn + 1;
      if (tail > consumed) {
        a.stats.input_lag += tail - consumed;
      }
    }
    out.push_back(std::move(a.stats));
  }
  return out;
}

std::vector<const StageSpec*> TaskManager::TopologicalStageOrder() const {
  // Kahn's algorithm over producer -> consumer stream edges.
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> edges;
  for (const auto& stage : plan_.stages) {
    indegree[stage.name];  // ensure presence
  }
  for (const auto& [name, stream] : plan_.streams) {
    if (stream.external || stream.egress || stream.producer_stage.empty() ||
        stream.consumer_stage.empty()) {
      continue;
    }
    edges[stream.producer_stage].push_back(stream.consumer_stage);
    indegree[stream.consumer_stage]++;
  }
  std::vector<const StageSpec*> order;
  std::vector<std::string> ready;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) {
      ready.push_back(name);
    }
  }
  while (!ready.empty()) {
    std::string name = ready.back();
    ready.pop_back();
    order.push_back(plan_.FindStage(name));
    for (const auto& next : edges[name]) {
      if (--indegree[next] == 0) {
        ready.push_back(next);
      }
    }
  }
  if (order.size() != plan_.stages.size()) {
    // Should be unreachable (Build() validates the DAG); fall back to
    // declaration order rather than dropping stages.
    order.clear();
    for (const auto& stage : plan_.stages) {
      order.push_back(&stage);
    }
  }
  return order;
}

void TaskManager::MonitorLoop() {
  while (running_.load()) {
    clock_->SleepFor(config_.heartbeat_interval);
    if (!running_.load()) {
      return;
    }
    std::vector<std::string> dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      TimeNs now = clock_->Now();
      for (auto& [id, entry] : tasks_) {
        TaskRuntime* rt = entry.runtime.get();
        if (rt == nullptr || entry.retired) {
          continue;
        }
        if (rt->finished()) {
          // Graceful exits and fenced zombies are final; crashes restart.
          Status st = rt->final_status();
          if (!st.ok() && st.code() != StatusCode::kFenced) {
            dead.push_back(id);
          }
          continue;
        }
        if (now - rt->last_heartbeat() > config_.failure_timeout) {
          dead.push_back(id);
        }
      }
    }
    for (const auto& id : dead) {
      LOG_WARN << "task " << id << " presumed failed; restarting";
      std::lock_guard<std::mutex> lock(mu_);
      auto it = tasks_.find(id);
      if (it != tasks_.end() && !it->second.retired) {
        Status st = SpawnLocked(it->second, id);
        if (!st.ok()) {
          LOG_ERROR << "restart of " << id << " failed: " << st.ToString();
        }
      }
    }
  }
}

}  // namespace impeller
