// Engine-wide configuration. Defaults follow the paper's experimental setup
// (§5.1): commit interval 100 ms, snapshot interval 10 s, 128 KiB output
// buffers.
#ifndef IMPELLER_SRC_CORE_CONFIG_H_
#define IMPELLER_SRC_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/autoscale/autoscaler.h"
#include "src/common/clock.h"
#include "src/common/retry.h"
#include "src/sharedlog/sharding/failover.h"

namespace impeller {

// Which exactly-once mechanism the engine runs (§5.1 baselines).
enum class ProtocolKind {
  kProgressMarking,    // Impeller (this paper)
  kKafkaTxn,           // Kafka Streams' two-phase transaction protocol
  kAlignedCheckpoint,  // Flink-style aligned checkpointing
  kUnsafe,             // no progress tracking (§5.3.4)
};

const char* ProtocolKindName(ProtocolKind kind);

struct EngineConfig {
  ProtocolKind protocol = ProtocolKind::kProgressMarking;

  // Interval between progress markers / transaction commits / checkpoint
  // barrier rounds.
  DurationNs commit_interval = 100 * kMillisecond;

  // Interval between asynchronous state checkpoints (progress-marking mode).
  DurationNs snapshot_interval = 10 * kSecond;
  bool enable_checkpointing = true;

  // Output buffer: appends are batched until this many bytes or the commit
  // point, whichever comes first.
  size_t output_buffer_bytes = 128 * 1024;
  DurationNs output_flush_interval = 10 * kMillisecond;

  // Kafka-txn baseline: maximum bytes of output buffered while a commit is
  // in flight before processing stalls (§3.6 "if its buffer fills up").
  size_t txn_inflight_buffer_bytes = 128 * 1024;

  // Input polling.
  DurationNs poll_interval = 1 * kMillisecond;
  size_t max_records_per_poll = 512;

  // Operator timer (window trigger) cadence.
  DurationNs timer_interval = 20 * kMillisecond;

  // Task-manager heartbeat monitoring.
  DurationNs heartbeat_interval = 50 * kMillisecond;
  DurationNs failure_timeout = 2 * kSecond;
  bool auto_restart = true;

  // Garbage collection.
  bool enable_gc = false;
  DurationNs gc_interval = 5 * kSecond;

  // Shared-log sharding: per-shard sequencers interleaved by the metalog
  // into one total order. 1 = single sequencer (seed behavior).
  uint32_t log_shards = 1;

  // Shard failure detection / seal protocol (DESIGN.md §10): when a shard
  // stops admitting, the log seals it and bumps the placement epoch so
  // pipelines keep appending to the survivors.
  FailoverOptions log_failover;

  // Workers in the engine's work-stealing task scheduler. 0 = one per
  // hardware thread (floored at 4 so small machines keep preemptive
  // sharing between tasks).
  uint32_t sched_workers = 0;

  // Backoff for log-client appends on transient kUnavailable failures
  // (tasks, ingress producers, protocol coordinators).
  RetryPolicy retry;

  // Whether sinks append results to an egress stream (paper measures
  // latency at emission from the output operator, before the push).
  bool write_egress = true;

  // Metrics-driven autoscaling (disabled by default): the engine runs an
  // Autoscaler that watches per-stage backlog and calls RescaleStage.
  AutoscaleOptions autoscale;
};

inline const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kProgressMarking:
      return "impeller";
    case ProtocolKind::kKafkaTxn:
      return "kafka-txn";
    case ProtocolKind::kAlignedCheckpoint:
      return "aligned-ckpt";
    case ProtocolKind::kUnsafe:
      return "unsafe";
  }
  return "?";
}

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_CONFIG_H_
