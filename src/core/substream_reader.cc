#include "src/core/substream_reader.h"

#include "src/common/logging.h"

namespace impeller {

SubstreamReader::SubstreamReader(SharedLog* log, std::string tag,
                                 uint32_t input_index, CommitTracker* tracker,
                                 Lsn start_lsn)
    : log_(log),
      tag_(std::move(tag)),
      input_index_(input_index),
      tracker_(tracker),
      next_lsn_(start_lsn) {}

void SubstreamReader::ResetCursor(Lsn lsn) {
  next_lsn_ = lsn;
  buffer_.clear();
}

void SubstreamReader::Restore(Lsn next_lsn, Lsn floor) {
  ResetCursor(next_lsn);
  committed_floor_ = floor;
}

void SubstreamReader::Drain(std::vector<ReadyRecord>* out) {
  while (!buffer_.empty()) {
    BufferedEntry& head = buffer_.front();
    CommitState state = tracker_->Classify(
        head.header.producer, head.header.instance, head.lsn);
    if (state == CommitState::kUnknown) {
      return;  // wait for a later commit event (paper §3.3.3, case 3)
    }
    committed_floor_ = head.lsn;
    if (state == CommitState::kCommitted &&
        !tracker_->IsDuplicate(tag_, head.header.producer,
                               head.header.instance, head.header.seq)) {
      ReadyRecord ready;
      ready.input = input_index_;
      ready.lsn = head.lsn;
      // The views stay valid across the move: they point into the shared
      // buffer the PayloadRef pins, not into the BufferedEntry itself.
      ready.payload = std::move(head.payload);
      ready.header = head.header;
      ready.data = head.data;
      out->push_back(std::move(ready));
    }
    buffer_.pop_front();
  }
}

void SubstreamReader::HandleEntry(LogEntry entry, const EnvelopeView& env,
                                  std::vector<ReadyRecord>* out,
                                  const Hooks& hooks) {
  switch (env.type) {
    case RecordType::kProgressMarker: {
      tracker_->OnCommitEvent(env.producer, env.instance, entry.lsn);
      if (buffer_.empty()) {
        committed_floor_ = entry.lsn;
      }
      Drain(out);
      return;
    }
    case RecordType::kTxnControl: {
      auto body = DecodeTxnControlBody(env.body);
      if (body.ok() && body->kind == TxnControlKind::kCommit) {
        tracker_->OnCommitEvent(env.producer, env.instance, entry.lsn);
        Drain(out);
      }
      if (buffer_.empty()) {
        committed_floor_ = entry.lsn;
      }
      return;
    }
    case RecordType::kBarrier: {
      auto body = DecodeBarrierBody(env.body);
      if (body.ok() && hooks.on_barrier) {
        hooks.on_barrier(input_index_, env, *body, entry.lsn);
      }
      if (buffer_.empty()) {
        committed_floor_ = entry.lsn;
      }
      return;
    }
    case RecordType::kData: {
      auto data = DecodeDataView(env.body);
      if (!data.ok()) {
        LOG_ERROR << "corrupt data record at lsn " << entry.lsn << " on "
                  << tag_ << ": " << data.status().ToString();
        return;
      }
      if (!buffer_.empty()) {
        // Preserve substream FIFO order behind an unknown head.
        buffer_.push_back({entry.lsn, std::move(entry.payload), env, *data});
        return;
      }
      CommitState state =
          tracker_->Classify(env.producer, env.instance, entry.lsn);
      if (state == CommitState::kUnknown) {
        buffer_.push_back({entry.lsn, std::move(entry.payload), env, *data});
        return;
      }
      committed_floor_ = entry.lsn;
      if (state == CommitState::kCommitted &&
          !tracker_->IsDuplicate(tag_, env.producer, env.instance, env.seq)) {
        ReadyRecord ready;
        ready.input = input_index_;
        ready.lsn = entry.lsn;
        ready.payload = std::move(entry.payload);
        ready.header = env;
        ready.data = *data;
        out->push_back(std::move(ready));
      }
      return;
    }
    case RecordType::kChangeLog:
      // Change-log records carry only the (C, task) tag and are never read
      // through data substreams; seeing one here means a tagging bug.
      LOG_ERROR << "change-log record on data substream " << tag_;
      return;
  }
}

Result<size_t> SubstreamReader::Poll(size_t max_new,
                                     std::vector<ReadyRecord>* out,
                                     const Hooks& hooks) {
  size_t consumed = 0;
  while (consumed < max_new) {
    auto entry = log_->ReadNext(tag_, next_lsn_);
    if (!entry.ok()) {
      if (entry.status().code() == StatusCode::kNotFound) {
        break;  // caught up
      }
      return entry.status();  // kTrimmed or internal errors propagate
    }
    if (entry->lsn < next_lsn_) {
      // Redelivered duplicate below the cursor (fault-injected lost-ack
      // refetch). The record was already handled; in read-committed mode it
      // would not pass the seq-dedup filter again, so drop it here for all
      // modes. Counts toward `consumed` to keep the poll loop bounded.
      ++consumed;
      continue;
    }
    next_lsn_ = entry->lsn + 1;
    ++consumed;
    // Decode in place over the refcounted log payload: no byte copies on
    // the hot path, only a refcount bump when the record is kept.
    auto env = DecodeEnvelopeView(entry->payload.view());
    if (!env.ok()) {
      LOG_ERROR << "corrupt envelope at lsn " << entry->lsn << " on " << tag_;
      continue;
    }
    HandleEntry(std::move(*entry), *env, out, hooks);
  }
  return consumed;
}

}  // namespace impeller
