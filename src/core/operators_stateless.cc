#include "src/core/operators.h"

namespace impeller {

void FilterOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  if (pred_(record)) {
    out->Emit(std::move(record));
  }
}

void MapOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  out->Emit(fn_(std::move(record)));
}

void FlatMapOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  std::vector<StreamRecord> results;
  fn_(std::move(record), &results);
  for (auto& r : results) {
    out->Emit(std::move(r));
  }
}

void BranchOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  int output = selector_(record);
  if (output >= 0) {
    out->EmitTo(static_cast<uint32_t>(output), std::move(record));
  }
}

void KeyByOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  record.key = fn_(record);
  out->Emit(std::move(record));
}

void SinkOperator::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  latency_ = ctx->metrics()->Histogram("lat/" + name_);
  count_ = ctx->metrics()->GetCounter("out/" + name_);
}

void SinkOperator::Process(uint32_t, StreamRecord record, Collector* out) {
  // Event-time latency, measured before the record is pushed to the output
  // stream (paper §5.3.1).
  latency_->Record(ctx_->clock()->Now() - record.event_time);
  count_->Add();
  if (callback_) {
    callback_(record);
  }
  out->Emit(std::move(record));
}

}  // namespace impeller
