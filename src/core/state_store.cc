#include "src/core/state_store.h"

#include "src/common/serde.h"

namespace impeller {

MapStateStore::MapStateStore(std::string name, ChangeSink sink,
                             const uint32_t* ctx_substream)
    : name_(std::move(name)),
      sink_(std::move(sink)),
      ctx_substream_(ctx_substream) {}

std::optional<std::string> MapStateStore::Get(std::string_view key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return it->second.value;
}

std::optional<std::string_view> MapStateStore::GetView(
    std::string_view key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return std::string_view(it->second.value);
}

std::optional<uint32_t> MapStateStore::GetOwner(std::string_view key) const {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return std::nullopt;
  }
  return it->second.owner;
}

void MapStateStore::Put(std::string_view key, std::string_view value) {
  // Last writer wins: a write during record processing stamps the record's
  // input substream; a write outside it (timers) keeps the existing owner,
  // so timer-driven re-puts of a key never orphan it.
  uint32_t ctx = ctx_substream_ != nullptr ? *ctx_substream_
                                           : kUnownedSubstream;
  auto it = data_.find(key);
  if (it == data_.end()) {
    it = data_.emplace(std::string(key), Entry{std::string(value), ctx})
             .first;
    bytes_ += key.size() + value.size();
  } else {
    // Replaced: adjust for the value size delta only.
    bytes_ -= std::min(bytes_, it->second.value.size());
    bytes_ += value.size();
    it->second.value.assign(value);
    if (ctx != kUnownedSubstream) {
      it->second.owner = ctx;
    }
  }
  if (sink_) {
    sink_(ChangeLogView{name_, key, /*is_delete=*/false, value,
                        it->second.owner});
  }
}

void MapStateStore::Delete(std::string_view key) {
  auto it = data_.find(key);
  if (it == data_.end()) {
    return;
  }
  uint32_t owner = it->second.owner;
  bytes_ -= std::min(bytes_, it->first.size() + it->second.value.size());
  data_.erase(it);
  if (sink_) {
    sink_(ChangeLogView{name_, key, /*is_delete=*/true, {}, owner});
  }
}

void MapStateStore::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, std::string_view)>& visit)
    const {
  for (auto it = data_.lower_bound(prefix); it != data_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    if (!visit(it->first, it->second.value)) {
      break;
    }
  }
}

void MapStateStore::ScanRange(
    std::string_view from, std::string_view to,
    const std::function<bool(std::string_view, std::string_view)>& visit)
    const {
  auto it = data_.lower_bound(from);
  auto end = data_.lower_bound(to);
  for (; it != end; ++it) {
    if (!visit(it->first, it->second.value)) {
      break;
    }
  }
}

void MapStateStore::ScanAll(
    const std::function<bool(std::string_view, std::string_view, uint32_t)>&
        visit) const {
  for (const auto& [key, entry] : data_) {
    if (!visit(key, entry.value, entry.owner)) {
      break;
    }
  }
}

void MapStateStore::DeleteRange(std::string_view from, std::string_view to) {
  std::vector<std::string> doomed;
  ScanRange(from, to, [&](std::string_view key, std::string_view) {
    doomed.emplace_back(key);
    return true;
  });
  for (const auto& key : doomed) {
    Delete(key);
  }
}

void MapStateStore::ApplyChange(const ChangeLogView& change) {
  if (change.is_delete) {
    auto it = data_.find(change.key);
    if (it != data_.end()) {
      bytes_ -= std::min(bytes_, it->first.size() + it->second.value.size());
      data_.erase(it);
    }
    return;
  }
  auto it = data_.find(change.key);
  if (it == data_.end()) {
    data_.emplace(std::string(change.key),
                  Entry{std::string(change.value), change.substream});
    bytes_ += change.key.size() + change.value.size();
  } else {
    bytes_ -= std::min(bytes_, it->second.value.size());
    bytes_ += change.value.size();
    it->second.value.assign(change.value);
    it->second.owner = change.substream;
  }
}

namespace {

// Leading varint of an owner-carrying snapshot. Pre-ownership snapshots
// start directly with the entry count, which can never reach this value, so
// MergeSnapshot can decode both formats: entries without a trailing owner
// field default to kUnownedSubstream (checkpoints taken before the
// ownership upgrade must stay recoverable).
constexpr uint64_t kOwnedSnapshotMark = ~uint64_t{0};

}  // namespace

std::string MapStateStore::SerializeSnapshot() const {
  BinaryWriter w(bytes_ + 32);
  w.WriteVarU64(kOwnedSnapshotMark);
  w.WriteVarU64(data_.size());
  for (const auto& [key, entry] : data_) {
    w.WriteString(key);
    w.WriteString(entry.value);
    w.WriteVarU64(entry.owner);
  }
  return w.Take();
}

Status MapStateStore::RestoreSnapshot(std::string_view raw) {
  Clear();
  return MergeSnapshot(raw, nullptr);
}

Status MapStateStore::MergeSnapshot(std::string_view raw,
                                    const OwnerFilter& keep) {
  BinaryReader r(raw);
  auto first = r.ReadVarU64();
  if (!first.ok()) {
    return first.status();
  }
  bool has_owner = *first == kOwnedSnapshotMark;
  uint64_t count = *first;
  if (has_owner) {
    auto n = r.ReadVarU64();
    if (!n.ok()) {
      return n.status();
    }
    count = *n;
  }
  for (uint64_t i = 0; i < count; ++i) {
    auto key = r.ReadString();
    if (!key.ok()) {
      return key.status();
    }
    auto value = r.ReadString();
    if (!value.ok()) {
      return value.status();
    }
    uint32_t owner = kUnownedSubstream;
    if (has_owner) {
      auto owner_raw = r.ReadVarU64();
      if (!owner_raw.ok()) {
        return owner_raw.status();
      }
      owner = static_cast<uint32_t>(*owner_raw);
    }
    if (keep && !keep(owner)) {
      continue;
    }
    // Replacements (merging several handoff sources, or a snapshot over a
    // prior merge) must shed the old entry's size or bytes_ drifts upward.
    auto it = data_.find(*key);
    if (it != data_.end()) {
      bytes_ -= std::min(bytes_, it->first.size() + it->second.value.size());
    }
    bytes_ += key->size() + value->size();
    data_.insert_or_assign(std::move(*key), Entry{std::move(*value), owner});
  }
  return OkStatus();
}

void MapStateStore::RetainOwned(const OwnerFilter& keep) {
  for (auto it = data_.begin(); it != data_.end();) {
    uint32_t owner = it->second.owner;
    if (keep && !keep(owner)) {
      bytes_ -= std::min(bytes_, it->first.size() + it->second.value.size());
      it = data_.erase(it);
    } else {
      it->second.owner = owner;  // filter may have normalized it
      ++it;
    }
  }
}

void MapStateStore::Clear() {
  data_.clear();
  bytes_ = 0;
}

std::string EncodeCompositeKey(std::string_view key, uint64_t suffix) {
  std::string out;
  out.reserve(key.size() + 9);
  out.append(key);
  out.push_back('\0');
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<char>((suffix >> (8 * i)) & 0xFF));
  }
  return out;
}

Result<std::pair<std::string, uint64_t>> DecodeCompositeKey(
    std::string_view raw) {
  if (raw.size() < 9) {
    return DataLossError("composite key too short");
  }
  size_t sep = raw.size() - 9;
  if (raw[sep] != '\0') {
    return DataLossError("composite key missing separator");
  }
  uint64_t suffix = 0;
  for (size_t i = sep + 1; i < raw.size(); ++i) {
    suffix = (suffix << 8) | static_cast<uint8_t>(raw[i]);
  }
  return std::make_pair(std::string(raw.substr(0, sep)), suffix);
}

}  // namespace impeller
