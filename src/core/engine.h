// The top-level Impeller engine (paper Fig. 2): owns the shared log, the
// checkpoint store, the task manager, and the metrics registry for one
// stream query. Applications build a QueryPlan, submit it, and feed data via
// IngressProducers (the gateway + data-ingress path); results land on the
// egress stream, readable through EgressConsumer.
#ifndef IMPELLER_SRC_CORE_ENGINE_H_
#define IMPELLER_SRC_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/autoscale/autoscaler.h"
#include "src/core/commit_tracker.h"
#include "src/core/config.h"
#include "src/core/metrics.h"
#include "src/core/query.h"
#include "src/core/substream_reader.h"
#include "src/core/task_manager.h"
#include "src/kvstore/kv_store.h"
#include "src/sched/scheduler.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

struct EngineOptions {
  EngineConfig config;
  // Latency model for the shared log (default: zero latency — tests).
  std::shared_ptr<LatencyModel> log_latency;
  // Latency model for the checkpoint store.
  std::shared_ptr<LatencyModel> kv_latency;
  // WAL path for the checkpoint store; empty = memory only.
  std::string kv_wal_path;
  Clock* clock = nullptr;
  std::string name = "impeller";
};

class IngressProducer;
class EgressConsumer;

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Status Submit(QueryPlan plan);
  void Stop();

  // Creates a producer for an external ingress stream of the submitted
  // plan. `producer_id` must be unique (duplicate suppression is keyed on
  // it, §3.5).
  Result<std::unique_ptr<IngressProducer>> NewProducer(
      std::string producer_id, std::string stream);

  // Creates a consumer over one egress substream of a sinking stage.
  Result<std::unique_ptr<EgressConsumer>> NewEgressConsumer(
      std::string_view stage, uint32_t substream);

  SharedLog* log() { return log_.get(); }
  KvStore* checkpoint_store() { return kv_.get(); }
  MetricsRegistry* metrics() { return &metrics_; }
  TaskManager* tasks() { return manager_.get(); }
  Autoscaler* autoscaler() { return autoscaler_.get(); }
  sched::WorkStealingScheduler* scheduler() { return sched_.get(); }
  Clock* clock() { return clock_; }
  const QueryPlan& plan() const { return manager_->plan(); }

 private:
  EngineOptions options_;
  Clock* clock_;
  std::unique_ptr<SharedLog> log_;
  std::unique_ptr<KvStore> kv_;
  MetricsRegistry metrics_;
  // Declared before manager_: tasks are scheduler entities, so the manager
  // must stop (and drain every ticket) before the scheduler dies.
  std::unique_ptr<sched::WorkStealingScheduler> sched_;
  std::unique_ptr<TaskManager> manager_;
  // Stopped before the manager: its ticks call into RescaleStage.
  std::unique_ptr<Autoscaler> autoscaler_;
  bool submitted_ = false;
  bool stopped_ = false;
};

// Batching producer for an ingress stream: records are hashed to substreams
// by key, buffered, and flushed as one batch append per substream — the
// paper's input generators flush every 10/100 ms (§5.3).
class IngressProducer {
 public:
  IngressProducer(SharedLog* log, std::string producer_id,
                  std::string stream, uint32_t num_substreams, Clock* clock,
                  RetryPolicy retry = {}, MetricsRegistry* metrics = nullptr);

  // Buffers one record. event_time 0 = now.
  void Send(std::string key, std::string value, TimeNs event_time = 0);

  // Appends all buffered records. Returns the number appended. On a
  // transient failure (retries exhausted) the unflushed substream batches
  // stay buffered: a later Flush re-issues them with their original
  // sequence numbers, and §3.5 duplicate suppression absorbs any batch the
  // log durably appended but failed to acknowledge.
  Result<size_t> Flush();

  size_t buffered() const;
  uint64_t sent() const { return seq_; }

  // Testing hook (§3.5 duplicate suppression): re-sends a previous payload
  // with its original sequence number, as a gateway retry would.
  void SendDuplicate(std::string key, std::string value, TimeNs event_time,
                     uint64_t original_seq);

 private:
  SharedLog* log_;
  std::string producer_id_;
  std::string stream_;
  uint32_t num_substreams_;
  Clock* clock_;
  Retrier retrier_;
  uint64_t seq_ = 0;
  std::vector<std::vector<AppendRequest>> pending_;  // per substream
  size_t pending_count_ = 0;
};

// Reads committed data records from one egress substream, applying the same
// commit filtering a downstream stage would (read-committed under marker
// protocols, read-uncommitted otherwise).
class EgressConsumer {
 public:
  EgressConsumer(SharedLog* log, std::string stream, uint32_t substream,
                 bool read_committed);

  // Non-blocking: drains every currently classifiable record.
  Result<std::vector<ReadyRecord>> PollAll();

 private:
  CommitTracker tracker_;
  SubstreamReader reader_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_ENGINE_H_
