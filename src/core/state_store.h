// In-memory state store with change-log capture (paper §4: "Impeller stores
// state in memory for low access latency ... updates to the local state
// store are appended to a change log stream for fault tolerance").
//
// All operator state — aggregate tables, window panes, join buffers — is
// kept in MapStateStores over an ordered map with type-specific key
// encodings, so change-log replay, snapshotting and checkpointing are
// uniform across every stateful operator.
//
// Keyed state is substream-range-owned (§5.3): every entry remembers the
// input substream whose records last wrote it. State keys are not routing
// keys (window panes use composite keys, table aggregates keep per-row and
// per-group stores), so ownership cannot be recomputed by hashing — it is
// recorded at write time from the runtime's current-record context, carried
// through change-log records and snapshots, and is what lets a rescaled
// generation split or merge exactly its substream range of the state.
#ifndef IMPELLER_SRC_CORE_STATE_STORE_H_
#define IMPELLER_SRC_CORE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/record.h"

namespace impeller {

// Receives every mutation for change-log appends. Null = capture disabled
// (replay, unsafe mode). The view's fields alias the caller's key/value and
// the store's name; the sink must encode (or copy) before returning.
using ChangeSink = std::function<void(const ChangeLogView&)>;

// Ownership predicate over an entry's owner substream. May normalize the
// owner in place (e.g. map kUnownedSubstream to a source task's default
// substream) before deciding; returns whether the entry is kept.
using OwnerFilter = std::function<bool(uint32_t& owner)>;

class MapStateStore {
 public:
  // `ctx_substream` (optional) points at the runtime's current-record input
  // substream; each Put/Delete stamps the entry's owner from it. Null (or
  // pointing at kUnownedSubstream) leaves new entries unowned.
  MapStateStore(std::string name, ChangeSink sink,
                const uint32_t* ctx_substream = nullptr);

  const std::string& name() const { return name_; }

  std::optional<std::string> Get(std::string_view key) const;
  // Zero-copy lookup: the returned view aliases the stored value and is
  // valid until the next mutation of this store.
  std::optional<std::string_view> GetView(std::string_view key) const;
  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);

  // Owner substream of a key; nullopt when absent.
  std::optional<uint32_t> GetOwner(std::string_view key) const;

  // Visits entries with the given prefix in key order; visitor returns
  // false to stop early.
  void ScanPrefix(
      std::string_view prefix,
      const std::function<bool(std::string_view, std::string_view)>& visit)
      const;

  // Visits entries in [from, to) in key order.
  void ScanRange(
      std::string_view from, std::string_view to,
      const std::function<bool(std::string_view, std::string_view)>& visit)
      const;

  // Visits every entry with its owner substream (handoff re-append path).
  void ScanAll(const std::function<bool(std::string_view key,
                                        std::string_view value,
                                        uint32_t owner)>& visit) const;

  // Deletes every key in [from, to); each deletion is captured.
  void DeleteRange(std::string_view from, std::string_view to);

  size_t size() const { return data_.size(); }
  size_t SizeBytes() const { return bytes_; }

  // --- recovery / checkpointing / migration (no change capture) ---
  void ApplyChange(const ChangeLogView& change);
  void ApplyChange(const ChangeLogBody& change) {
    ApplyChange(ChangeLogView{change.store, change.key, change.is_delete,
                              change.value, change.substream});
  }
  std::string SerializeSnapshot() const;
  Status RestoreSnapshot(std::string_view raw);
  // Merges a serialized snapshot without clearing, keeping only entries the
  // filter accepts (null = all); the split half of a rescale handoff.
  Status MergeSnapshot(std::string_view raw, const OwnerFilter& keep);
  // Drops every entry the filter rejects (scale-up: shed foreign substreams).
  void RetainOwned(const OwnerFilter& keep);
  void Clear();

 private:
  struct Entry {
    std::string value;
    uint32_t owner = kUnownedSubstream;
  };

  std::string name_;
  ChangeSink sink_;
  const uint32_t* ctx_substream_ = nullptr;
  // std::less<> enables heterogeneous lookup: string_view keys probe the
  // map without materializing temporary std::strings.
  std::map<std::string, Entry, std::less<>> data_;
  size_t bytes_ = 0;
};

// Order-preserving composite keys for window panes and join buffers:
// <user key> '\0' <big-endian u64>. User keys must not contain NUL.
std::string EncodeCompositeKey(std::string_view key, uint64_t suffix);
Result<std::pair<std::string, uint64_t>> DecodeCompositeKey(
    std::string_view raw);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_STATE_STORE_H_
