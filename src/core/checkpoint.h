// State recovery machinery (paper §3.3.4, §3.5 "Accelerating state
// recovery", §4):
//
//  * CutInfo — a protocol-neutral view of a commit cut found on a task's
//    task-log or change-log substream (a progress marker, or a transaction
//    commit control record in the Kafka-txn baseline).
//  * ReplayChangelog — replays a task's change-log substream up to a cut,
//    buffering entries until each covering cut arrives and discarding
//    updates from superseded instances, exactly the loop of §3.3.4.
//  * CheckpointWorker — asynchronously builds state checkpoints by replaying
//    the change log in the background (never touching live task state) and
//    writing snapshots to the checkpoint store every snapshot interval; on
//    recovery a task restores the latest snapshot and replays only the
//    remaining suffix (Table 4 measures the win).
#ifndef IMPELLER_SRC_CORE_CHECKPOINT_H_
#define IMPELLER_SRC_CORE_CHECKPOINT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/threading.h"
#include "src/core/config.h"
#include "src/core/marker.h"
#include "src/core/record.h"
#include "src/core/state_store.h"
#include "src/kvstore/kv_store.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class GcRegistry;

struct CutInfo {
  uint64_t instance = 0;
  Lsn lsn = kInvalidLsn;
  uint64_t marker_seq = 0;  // 0 for txn commit records
  uint64_t txn_id = 0;      // 0 for progress markers
  Lsn changelog_from = kInvalidLsn;
  std::vector<std::pair<std::string, Lsn>> input_ends;
};

// Interprets a log entry as a commit cut for `task_id`: a progress marker or
// a transaction commit control record produced by that task. Returns nullopt
// for other record types / producers.
Result<std::optional<CutInfo>> ExtractCut(const Envelope& env, Lsn lsn,
                                          std::string_view task_id);

struct ReplayStats {
  uint64_t entries_read = 0;
  uint64_t changes_applied = 0;
  Lsn next_lsn = 0;  // position after the last processed cut
};

// Replays the (C, task) substream from `from_lsn`, invoking `apply` for
// every committed change, up to the recovery target cut: a progress marker
// sits at `until_lsn` itself; a transaction commit is matched by
// `until_txn_id` (phase two appends one commit record per substream, so the
// change-log's copy sits at a nearby lower LSN than the task-log's).
Result<ReplayStats> ReplayChangelog(
    SharedLog* log, const std::string& task_id, Lsn from_lsn, Lsn until_lsn,
    uint64_t until_txn_id,
    const std::function<void(const ChangeLogView&)>& apply);

// --- snapshot codec: named sections (one per state store + extras) ---
std::string EncodeSnapshot(const std::map<std::string, std::string>& sections);
Result<std::map<std::string, std::string>> DecodeSnapshot(
    std::string_view raw);

struct CheckpointMeta {
  Lsn cut_lsn = kInvalidLsn;   // the cut the snapshot is consistent with
  Lsn next_replay_lsn = 0;     // change-log position recovery resumes from
  uint64_t marker_seq = 0;
};

std::string CheckpointBlobKey(std::string_view task_id);
std::string CheckpointMetaKey(std::string_view task_id);
std::string EncodeCheckpointMeta(const CheckpointMeta& meta);
Result<CheckpointMeta> DecodeCheckpointMeta(std::string_view raw);

class CheckpointWorker {
 public:
  CheckpointWorker(SharedLog* log, KvStore* store, Clock* clock,
                   DurationNs interval, GcRegistry* gc);
  ~CheckpointWorker();

  // Registers a stateful task for background checkpointing. Call before
  // Start().
  void RegisterTask(const std::string& task_id);

  void Start();
  void Stop();

  // Runs one checkpoint pass over all registered tasks (exposed for tests
  // and deterministic benchmarks).
  void RunOnce();

  uint64_t checkpoints_written() const { return checkpoints_.load(); }

 private:
  struct ShadowTask {
    std::string task_id;
    Lsn cursor = 0;  // next (C, task) position to read
    struct PendingChange {
      Lsn lsn;
      uint64_t instance;
      ChangeLogBody body;
    };
    std::deque<PendingChange> pending;
    std::map<std::string, std::unique_ptr<MapStateStore>> stores;
    Lsn last_cut_lsn = kInvalidLsn;
    uint64_t last_marker_seq = 0;
    Lsn last_checkpointed_cut = kInvalidLsn;
  };

  void Loop();
  Status Advance(ShadowTask& shadow);
  Status WriteCheckpoint(ShadowTask& shadow);

  SharedLog* log_;
  KvStore* store_;
  Clock* clock_;
  DurationNs interval_;
  GcRegistry* gc_;

  std::mutex mu_;
  std::vector<std::unique_ptr<ShadowTask>> tasks_;
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<bool> running_{false};
  JoiningThread thread_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_CHECKPOINT_H_
