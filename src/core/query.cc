#include "src/core/query.h"

#include <set>

#include "src/common/hash.h"
#include "src/core/stream.h"

namespace impeller {

uint32_t HashPartition(std::string_view key, uint32_t n) {
  return PartitionFor(Fnv1a(key), n);
}

std::string EgressStreamName(std::string_view query, std::string_view stage) {
  std::string name(query);
  name += '.';
  name += stage;
  name += ".out";
  return name;
}

const StageSpec* QueryPlan::FindStage(std::string_view stage_name) const {
  for (const auto& stage : stages) {
    if (stage.name == stage_name) {
      return &stage;
    }
  }
  return nullptr;
}

const StreamSpec* QueryPlan::FindStream(std::string_view stream_name) const {
  auto it = streams.find(std::string(stream_name));
  return it == streams.end() ? nullptr : &it->second;
}

std::vector<std::string> QueryPlan::ProducersOf(
    std::string_view stream_name) const {
  const StreamSpec* stream = FindStream(stream_name);
  if (stream == nullptr || stream->external) {
    return {};
  }
  const StageSpec* producer = FindStage(stream->producer_stage);
  if (producer == nullptr) {
    return {};
  }
  std::vector<std::string> tasks;
  tasks.reserve(producer->num_tasks);
  for (uint32_t i = 0; i < producer->num_tasks; ++i) {
    tasks.push_back(MakeTaskId(name, producer->name, i));
  }
  return tasks;
}

// --- StageBuilder ---

StageBuilder& StageBuilder::ReadsFrom(std::vector<std::string> streams) {
  spec_.inputs = std::move(streams);
  return *this;
}

StageBuilder& StageBuilder::AddOperator(OperatorFactory factory,
                                        bool stateful) {
  spec_.operators.push_back(std::move(factory));
  spec_.stateful = spec_.stateful || stateful;
  return *this;
}

StageBuilder& StageBuilder::Filter(FilterOperator::Predicate pred) {
  return AddOperator(
      [pred = std::move(pred)] {
        return std::make_unique<FilterOperator>(pred);
      },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::Map(MapOperator::MapFn fn) {
  return AddOperator(
      [fn = std::move(fn)] { return std::make_unique<MapOperator>(fn); },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::FlatMap(FlatMapOperator::FlatMapFn fn) {
  return AddOperator(
      [fn = std::move(fn)] { return std::make_unique<FlatMapOperator>(fn); },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::Branch(BranchOperator::Selector selector) {
  return AddOperator(
      [selector = std::move(selector)] {
        return std::make_unique<BranchOperator>(selector);
      },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::KeyBy(KeyByOperator::KeyFn fn) {
  return AddOperator(
      [fn = std::move(fn)] { return std::make_unique<KeyByOperator>(fn); },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::Aggregate(std::string store, AggregateFn agg) {
  return AddOperator(
      [store = std::move(store), agg = std::move(agg)] {
        return std::make_unique<GroupAggregateOperator>(store, agg);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::TableAggregate(
    std::string store, TableAggregateOperator::GroupKeyFn group_key,
    AggregateFn agg, TableAggregateOperator::RowKeyFn row_key) {
  return AddOperator(
      [store = std::move(store), group_key = std::move(group_key),
       agg = std::move(agg), row_key = std::move(row_key)] {
        return std::make_unique<TableAggregateOperator>(store, group_key, agg,
                                                        row_key);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::WindowAggregate(std::string store,
                                            WindowSpec window,
                                            AggregateFn agg,
                                            DurationNs allowed_lateness,
                                            WindowEmitMode mode,
                                            DurationNs suppress_interval) {
  return AddOperator(
      [store = std::move(store), window, agg = std::move(agg),
       allowed_lateness, mode, suppress_interval] {
        return std::make_unique<WindowAggregateOperator>(
            store, window, agg, allowed_lateness, mode, suppress_interval);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::JoinStreams(std::string store, DurationNs window,
                                        StreamStreamJoinOperator::JoinFn join,
                                        DurationNs allowed_lateness) {
  return AddOperator(
      [store = std::move(store), window, join = std::move(join),
       allowed_lateness] {
        return std::make_unique<StreamStreamJoinOperator>(
            store, window, join, allowed_lateness);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::JoinTable(std::string store,
                                      StreamTableJoinOperator::JoinFn join) {
  return AddOperator(
      [store = std::move(store), join = std::move(join)] {
        return std::make_unique<StreamTableJoinOperator>(store, join);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::JoinTables(std::string store,
                                       TableTableJoinOperator::JoinFn join) {
  return AddOperator(
      [store = std::move(store), join = std::move(join)] {
        return std::make_unique<TableTableJoinOperator>(store, join);
      },
      /*stateful=*/true);
}

StageBuilder& StageBuilder::Sink(std::string name,
                                 SinkOperator::Callback cb) {
  has_sink_ = true;
  return AddOperator(
      [name = std::move(name), cb = std::move(cb)] {
        return std::make_unique<SinkOperator>(name, cb);
      },
      /*stateful=*/false);
}

StageBuilder& StageBuilder::WithSubstreams(uint32_t n) {
  spec_.num_substreams = n;
  return *this;
}

StageBuilder& StageBuilder::WritesTo(std::string stream,
                                     Partitioner partitioner) {
  OutputSpec out;
  out.stream = std::move(stream);
  out.partitioner = std::move(partitioner);
  spec_.outputs.push_back(std::move(out));
  return *this;
}

// --- QueryBuilder ---

QueryBuilder& QueryBuilder::Ingress(std::string stream) {
  ingress_.push_back(std::move(stream));
  return *this;
}

StageBuilder& QueryBuilder::AddStage(std::string stage_name,
                                     uint32_t num_tasks) {
  auto builder = std::make_unique<StageBuilder>();
  builder->spec_.name = std::move(stage_name);
  builder->spec_.num_tasks = num_tasks;
  stages_.push_back(std::move(builder));
  return *stages_.back();
}

Result<QueryPlan> QueryBuilder::Build() {
  QueryPlan plan;
  plan.name = name_;

  for (const auto& stream : ingress_) {
    StreamSpec spec;
    spec.name = stream;
    spec.external = true;
    plan.streams[stream] = std::move(spec);
  }

  std::set<std::string> stage_names;
  for (const auto& sb : stages_) {
    StageSpec& spec = sb->spec_;
    if (spec.num_tasks == 0) {
      return InvalidArgumentError("stage " + spec.name + " has zero tasks");
    }
    if (spec.num_substreams == 0) {
      spec.num_substreams = spec.num_tasks;
    }
    if (spec.num_substreams < spec.num_tasks) {
      return InvalidArgumentError("stage " + spec.name +
                                  " has fewer substreams than tasks");
    }
    if (spec.operators.empty()) {
      return InvalidArgumentError("stage " + spec.name + " has no operators");
    }
    if (!stage_names.insert(spec.name).second) {
      return InvalidArgumentError("duplicate stage name " + spec.name);
    }
  }

  // Register internal output streams.
  for (auto& sb : stages_) {
    StageSpec& spec = sb->spec_;
    for (const auto& out : spec.outputs) {
      if (plan.streams.count(out.stream) != 0) {
        return InvalidArgumentError("stream " + out.stream +
                                    " has multiple producers");
      }
      StreamSpec stream;
      stream.name = out.stream;
      stream.producer_stage = spec.name;
      plan.streams[out.stream] = std::move(stream);
    }
    if (sb->has_sink_) {
      // Egress stream: one substream per sinking task, identity routing.
      // Sized to the substream budget so the stage can rescale.
      OutputSpec egress;
      egress.stream = EgressStreamName(name_, spec.name);
      egress.partitioner = nullptr;  // task runtime routes to its own index
      StreamSpec stream;
      stream.name = egress.stream;
      stream.producer_stage = spec.name;
      stream.egress = true;
      stream.num_substreams = spec.num_substreams;
      plan.streams[egress.stream] = std::move(stream);
      spec.outputs.push_back(std::move(egress));
    }
  }

  // Resolve consumers and substream counts.
  for (auto& sb : stages_) {
    StageSpec& spec = sb->spec_;
    if (spec.inputs.empty()) {
      return InvalidArgumentError("stage " + spec.name + " reads nothing");
    }
    for (const auto& input : spec.inputs) {
      auto it = plan.streams.find(input);
      if (it == plan.streams.end()) {
        return InvalidArgumentError(
            "stage '" + spec.name + "' reads stream '" + input +
            "' which has no producer; declare it with Ingress(\"" + input +
            "\") or produce it with WritesTo(\"" + input +
            "\") on another stage");
      }
      StreamSpec& stream = it->second;
      if (!stream.consumer_stage.empty()) {
        return InvalidArgumentError(
            "stream '" + input + "' has multiple consumers: '" +
            stream.consumer_stage + "' and '" + spec.name +
            "'; streams are single-consumer — produce a separate stream per "
            "consumer (e.g. via a Branch stage)");
      }
      if (stream.egress) {
        return InvalidArgumentError("egress stream " + input +
                                    " cannot be consumed");
      }
      stream.consumer_stage = spec.name;
      stream.num_substreams = spec.num_substreams;
    }
  }

  // Every non-egress stream needs a consumer; every internal stream needs
  // its producer to exist.
  for (auto& [name, stream] : plan.streams) {
    if (!stream.egress && stream.consumer_stage.empty()) {
      return InvalidArgumentError("stream " + name + " is never consumed");
    }
  }

  // The stage graph must be acyclic. Streams are registered before
  // consumers resolve, so the checks above accept mutually-referencing
  // stages (A reads B's output while B reads A's); a query like that would
  // deadlock at runtime with every stage waiting on the other's append.
  // Kahn's algorithm over stage dependency edges (producer -> consumer).
  {
    std::map<std::string, std::set<std::string>> consumers_of;
    std::map<std::string, size_t> indegree;
    for (const auto& sb : stages_) {
      indegree[sb->spec_.name];  // ensure every stage is present
    }
    for (const auto& [stream_name, stream] : plan.streams) {
      if (stream.producer_stage.empty() || stream.consumer_stage.empty()) {
        continue;  // ingress or egress edge
      }
      if (consumers_of[stream.producer_stage]
              .insert(stream.consumer_stage)
              .second) {
        ++indegree[stream.consumer_stage];
      }
    }
    std::vector<std::string> frontier;
    for (const auto& [stage, degree] : indegree) {
      if (degree == 0) {
        frontier.push_back(stage);
      }
    }
    size_t visited = 0;
    while (!frontier.empty()) {
      std::string stage = frontier.back();
      frontier.pop_back();
      ++visited;
      for (const auto& consumer : consumers_of[stage]) {
        if (--indegree[consumer] == 0) {
          frontier.push_back(consumer);
        }
      }
    }
    if (visited != indegree.size()) {
      std::string on_cycle;
      for (const auto& [stage, degree] : indegree) {
        if (degree > 0) {
          if (!on_cycle.empty()) {
            on_cycle += ", ";
          }
          on_cycle += "'" + stage + "'";
        }
      }
      return InvalidArgumentError(
          "query '" + name_ + "' has a cycle through stages " + on_cycle +
          "; stage dataflow must be acyclic");
    }
  }

  for (auto& sb : stages_) {
    plan.stages.push_back(sb->spec_);
  }
  return plan;
}

}  // namespace impeller
