#include "src/core/engine.h"

#include "src/common/hash.h"
#include "src/core/record.h"
#include "src/core/stream.h"

namespace impeller {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  clock_ = options_.clock != nullptr ? options_.clock : MonotonicClock::Get();
  SharedLogOptions log_opts;
  log_opts.name = options_.name + ".log";
  log_opts.latency = options_.log_latency;
  log_opts.clock = clock_;
  log_opts.metrics = &metrics_;
  log_opts.shards = options_.config.log_shards;
  log_opts.failover = options_.config.log_failover;
  log_ = std::make_unique<SharedLog>(std::move(log_opts));
  KvStoreOptions kv_opts;
  kv_opts.wal_path = options_.kv_wal_path;
  kv_opts.latency = options_.kv_latency;
  kv_opts.clock = clock_;
  kv_ = std::make_unique<KvStore>(std::move(kv_opts));
  sched::SchedulerOptions sched_opts;
  sched_opts.workers = options_.config.sched_workers;
  sched_opts.clock = clock_;
  sched_opts.metrics = &metrics_;
  sched_opts.name = options_.name + ".sched";
  sched_ = std::make_unique<sched::WorkStealingScheduler>(sched_opts);
  sched_->Start();
  manager_ =
      std::make_unique<TaskManager>(log_.get(), kv_.get(), options_.config,
                                    &metrics_, clock_, sched_.get());
}

Engine::~Engine() { Stop(); }

Status Engine::Submit(QueryPlan plan) {
  IMPELLER_RETURN_IF_ERROR(manager_->Submit(std::move(plan)));
  submitted_ = true;
  if (options_.config.autoscale.enabled) {
    Autoscaler::Hooks hooks;
    TaskManager* manager = manager_.get();
    hooks.probe = [manager] { return manager->CollectStageStats(); };
    hooks.rescale = [manager](const std::string& stage, uint32_t n) {
      return manager->RescaleStage(stage, n);
    };
    autoscaler_ = std::make_unique<Autoscaler>(
        options_.config.autoscale, std::move(hooks), clock_, &metrics_);
    autoscaler_->Start();
  }
  return OkStatus();
}

void Engine::Stop() {
  if (submitted_ && !stopped_) {
    stopped_ = true;
    if (autoscaler_ != nullptr) {
      autoscaler_->Stop();
    }
    manager_->Stop();
    // Wake any reader still blocked in AwaitNext (no more data is coming),
    // then retire the scheduler workers.
    log_->Close();
    sched_->Stop();
  }
}

Result<std::unique_ptr<IngressProducer>> Engine::NewProducer(
    std::string producer_id, std::string stream) {
  if (!submitted_) {
    return InvalidArgumentError("submit a plan before creating producers");
  }
  const StreamSpec* spec = plan().FindStream(stream);
  if (spec == nullptr || !spec->external) {
    return InvalidArgumentError(stream + " is not an ingress stream");
  }
  return std::make_unique<IngressProducer>(
      log_.get(), std::move(producer_id), std::move(stream),
      spec->num_substreams, clock_, options_.config.retry, &metrics_);
}

Result<std::unique_ptr<EgressConsumer>> Engine::NewEgressConsumer(
    std::string_view stage, uint32_t substream) {
  if (!submitted_) {
    return InvalidArgumentError("submit a plan before creating consumers");
  }
  std::string stream = EgressStreamName(plan().name, stage);
  const StreamSpec* spec = plan().FindStream(stream);
  if (spec == nullptr) {
    return InvalidArgumentError("stage " + std::string(stage) +
                                " has no egress stream");
  }
  if (substream >= spec->num_substreams) {
    return InvalidArgumentError("egress substream out of range");
  }
  bool read_committed =
      options_.config.protocol == ProtocolKind::kProgressMarking ||
      options_.config.protocol == ProtocolKind::kKafkaTxn;
  return std::make_unique<EgressConsumer>(log_.get(), stream, substream,
                                          read_committed);
}

// --- IngressProducer ---

IngressProducer::IngressProducer(SharedLog* log, std::string producer_id,
                                 std::string stream, uint32_t num_substreams,
                                 Clock* clock, RetryPolicy retry,
                                 MetricsRegistry* metrics)
    : log_(log),
      producer_id_(std::move(producer_id)),
      stream_(std::move(stream)),
      num_substreams_(num_substreams),
      clock_(clock),
      retrier_(retry, Fnv1a(producer_id_), clock, metrics),
      pending_(num_substreams) {}

void IngressProducer::Send(std::string key, std::string value,
                           TimeNs event_time) {
  SendDuplicate(std::move(key), std::move(value), event_time, ++seq_);
}

void IngressProducer::SendDuplicate(std::string key, std::string value,
                                    TimeNs event_time,
                                    uint64_t original_seq) {
  uint32_t sub = HashPartition(key, num_substreams_);
  TimeNs stamped = event_time != 0 ? event_time : clock_->Now();
  // Single-pass encode: header and body go straight into the payload string
  // instead of materializing DataBody / body-string / envelope copies.
  BinaryWriter w;
  AppendEnvelopeHeader(w, RecordType::kData, producer_id_, kIngressInstance,
                       original_seq);
  AppendDataBody(w, key, value, stamped);
  AppendRequest req;
  req.tags.push_back(DataTag(stream_, sub));
  req.payload = w.Take();
  pending_[sub].push_back(std::move(req));
  ++pending_count_;
}

Result<size_t> IngressProducer::Flush() {
  size_t flushed = 0;
  for (auto& batch : pending_) {
    if (batch.empty()) {
      continue;
    }
    auto lsns = retrier_.Run("ingress_flush",
                             [&] { return log_->AppendBatch(batch); });
    if (!lsns.ok()) {
      // AppendBatch left this batch intact; it (and every later substream's
      // batch) stays buffered for the caller's next Flush.
      return lsns.status();
    }
    flushed += batch.size();
    pending_count_ -= batch.size();
    batch.clear();
  }
  return flushed;
}

size_t IngressProducer::buffered() const { return pending_count_; }

// --- EgressConsumer ---

EgressConsumer::EgressConsumer(SharedLog* log, std::string stream,
                               uint32_t substream, bool read_committed)
    : tracker_(read_committed),
      reader_(log, DataTag(stream, substream), 0, &tracker_,
              /*start_lsn=*/0) {}

Result<std::vector<ReadyRecord>> EgressConsumer::PollAll() {
  std::vector<ReadyRecord> out;
  SubstreamReader::Hooks hooks;
  while (true) {
    auto n = reader_.Poll(1024, &out, hooks);
    if (!n.ok()) {
      return n.status();
    }
    if (*n == 0) {
      return out;
    }
  }
}

}  // namespace impeller
