// The operator library (paper §4): stateless — scan/filter/map/flat-map/
// branch/key-by — and stateful — group-by aggregate, table aggregate,
// window aggregate, stream-stream / stream-table / table-table inner joins —
// plus the terminal sink that measures event-time latency. Algorithms follow
// Kafka Streams' operator semantics as the paper does.
#ifndef IMPELLER_SRC_CORE_OPERATORS_H_
#define IMPELLER_SRC_CORE_OPERATORS_H_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/aggregate.h"
#include "src/core/operator.h"
#include "src/core/window.h"

namespace impeller {

// --- Stateless operators ---

class FilterOperator final : public Operator {
 public:
  using Predicate = std::function<bool(const StreamRecord&)>;
  explicit FilterOperator(Predicate pred) : pred_(std::move(pred)) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  Predicate pred_;
};

class MapOperator final : public Operator {
 public:
  using MapFn = std::function<StreamRecord(StreamRecord)>;
  explicit MapOperator(MapFn fn) : fn_(std::move(fn)) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  MapFn fn_;
};

class FlatMapOperator final : public Operator {
 public:
  using FlatMapFn =
      std::function<void(StreamRecord, std::vector<StreamRecord>*)>;
  explicit FlatMapOperator(FlatMapFn fn) : fn_(std::move(fn)) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  FlatMapFn fn_;
};

// Routes each record to one of the stage's output streams; a negative
// selector result drops the record.
class BranchOperator final : public Operator {
 public:
  using Selector = std::function<int(const StreamRecord&)>;
  explicit BranchOperator(Selector selector) : selector_(std::move(selector)) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  Selector selector_;
};

// Re-keys records; the stage output partitioner hashes the new key, which is
// what realizes the repartition between stages (paper Fig. 1/3).
class KeyByOperator final : public Operator {
 public:
  using KeyFn = std::function<std::string(const StreamRecord&)>;
  explicit KeyByOperator(KeyFn fn) : fn_(std::move(fn)) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  KeyFn fn_;
};

// --- Stateful operators ---

// Per-key running aggregate over a keyed stream; emits the updated
// (key, accumulator) on every input — KTable update semantics.
class GroupAggregateOperator final : public Operator {
 public:
  GroupAggregateOperator(std::string store_name, AggregateFn agg)
      : store_name_(std::move(store_name)), agg_(std::move(agg)) {}
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t, StreamRecord record, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  std::string store_name_;
  AggregateFn agg_;
  MapStateStore* store_ = nullptr;
};

// Aggregates a *table* (update stream keyed by row key) grouped by a derived
// key: an update retracts the old row's contribution (AggregateFn::remove)
// and adds the new one. Used for Q4/Q6-style averages over per-key maxima.
class TableAggregateOperator final : public Operator {
 public:
  using GroupKeyFn = std::function<std::string(const StreamRecord&)>;
  // Row identity within the table; defaults to the record key. Needed when
  // the update stream was repartitioned by group (e.g. Q4 partitions
  // winning-bid updates by category but retracts by auction id).
  using RowKeyFn = std::function<std::string(const StreamRecord&)>;
  TableAggregateOperator(std::string store_prefix, GroupKeyFn group_key,
                         AggregateFn agg, RowKeyFn row_key = nullptr)
      : store_prefix_(std::move(store_prefix)),
        group_key_(std::move(group_key)),
        agg_(std::move(agg)),
        row_key_(std::move(row_key)) {}
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t, StreamRecord record, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  std::string store_prefix_;
  GroupKeyFn group_key_;
  AggregateFn agg_;
  RowKeyFn row_key_;
  MapStateStore* prev_ = nullptr;  // row key -> (group key, row value)
  MapStateStore* agg_store_ = nullptr;  // group key -> accumulator
};

// Emission policy for windowed aggregates.
//  * kOnClose — Flink-style: a pane fires once, when the task watermark
//    (max observed event time minus allowed lateness) passes the window
//    end, then is deleted.
//  * kEagerSuppressed — Kafka Streams-style (the semantics the paper's
//    operators follow, §4): updated panes re-emit their current value on a
//    suppression cadence (KS's record cache flushing on commit), and are
//    deleted silently once the watermark passes. Downstream consumers see a
//    monotone stream of pane updates whose event times track fresh input,
//    which is what makes NEXMark Q5/Q7 latency reflect pipeline delay
//    rather than key-popularity staleness.
enum class WindowEmitMode { kOnClose, kEagerSuppressed };

// Event-time windowed aggregate (tumbling or sliding). The emitted record's
// event time is the latest event time that contributed to the pane, and the
// window start rides in the value (varint prefix) so downstream operators
// can group by window.
class WindowAggregateOperator final : public Operator {
 public:
  WindowAggregateOperator(std::string store_name, WindowSpec window,
                          AggregateFn agg,
                          DurationNs allowed_lateness = 100 * kMillisecond,
                          WindowEmitMode mode = WindowEmitMode::kOnClose,
                          DurationNs suppress_interval = 100 * kMillisecond);
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t, StreamRecord record, Collector* out) override;
  void OnTimer(TimeNs now, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  TimeNs Watermark() const;

  void EmitPane(std::string_view pane_key, std::string_view pane_value,
                Collector* out);

  std::string store_name_;
  WindowSpec window_;
  AggregateFn agg_;
  DurationNs allowed_lateness_;
  WindowEmitMode mode_;
  DurationNs suppress_interval_;
  MapStateStore* store_ = nullptr;  // (key, window start) -> (max et, acc)
  OperatorContext* ctx_ = nullptr;
  std::vector<TimeNs> scratch_starts_;
  // Eager mode: panes updated since the last suppression flush. In-memory
  // only; after recovery a pane re-emits on its next update or is dropped
  // at close, which is sound because downstream consumption of pane updates
  // is monotone (latest value wins).
  std::set<std::string> dirty_panes_;
  TimeNs next_suppress_flush_ = 0;
};

// Windowed stream-stream inner join on co-partitioned inputs 0 (left) and
// 1 (right): records whose event times are within `window` of each other
// join. Buffers are expired past the watermark.
class StreamStreamJoinOperator final : public Operator {
 public:
  using JoinFn = std::function<std::string(std::string_view left,
                                           std::string_view right)>;
  StreamStreamJoinOperator(std::string store_prefix, DurationNs window,
                           JoinFn join,
                           DurationNs allowed_lateness = 100 * kMillisecond);
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t input, StreamRecord record, Collector* out) override;
  void OnTimer(TimeNs now, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  void ExpireSide(MapStateStore* store, TimeNs horizon);

  std::string store_prefix_;
  DurationNs window_;
  JoinFn join_;
  DurationNs allowed_lateness_;
  MapStateStore* left_ = nullptr;   // (key, ts|ctr) -> value
  MapStateStore* right_ = nullptr;
  OperatorContext* ctx_ = nullptr;
  uint32_t ctr_ = 0;
};

// Inner join of a stream (input 0) against a materialized table (input 1,
// an update stream; empty value = tombstone).
class StreamTableJoinOperator final : public Operator {
 public:
  using JoinFn = std::function<std::string(std::string_view stream_value,
                                           std::string_view table_value)>;
  StreamTableJoinOperator(std::string store_name, JoinFn join)
      : store_name_(std::move(store_name)), join_(std::move(join)) {}
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t input, StreamRecord record, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  std::string store_name_;
  JoinFn join_;
  MapStateStore* table_ = nullptr;
};

// Inner join of two materialized tables; an update on either side emits the
// refreshed join row when the other side has a matching key.
class TableTableJoinOperator final : public Operator {
 public:
  using JoinFn = std::function<std::string(std::string_view left,
                                           std::string_view right)>;
  TableTableJoinOperator(std::string store_prefix, JoinFn join)
      : store_prefix_(std::move(store_prefix)), join_(std::move(join)) {}
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t input, StreamRecord record, Collector* out) override;
  bool IsStateful() const override { return true; }

 private:
  std::string store_prefix_;
  JoinFn join_;
  MapStateStore* left_ = nullptr;
  MapStateStore* right_ = nullptr;
};

// Terminal operator: records end-to-end event-time latency (histogram
// "lat/<name>") and output count (counter "out/<name>") at the moment of
// emission — matching the paper's measurement point (§5.3) — then forwards
// the record so the task can push it to the egress stream.
class SinkOperator final : public Operator {
 public:
  using Callback = std::function<void(const StreamRecord&)>;
  explicit SinkOperator(std::string name, Callback callback = nullptr)
      : name_(std::move(name)), callback_(std::move(callback)) {}
  void Open(OperatorContext* ctx) override;
  void Process(uint32_t, StreamRecord record, Collector* out) override;

 private:
  std::string name_;
  Callback callback_;
  OperatorContext* ctx_ = nullptr;
  LatencyHistogram* latency_ = nullptr;
  Counter* count_ = nullptr;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_OPERATORS_H_
