#include "src/core/window.h"

#include <cassert>

namespace impeller {

TimeNs WindowSpec::LatestStartFor(TimeNs t) const {
  assert(slide > 0);
  TimeNs start = t - (t % slide);
  if (start > t) {  // negative timestamps round toward zero
    start -= slide;
  }
  return start;
}

void WindowSpec::AssignWindows(TimeNs t, std::vector<TimeNs>* starts) const {
  starts->clear();
  TimeNs last_start = LatestStartFor(t);
  // Every window with start in (t - size, last_start] contains t.
  for (TimeNs start = last_start; start > t - size; start -= slide) {
    starts->push_back(start);
  }
}

}  // namespace impeller
