// Stream, substream and tag naming (paper §3.2, Table 1).
//
// A *stream* is a named sequence of data records flowing between two stages;
// a *substream* is the totally ordered partition of a stream consumed by one
// task. Substreams are realized as shared-log tags:
//   data substream:      d/<stream>/<substream index>
//   task log substream:  t/<task id>      (progress markers, §3.2)
//   change log:          c/<task id>      (state updates, §3.2)
// The task manager's instance numbers live in the log's KV metadata under
// inst/<task id> (§3.4).
#ifndef IMPELLER_SRC_CORE_STREAM_H_
#define IMPELLER_SRC_CORE_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace impeller {

std::string DataTag(std::string_view stream, uint32_t substream);
std::string TaskLogTag(std::string_view task_id);
std::string ChangeLogTag(std::string_view task_id);
std::string InstanceMetaKey(std::string_view task_id);

// Task ids are "<query>/<stage>/<index>".
std::string MakeTaskId(std::string_view query, std::string_view stage,
                       uint32_t index);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_STREAM_H_
