// Consumer-side commit filtering: the three-case algorithm of paper §3.3.3.
//
// A consuming task classifies each input record against the commit events
// (progress markers, or commit control records in the Kafka-txn baseline) it
// has seen from that record's producer:
//   * kCommitted — instance matches the producer's committed instance and
//     the LSN is below the committed end: safe to process;
//   * kDiscard   — the record comes from a superseded instance (a zombie or
//     a crashed predecessor) and can never be committed;
//   * kUnknown   — the record lies beyond the latest committed cut (or its
//     producer has not committed anything yet): buffer and wait.
//
// Within one instance a commit event at LSN L commits every record of that
// instance below L on the substream, so tracking (instance, committed end)
// per producer is equivalent to the paper's committed-range formulation
// while matching the compact marker encoding of §3.5.
//
// The tracker also implements the duplicate-append suppression of §3.5: a
// per-producer monotonically increasing sequence number, checked for ingress
// producers (which never restart) and, when commit filtering is disabled
// (aligned-checkpoint / unsafe baselines), for all producers.
#ifndef IMPELLER_SRC_CORE_COMMIT_TRACKER_H_
#define IMPELLER_SRC_CORE_COMMIT_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/core/record.h"
#include "src/sharedlog/log_record.h"

namespace impeller {

enum class CommitState { kCommitted, kDiscard, kUnknown };

// Producers with this instance number are ingress producers: their appends
// are committed by definition (the log made them durable) and they never
// restart. Task instances start at 1.
constexpr uint64_t kIngressInstance = 0;

class CommitTracker {
 public:
  explicit CommitTracker(bool read_committed)
      : read_committed_(read_committed) {}

  // Registers a commit event from `producer` whose record (marker / commit
  // control) sits at `commit_lsn`: commits all of instance's records below
  // that LSN. Events from older instances than the currently committed one
  // are ignored (a fenced zombie's stale marker cannot regress the cut —
  // though the conditional append already prevents it from being written).
  void OnCommitEvent(std::string_view producer, uint64_t instance,
                     Lsn commit_lsn);

  CommitState Classify(std::string_view producer, uint64_t instance,
                       Lsn lsn) const;
  CommitState Classify(const RecordHeader& header, Lsn lsn) const {
    return Classify(header.producer, header.instance, lsn);
  }

  // Duplicate suppression: returns true when (substream, producer, seq) was
  // already accepted and the record must be dropped. Keyed per substream
  // because a producer's sequence numbers are only monotone within one
  // substream (its appends fan out across substreams). Call only for
  // records about to be processed.
  bool IsDuplicate(std::string_view substream_tag, std::string_view producer,
                   uint64_t instance, uint64_t seq);
  bool IsDuplicate(std::string_view substream_tag,
                   const RecordHeader& header) {
    return IsDuplicate(substream_tag, header.producer, header.instance,
                       header.seq);
  }

  // Snapshot/restore of the dedup map (part of aligned-checkpoint state).
  std::string SerializeSeqMap() const;
  Status RestoreSeqMap(std::string_view raw);

  bool read_committed() const { return read_committed_; }

 private:
  struct ProducerCut {
    uint64_t instance = 0;
    Lsn committed_end = 0;  // exclusive
  };

  bool read_committed_;
  // std::less<> for heterogeneous lookup: the hot path probes with
  // string_view producers decoded in place from log payloads.
  std::map<std::string, ProducerCut, std::less<>> cuts_;
  // "(substream tag)|(producer)" -> highest accepted sequence number.
  std::map<std::string, uint64_t, std::less<>> max_seq_;
  // Reused dedup-key scratch: IsDuplicate builds its composite key here so
  // steady-state lookups allocate nothing once the capacity is warm.
  std::string key_scratch_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_COMMIT_TRACKER_H_
