// Progress markers (paper §3.3) and the control-record bodies used by the
// baseline protocols.
//
// A progress marker is one log record, appended with one tag per downstream
// substream plus the producing task's task-log tag (t/<task>) and — for
// stateful tasks — its change-log tag (c/<task>). Because a multi-tag append
// is atomic, the marker forms a consistent cut across all of those
// substreams at a single LSN.
//
// Markers use the compact encoding of §3.5: only the *end* LSN of each input
// range is stored (that is all recovery needs), and the marker's own LSN
// serves as the exclusive upper bound of the output and change-log ranges,
// so only the range starts are stored.
#ifndef IMPELLER_SRC_CORE_MARKER_H_
#define IMPELLER_SRC_CORE_MARKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sharedlog/log_record.h"

namespace impeller {

struct ProgressMarker {
  // Monotonically increasing per task (across instances).
  uint64_t marker_seq = 0;

  // Consistent cut: for each input substream tag, the LSN of the last input
  // record processed (kInvalidLsn when nothing consumed yet).
  std::vector<std::pair<std::string, Lsn>> input_ends;

  // First LSN that may contain this epoch's output records; the exclusive
  // end is the marker's own LSN. Together with the producer/instance checks
  // this commits exactly this epoch's outputs.
  Lsn outputs_from = 0;

  // First LSN that may contain this epoch's change-log records; kInvalidLsn
  // when the epoch produced no state changes. Exclusive end is the marker's
  // LSN.
  Lsn changelog_from = kInvalidLsn;

  // Auxiliary checkpoint hint (§4): the most recent state checkpoint known
  // to cover this task, if any (its marker_seq).
  bool has_checkpoint = false;
  uint64_t checkpoint_seq = 0;
};

std::string EncodeProgressMarker(const ProgressMarker& marker);
Result<ProgressMarker> DecodeProgressMarker(std::string_view raw);

// --- Kafka Streams transaction baseline (§3.6) ---
// Control records appended by the transaction coordinator in phase two.
// A commit record on a substream commits the producing task's records on
// that substream with LSNs below the control record's own LSN.
enum class TxnControlKind : uint8_t {
  kRegistration = 1,  // appended to the coordinator's transaction stream
  kPreCommit = 2,     // appended to the coordinator's transaction stream
  kCommit = 3,        // appended to every registered substream
  kTxnCommitted = 4,  // appended to the transaction stream; txn is durable
  kAbort = 5,
};

struct TxnControlBody {
  TxnControlKind kind = TxnControlKind::kCommit;
  uint64_t txn_id = 0;
  // For kCommit on a task-log substream: the input ends of the committed
  // epoch (mirrors ProgressMarker::input_ends; used for recovery).
  std::vector<std::pair<std::string, Lsn>> input_ends;
  Lsn changelog_from = kInvalidLsn;
};

std::string EncodeTxnControlBody(const TxnControlBody& body);
Result<TxnControlBody> DecodeTxnControlBody(std::string_view raw);

// --- Aligned checkpoint baseline (Flink-style, §5.1) ---
struct BarrierBody {
  uint64_t checkpoint_id = 0;
};

std::string EncodeBarrierBody(const BarrierBody& body);
Result<BarrierBody> DecodeBarrierBody(std::string_view raw);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_MARKER_H_
