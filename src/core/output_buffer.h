// Output-side batching: pending log appends (output data records and
// change-log records) accumulate in memory and flush as one atomic batch
// append — the 128 KiB output buffer of paper §5.3. The buffer reports the
// first output / change-log LSN of each flush so the task can build the
// epoch ranges recorded in its progress markers.
#ifndef IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_
#define IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_

#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class OutputBuffer {
 public:
  // `retrier` (optional, unowned) absorbs transient kUnavailable append
  // failures; without one a transient failure propagates but the buffered
  // records survive for a later Flush.
  OutputBuffer(SharedLog* log, size_t capacity_bytes,
               Retrier* retrier = nullptr);

  enum class Kind { kOutput, kChangeLog };

  void Add(Kind kind, AppendRequest request);

  bool NeedsFlush() const { return pending_bytes_ >= capacity_bytes_; }
  size_t pending_bytes() const { return pending_bytes_; }
  size_t pending_records() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  struct FlushResult {
    Lsn first_output = kInvalidLsn;
    Lsn first_changelog = kInvalidLsn;
    size_t records = 0;
  };

  // Appends all pending records as one batch. Blocks for the modeled append
  // ack. A fenced conditional append propagates as kFenced with the buffer
  // dropped (the caller is a zombie and must stop); any other failure keeps
  // the buffer intact for retry.
  Result<FlushResult> Flush();

 private:
  SharedLog* log_;
  size_t capacity_bytes_;
  Retrier* retrier_;
  std::vector<std::pair<Kind, AppendRequest>> pending_;
  size_t pending_bytes_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_
