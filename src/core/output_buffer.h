// Output-side batching: pending log appends (output data records and
// change-log records) accumulate in memory and flush as one atomic batch
// append — the 128 KiB output buffer of paper §5.3. The buffer reports the
// first output / change-log LSN of each flush so the task can build the
// epoch ranges recorded in its progress markers.
//
// Zero-copy path: records are encoded directly into one contiguous flush
// buffer via StartRecord()/FinishRecord() — no per-record payload strings.
// At Flush() the buffer is sealed into a refcounted immutable string shared
// by every record's PayloadRef slice, so the log stores views into a single
// allocation per flush.
#ifndef IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_
#define IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/retry.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class OutputBuffer {
 public:
  // `retrier` (optional, unowned) absorbs transient kUnavailable append
  // failures; without one a transient failure propagates but the buffered
  // records survive for a later Flush.
  OutputBuffer(SharedLog* log, size_t capacity_bytes,
               Retrier* retrier = nullptr);

  enum class Kind { kOutput, kChangeLog };

  // Opens a record destined for `tag` and returns a writer positioned at the
  // tail of the contiguous flush buffer; the caller encodes the full payload
  // (envelope header + body) through it and then calls FinishRecord(). No
  // other OutputBuffer method may run between the two calls.
  BinaryWriter& StartRecord(Kind kind, std::string tag);
  void FinishRecord();

  // Compatibility path for prebuilt payloads; the request's payload bytes
  // are not copied (PayloadRef move).
  void Add(Kind kind, AppendRequest&& request);

  bool NeedsFlush() const { return pending_bytes_ >= capacity_bytes_; }
  // Full framed payload bytes (envelope header + body), not just body size.
  size_t pending_bytes() const { return pending_bytes_; }
  size_t pending_records() const { return pending_.size(); }
  bool empty() const { return pending_.empty(); }

  struct FlushResult {
    Lsn first_output = kInvalidLsn;
    Lsn first_changelog = kInvalidLsn;
    size_t records = 0;
  };

  // Appends all pending records as one batch. Blocks for the modeled append
  // ack. A fenced conditional append propagates as kFenced with the buffer
  // dropped (the caller is a zombie and must stop); any other failure keeps
  // the buffer intact for retry.
  Result<FlushResult> Flush();

 private:
  struct PendingRecord {
    Kind kind;
    std::string tag;
    // Records encoded in place are [off, off+len) of buffer_ until the epoch
    // is sealed, after which `sealed` pins the shared bytes. Prebuilt
    // records carry their own PayloadRef instead.
    std::shared_ptr<const std::string> sealed;
    size_t off = 0;
    size_t len = 0;
    PayloadRef prebuilt;
    bool is_prebuilt = false;

    PayloadRef Ref() const {
      return is_prebuilt ? prebuilt : PayloadRef(sealed, off, len);
    }
  };

  // Moves buffer_ into a shared immutable string and pins it onto every
  // pending record still pointing into it.
  void SealBuffer();

  SharedLog* log_;
  size_t capacity_bytes_;
  Retrier* retrier_;
  std::vector<PendingRecord> pending_;
  std::string buffer_;    // contiguous encode buffer for the current epoch
  BinaryWriter writer_;   // append-mode writer bound to buffer_
  bool record_open_ = false;
  size_t pending_bytes_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_OUTPUT_BUFFER_H_
