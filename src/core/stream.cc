#include "src/core/stream.h"

namespace impeller {

std::string DataTag(std::string_view stream, uint32_t substream) {
  std::string tag = "d/";
  tag += stream;
  tag += '/';
  tag += std::to_string(substream);
  return tag;
}

std::string TaskLogTag(std::string_view task_id) {
  std::string tag = "t/";
  tag += task_id;
  return tag;
}

std::string ChangeLogTag(std::string_view task_id) {
  std::string tag = "c/";
  tag += task_id;
  return tag;
}

std::string InstanceMetaKey(std::string_view task_id) {
  std::string key = "inst/";
  key += task_id;
  return key;
}

std::string MakeTaskId(std::string_view query, std::string_view stage,
                       uint32_t index) {
  std::string id(query);
  id += '/';
  id += stage;
  id += '/';
  id += std::to_string(index);
  return id;
}

}  // namespace impeller
