// Garbage collection (paper §3.5 "Garbage collection"): consumers publish
// the LSN floor below which they no longer need log records (per-substream
// GC tasks in the paper); a master GC worker takes the global minimum and
// issues the shared log's trim API.
#ifndef IMPELLER_SRC_CORE_GC_H_
#define IMPELLER_SRC_CORE_GC_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "src/common/clock.h"
#include "src/common/threading.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class GcRegistry {
 public:
  // Publishes "everything below `floor` is no longer needed by `source`".
  // Floors are monotone per source; a lower value is ignored.
  void PublishFloor(const std::string& source, Lsn floor);
  void Remove(const std::string& source);

  // Global minimum across all published floors; kInvalidLsn when no source
  // has published (nothing may be trimmed).
  Lsn MinFloor() const;

  size_t sources() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Lsn> floors_;
};

// The master GC task: periodically trims the shared log to the registry's
// global minimum.
class GcWorker {
 public:
  GcWorker(SharedLog* log, GcRegistry* registry, Clock* clock,
           DurationNs interval);
  ~GcWorker();

  void Start();
  void Stop();

  // One collection pass (exposed for tests).
  void RunOnce();

  uint64_t trims_issued() const { return trims_.load(); }

 private:
  void Loop();

  SharedLog* log_;
  GcRegistry* registry_;
  Clock* clock_;
  DurationNs interval_;
  Lsn last_trim_ = 0;
  std::atomic<uint64_t> trims_{0};
  std::atomic<bool> running_{false};
  JoiningThread thread_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_GC_H_
