#include "src/core/record.h"

#include "src/common/serde.h"

namespace impeller {

std::string EncodeEnvelope(const RecordHeader& header, std::string_view body) {
  BinaryWriter w(body.size() + header.producer.size() + 16);
  w.WriteU8(static_cast<uint8_t>(header.type));
  w.WriteString(header.producer);
  w.WriteVarU64(header.instance);
  w.WriteVarU64(header.seq);
  w.WriteBytes(body.data(), body.size());
  return w.Take();
}

Result<Envelope> DecodeEnvelope(std::string_view payload) {
  BinaryReader r(payload);
  auto type = r.ReadU8();
  if (!type.ok()) {
    return type.status();
  }
  if (*type < static_cast<uint8_t>(RecordType::kData) ||
      *type > static_cast<uint8_t>(RecordType::kBarrier)) {
    return DataLossError("unknown record type " + std::to_string(*type));
  }
  Envelope env;
  env.header.type = static_cast<RecordType>(*type);
  auto producer = r.ReadString();
  if (!producer.ok()) {
    return producer.status();
  }
  env.header.producer = std::move(*producer);
  auto instance = r.ReadVarU64();
  if (!instance.ok()) {
    return instance.status();
  }
  env.header.instance = *instance;
  auto seq = r.ReadVarU64();
  if (!seq.ok()) {
    return seq.status();
  }
  env.header.seq = *seq;
  env.body = std::string(payload.substr(payload.size() - r.remaining()));
  return env;
}

std::string EncodeDataBody(const DataBody& body) {
  BinaryWriter w(body.key.size() + body.value.size() + 12);
  w.WriteString(body.key);
  w.WriteString(body.value);
  w.WriteVarI64(body.event_time);
  return w.Take();
}

Result<DataBody> DecodeDataBody(std::string_view raw) {
  BinaryReader r(raw);
  DataBody body;
  auto key = r.ReadString();
  if (!key.ok()) {
    return key.status();
  }
  body.key = std::move(*key);
  auto value = r.ReadString();
  if (!value.ok()) {
    return value.status();
  }
  body.value = std::move(*value);
  auto et = r.ReadVarI64();
  if (!et.ok()) {
    return et.status();
  }
  body.event_time = *et;
  return body;
}

std::string EncodeChangeLogBody(const ChangeLogBody& body) {
  BinaryWriter w(body.store.size() + body.key.size() + body.value.size() + 8);
  w.WriteString(body.store);
  w.WriteString(body.key);
  w.WriteBool(body.is_delete);
  if (!body.is_delete) {
    w.WriteString(body.value);
  }
  return w.Take();
}

Result<ChangeLogBody> DecodeChangeLogBody(std::string_view raw) {
  BinaryReader r(raw);
  ChangeLogBody body;
  auto store = r.ReadString();
  if (!store.ok()) {
    return store.status();
  }
  body.store = std::move(*store);
  auto key = r.ReadString();
  if (!key.ok()) {
    return key.status();
  }
  body.key = std::move(*key);
  auto is_delete = r.ReadBool();
  if (!is_delete.ok()) {
    return is_delete.status();
  }
  body.is_delete = *is_delete;
  if (!body.is_delete) {
    auto value = r.ReadString();
    if (!value.ok()) {
      return value.status();
    }
    body.value = std::move(*value);
  }
  return body;
}

}  // namespace impeller
