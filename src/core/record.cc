#include "src/core/record.h"

#include "src/common/serde.h"

namespace impeller {

std::string EncodeEnvelope(const RecordHeader& header, std::string_view body) {
  BinaryWriter w(body.size() + header.producer.size() + 16);
  w.WriteU8(static_cast<uint8_t>(header.type));
  w.WriteString(header.producer);
  w.WriteVarU64(header.instance);
  w.WriteVarU64(header.seq);
  w.WriteBytes(body.data(), body.size());
  return w.Take();
}

Result<Envelope> DecodeEnvelope(std::string_view payload) {
  auto view = DecodeEnvelopeView(payload);
  if (!view.ok()) {
    return view.status();
  }
  Envelope env;
  env.header = view->ToOwnedHeader();
  env.body = std::string(view->body);
  return env;
}

Result<EnvelopeView> DecodeEnvelopeView(std::string_view payload) {
  BinaryReader r(payload);
  auto type = r.ReadU8();
  if (!type.ok()) {
    return type.status();
  }
  if (*type < static_cast<uint8_t>(RecordType::kData) ||
      *type > static_cast<uint8_t>(RecordType::kBarrier)) {
    return DataLossError("unknown record type " + std::to_string(*type));
  }
  EnvelopeView env;
  env.type = static_cast<RecordType>(*type);
  auto producer = r.ReadStringView();
  if (!producer.ok()) {
    return producer.status();
  }
  env.producer = *producer;
  auto instance = r.ReadVarU64();
  if (!instance.ok()) {
    return instance.status();
  }
  env.instance = *instance;
  auto seq = r.ReadVarU64();
  if (!seq.ok()) {
    return seq.status();
  }
  env.seq = *seq;
  env.body = r.rest();
  return env;
}

std::string EncodeDataBody(const DataBody& body) {
  BinaryWriter w(body.key.size() + body.value.size() + 12);
  w.WriteString(body.key);
  w.WriteString(body.value);
  w.WriteVarI64(body.event_time);
  return w.Take();
}

Result<DataBody> DecodeDataBody(std::string_view raw) {
  auto view = DecodeDataView(raw);
  if (!view.ok()) {
    return view.status();
  }
  DataBody body;
  body.key = std::string(view->key);
  body.value = std::string(view->value);
  body.event_time = view->event_time;
  return body;
}

Result<DataView> DecodeDataView(std::string_view raw) {
  BinaryReader r(raw);
  DataView body;
  auto key = r.ReadStringView();
  if (!key.ok()) {
    return key.status();
  }
  body.key = *key;
  auto value = r.ReadStringView();
  if (!value.ok()) {
    return value.status();
  }
  body.value = *value;
  auto et = r.ReadVarI64();
  if (!et.ok()) {
    return et.status();
  }
  body.event_time = *et;
  return body;
}

std::string EncodeChangeLogBody(const ChangeLogBody& body) {
  BinaryWriter w(body.store.size() + body.key.size() + body.value.size() + 13);
  w.WriteString(body.store);
  w.WriteString(body.key);
  w.WriteBool(body.is_delete);
  if (!body.is_delete) {
    w.WriteString(body.value);
  }
  w.WriteVarU64(body.substream);
  return w.Take();
}

Result<ChangeLogBody> DecodeChangeLogBody(std::string_view raw) {
  auto view = DecodeChangeLogView(raw);
  if (!view.ok()) {
    return view.status();
  }
  ChangeLogBody body;
  body.store = std::string(view->store);
  body.key = std::string(view->key);
  body.is_delete = view->is_delete;
  body.value = std::string(view->value);
  body.substream = view->substream;
  return body;
}

Result<ChangeLogView> DecodeChangeLogView(std::string_view raw) {
  BinaryReader r(raw);
  ChangeLogView body;
  auto store = r.ReadStringView();
  if (!store.ok()) {
    return store.status();
  }
  body.store = *store;
  auto key = r.ReadStringView();
  if (!key.ok()) {
    return key.status();
  }
  body.key = *key;
  auto is_delete = r.ReadBool();
  if (!is_delete.ok()) {
    return is_delete.status();
  }
  body.is_delete = *is_delete;
  if (!body.is_delete) {
    auto value = r.ReadStringView();
    if (!value.ok()) {
      return value.status();
    }
    body.value = *value;
  }
  // The owner substream is a late addition to the format; changelogs
  // persisted before the ownership upgrade end here. Decode leniently so
  // recovery over pre-upgrade data still works (unowned entries are claimed
  // by the replaying task's default substream).
  if (r.AtEnd()) {
    body.substream = kUnownedSubstream;
    return body;
  }
  auto substream = r.ReadVarU64();
  if (!substream.ok()) {
    return substream.status();
  }
  body.substream = static_cast<uint32_t>(*substream);
  return body;
}

void AppendEnvelopeHeader(BinaryWriter& w, RecordType type,
                          std::string_view producer, uint64_t instance,
                          uint64_t seq) {
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteString(producer);
  w.WriteVarU64(instance);
  w.WriteVarU64(seq);
}

void AppendDataBody(BinaryWriter& w, std::string_view key,
                    std::string_view value, TimeNs event_time) {
  w.WriteString(key);
  w.WriteString(value);
  w.WriteVarI64(event_time);
}

void AppendChangeLogBody(BinaryWriter& w, const ChangeLogView& body) {
  w.WriteString(body.store);
  w.WriteString(body.key);
  w.WriteBool(body.is_delete);
  if (!body.is_delete) {
    w.WriteString(body.value);
  }
  w.WriteVarU64(body.substream);
}

}  // namespace impeller
