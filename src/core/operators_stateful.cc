#include <algorithm>
#include <cassert>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/core/operators.h"

namespace impeller {

namespace {

// (event time, payload) pairs used by window panes and join buffers.
std::string EncodeTimedValue(TimeNs et, std::string_view value) {
  BinaryWriter w(value.size() + 10);
  w.WriteVarI64(et);
  w.WriteString(value);
  return w.Take();
}

bool DecodeTimedValue(std::string_view raw, TimeNs* et, std::string* value) {
  BinaryReader r(raw);
  auto t = r.ReadVarI64();
  auto v = r.ReadString();
  if (!t.ok() || !v.ok()) {
    return false;
  }
  *et = *t;
  *value = std::move(*v);
  return true;
}

std::string EncodePair(std::string_view a, std::string_view b) {
  BinaryWriter w(a.size() + b.size() + 8);
  w.WriteString(a);
  w.WriteString(b);
  return w.Take();
}

bool DecodePair(std::string_view raw, std::string* a, std::string* b) {
  BinaryReader r(raw);
  auto first = r.ReadString();
  auto second = r.ReadString();
  if (!first.ok() || !second.ok()) {
    return false;
  }
  *a = std::move(*first);
  *b = std::move(*second);
  return true;
}

}  // namespace

// --- GroupAggregateOperator ---

void GroupAggregateOperator::Open(OperatorContext* ctx) {
  store_ = ctx->GetStore(store_name_);
}

void GroupAggregateOperator::Process(uint32_t, StreamRecord record,
                                     Collector* out) {
  std::optional<std::string> acc = store_->Get(record.key);
  std::string next = agg_.add(acc ? *acc : agg_.init(), record);
  store_->Put(record.key, next);
  StreamRecord update;
  update.key = std::move(record.key);
  update.value = std::move(next);
  update.event_time = record.event_time;
  out->Emit(std::move(update));
}

// --- TableAggregateOperator ---

void TableAggregateOperator::Open(OperatorContext* ctx) {
  prev_ = ctx->GetStore(store_prefix_ + ".prev");
  agg_store_ = ctx->GetStore(store_prefix_ + ".agg");
}

void TableAggregateOperator::Process(uint32_t, StreamRecord record,
                                     Collector* out) {
  std::string row = row_key_ ? row_key_(record) : record.key;
  // Retract the old row's contribution from its group, if any.
  std::optional<std::string> old_entry = prev_->Get(row);
  if (old_entry) {
    std::string old_group, old_value;
    if (DecodePair(*old_entry, &old_group, &old_value)) {
      std::optional<std::string> acc = agg_store_->Get(old_group);
      std::string next =
          agg_.remove(acc ? *acc : agg_.init(), old_value);
      agg_store_->Put(old_group, next);
      StreamRecord retraction;
      retraction.key = old_group;
      retraction.value = std::move(next);
      retraction.event_time = record.event_time;
      out->Emit(std::move(retraction));
    }
  }
  std::string group = group_key_(record);
  prev_->Put(row, EncodePair(group, record.value));
  std::optional<std::string> acc = agg_store_->Get(group);
  std::string next = agg_.add(acc ? *acc : agg_.init(), record);
  agg_store_->Put(group, next);
  StreamRecord update;
  update.key = std::move(group);
  update.value = std::move(next);
  update.event_time = record.event_time;
  out->Emit(std::move(update));
}

// --- WindowAggregateOperator ---

WindowAggregateOperator::WindowAggregateOperator(
    std::string store_name, WindowSpec window, AggregateFn agg,
    DurationNs allowed_lateness, WindowEmitMode mode,
    DurationNs suppress_interval)
    : store_name_(std::move(store_name)),
      window_(window),
      agg_(std::move(agg)),
      allowed_lateness_(allowed_lateness),
      mode_(mode),
      suppress_interval_(suppress_interval) {}

void WindowAggregateOperator::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  store_ = ctx->GetStore(store_name_);
}

TimeNs WindowAggregateOperator::Watermark() const {
  return ctx_->max_event_time() - allowed_lateness_;
}

void WindowAggregateOperator::Process(uint32_t, StreamRecord record,
                                      Collector* out) {
  window_.AssignWindows(record.event_time, &scratch_starts_);
  TimeNs watermark = Watermark();
  for (TimeNs start : scratch_starts_) {
    if (start + window_.size <= watermark) {
      continue;  // the pane already fired; drop the late contribution
    }
    std::string pane_key =
        EncodeCompositeKey(record.key, static_cast<uint64_t>(start));
    std::optional<std::string> pane = store_->Get(pane_key);
    TimeNs max_et = record.event_time;
    std::string acc;
    if (pane) {
      TimeNs stored_et;
      std::string stored_acc;
      if (DecodeTimedValue(*pane, &stored_et, &stored_acc)) {
        max_et = std::max(max_et, stored_et);
        acc = agg_.add(stored_acc, record);
      } else {
        acc = agg_.add(agg_.init(), record);
      }
    } else {
      acc = agg_.add(agg_.init(), record);
    }
    store_->Put(pane_key, EncodeTimedValue(max_et, acc));
    if (mode_ == WindowEmitMode::kEagerSuppressed) {
      dirty_panes_.insert(pane_key);
    }
  }
}

void WindowAggregateOperator::EmitPane(std::string_view pane_key,
                                       std::string_view pane_value,
                                       Collector* out) {
  auto decoded = DecodeCompositeKey(pane_key);
  TimeNs max_et;
  std::string acc;
  if (!decoded.ok() || !DecodeTimedValue(pane_value, &max_et, &acc)) {
    return;
  }
  StreamRecord result;
  result.key = decoded->first;
  // Window metadata rides in the value so downstream operators can group
  // results of the same window (e.g. Q5's per-window max).
  BinaryWriter w(acc.size() + 10);
  w.WriteVarI64(static_cast<TimeNs>(decoded->second));
  w.WriteString(acc);
  result.value = w.Take();
  result.event_time = max_et;
  out->Emit(std::move(result));
}

void WindowAggregateOperator::OnTimer(TimeNs now, Collector* out) {
  // Eager mode: flush updated panes on the suppression cadence (Kafka
  // Streams' record cache flushing at commit time).
  if (mode_ == WindowEmitMode::kEagerSuppressed && !dirty_panes_.empty() &&
      now >= next_suppress_flush_) {
    for (const std::string& pane_key : dirty_panes_) {
      std::optional<std::string> pane = store_->Get(pane_key);
      if (pane) {
        EmitPane(pane_key, *pane, out);
      }
    }
    dirty_panes_.clear();
    next_suppress_flush_ = now + suppress_interval_;
  }

  TimeNs watermark = Watermark();
  std::vector<std::pair<std::string, std::string>> closed;
  store_->ScanPrefix("", [&](std::string_view key, std::string_view value) {
    auto decoded = DecodeCompositeKey(key);
    if (!decoded.ok()) {
      return true;
    }
    TimeNs start = static_cast<TimeNs>(decoded->second);
    if (start + window_.size <= watermark) {
      closed.emplace_back(std::string(key), std::string(value));
    }
    return true;
  });
  for (auto& [pane_key, pane_value] : closed) {
    if (mode_ == WindowEmitMode::kOnClose) {
      EmitPane(pane_key, pane_value, out);
    } else if (dirty_panes_.erase(pane_key) > 0) {
      // Final authoritative value for a pane updated since the last flush.
      EmitPane(pane_key, pane_value, out);
    }
    store_->Delete(pane_key);
  }
}

// --- StreamStreamJoinOperator ---

StreamStreamJoinOperator::StreamStreamJoinOperator(std::string store_prefix,
                                                   DurationNs window,
                                                   JoinFn join,
                                                   DurationNs allowed_lateness)
    : store_prefix_(std::move(store_prefix)),
      window_(window),
      join_(std::move(join)),
      allowed_lateness_(allowed_lateness) {}

void StreamStreamJoinOperator::Open(OperatorContext* ctx) {
  ctx_ = ctx;
  left_ = ctx->GetStore(store_prefix_ + ".left");
  right_ = ctx->GetStore(store_prefix_ + ".right");
}

void StreamStreamJoinOperator::Process(uint32_t input, StreamRecord record,
                                       Collector* out) {
  MapStateStore* mine = (input == 0) ? left_ : right_;
  MapStateStore* other = (input == 0) ? right_ : left_;
  // Buffer key: (join key, event time | counter) — time-ordered within a
  // key so expiry and the window probe are range scans.
  uint64_t suffix = (static_cast<uint64_t>(record.event_time) << 14) |
                    (ctr_++ & 0x3FFF);
  mine->Put(EncodeCompositeKey(record.key, suffix),
            EncodeTimedValue(record.event_time, record.value));

  // Probe the other side for records within the join window.
  std::string prefix = record.key;
  prefix.push_back('\0');
  other->ScanPrefix(prefix, [&](std::string_view, std::string_view raw) {
    TimeNs other_et;
    std::string other_value;
    if (!DecodeTimedValue(raw, &other_et, &other_value)) {
      return true;
    }
    if (other_et > record.event_time - window_ &&
        other_et < record.event_time + window_) {
      StreamRecord joined;
      joined.key = record.key;
      joined.value = (input == 0) ? join_(record.value, other_value)
                                  : join_(other_value, record.value);
      joined.event_time = std::max(record.event_time, other_et);
      out->Emit(std::move(joined));
    }
    return true;
  });
}

void StreamStreamJoinOperator::ExpireSide(MapStateStore* store,
                                          TimeNs horizon) {
  std::vector<std::string> doomed;
  store->ScanPrefix("", [&](std::string_view key, std::string_view raw) {
    TimeNs et;
    std::string value;
    if (DecodeTimedValue(raw, &et, &value) && et < horizon) {
      doomed.emplace_back(key);
    }
    return true;
  });
  for (const auto& key : doomed) {
    store->Delete(key);
  }
}

void StreamStreamJoinOperator::OnTimer(TimeNs now, Collector* out) {
  TimeNs horizon = ctx_->max_event_time() - allowed_lateness_ - window_;
  ExpireSide(left_, horizon);
  ExpireSide(right_, horizon);
}

// --- StreamTableJoinOperator ---

void StreamTableJoinOperator::Open(OperatorContext* ctx) {
  table_ = ctx->GetStore(store_name_);
}

void StreamTableJoinOperator::Process(uint32_t input, StreamRecord record,
                                      Collector* out) {
  if (input == 1) {
    // Table side: materialize the update; empty value is a tombstone.
    if (record.value.empty()) {
      table_->Delete(record.key);
    } else {
      table_->Put(record.key, record.value);
    }
    return;
  }
  std::optional<std::string> row = table_->Get(record.key);
  if (!row) {
    return;  // inner join: no match, no output
  }
  StreamRecord joined;
  joined.key = std::move(record.key);
  joined.value = join_(record.value, *row);
  joined.event_time = record.event_time;
  out->Emit(std::move(joined));
}

// --- TableTableJoinOperator ---

void TableTableJoinOperator::Open(OperatorContext* ctx) {
  left_ = ctx->GetStore(store_prefix_ + ".left");
  right_ = ctx->GetStore(store_prefix_ + ".right");
}

void TableTableJoinOperator::Process(uint32_t input, StreamRecord record,
                                     Collector* out) {
  MapStateStore* mine = (input == 0) ? left_ : right_;
  MapStateStore* other = (input == 0) ? right_ : left_;
  if (record.value.empty()) {
    mine->Delete(record.key);
    return;
  }
  mine->Put(record.key, EncodeTimedValue(record.event_time, record.value));
  std::optional<std::string> match = other->Get(record.key);
  if (!match) {
    return;
  }
  TimeNs other_et;
  std::string other_value;
  if (!DecodeTimedValue(*match, &other_et, &other_value)) {
    return;
  }
  StreamRecord joined;
  joined.key = std::move(record.key);
  joined.value = (input == 0) ? join_(record.value, other_value)
                              : join_(other_value, record.value);
  joined.event_time = record.event_time;
  out->Emit(std::move(joined));
}

}  // namespace impeller
