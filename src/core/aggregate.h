// Aggregate function specification shared by the group-by, table, and
// window aggregate operators. Accumulators are opaque strings; applications
// encode them with BinaryWriter (see src/nexmark/queries.cc for examples).
#ifndef IMPELLER_SRC_CORE_AGGREGATE_H_
#define IMPELLER_SRC_CORE_AGGREGATE_H_

#include <functional>
#include <string>
#include <string_view>

#include "src/core/operator.h"

namespace impeller {

struct AggregateFn {
  // Fresh accumulator.
  std::function<std::string()> init;
  // Folds one record into the accumulator.
  std::function<std::string(std::string_view acc, const StreamRecord& record)>
      add;
  // Retracts a previous row value (table aggregates only; updates to a table
  // row must remove the old row's contribution, §4 "table aggregate").
  std::function<std::string(std::string_view acc, std::string_view old_value)>
      remove;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_AGGREGATE_H_
