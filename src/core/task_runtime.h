// TaskRuntime: one unit of execution (paper Table 1). A task runs a stage's
// operator chain over its input substreams, writes outputs and change-log
// records through a batched output buffer, and periodically commits its
// progress with whichever exactly-once protocol the engine is configured
// for:
//   * progress marking (Impeller, §3.3) — one multi-tag conditional append;
//   * Kafka Streams transactions (§3.6) — coordinator two-phase commit;
//   * aligned checkpointing (§5.1) — barrier alignment + synchronous
//     snapshots to the checkpoint store;
//   * unsafe — no progress tracking (§5.3.4).
//
// On startup the task recovers to the cut of its most recent progress
// marker (restoring state from the latest checkpoint plus a change-log
// replay, §3.3.4) and resumes reading each input substream just past the
// marker's recorded input end.
#ifndef IMPELLER_SRC_CORE_TASK_RUNTIME_H_
#define IMPELLER_SRC_CORE_TASK_RUNTIME_H_

#include <atomic>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/arena.h"
#include "src/common/retry.h"
#include "src/core/checkpoint.h"
#include "src/core/commit_tracker.h"
#include "src/core/config.h"
#include "src/core/gc.h"
#include "src/core/metrics.h"
#include "src/core/operator.h"
#include "src/core/output_buffer.h"
#include "src/core/query.h"
#include "src/core/substream_reader.h"
#include "src/kvstore/kv_store.h"
#include "src/sched/scheduler.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class TxnCoordinator;
class BarrierCoordinator;

// One source task of a stateful rescale handoff under a marker protocol:
// the new generation replays the source's changelog up to its final cut and
// claims the entries of its own substream range. `default_substream`
// attributes unowned entries (timer writes) to the source's own substream.
struct HandoffSource {
  std::string task_id;
  uint32_t default_substream = 0;
  Lsn cut_lsn = kInvalidLsn;  // LSN of the source's final cut
  uint64_t txn_id = 0;        // kafka-txn: committing transaction id
};

// Direct state handoff for protocols without a changelog (aligned
// checkpointing / unsafe): the manager exports each gracefully stopped
// task's stores and counters in memory and hands them to the new
// generation. An overlapping task id continues its output sequence — the
// downstream dedup map is keyed (substream, producer) without the instance,
// so a reset sequence would be swallowed as duplicates.
struct DirectHandoff {
  struct Source {
    std::string task_id;
    uint32_t default_substream = 0;
    std::map<std::string, std::string> stores;  // name -> snapshot
    std::string seqmap;
    uint64_t out_seq = 0;
    std::vector<std::pair<std::string, Lsn>> input_ends;
  };
  std::vector<Source> sources;
  // Aligned: the latest completed checkpoint id when the handoff was taken.
  // A later completed checkpoint supersedes the handoff on recovery.
  uint64_t completed_ckpt_at_handoff = 0;
};

struct TaskWiring {
  const QueryPlan* plan = nullptr;
  const StageSpec* stage = nullptr;
  uint32_t index = 0;
  uint64_t instance = 1;
  SharedLog* log = nullptr;
  KvStore* checkpoint_store = nullptr;
  EngineConfig config;
  MetricsRegistry* metrics = nullptr;
  Clock* clock = nullptr;
  TxnCoordinator* txn_coordinator = nullptr;          // kKafkaTxn only
  BarrierCoordinator* barrier_coordinator = nullptr;  // kAligned only
  GcRegistry* gc = nullptr;                           // optional
  // Rescale handoff: input-substream ends (tag -> last consumed LSN)
  // gathered from the previous generation's final markers; overrides the
  // marker-derived cursors of this task's own log during recovery.
  std::map<std::string, Lsn> initial_input_ends;
  // Stateful rescale, marker protocols: old-generation tasks whose
  // changelogs hold this task's acquired substream ranges. Retained by the
  // manager and re-passed on restarts until the handoff is sealed by this
  // task's first post-rescale cut.
  std::vector<HandoffSource> handoff_sources;
  // Stateful rescale, aligned/unsafe: in-memory state export of the stopped
  // old generation.
  std::shared_ptr<const DirectHandoff> direct_handoff;
};

struct RecoveryStats {
  bool performed = false;
  bool used_checkpoint = false;
  DurationNs duration = 0;
  uint64_t changelog_entries_read = 0;
  uint64_t changes_applied = 0;
  // Stateful rescale: bytes of keyed state this task acquired and
  // re-appended into its own changelog during the handoff.
  uint64_t handoff_state_bytes = 0;
};

class TaskRuntime final : public OperatorContext {
 public:
  explicit TaskRuntime(TaskWiring wiring);
  ~TaskRuntime() override;

  // One cooperative slice of the task's lifecycle, driven by the engine's
  // work-stealing scheduler: recover on the first step, then poll/flush/
  // commit slices until stopped, crashed, or fenced; a graceful stop drains
  // remaining committed input before the final cut. Returns kIdle with the
  // poll interval when no input was ready, kDone after the final status is
  // published.
  sched::StepResult Step();

  // Dedicated-thread body (tests / standalone use): loops Step(), sleeping
  // through kIdle delays; returns when Step reports kDone.
  void Run();

  // Graceful stop: final flush + commit, then exit.
  void RequestStop() { stop_.store(true); }

  // Simulated server failure: the loop exits at the next iteration without
  // flushing anything; in-memory state is abandoned.
  void Crash() { crashed_.store(true); }

  uint64_t instance() const { return wiring_.instance; }
  bool started() const { return started_.load(); }
  bool finished() const { return finished_.load(); }
  TimeNs last_heartbeat() const { return heartbeat_.load(); }
  Status final_status() const;
  RecoveryStats recovery_stats() const { return recovery_stats_; }
  uint64_t records_processed() const { return records_processed_.load(); }
  uint64_t markers_written() const { return markers_written_.load(); }
  // Commits that landed at least a full interval late (backpressure signal
  // for the autoscaler).
  uint64_t commit_overruns() const { return commit_overruns_.load(); }

  // Thread-safe snapshot of per-input-substream consumed floors
  // (tag -> committed floor LSN); the autoscaler's lag probe. Empty until
  // recovery completes.
  std::vector<std::pair<std::string, Lsn>> InputProgress() const;

  // Exports stores + counters for a direct (aligned/unsafe) rescale
  // handoff. Call only after the task finished gracefully.
  DirectHandoff::Source ExportHandoff() const;

  // --- OperatorContext ---
  MapStateStore* GetStore(std::string_view name) override;
  Clock* clock() override { return wiring_.clock; }
  const std::string& task_id() const override { return task_id_; }
  uint32_t task_index() const override { return wiring_.index; }
  MetricsRegistry* metrics() override { return wiring_.metrics; }
  TimeNs max_event_time() const override { return max_event_time_; }

 private:
  class StageCollector;
  class ChainCollector;

  bool ShouldExit() const {
    return stop_.load(std::memory_order_relaxed) ||
           crashed_.load(std::memory_order_relaxed);
  }
  bool Crashed() const { return crashed_.load(std::memory_order_relaxed); }

  Status Recover();
  Status RecoverFromMarker();
  Status RecoverAligned();

  // Substream ownership under the current generation: task i of T owns
  // every substream s with s % T == i.
  bool OwnsSubstream(uint32_t sub) const {
    return sub % wiring_.stage->num_tasks == wiring_.index;
  }
  // Keeps entries of this task's substream range; unowned entries are
  // attributed to `default_substream` (and normalized to it).
  bool ClaimOwner(uint32_t& owner, uint32_t default_substream) const {
    if (owner == kUnownedSubstream) {
      owner = default_substream;
    }
    return OwnsSubstream(owner);
  }
  // A handoff is pending until this task commits its first post-rescale cut
  // (whose LSN then exceeds every source's fence).
  bool HandoffPending() const;
  // Stateful rescale: replays each old-generation source's changelog up to
  // its final cut, claims this task's substream range, and re-appends the
  // acquired state into its own changelog (sealed by the first cut).
  Status PerformMarkerHandoff();
  // Aligned/unsafe: restores the manager's in-memory state export.
  Status RestoreDirectHandoff();
  void PublishProgress();

  // Reads from every input substream; returns entries consumed.
  Result<size_t> PollInputs();
  // `slot` indexes readers_ (one per assigned substream); the record's own
  // `input` field is the stage input-stream index operators see.
  void ProcessReady(size_t slot, ReadyRecord record);
  void RunRecord(uint32_t input, StreamRecord record);

  // Stage-output routing: called by the terminal collector.
  void EmitOutput(uint32_t output, StreamRecord record);
  void OnStateChange(const ChangeLogView& change);

  Status MaybeFlush(bool force);
  Status ApplyFlushResult(const OutputBuffer::FlushResult& result);

  // Fault probe at a named crash point. A kCrash action marks the task
  // crashed (the run loop exits without flushing, as if the server died) and
  // returns true; a kDelay action stalls the task here. Points:
  //   task/flush/pre        before an output-buffer flush
  //   task/flush/post       flush durable, epoch bookkeeping not yet updated
  //   task/commit/pre_marker  outputs flushed, marker not yet appended
  //   task/commit/post_marker marker durable, commit not yet acknowledged
  //   task/checkpoint/mid   snapshot stored, barriers not yet forwarded
  bool MaybeInjectCrash(const char* point);

  Status Commit();
  Status CommitProgressMarking();
  Status CommitKafkaTxn();

  // Aligned-checkpoint plumbing. Barriers are queued during a poll and
  // applied interleaved with record processing in substream order; channels
  // are keyed by reader slot.
  void OnBarrier(size_t slot, const std::string& producer,
                 uint64_t checkpoint_id, Lsn lsn);
  Status CompleteAlignment();
  bool IsBlocked(size_t slot, std::string_view producer) const;

  void RunTimers(TimeNs now);
  void PublishGcFloors();

  std::vector<std::pair<std::string, Lsn>> CurrentInputEnds() const;
  std::vector<std::string> DownstreamMarkerTags() const;

  // Step() state machine: kInit recovers, kRunning is the steady-state
  // poll/flush/commit loop, kDraining is the graceful-stop drain, kDone is
  // terminal. The transition helpers mirror the epilogue of the old
  // monolithic Run() loop.
  enum class Phase { kInit, kRunning, kDraining, kDone };
  sched::StepResult StepInit();
  sched::StepResult StepRunning();
  sched::StepResult StepDraining();
  // Final flush + commit (+ transaction wait) of a graceful stop, then the
  // epilogue. Entered from kDraining however the drain ended.
  sched::StepResult FinishWithTail();
  // Publishes final_status_ and flips to kDone.
  sched::StepResult FinishEpilogue();

  TaskWiring wiring_;
  std::string task_id_;
  bool uses_markers_ = false;     // progress marking or kafka txn
  bool capture_changes_ = false;  // changelog enabled

  std::atomic<bool> stop_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::atomic<TimeNs> heartbeat_{0};
  std::atomic<uint64_t> records_processed_{0};
  std::atomic<uint64_t> markers_written_{0};
  std::atomic<uint64_t> commit_overruns_{0};

  mutable std::mutex progress_mu_;
  std::vector<std::pair<std::string, Lsn>> progress_;  // guarded by above

  mutable std::mutex status_mu_;
  Status final_status_;
  RecoveryStats recovery_stats_;

  // Operator chain + per-position collectors.
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<std::unique_ptr<Collector>> collectors_;

  // State stores (owned; operators hold raw pointers).
  std::map<std::string, std::unique_ptr<MapStateStore>> stores_;

  CommitTracker tracker_;
  std::vector<std::unique_ptr<SubstreamReader>> readers_;
  std::vector<uint32_t> reader_substreams_;  // slot -> substream index
  // Input substream of the record currently being processed; stamps state
  // ownership via each store's ctx pointer. kUnownedSubstream outside
  // record processing (timers, replay).
  uint32_t current_substream_ = kUnownedSubstream;
  // LSN of this task's own recovery cut (kInvalidLsn when fresh); against
  // the handoff sources' fence it decides whether a pending handoff was
  // already sealed by a post-rescale commit.
  Lsn recovered_cut_lsn_ = kInvalidLsn;
  std::vector<bool> input_external_;
  std::vector<uint32_t> expected_barriers_;
  SubstreamReader::Hooks reader_hooks_;
  std::vector<ReadyRecord> ready_scratch_;
  struct PendingBarrier {
    size_t position;  // index into ready_scratch_ the barrier precedes
    size_t slot;      // reader that observed it
    std::string producer;
    uint64_t checkpoint_id;
    Lsn lsn;
  };
  std::vector<PendingBarrier> pending_barriers_;

  Retrier retrier_;  // declared before output_buffer_, which borrows it
  OutputBuffer output_buffer_;
  uint64_t out_seq_ = 0;
  uint64_t marker_seq_ = 1;
  TimeNs max_event_time_ = 0;

  // Zero-copy data plane (DESIGN.md §12). Per-(output, substream) routing
  // tags precomputed at recovery so the steady-state emit path never builds
  // tag strings; the changelog tag likewise. The arena and string pool hold
  // per-epoch transient record scratch and are reset at marker/commit
  // boundaries.
  std::vector<std::vector<std::string>> output_tags_;
  std::string changelog_tag_;
  Arena epoch_arena_;
  StringPool record_pool_;
  void ResetEpochScratch() {
    epoch_arena_.Reset();
    record_pool_.Trim(/*keep=*/16);
  }
  const std::string& OutputTagFor(uint32_t output, uint32_t sub) const {
    return output_tags_[output][sub];
  }

  // Epoch bookkeeping for markers / transactions.
  Lsn epoch_first_output_ = kInvalidLsn;
  Lsn epoch_first_changelog_ = kInvalidLsn;
  bool epoch_dirty_ = false;
  std::set<std::string> epoch_touched_tags_;
  std::vector<std::pair<std::string, Lsn>> last_input_ends_;

  // Kafka txn: at most one commit in flight.
  std::shared_future<Status> txn_inflight_;

  // Aligned checkpointing.
  uint64_t last_completed_ckpt_ = 0;
  uint64_t align_ckpt_id_ = 0;  // 0 = no alignment in progress
  std::vector<uint32_t> barriers_arrived_;
  std::vector<Lsn> align_cursor_snapshot_;
  std::set<std::pair<size_t, std::string>> blocked_channels_;
  std::deque<std::pair<size_t, ReadyRecord>> sidelined_;

  // Sink-to-egress routing (identity partition by task index).
  std::vector<bool> output_is_egress_;

  // Step() state (touched only by the worker currently stepping this task;
  // the scheduler serializes steps of one entity).
  Phase phase_ = Phase::kInit;
  Status run_status_;
  TimeNs next_commit_ = 0;
  TimeNs next_timer_ = 0;
  TimeNs next_flush_ = 0;
  DurationNs drain_quiet_ = 0;
  TimeNs drain_deadline_ = 0;
  TimeNs drain_quiet_until_ = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_TASK_RUNTIME_H_
