// Input-side machinery for one input substream of a task: a cursor into the
// shared log plus the buffering algorithm of paper §3.3.3.
//
// Records are consumed strictly in LSN order per substream. Data records are
// classified against the CommitTracker; the queue head blocks on the first
// kUnknown record until a later commit event (progress marker / txn commit
// record) resolves it. Control records — markers, txn controls, checkpoint
// barriers — take effect immediately upon being read, since they are what
// move classification forward.
//
// Zero-copy: a record handed out (or buffered behind an unknown head) keeps
// the refcounted log payload (PayloadRef) and decodes header/body fields as
// in-place views over it — no per-record field strings. The views stay valid
// for as long as the ReadyRecord/BufferedEntry holding the PayloadRef lives.
#ifndef IMPELLER_SRC_CORE_SUBSTREAM_READER_H_
#define IMPELLER_SRC_CORE_SUBSTREAM_READER_H_

#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/commit_tracker.h"
#include "src/core/marker.h"
#include "src/core/metrics.h"
#include "src/core/record.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

// A committed, deduplicated data record ready for operator processing.
// `header`/`data` fields are views into `payload`'s shared buffer.
struct ReadyRecord {
  uint32_t input = 0;
  Lsn lsn = kInvalidLsn;
  PayloadRef payload;
  EnvelopeView header;
  DataView data;
};

class SubstreamReader {
 public:
  struct Hooks {
    // Aligned-checkpoint barrier observed at `lsn` (already in substream
    // order relative to the producer's data records). The envelope view is
    // only valid for the duration of the callback.
    std::function<void(uint32_t input, const EnvelopeView&,
                       const BarrierBody&, Lsn lsn)>
        on_barrier;
  };

  SubstreamReader(SharedLog* log, std::string tag, uint32_t input_index,
                  CommitTracker* tracker, Lsn start_lsn);

  // Pulls up to `max_new` log entries and drains every classifiable record
  // into `out` (in substream order). Returns the number of new log entries
  // consumed. Decoding failures and trimmed cursors surface as errors.
  Result<size_t> Poll(size_t max_new, std::vector<ReadyRecord>* out,
                      const Hooks& hooks);

  const std::string& tag() const { return tag_; }
  uint32_t input_index() const { return input_index_; }

  // Cursor of the next unread log position.
  Lsn next_lsn() const { return next_lsn_; }
  void ResetCursor(Lsn lsn);

  // Recovery: repositions the cursor and seeds the committed floor from the
  // last progress marker's recorded input end (so an idle task's next
  // marker does not regress its input range).
  void Restore(Lsn next_lsn, Lsn floor);

  // LSN of the last fully handled input record: everything at or below it
  // has been processed, discarded, or was a control record. This is what a
  // progress marker records as the input range end (§3.3.1). kInvalidLsn
  // until anything was handled.
  Lsn committed_floor() const { return committed_floor_; }

  size_t buffered() const { return buffer_.size(); }

 private:
  struct BufferedEntry {
    Lsn lsn;
    PayloadRef payload;  // pins the views below
    EnvelopeView header;
    DataView data;
  };

  // Classifies and pops buffered records from the head.
  void Drain(std::vector<ReadyRecord>* out);
  void HandleEntry(LogEntry entry, const EnvelopeView& env,
                   std::vector<ReadyRecord>* out, const Hooks& hooks);

  SharedLog* log_;
  std::string tag_;
  uint32_t input_index_;
  CommitTracker* tracker_;
  Lsn next_lsn_;
  Lsn committed_floor_ = kInvalidLsn;
  std::deque<BufferedEntry> buffer_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_SUBSTREAM_READER_H_
