#include "src/core/gc.h"

#include "src/common/logging.h"

namespace impeller {

void GcRegistry::PublishFloor(const std::string& source, Lsn floor) {
  std::lock_guard<std::mutex> lock(mu_);
  Lsn& slot = floors_[source];
  if (floor > slot) {
    slot = floor;
  }
}

void GcRegistry::Remove(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  floors_.erase(source);
}

Lsn GcRegistry::MinFloor() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (floors_.empty()) {
    return kInvalidLsn;
  }
  Lsn min = kInvalidLsn;
  for (const auto& [source, floor] : floors_) {
    min = std::min(min, floor);
  }
  return min;
}

size_t GcRegistry::sources() const {
  std::lock_guard<std::mutex> lock(mu_);
  return floors_.size();
}

GcWorker::GcWorker(SharedLog* log, GcRegistry* registry, Clock* clock,
                   DurationNs interval)
    : log_(log), registry_(registry), clock_(clock), interval_(interval) {}

GcWorker::~GcWorker() { Stop(); }

void GcWorker::Start() {
  if (running_.exchange(true)) {
    return;
  }
  thread_ = JoiningThread([this] { Loop(); });
}

void GcWorker::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.Join();
}

void GcWorker::Loop() {
  TimeNs next = clock_->Now() + interval_;
  while (running_.load()) {
    TimeNs now = clock_->Now();
    if (now < next) {
      clock_->SleepFor(std::min<DurationNs>(next - now, 50 * kMillisecond));
      continue;
    }
    RunOnce();
    next = clock_->Now() + interval_;
  }
}

void GcWorker::RunOnce() {
  Lsn floor = registry_->MinFloor();
  if (floor == kInvalidLsn || floor <= last_trim_) {
    return;
  }
  Status st = log_->Trim(floor);
  if (!st.ok()) {
    LOG_WARN << "GC trim to " << floor << " failed: " << st.ToString();
    return;
  }
  last_trim_ = floor;
  trims_.fetch_add(1);
}

}  // namespace impeller
