// Forwarding header: MetricsRegistry moved to src/common so that the
// shared-log and observability layers (which must not depend on src/core)
// can record into it. Kept so existing includes stay valid.
#ifndef IMPELLER_SRC_CORE_METRICS_H_
#define IMPELLER_SRC_CORE_METRICS_H_

#include "src/common/metrics.h"

#endif  // IMPELLER_SRC_CORE_METRICS_H_
