// TaskManager (paper §3.2, §3.4): schedules a query's tasks, assigns each a
// unique id and an instance number minted atomically in the shared log's
// configuration metadata, monitors heartbeats, and restarts tasks that
// crash or go silent. Restarted tasks get an incremented instance number,
// which fences the old instance's conditional appends — the zombie
// neutralization mechanism of §3.4.
//
// One manager runs one query, matching the paper's deployment of one shared
// log instance per stream query (§3.1).
#ifndef IMPELLER_SRC_CORE_TASK_MANAGER_H_
#define IMPELLER_SRC_CORE_TASK_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/autoscale/stats.h"
#include "src/common/threading.h"
#include "src/core/checkpoint.h"
#include "src/core/config.h"
#include "src/core/gc.h"
#include "src/core/metrics.h"
#include "src/core/query.h"
#include "src/core/task_runtime.h"
#include "src/kvstore/kv_store.h"
#include "src/protocols/barrier_coordinator.h"
#include "src/protocols/txn_coordinator.h"
#include "src/sched/scheduler.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class TaskManager {
 public:
  // Tasks execute as cooperative step entities on `sched` (shard-affine
  // placement: a task's home worker is derived from the log shard of its
  // first input substream, so tasks sharing a shard share a cache).
  TaskManager(SharedLog* log, KvStore* checkpoint_store, EngineConfig config,
              MetricsRegistry* metrics, Clock* clock,
              sched::WorkStealingScheduler* sched);
  ~TaskManager();

  // Starts every task of the plan (plus the protocol coordinators, the
  // checkpoint worker, and GC when enabled). One plan per manager.
  Status Submit(QueryPlan plan);

  // Graceful shutdown: each task flushes and commits a final cut.
  void Stop();

  // --- fault injection / recovery (used by tests and Table 4) ---

  // Simulates a server failure: the task thread exits without flushing.
  // With auto_restart the monitor will eventually replace it; call
  // RestartTask for an immediate, measured restart.
  Status CrashTask(const std::string& task_id);

  // Mints a new instance number (fencing the old one) and starts a
  // replacement; blocks until its recovery completes and returns the stats.
  Result<RecoveryStats> RestartTask(const std::string& task_id);

  // Zombie scenario (§3.4): starts a replacement WITHOUT stopping the old
  // instance, as a task manager with a stale failure verdict would.
  Status StartReplacement(const std::string& task_id);

  // Rescales a stage to `new_tasks` tasks (the paper's skew response, §5.3:
  // substreams are fixed at plan time via WithSubstreams, so rescaling
  // reassigns substreams to tasks without repartitioning). The old
  // generation stops gracefully; its final markers hand over both the
  // consumed positions and — for stateful stages — ownership of each
  // substream's keyed state: the new generation replays the old changelogs
  // up to the handoff cuts, claims its substream range (split on scale-up,
  // merge on scale-down), and re-appends the acquired state under its own
  // id. Under aligned-checkpoint/unsafe (no changelog) the stopped tasks'
  // state is exported in memory instead, and under aligned the barrier
  // coordinator and downstream consumers are reconfigured for the new
  // producer count. Supported under all four protocols; concurrent rescales
  // serialize. Remaining unsupported case: under aligned checkpointing, a
  // crash between the rescale and the next completed checkpoint loses the
  // in-memory handoff (marker protocols recover it from the changelog).
  Status RescaleStage(const std::string& stage_name, uint32_t new_tasks);

  // Per-stage backlog/backpressure snapshot for the autoscaler: current
  // task count, summed input lag (log positions behind each input
  // substream's tail) and cumulative commit-interval overruns.
  std::vector<StageStats> CollectStageStats();

  // Current (newest-instance) runtime for a task; nullptr when unknown.
  TaskRuntime* FindTask(const std::string& task_id);

  std::vector<std::string> AllTaskIds() const;
  bool AllTasksIdle() const;  // every current task finished?

  const QueryPlan& plan() const { return plan_; }
  TxnCoordinator* txn_coordinator() { return txn_coordinator_.get(); }
  BarrierCoordinator* barrier_coordinator() {
    return barrier_coordinator_.get();
  }
  CheckpointWorker* checkpoint_worker() { return checkpoint_worker_.get(); }
  GcWorker* gc_worker() { return gc_worker_.get(); }
  GcRegistry* gc_registry() { return &gc_registry_; }

 private:
  struct TaskEntry {
    const StageSpec* stage = nullptr;
    uint32_t index = 0;
    std::unique_ptr<TaskRuntime> runtime;
    sched::Ticket ticket = sched::kInvalidTicket;
    // Superseded instances kept alive until their entities finish (zombies).
    std::vector<std::pair<std::unique_ptr<TaskRuntime>, sched::Ticket>> old;
    // Scale-down leftovers (index >= the stage's current task count): kept
    // for bookkeeping but never restarted by the monitor.
    bool retired = false;
    // Rescale handoff, retained so monitor restarts re-pass it: a crash
    // mid-handoff (or any time before the handoff seals) must not lose the
    // old generation's cursors and state sources.
    std::map<std::string, Lsn> handoff_ends;
    std::vector<HandoffSource> handoff_sources;
    std::shared_ptr<const DirectHandoff> direct_handoff;
  };

  // Spawns a new instance for the entry (caller holds mu_); the entry's
  // retained handoff info (if any) seeds the new instance's wiring.
  Status SpawnLocked(TaskEntry& entry, const std::string& task_id);
  // Re-Configures the barrier coordinator against the current task list and
  // restarts it (aligned protocol only; takes mu_ to snapshot the plan).
  void ResumeBarrierCoordinator();
  // Home-worker hint: log shard of the task's first owned input substream
  // (task i of T owns substreams s % T == i); falls back to the task index.
  uint32_t TaskAffinity(const TaskEntry& entry) const;
  std::vector<const StageSpec*> TopologicalStageOrder() const;
  void MonitorLoop();

  SharedLog* log_;
  KvStore* checkpoint_store_;
  EngineConfig config_;
  MetricsRegistry* metrics_;
  Clock* clock_;
  sched::WorkStealingScheduler* sched_;

  QueryPlan plan_;
  bool submitted_ = false;

  mutable std::mutex mu_;
  std::map<std::string, TaskEntry> tasks_;
  // Serializes RescaleStage calls (the autoscaler and tests may race).
  std::mutex rescale_mu_;
  // Task ids already registered with the checkpoint worker (RegisterTask
  // does not dedup; scale-up must only register genuinely new ids).
  std::set<std::string> checkpoint_registered_;

  std::unique_ptr<TxnCoordinator> txn_coordinator_;
  std::unique_ptr<BarrierCoordinator> barrier_coordinator_;
  std::unique_ptr<CheckpointWorker> checkpoint_worker_;
  GcRegistry gc_registry_;
  std::unique_ptr<GcWorker> gc_worker_;

  std::atomic<bool> running_{false};
  // Set (and never cleared) at the head of Stop(): restarts/replacements
  // arriving after it return kUnavailable instead of racing the shutdown.
  std::atomic<bool> stopping_{false};
  JoiningThread monitor_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_TASK_MANAGER_H_
