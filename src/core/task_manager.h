// TaskManager (paper §3.2, §3.4): schedules a query's tasks, assigns each a
// unique id and an instance number minted atomically in the shared log's
// configuration metadata, monitors heartbeats, and restarts tasks that
// crash or go silent. Restarted tasks get an incremented instance number,
// which fences the old instance's conditional appends — the zombie
// neutralization mechanism of §3.4.
//
// One manager runs one query, matching the paper's deployment of one shared
// log instance per stream query (§3.1).
#ifndef IMPELLER_SRC_CORE_TASK_MANAGER_H_
#define IMPELLER_SRC_CORE_TASK_MANAGER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/threading.h"
#include "src/core/checkpoint.h"
#include "src/core/config.h"
#include "src/core/gc.h"
#include "src/core/metrics.h"
#include "src/core/query.h"
#include "src/core/task_runtime.h"
#include "src/kvstore/kv_store.h"
#include "src/protocols/barrier_coordinator.h"
#include "src/protocols/txn_coordinator.h"
#include "src/sched/scheduler.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {

class TaskManager {
 public:
  // Tasks execute as cooperative step entities on `sched` (shard-affine
  // placement: a task's home worker is derived from the log shard of its
  // first input substream, so tasks sharing a shard share a cache).
  TaskManager(SharedLog* log, KvStore* checkpoint_store, EngineConfig config,
              MetricsRegistry* metrics, Clock* clock,
              sched::WorkStealingScheduler* sched);
  ~TaskManager();

  // Starts every task of the plan (plus the protocol coordinators, the
  // checkpoint worker, and GC when enabled). One plan per manager.
  Status Submit(QueryPlan plan);

  // Graceful shutdown: each task flushes and commits a final cut.
  void Stop();

  // --- fault injection / recovery (used by tests and Table 4) ---

  // Simulates a server failure: the task thread exits without flushing.
  // With auto_restart the monitor will eventually replace it; call
  // RestartTask for an immediate, measured restart.
  Status CrashTask(const std::string& task_id);

  // Mints a new instance number (fencing the old one) and starts a
  // replacement; blocks until its recovery completes and returns the stats.
  Result<RecoveryStats> RestartTask(const std::string& task_id);

  // Zombie scenario (§3.4): starts a replacement WITHOUT stopping the old
  // instance, as a task manager with a stale failure verdict would.
  Status StartReplacement(const std::string& task_id);

  // Rescales a *stateless* stage to `new_tasks` tasks (the paper's skew
  // response, §5.3: substreams are fixed at plan time via WithSubstreams,
  // so rescaling reassigns substreams to tasks without repartitioning).
  // The old generation stops gracefully; its final markers hand each
  // substream's consumed position to the new generation. Stateful stages
  // are rejected: their keyed state cannot yet migrate between tasks.
  Status RescaleStage(const std::string& stage_name, uint32_t new_tasks);

  // Current (newest-instance) runtime for a task; nullptr when unknown.
  TaskRuntime* FindTask(const std::string& task_id);

  std::vector<std::string> AllTaskIds() const;
  bool AllTasksIdle() const;  // every current task finished?

  const QueryPlan& plan() const { return plan_; }
  TxnCoordinator* txn_coordinator() { return txn_coordinator_.get(); }
  BarrierCoordinator* barrier_coordinator() {
    return barrier_coordinator_.get();
  }
  CheckpointWorker* checkpoint_worker() { return checkpoint_worker_.get(); }
  GcWorker* gc_worker() { return gc_worker_.get(); }
  GcRegistry* gc_registry() { return &gc_registry_; }

 private:
  struct TaskEntry {
    const StageSpec* stage = nullptr;
    uint32_t index = 0;
    std::unique_ptr<TaskRuntime> runtime;
    sched::Ticket ticket = sched::kInvalidTicket;
    // Superseded instances kept alive until their entities finish (zombies).
    std::vector<std::pair<std::unique_ptr<TaskRuntime>, sched::Ticket>> old;
  };

  // Spawns a new instance for the entry (caller holds mu_). `initial_ends`
  // optionally seeds input cursors (rescale handoff).
  Status SpawnLocked(TaskEntry& entry, const std::string& task_id,
                     const std::map<std::string, Lsn>* initial_ends = nullptr);
  // Home-worker hint: log shard of the task's first owned input substream
  // (task i of T owns substreams s % T == i); falls back to the task index.
  uint32_t TaskAffinity(const TaskEntry& entry) const;
  std::vector<const StageSpec*> TopologicalStageOrder() const;
  void MonitorLoop();

  SharedLog* log_;
  KvStore* checkpoint_store_;
  EngineConfig config_;
  MetricsRegistry* metrics_;
  Clock* clock_;
  sched::WorkStealingScheduler* sched_;

  QueryPlan plan_;
  bool submitted_ = false;

  mutable std::mutex mu_;
  std::map<std::string, TaskEntry> tasks_;

  std::unique_ptr<TxnCoordinator> txn_coordinator_;
  std::unique_ptr<BarrierCoordinator> barrier_coordinator_;
  std::unique_ptr<CheckpointWorker> checkpoint_worker_;
  GcRegistry gc_registry_;
  std::unique_ptr<GcWorker> gc_worker_;

  std::atomic<bool> running_{false};
  // Set (and never cleared) at the head of Stop(): restarts/replacements
  // arriving after it return kUnavailable instead of racing the shutdown.
  std::atomic<bool> stopping_{false};
  JoiningThread monitor_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_TASK_MANAGER_H_
