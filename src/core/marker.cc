#include "src/core/marker.h"

#include "src/common/serde.h"

namespace impeller {

namespace {

void WriteInputEnds(BinaryWriter& w,
                    const std::vector<std::pair<std::string, Lsn>>& ends) {
  w.WriteVarU64(ends.size());
  for (const auto& [tag, lsn] : ends) {
    w.WriteString(tag);
    w.WriteVarU64(lsn);
  }
}

Status ReadInputEnds(BinaryReader& r,
                     std::vector<std::pair<std::string, Lsn>>* ends) {
  auto n = r.ReadVarU64();
  if (!n.ok()) {
    return n.status();
  }
  // Each entry needs at least two bytes; a larger count is corruption, not
  // something to reserve memory for.
  if (*n > r.remaining() / 2 + 1) {
    return DataLossError("input-ends count exceeds buffer");
  }
  ends->reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto tag = r.ReadString();
    if (!tag.ok()) {
      return tag.status();
    }
    auto lsn = r.ReadVarU64();
    if (!lsn.ok()) {
      return lsn.status();
    }
    ends->emplace_back(std::move(*tag), *lsn);
  }
  return OkStatus();
}

}  // namespace

std::string EncodeProgressMarker(const ProgressMarker& marker) {
  BinaryWriter w(64);
  w.WriteVarU64(marker.marker_seq);
  WriteInputEnds(w, marker.input_ends);
  w.WriteVarU64(marker.outputs_from);
  w.WriteVarU64(marker.changelog_from);
  w.WriteBool(marker.has_checkpoint);
  if (marker.has_checkpoint) {
    w.WriteVarU64(marker.checkpoint_seq);
  }
  return w.Take();
}

Result<ProgressMarker> DecodeProgressMarker(std::string_view raw) {
  BinaryReader r(raw);
  ProgressMarker m;
  auto seq = r.ReadVarU64();
  if (!seq.ok()) {
    return seq.status();
  }
  m.marker_seq = *seq;
  Status st = ReadInputEnds(r, &m.input_ends);
  if (!st.ok()) {
    return st;
  }
  auto outputs_from = r.ReadVarU64();
  if (!outputs_from.ok()) {
    return outputs_from.status();
  }
  m.outputs_from = *outputs_from;
  auto changelog_from = r.ReadVarU64();
  if (!changelog_from.ok()) {
    return changelog_from.status();
  }
  m.changelog_from = *changelog_from;
  auto has_ckpt = r.ReadBool();
  if (!has_ckpt.ok()) {
    return has_ckpt.status();
  }
  m.has_checkpoint = *has_ckpt;
  if (m.has_checkpoint) {
    auto ckpt = r.ReadVarU64();
    if (!ckpt.ok()) {
      return ckpt.status();
    }
    m.checkpoint_seq = *ckpt;
  }
  return m;
}

std::string EncodeTxnControlBody(const TxnControlBody& body) {
  BinaryWriter w(32);
  w.WriteU8(static_cast<uint8_t>(body.kind));
  w.WriteVarU64(body.txn_id);
  WriteInputEnds(w, body.input_ends);
  w.WriteVarU64(body.changelog_from);
  return w.Take();
}

Result<TxnControlBody> DecodeTxnControlBody(std::string_view raw) {
  BinaryReader r(raw);
  TxnControlBody body;
  auto kind = r.ReadU8();
  if (!kind.ok()) {
    return kind.status();
  }
  if (*kind < static_cast<uint8_t>(TxnControlKind::kRegistration) ||
      *kind > static_cast<uint8_t>(TxnControlKind::kAbort)) {
    return DataLossError("bad txn control kind");
  }
  body.kind = static_cast<TxnControlKind>(*kind);
  auto txn_id = r.ReadVarU64();
  if (!txn_id.ok()) {
    return txn_id.status();
  }
  body.txn_id = *txn_id;
  Status st = ReadInputEnds(r, &body.input_ends);
  if (!st.ok()) {
    return st;
  }
  auto changelog_from = r.ReadVarU64();
  if (!changelog_from.ok()) {
    return changelog_from.status();
  }
  body.changelog_from = *changelog_from;
  return body;
}

std::string EncodeBarrierBody(const BarrierBody& body) {
  BinaryWriter w(8);
  w.WriteVarU64(body.checkpoint_id);
  return w.Take();
}

Result<BarrierBody> DecodeBarrierBody(std::string_view raw) {
  BinaryReader r(raw);
  auto id = r.ReadVarU64();
  if (!id.ok()) {
    return id.status();
  }
  BarrierBody body;
  body.checkpoint_id = *id;
  return body;
}

}  // namespace impeller
