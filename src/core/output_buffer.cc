#include "src/core/output_buffer.h"

#include <cassert>

namespace impeller {

OutputBuffer::OutputBuffer(SharedLog* log, size_t capacity_bytes,
                           Retrier* retrier)
    : log_(log),
      capacity_bytes_(capacity_bytes),
      retrier_(retrier),
      writer_(&buffer_) {}

BinaryWriter& OutputBuffer::StartRecord(Kind kind, std::string tag) {
  assert(!record_open_);
  record_open_ = true;
  PendingRecord rec;
  rec.kind = kind;
  rec.tag = std::move(tag);
  rec.off = buffer_.size();
  pending_.push_back(std::move(rec));
  return writer_;
}

void OutputBuffer::FinishRecord() {
  assert(record_open_);
  record_open_ = false;
  PendingRecord& rec = pending_.back();
  rec.len = buffer_.size() - rec.off;
  pending_bytes_ += rec.len;
}

void OutputBuffer::Add(Kind kind, AppendRequest&& request) {
  assert(!record_open_);
  PendingRecord rec;
  rec.kind = kind;
  if (!request.tags.empty()) {
    rec.tag = std::move(request.tags.front());
  }
  rec.prebuilt = std::move(request.payload);
  rec.is_prebuilt = true;
  rec.len = rec.prebuilt.size();
  pending_bytes_ += rec.len;
  pending_.push_back(std::move(rec));
}

void OutputBuffer::SealBuffer() {
  if (buffer_.empty()) {
    return;
  }
  auto sealed = std::make_shared<const std::string>(std::move(buffer_));
  buffer_.clear();
  for (PendingRecord& rec : pending_) {
    if (!rec.is_prebuilt && rec.sealed == nullptr) {
      rec.sealed = sealed;
    }
  }
}

Result<OutputBuffer::FlushResult> OutputBuffer::Flush() {
  assert(!record_open_);
  FlushResult result;
  if (pending_.empty()) {
    return result;
  }
  // Seal the epoch's contiguous buffer: one shared allocation now backs
  // every record encoded since the last flush (records surviving a failed
  // flush keep their earlier sealed buffers).
  SealBuffer();
  std::vector<AppendRequest> batch;
  batch.reserve(pending_.size());
  for (PendingRecord& rec : pending_) {
    AppendRequest req;
    req.tags.push_back(std::move(rec.tag));
    req.payload = rec.Ref();
    batch.push_back(std::move(req));
  }
  auto lsns = retrier_ != nullptr
                  ? retrier_->Run("output_flush",
                                  [&] { return log_->AppendBatch(batch); })
                  : log_->AppendBatch(batch);
  if (!lsns.ok()) {
    if (lsns.status().code() == StatusCode::kFenced) {
      // A fenced flush means this task instance is a zombie: the buffered
      // records are dead weight, drop them and surface the error.
      pending_.clear();
      pending_bytes_ = 0;
    } else {
      // Transient failure (retries exhausted): keep the records buffered so
      // a later Flush re-issues the identical batch. The payload bytes stay
      // pinned by the sealed shared buffers; only the routing tags need to
      // move back.
      for (size_t i = 0; i < pending_.size(); ++i) {
        if (!batch[i].tags.empty()) {
          pending_[i].tag = std::move(batch[i].tags.front());
        }
      }
    }
    return lsns.status();
  }
  for (size_t i = 0; i < pending_.size(); ++i) {
    Lsn lsn = (*lsns)[i];
    if (pending_[i].kind == Kind::kOutput) {
      if (result.first_output == kInvalidLsn) {
        result.first_output = lsn;
      }
    } else if (result.first_changelog == kInvalidLsn) {
      result.first_changelog = lsn;
    }
  }
  result.records = pending_.size();
  pending_.clear();
  pending_bytes_ = 0;
  return result;
}

}  // namespace impeller
