#include "src/core/output_buffer.h"

namespace impeller {

OutputBuffer::OutputBuffer(SharedLog* log, size_t capacity_bytes,
                           Retrier* retrier)
    : log_(log), capacity_bytes_(capacity_bytes), retrier_(retrier) {}

void OutputBuffer::Add(Kind kind, AppendRequest request) {
  pending_bytes_ += request.payload.size();
  pending_.emplace_back(kind, std::move(request));
}

Result<OutputBuffer::FlushResult> OutputBuffer::Flush() {
  FlushResult result;
  if (pending_.empty()) {
    return result;
  }
  std::vector<AppendRequest> batch;
  batch.reserve(pending_.size());
  for (auto& [kind, req] : pending_) {
    batch.push_back(std::move(req));
  }
  // AppendBatch consumes the requests only on success, so retrying (or
  // restoring the buffer on failure) needs no copies.
  auto lsns = retrier_ != nullptr
                  ? retrier_->Run("output_flush",
                                  [&] { return log_->AppendBatch(batch); })
                  : log_->AppendBatch(batch);
  if (!lsns.ok()) {
    if (lsns.status().code() == StatusCode::kFenced) {
      // A fenced flush means this task instance is a zombie: the buffered
      // records are dead weight, drop them and surface the error.
      pending_.clear();
      pending_bytes_ = 0;
    } else {
      // Transient failure (retries exhausted): keep the records buffered so
      // a later Flush re-issues the identical batch.
      for (size_t i = 0; i < pending_.size(); ++i) {
        pending_[i].second = std::move(batch[i]);
      }
    }
    return lsns.status();
  }
  for (size_t i = 0; i < pending_.size(); ++i) {
    Lsn lsn = (*lsns)[i];
    if (pending_[i].first == Kind::kOutput) {
      if (result.first_output == kInvalidLsn) {
        result.first_output = lsn;
      }
    } else if (result.first_changelog == kInvalidLsn) {
      result.first_changelog = lsn;
    }
  }
  result.records = pending_.size();
  pending_.clear();
  pending_bytes_ = 0;
  return result;
}

}  // namespace impeller
