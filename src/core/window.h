// Window semantics (paper §2.1, §3.5 "Supporting window semantics"):
// tumbling and sliding windows over event time. Window metadata lives in
// record payloads / state-store keys, orthogonal to the fault-tolerance
// design, exactly as the paper argues.
#ifndef IMPELLER_SRC_CORE_WINDOW_H_
#define IMPELLER_SRC_CORE_WINDOW_H_

#include <vector>

#include "src/common/clock.h"

namespace impeller {

struct WindowSpec {
  DurationNs size = 0;
  DurationNs slide = 0;  // == size for tumbling windows

  static WindowSpec Tumbling(DurationNs size) { return {size, size}; }
  static WindowSpec Sliding(DurationNs size, DurationNs slide) {
    return {size, slide};
  }

  bool IsTumbling() const { return slide == size; }

  // Start timestamps of every window containing `t` (windows are
  // [start, start + size), starts aligned to multiples of slide).
  void AssignWindows(TimeNs t, std::vector<TimeNs>* starts) const;

  // Start of the latest window with start <= t.
  TimeNs LatestStartFor(TimeNs t) const;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_WINDOW_H_
