// Query plans: a DAG of stages, each a chain of operators executed by N
// parallel tasks (paper §2.1). Streams connect stages; each stream is
// partitioned into one substream per consuming task; records are routed to
// substreams by hashing their key (the repartition of Fig. 1/3).
//
// QueryBuilder offers a fluent API; Build() validates the DAG and resolves
// substream counts from the consuming stages.
#ifndef IMPELLER_SRC_CORE_QUERY_H_
#define IMPELLER_SRC_CORE_QUERY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/aggregate.h"
#include "src/core/operators.h"
#include "src/core/window.h"

namespace impeller {

// Routes a record key to a substream index in [0, n).
using Partitioner = std::function<uint32_t(std::string_view key, uint32_t n)>;

struct StreamSpec {
  std::string name;
  uint32_t num_substreams = 0;
  bool external = false;  // ingress: appended by generators, not a stage
  bool egress = false;    // terminal: no consuming stage
  std::string producer_stage;  // empty for ingress
  std::string consumer_stage;  // empty for egress
};

struct OutputSpec {
  std::string stream;
  Partitioner partitioner;  // null = hash(key) % n
};

struct StageSpec {
  std::string name;  // unique within the query
  uint32_t num_tasks = 0;
  // Substreams of each input stream (>= num_tasks; 0 = num_tasks). More
  // substreams than tasks lets the stage rescale later without changing
  // upstream partitioning — the paper's skew-tolerance mechanism (§5.3):
  // task i consumes every substream s with s % num_tasks == i.
  uint32_t num_substreams = 0;
  std::vector<std::string> inputs;  // stream names, positional input index
  std::vector<OutputSpec> outputs;
  std::vector<OperatorFactory> operators;
  bool stateful = false;
};

struct QueryPlan {
  std::string name;
  std::vector<StageSpec> stages;
  std::map<std::string, StreamSpec> streams;

  const StageSpec* FindStage(std::string_view stage_name) const;
  const StreamSpec* FindStream(std::string_view stream_name) const;
  // Task ids of the stage producing `stream` ("ingress" pseudo-producer for
  // external streams).
  std::vector<std::string> ProducersOf(std::string_view stream_name) const;
};

class QueryBuilder;

class StageBuilder {
 public:
  StageBuilder& ReadsFrom(std::vector<std::string> streams);

  StageBuilder& Filter(FilterOperator::Predicate pred);
  StageBuilder& Map(MapOperator::MapFn fn);
  StageBuilder& FlatMap(FlatMapOperator::FlatMapFn fn);
  StageBuilder& Branch(BranchOperator::Selector selector);
  StageBuilder& KeyBy(KeyByOperator::KeyFn fn);
  StageBuilder& Aggregate(std::string store, AggregateFn agg);
  StageBuilder& TableAggregate(std::string store,
                               TableAggregateOperator::GroupKeyFn group_key,
                               AggregateFn agg,
                               TableAggregateOperator::RowKeyFn row_key =
                                   nullptr);
  StageBuilder& WindowAggregate(
      std::string store, WindowSpec window, AggregateFn agg,
      DurationNs allowed_lateness = 100 * kMillisecond,
      WindowEmitMode mode = WindowEmitMode::kOnClose,
      DurationNs suppress_interval = 100 * kMillisecond);
  StageBuilder& JoinStreams(std::string store, DurationNs window,
                            StreamStreamJoinOperator::JoinFn join,
                            DurationNs allowed_lateness = 100 * kMillisecond);
  StageBuilder& JoinTable(std::string store,
                          StreamTableJoinOperator::JoinFn join);
  StageBuilder& JoinTables(std::string store,
                           TableTableJoinOperator::JoinFn join);
  StageBuilder& Sink(std::string name, SinkOperator::Callback cb = nullptr);

  // Escape hatch for custom operators.
  StageBuilder& AddOperator(OperatorFactory factory, bool stateful);

  // Over-partitions the stage's inputs: n substreams multiplexed onto the
  // stage's tasks (n >= num_tasks), enabling later rescaling up to n tasks.
  StageBuilder& WithSubstreams(uint32_t n);

  // Appends an output stream (output index = call order) consumed by a later
  // stage. Default partitioner hashes the record key.
  StageBuilder& WritesTo(std::string stream, Partitioner partitioner = nullptr);

 private:
  friend class QueryBuilder;
  StageSpec spec_;
  bool has_sink_ = false;
};

class QueryBuilder {
 public:
  explicit QueryBuilder(std::string query_name)
      : name_(std::move(query_name)) {}

  // Declares an external input stream (appended by ingress producers).
  QueryBuilder& Ingress(std::string stream);

  StageBuilder& AddStage(std::string stage_name, uint32_t num_tasks);

  // Validates and finalizes the plan. Substream counts are resolved from
  // consuming stages; a stage with a Sink gets an egress stream named
  // "<query>.<stage>.out" with one substream per task.
  Result<QueryPlan> Build();

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<std::string> ingress_;
  std::vector<std::unique_ptr<StageBuilder>> stages_;
};

// Default hash partitioner.
uint32_t HashPartition(std::string_view key, uint32_t n);

// Egress stream name for a sinking stage.
std::string EgressStreamName(std::string_view query, std::string_view stage);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_QUERY_H_
