// Record envelope stored in shared-log payloads. Every log record Impeller
// writes — data, progress markers, change-log entries, transaction control
// records (Kafka-txn baseline), and checkpoint barriers (aligned-checkpoint
// baseline) — shares a header identifying the producing task, its instance
// number (zombie detection, §3.4), and a per-producer sequence number
// (duplicate-append suppression, §3.5). Data records additionally carry the
// original event time used for end-to-end latency measurement (§5.3).
#ifndef IMPELLER_SRC_CORE_RECORD_H_
#define IMPELLER_SRC_CORE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/serde.h"
#include "src/common/status.h"

namespace impeller {

enum class RecordType : uint8_t {
  kData = 1,
  kProgressMarker = 2,
  kChangeLog = 3,
  kTxnControl = 4,
  kBarrier = 5,
};

struct RecordHeader {
  RecordType type = RecordType::kData;
  std::string producer;  // task id or ingress producer id
  uint64_t instance = 0;
  uint64_t seq = 0;
};

struct Envelope {
  RecordHeader header;
  std::string body;  // type-specific encoding
};

std::string EncodeEnvelope(const RecordHeader& header, std::string_view body);
Result<Envelope> DecodeEnvelope(std::string_view payload);

// --- Zero-copy views ---
// View counterparts of the owning structs above. They decode in place over a
// std::string_view with identical bounds checks and kDataLoss semantics, and
// their string fields alias the decoded payload: a view is valid only while
// the buffer it was decoded from is alive (in practice, while the PayloadRef
// that carried the payload is held). Owning structs remain for the cold
// boundaries — checkpoints, replay, tests, and JSON-facing tooling.

struct EnvelopeView {
  RecordType type = RecordType::kData;
  std::string_view producer;
  uint64_t instance = 0;
  uint64_t seq = 0;
  std::string_view body;

  RecordHeader ToOwnedHeader() const {
    return RecordHeader{type, std::string(producer), instance, seq};
  }
};

Result<EnvelopeView> DecodeEnvelopeView(std::string_view payload);

struct DataView {
  std::string_view key;
  std::string_view value;
  TimeNs event_time = 0;
};

Result<DataView> DecodeDataView(std::string_view raw);

// Owner substream of a change-log entry: the input substream whose records
// last wrote the key. Rescaling reassigns substreams to tasks, and the owner
// recorded here is what lets a new generation claim exactly the entries of
// its substream range (split/merge of keyed state, §5.3). kUnownedSubstream
// marks entries written outside record processing (e.g. timer callbacks);
// handoff attributes them to the writing task's default substream.
inline constexpr uint32_t kUnownedSubstream = 0xFFFFFFFFu;

struct ChangeLogView {
  std::string_view store;
  std::string_view key;
  bool is_delete = false;
  std::string_view value;  // empty when is_delete
  uint32_t substream = kUnownedSubstream;  // owner substream of the key
};

Result<ChangeLogView> DecodeChangeLogView(std::string_view raw);

// --- Append-mode encoders ---
// Encode directly through a BinaryWriter (typically bound to a contiguous
// flush buffer) instead of materializing per-record strings. Byte-for-byte
// identical to the owning encoders above; codec tests enforce equivalence.

// Writes the envelope header; the caller appends the body bytes through the
// same writer (e.g. via AppendDataBody below).
void AppendEnvelopeHeader(BinaryWriter& w, RecordType type,
                          std::string_view producer, uint64_t instance,
                          uint64_t seq);
void AppendDataBody(BinaryWriter& w, std::string_view key,
                    std::string_view value, TimeNs event_time);
void AppendChangeLogBody(BinaryWriter& w, const ChangeLogView& body);

// --- Data record body ---
struct DataBody {
  std::string key;
  std::string value;
  TimeNs event_time = 0;
};

std::string EncodeDataBody(const DataBody& body);
Result<DataBody> DecodeDataBody(std::string_view raw);

// --- Change-log record body (one state-store mutation) ---
struct ChangeLogBody {
  std::string store;  // state store name within the task
  std::string key;
  bool is_delete = false;
  std::string value;  // empty when is_delete
  uint32_t substream = kUnownedSubstream;  // owner substream of the key
};

std::string EncodeChangeLogBody(const ChangeLogBody& body);
Result<ChangeLogBody> DecodeChangeLogBody(std::string_view raw);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_RECORD_H_
