// Record envelope stored in shared-log payloads. Every log record Impeller
// writes — data, progress markers, change-log entries, transaction control
// records (Kafka-txn baseline), and checkpoint barriers (aligned-checkpoint
// baseline) — shares a header identifying the producing task, its instance
// number (zombie detection, §3.4), and a per-producer sequence number
// (duplicate-append suppression, §3.5). Data records additionally carry the
// original event time used for end-to-end latency measurement (§5.3).
#ifndef IMPELLER_SRC_CORE_RECORD_H_
#define IMPELLER_SRC_CORE_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace impeller {

enum class RecordType : uint8_t {
  kData = 1,
  kProgressMarker = 2,
  kChangeLog = 3,
  kTxnControl = 4,
  kBarrier = 5,
};

struct RecordHeader {
  RecordType type = RecordType::kData;
  std::string producer;  // task id or ingress producer id
  uint64_t instance = 0;
  uint64_t seq = 0;
};

struct Envelope {
  RecordHeader header;
  std::string body;  // type-specific encoding
};

std::string EncodeEnvelope(const RecordHeader& header, std::string_view body);
Result<Envelope> DecodeEnvelope(std::string_view payload);

// --- Data record body ---
struct DataBody {
  std::string key;
  std::string value;
  TimeNs event_time = 0;
};

std::string EncodeDataBody(const DataBody& body);
Result<DataBody> DecodeDataBody(std::string_view raw);

// --- Change-log record body (one state-store mutation) ---
struct ChangeLogBody {
  std::string store;  // state store name within the task
  std::string key;
  bool is_delete = false;
  std::string value;  // empty when is_delete
};

std::string EncodeChangeLogBody(const ChangeLogBody& body);
Result<ChangeLogBody> DecodeChangeLogBody(std::string_view raw);

}  // namespace impeller

#endif  // IMPELLER_SRC_CORE_RECORD_H_
