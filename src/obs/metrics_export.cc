#include "src/obs/metrics_export.h"

#include <cinttypes>
#include <cstdio>

namespace impeller {
namespace obs {

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

struct Quantile {
  const char* label;  // Prometheus quantile label
  const char* json;   // JSON key
  double p;
};

constexpr Quantile kQuantiles[] = {{"0.5", "p50", 50.0},
                                   {"0.9", "p90", 90.0},
                                   {"0.99", "p99", 99.0},
                                   {"0.999", "p999", 99.9}};

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "impeller_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string MetricsToPrometheusText(MetricsRegistry* registry) {
  std::string out;
  char buf[128];
  for (const std::string& name : registry->CounterNames()) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", prom.c_str(),
                  registry->GetCounter(name)->Get());
    out += buf;
  }
  for (const std::string& name : registry->HistogramNames()) {
    LatencyHistogram* h = registry->Histogram(name);
    std::string prom = PrometheusName(name) + "_ns";
    out += "# TYPE " + prom + " summary\n";
    for (const Quantile& q : kQuantiles) {
      std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %" PRId64 "\n",
                    prom.c_str(), q.label, h->Percentile(q.p));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_sum %.0f\n", prom.c_str(),
                  h->Mean() * static_cast<double>(h->Count()));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", prom.c_str(),
                  h->Count());
    out += buf;
  }
  return out;
}

std::string MetricsToJson(MetricsRegistry* registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[128];
  for (const std::string& name : registry->CounterNames()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(&out, name);
    std::snprintf(buf, sizeof(buf), "\": %" PRIu64,
                  registry->GetCounter(name)->Get());
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const std::string& name : registry->HistogramNames()) {
    LatencyHistogram* h = registry->Histogram(name);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonEscaped(&out, name);
    out += "\": {";
    std::snprintf(buf, sizeof(buf),
                  "\"count\": %" PRIu64 ", \"mean_ns\": %.1f, \"min_ns\": %" PRId64
                  ", \"max_ns\": %" PRId64,
                  h->Count(), h->Mean(), h->Min(), h->Max());
    out += buf;
    for (const Quantile& q : kQuantiles) {
      std::snprintf(buf, sizeof(buf), ", \"%s\": %" PRId64, q.json,
                    h->Percentile(q.p));
      out += buf;
    }
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError("cannot open " + path);
  }
  size_t n = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  if (n != content.size() || rc != 0) {
    return InternalError("short write to " + path);
  }
  return OkStatus();
}

}  // namespace obs
}  // namespace impeller
