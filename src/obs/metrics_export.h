// MetricsRegistry exporters: Prometheus text exposition (scrape-style) and
// a machine-readable JSON snapshot. Both walk every registered counter and
// latency histogram; histograms are exported as summaries (count / sum /
// min / max plus p50, p90, p99, p999 quantiles).
#ifndef IMPELLER_SRC_OBS_METRICS_EXPORT_H_
#define IMPELLER_SRC_OBS_METRICS_EXPORT_H_

#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace impeller {
namespace obs {

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; registry
// names like "log/appends" or "lat/q1-sink" become "impeller_log_appends".
std::string PrometheusName(std::string_view name);

// Prometheus text exposition format, one "# TYPE" block per metric.
// Counters export as counters; histograms as summaries with quantile
// labels. Values are nanoseconds where the underlying metric records them.
std::string MetricsToPrometheusText(MetricsRegistry* registry);

// {"counters": {name: value}, "histograms": {name: {count, sum_ns, ...}}}
std::string MetricsToJson(MetricsRegistry* registry);

// Writes `content` to `path` (truncating). Shared by the bench exporters.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace impeller

#endif  // IMPELLER_SRC_OBS_METRICS_EXPORT_H_
