#include "src/obs/trace.h"

#include <cstdlib>

namespace impeller {
namespace obs {

namespace {

constexpr size_t kDefaultRingCapacity = 8192;
constexpr size_t kMinRingCapacity = 16;

// Nesting depth of the calling thread. Owned here rather than inside the
// ThreadBuffer so that SpanGuard never touches the buffer (or its mutex)
// before a record is actually committed.
thread_local uint32_t tls_depth = 0;

}  // namespace

TraceCollector::TraceCollector() : ring_capacity_(kDefaultRingCapacity) {
  if (const char* env = std::getenv("IMPELLER_TRACE_RING")) {
    long v = std::atol(env);
    if (v > 0) {
      SetRingCapacity(static_cast<size_t>(v));
    }
  }
}

TraceCollector& TraceCollector::Get() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

void TraceCollector::SetRingCapacity(size_t capacity) {
  ring_capacity_.store(std::max(capacity, kMinRingCapacity),
                       std::memory_order_relaxed);
}

uint32_t TraceCollector::CurrentDepth() { return tls_depth; }

TraceCollector::ThreadBuffer* TraceCollector::LocalBuffer() {
  // The thread_local shared_ptr keeps the buffer alive for the thread's
  // lifetime; the registry holds the second reference so records written by
  // exited threads survive until the next Drain.
  thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
  if (tls_buffer == nullptr) {
    tls_buffer = std::make_shared<ThreadBuffer>(
        next_tid_.fetch_add(1, std::memory_order_relaxed), ring_capacity());
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(tls_buffer);
  }
  return tls_buffer.get();
}

void TraceCollector::Push(const TraceRecord& record) {
  ThreadBuffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->written - buffer->drained == buffer->ring.size()) {
    // Ring full: the oldest undrained record is overwritten and lost.
    buffer->drained++;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  TraceRecord& slot = buffer->ring[buffer->written % buffer->ring.size()];
  slot = record;
  slot.tid = buffer->tid;
  buffer->written++;
}

void TraceCollector::RecordSpan(const char* category, const char* name,
                                int64_t start_ns, int64_t end_ns,
                                uint32_t depth) {
  TraceRecord record;
  record.category = category;
  record.name = name;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.depth = depth;
  Push(record);
}

void TraceCollector::RecordInstant(const char* category, const char* name) {
  if (!enabled()) {
    return;
  }
  TraceRecord record;
  record.category = category;
  record.name = name;
  record.start_ns = record.end_ns = TraceNowNs();
  record.depth = tls_depth;
  record.instant = true;
  Push(record);
}

std::vector<TraceRecord> TraceCollector::Drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceRecord> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (uint64_t i = buffer->drained; i < buffer->written; ++i) {
      out.push_back(buffer->ring[i % buffer->ring.size()]);
    }
    buffer->drained = buffer->written;
  }
  {
    // Release buffers whose thread has exited (registry + local copy are
    // the only remaining references); their records were just extracted.
    std::lock_guard<std::mutex> lock(registry_mu_);
    std::erase_if(buffers_, [](const std::shared_ptr<ThreadBuffer>& b) {
      return b.use_count() == 2;
    });
  }
  return out;
}

SpanGuard::SpanGuard(const char* category, const char* name)
    : category_(category), name_(name) {
  if (!TraceCollector::Get().enabled()) {
    return;
  }
  active_ = true;
  depth_ = tls_depth++;
  start_ns_ = TraceNowNs();
}

SpanGuard::~SpanGuard() {
  if (!active_) {
    return;
  }
  int64_t end_ns = TraceNowNs();
  tls_depth--;
  TraceCollector::Get().RecordSpan(category_, name_, start_ns_, end_ns,
                                   depth_);
}

}  // namespace obs
}  // namespace impeller
