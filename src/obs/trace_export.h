// Chrome trace_event exporter: serializes TraceRecords into the JSON object
// format understood by chrome://tracing and Perfetto (ui.perfetto.dev →
// "Open trace file"). Spans become complete ("X") events with microsecond
// timestamps; instants become thread-scoped "i" events.
#ifndef IMPELLER_SRC_OBS_TRACE_EXPORT_H_
#define IMPELLER_SRC_OBS_TRACE_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"

namespace impeller {
namespace obs {

// One trace_event JSON object (no trailing comma / newline).
std::string ChromeTraceEventJson(const TraceRecord& record);

// Incremental writer: Open once, Append batches as they are drained, Close
// to terminate the JSON. Close is idempotent and runs from the destructor,
// so a normally-exiting process always leaves a valid file.
class ChromeTraceWriter {
 public:
  ChromeTraceWriter() = default;
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  Status Open(const std::string& path);
  Status Append(const std::vector<TraceRecord>& records);
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  uint64_t events_written() const { return events_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t events_ = 0;
};

// Convenience: writes a complete trace file in one call.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceRecord>& records);

}  // namespace obs
}  // namespace impeller

#endif  // IMPELLER_SRC_OBS_TRACE_EXPORT_H_
