// Span tracing for the hot paths the exactly-once protocols exercise
// (DESIGN.md "Observability"): a process-wide TraceCollector owning one
// fixed-capacity ring buffer per thread. Recording a span touches only the
// calling thread's buffer under a dedicated, uncontended mutex (drains are
// rare), so the fast path stays cache-local and cheap; when tracing is
// runtime-disabled it is a single relaxed atomic load.
//
// Usage — RAII guards via macros, compiled out entirely when the
// IMPELLER_TRACING CMake option is OFF:
//
//   void SharedLog::Trim(...) {
//     TRACE_SPAN("log", "trim");          // closed at scope exit
//     ...
//     TRACE_INSTANT("log", "trim_noop");  // zero-duration event
//   }
//
// Span categories are a fixed taxonomy: "log" (shared-log operations),
// "task" (TaskRuntime phases), "protocol" (commit / txn / barrier
// machinery), "kv" (checkpoint store). Category and name must be string
// literals (records store the pointers, not copies).
#ifndef IMPELLER_SRC_OBS_TRACE_H_
#define IMPELLER_SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace impeller {
namespace obs {

// Nanoseconds on the steady clock — the same epoch MonotonicClock uses, so
// trace timestamps line up with engine time.
inline int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceRecord {
  const char* category = nullptr;  // string literal
  const char* name = nullptr;      // string literal
  int64_t start_ns = 0;
  int64_t end_ns = 0;  // == start_ns for instant events
  uint32_t tid = 0;    // dense per-process thread id
  uint32_t depth = 0;  // span nesting depth within the thread (0 = root)
  bool instant = false;
};

class TraceCollector {
 public:
  // Process-wide collector (thread-safe initialization).
  static TraceCollector& Get();

  // Runtime switch. Spans opened while disabled are never recorded, even if
  // tracing is re-enabled before they close.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Capacity of rings created after this call (existing rings keep theirs).
  // Also applied from IMPELLER_TRACE_RING at first use. Minimum 16.
  void SetRingCapacity(size_t capacity);
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  // Records one event into the calling thread's ring (oldest entry is
  // overwritten on wrap). tid/depth fields are filled in here.
  void RecordSpan(const char* category, const char* name, int64_t start_ns,
                  int64_t end_ns, uint32_t depth);
  void RecordInstant(const char* category, const char* name);

  // Moves every thread's buffered records out (oldest-first per thread) and
  // releases buffers of threads that have exited. Safe concurrently with
  // recording threads.
  std::vector<TraceRecord> Drain();

  // Total records overwritten before being drained, across all threads
  // (including threads that have since exited).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Current nesting depth of the calling thread (spans opened, not closed).
  static uint32_t CurrentDepth();

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid_in, size_t capacity)
        : tid(tid_in), ring(capacity) {}

    std::mutex mu;
    uint32_t tid;
    std::vector<TraceRecord> ring;
    uint64_t written = 0;  // total ever written; ring slot = written % size
    uint64_t drained = 0;  // total ever handed out or overwritten
  };

  TraceCollector();

  ThreadBuffer* LocalBuffer();
  void Push(const TraceRecord& record);

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{1};

  std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

// RAII span: samples the clock at construction and records on destruction.
// Inactive (and free apart from one atomic load) while tracing is disabled.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* category_;
  const char* name_;
  int64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace impeller

#define IMPELLER_TRACE_CONCAT2(a, b) a##b
#define IMPELLER_TRACE_CONCAT(a, b) IMPELLER_TRACE_CONCAT2(a, b)

#if defined(IMPELLER_TRACING_ENABLED)
// Opens a span covering the rest of the enclosing scope.
#define TRACE_SPAN(category, name)                                      \
  ::impeller::obs::SpanGuard IMPELLER_TRACE_CONCAT(impeller_trace_span_, \
                                                   __LINE__)(category, name)
// Records a zero-duration event.
#define TRACE_INSTANT(category, name)                                 \
  do {                                                                \
    ::impeller::obs::TraceCollector::Get().RecordInstant(category,    \
                                                         name);       \
  } while (0)
#else
#define TRACE_SPAN(category, name) \
  do {                             \
  } while (0)
#define TRACE_INSTANT(category, name) \
  do {                                \
  } while (0)
#endif  // IMPELLER_TRACING_ENABLED

#endif  // IMPELLER_SRC_OBS_TRACE_H_
