#include "src/obs/alloc_stats.h"

namespace impeller {
namespace obs {

namespace {
thread_local AllocStats t_stats;
}  // namespace

AllocStats AllocStatsNow() noexcept { return t_stats; }

void RecordAllocation(size_t bytes) noexcept {
  t_stats.allocs++;
  t_stats.alloc_bytes += bytes;
}

void RecordBytesCopied(size_t bytes) noexcept {
  t_stats.bytes_copied += bytes;
}

AllocStats AllocStatsScope::Delta() const noexcept {
  AllocStats now = AllocStatsNow();
  AllocStats d;
  d.allocs = now.allocs - start_.allocs;
  d.alloc_bytes = now.alloc_bytes - start_.alloc_bytes;
  d.bytes_copied = now.bytes_copied - start_.bytes_copied;
  return d;
}

}  // namespace obs
}  // namespace impeller
