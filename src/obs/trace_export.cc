#include "src/obs/trace_export.h"

#include <cinttypes>

namespace impeller {
namespace obs {

namespace {

// Categories and names are string literals from TRACE_SPAN call sites, but
// escape defensively so the output is always valid JSON.
void AppendEscaped(std::string* out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendMicros(std::string* out, int64_t ns) {
  // trace_event timestamps are microseconds; keep ns precision as decimals.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out->append(buf);
}

}  // namespace

std::string ChromeTraceEventJson(const TraceRecord& record) {
  std::string out;
  out.reserve(160);
  out += "{\"name\":\"";
  AppendEscaped(&out, record.name);
  out += "\",\"cat\":\"";
  AppendEscaped(&out, record.category);
  out += "\",\"ph\":\"";
  out += record.instant ? 'i' : 'X';
  out += "\",\"ts\":";
  AppendMicros(&out, record.start_ns);
  if (record.instant) {
    out += ",\"s\":\"t\"";
  } else {
    out += ",\"dur\":";
    AppendMicros(&out, record.end_ns - record.start_ns);
  }
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(record.tid);
  out += ",\"args\":{\"depth\":";
  out += std::to_string(record.depth);
  out += "}}";
  return out;
}

ChromeTraceWriter::~ChromeTraceWriter() { (void)Close(); }

Status ChromeTraceWriter::Open(const std::string& path) {
  if (file_ != nullptr) {
    return InvalidArgumentError("trace writer already open");
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return InternalError("cannot open trace file " + path);
  }
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", file_);
  events_ = 0;
  return OkStatus();
}

Status ChromeTraceWriter::Append(const std::vector<TraceRecord>& records) {
  if (file_ == nullptr) {
    return InvalidArgumentError("trace writer not open");
  }
  for (const TraceRecord& record : records) {
    std::string json = ChromeTraceEventJson(record);
    if (events_ > 0) {
      std::fputs(",\n", file_);
    }
    std::fputs(json.c_str(), file_);
    events_++;
  }
  std::fflush(file_);
  return OkStatus();
}

Status ChromeTraceWriter::Close() {
  if (file_ == nullptr) {
    return OkStatus();
  }
  std::fputs("]}\n", file_);
  int rc = std::fclose(file_);
  file_ = nullptr;
  return rc == 0 ? OkStatus() : InternalError("trace file close failed");
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceRecord>& records) {
  ChromeTraceWriter writer;
  IMPELLER_RETURN_IF_ERROR(writer.Open(path));
  IMPELLER_RETURN_IF_ERROR(writer.Append(records));
  return writer.Close();
}

}  // namespace obs
}  // namespace impeller
