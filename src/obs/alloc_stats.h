// Data-plane allocation accounting (DESIGN.md §12).
//
// Two thread-local tallies back the allocs_per_record / bytes_copied_per_
// record metrics of the zero-copy data plane:
//
//  * heap allocations — fed by a global operator new/delete override that
//    benchmark binaries opt into (see bench/alloc_hook.h). Production
//    binaries never install the hook, so the counters read zero there and
//    RecordAllocation costs nothing.
//  * bytes copied — explicit instrumentation at the few places the record
//    path still memcpy's payload bytes (view -> owning materialization for
//    the operator chain, serialization into the flush buffer).
//
// Everything here is noexcept and allocation-free: RecordAllocation is
// called from inside operator new.
#ifndef IMPELLER_SRC_OBS_ALLOC_STATS_H_
#define IMPELLER_SRC_OBS_ALLOC_STATS_H_

#include <cstddef>
#include <cstdint>

namespace impeller {
namespace obs {

struct AllocStats {
  uint64_t allocs = 0;        // heap allocations observed (hooked builds)
  uint64_t alloc_bytes = 0;   // bytes requested from the heap
  uint64_t bytes_copied = 0;  // payload bytes memcpy'd by the record path
};

// Running totals for the calling thread.
AllocStats AllocStatsNow() noexcept;

// Called by the operator-new hook (bench binaries only).
void RecordAllocation(size_t bytes) noexcept;

// Called by data-plane code when it copies payload bytes.
void RecordBytesCopied(size_t bytes) noexcept;

// Delta-measurement scope: construct before the region of interest, call
// Delta() after.
class AllocStatsScope {
 public:
  AllocStatsScope() noexcept : start_(AllocStatsNow()) {}
  AllocStats Delta() const noexcept;

 private:
  AllocStats start_;
};

}  // namespace obs
}  // namespace impeller

#endif  // IMPELLER_SRC_OBS_ALLOC_STATS_H_
