// Minimal JSON document model used by the plan IR for serialization
// (src/plan/ir.h). Self-contained — the repo deliberately has no external
// JSON dependency — and small: ordered objects, arrays, strings, numbers,
// bools, null. Numbers are stored as doubles; the IR only serializes
// durations and small counts, all exactly representable.
#ifndef IMPELLER_SRC_PLAN_JSON_H_
#define IMPELLER_SRC_PLAN_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace impeller {
namespace plan {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double n);
  static Json Int(int64_t n) { return Number(static_cast<double>(n)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  // Strict parser: one value, no trailing garbage. Errors carry a byte
  // offset and a short description.
  static Result<Json> Parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  // Array access.
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  Json& Push(Json value);  // returns the inserted element

  // Object access (insertion-ordered; duplicate keys rejected by Set).
  const Json* Find(std::string_view key) const;
  Json& Set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // Convenience typed getters for objects; `fallback` when the key is
  // missing or has the wrong type.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Escapes a string for embedding in JSON (quotes included).
std::string JsonQuote(std::string_view s);

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_JSON_H_
