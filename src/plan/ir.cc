#include "src/plan/ir.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/plan/json.h"

namespace impeller {
namespace plan {

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
      return "source";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kMap:
      return "map";
    case OpKind::kFlatMap:
      return "flat_map";
    case OpKind::kKeyBy:
      return "key_by";
    case OpKind::kAggregate:
      return "aggregate";
    case OpKind::kTableAggregate:
      return "table_aggregate";
    case OpKind::kWindowAggregate:
      return "window_aggregate";
    case OpKind::kJoinStreams:
      return "join_streams";
    case OpKind::kJoinTable:
      return "join_table";
    case OpKind::kJoinTables:
      return "join_tables";
    case OpKind::kSink:
      return "sink";
  }
  return "?";
}

Result<OpKind> OpKindFromName(std::string_view name) {
  static constexpr OpKind kAll[] = {
      OpKind::kSource,         OpKind::kFilter,      OpKind::kMap,
      OpKind::kFlatMap,        OpKind::kKeyBy,       OpKind::kAggregate,
      OpKind::kTableAggregate, OpKind::kWindowAggregate,
      OpKind::kJoinStreams,    OpKind::kJoinTable,   OpKind::kJoinTables,
      OpKind::kSink,
  };
  for (OpKind kind : kAll) {
    if (OpKindName(kind) == name) {
      return kind;
    }
  }
  return InvalidArgumentError("unknown plan op kind '" + std::string(name) +
                              "'");
}

bool IsStatelessKind(OpKind kind) {
  switch (kind) {
    case OpKind::kSource:
    case OpKind::kFilter:
    case OpKind::kMap:
    case OpKind::kFlatMap:
    case OpKind::kKeyBy:
    case OpKind::kSink:
      return true;
    default:
      return false;
  }
}

bool IsJoinKind(OpKind kind) {
  return kind == OpKind::kJoinStreams || kind == OpKind::kJoinTable ||
         kind == OpKind::kJoinTables;
}

const PlanNode* LogicalPlan::FindNode(std::string_view id) const {
  for (const auto& node : nodes) {
    if (node.id == id) {
      return &node;
    }
  }
  return nullptr;
}

PlanNode* LogicalPlan::FindNode(std::string_view id) {
  for (auto& node : nodes) {
    if (node.id == id) {
      return &node;
    }
  }
  return nullptr;
}

std::vector<std::string> LogicalPlan::ConsumersOf(std::string_view id) const {
  std::vector<std::string> out;
  for (const auto& node : nodes) {
    for (const auto& input : node.inputs) {
      if (input == id) {
        out.push_back(node.id);
        break;
      }
    }
  }
  return out;
}

namespace {

size_t ExpectedArity(OpKind kind) {
  if (kind == OpKind::kSource) {
    return 0;
  }
  return IsJoinKind(kind) ? 2 : 1;
}

Status NodeError(const PlanNode& node, const std::string& what) {
  return InvalidArgumentError("plan node '" + node.id + "' (" +
                              std::string(OpKindName(node.kind)) + "): " +
                              what);
}

}  // namespace

Status LogicalPlan::Validate() const {
  if (name.empty()) {
    return InvalidArgumentError("plan has no name");
  }
  if (nodes.empty()) {
    return InvalidArgumentError("plan '" + name + "' has no nodes");
  }

  std::set<std::string> ids;
  bool any_source = false, any_sink = false;
  for (const auto& node : nodes) {
    if (node.id.empty()) {
      return InvalidArgumentError("plan '" + name +
                                  "' contains a node with an empty id");
    }
    if (!ids.insert(node.id).second) {
      return InvalidArgumentError("plan '" + name + "' has duplicate node id '" +
                                  node.id + "'");
    }
    any_source = any_source || node.kind == OpKind::kSource;
    any_sink = any_sink || node.kind == OpKind::kSink;
  }
  if (!any_source) {
    return InvalidArgumentError("plan '" + name +
                                "' has no source node; add Source(<stream>)");
  }
  if (!any_sink) {
    return InvalidArgumentError("plan '" + name +
                                "' has no sink node; every plan must "
                                "terminate in Sink(<name>)");
  }

  for (const auto& node : nodes) {
    size_t arity = ExpectedArity(node.kind);
    if (node.inputs.size() != arity) {
      return NodeError(node, "expects " + std::to_string(arity) +
                                 " input(s), has " +
                                 std::to_string(node.inputs.size()));
    }
    std::set<std::string> seen_inputs;
    for (const auto& input : node.inputs) {
      if (FindNode(input) == nullptr) {
        return NodeError(node, "reads unknown node '" + input + "'");
      }
      if (input == node.id) {
        return NodeError(node, "reads itself");
      }
      if (!seen_inputs.insert(input).second) {
        return NodeError(node, "reads node '" + input + "' twice");
      }
      if (FindNode(input)->kind == OpKind::kSink) {
        return NodeError(node, "reads sink node '" + input +
                                   "'; sinks are terminal");
      }
    }
    switch (node.kind) {
      case OpKind::kSource:
        if (node.stream.empty()) {
          return NodeError(node, "source needs an ingress stream name");
        }
        break;
      case OpKind::kFilter:
      case OpKind::kMap:
      case OpKind::kFlatMap:
      case OpKind::kKeyBy:
        if (node.expr.empty()) {
          return NodeError(node, "needs an expression handle (expr)");
        }
        break;
      case OpKind::kAggregate:
      case OpKind::kTableAggregate:
      case OpKind::kWindowAggregate:
        if (node.agg.empty()) {
          return NodeError(node, "needs an aggregate handle (agg)");
        }
        if (node.store.empty()) {
          return NodeError(node, "needs a state store name");
        }
        if (node.kind == OpKind::kTableAggregate && node.group_key.empty()) {
          return NodeError(node, "needs a group_key handle");
        }
        if (node.kind == OpKind::kWindowAggregate && node.window_size <= 0) {
          return NodeError(node, "needs window_size > 0");
        }
        if (node.kind == OpKind::kWindowAggregate && node.window_slide < 0) {
          return NodeError(node, "window_slide must be >= 0 (0 = tumbling)");
        }
        break;
      case OpKind::kJoinStreams:
        if (node.join_window <= 0) {
          return NodeError(node, "needs join_window > 0");
        }
        [[fallthrough]];
      case OpKind::kJoinTable:
      case OpKind::kJoinTables:
        if (node.expr.empty()) {
          return NodeError(node, "needs a join expression handle (expr)");
        }
        if (node.store.empty()) {
          return NodeError(node, "needs a state store name");
        }
        break;
      case OpKind::kSink:
        if (node.sink.empty()) {
          return NodeError(node, "sink needs a metric name");
        }
        break;
    }
  }

  // Every non-sink node must be consumed.
  for (const auto& node : nodes) {
    if (node.kind != OpKind::kSink && ConsumersOf(node.id).empty()) {
      return NodeError(node,
                       "output is never consumed; route it to a sink or "
                       "remove the node");
    }
  }

  // Acyclicity via Kahn's algorithm; report a node on the cycle.
  std::map<std::string, size_t> indegree;
  for (const auto& node : nodes) {
    indegree[node.id] = node.inputs.size();
  }
  std::vector<std::string> frontier;
  for (const auto& node : nodes) {
    if (indegree[node.id] == 0) {
      frontier.push_back(node.id);
    }
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    std::string id = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& consumer : ConsumersOf(id)) {
      if (--indegree[consumer] == 0) {
        frontier.push_back(consumer);
      }
    }
  }
  if (visited != nodes.size()) {
    std::string on_cycle;
    for (const auto& node : nodes) {
      if (indegree[node.id] > 0) {
        if (!on_cycle.empty()) {
          on_cycle += ", ";
        }
        on_cycle += node.id;
      }
    }
    return InvalidArgumentError("plan '" + name +
                                "' contains a cycle through nodes: " +
                                on_cycle);
  }
  return OkStatus();
}

std::vector<std::string> LogicalPlan::TopoOrder() const {
  // Kahn's with construction order as the deterministic tie-break: scan the
  // node list repeatedly, emitting every node whose inputs are all emitted.
  std::vector<std::string> order;
  order.reserve(nodes.size());
  std::set<std::string> emitted;
  while (order.size() < nodes.size()) {
    bool progress = false;
    for (const auto& node : nodes) {
      if (emitted.count(node.id) != 0) {
        continue;
      }
      bool ready = true;
      for (const auto& input : node.inputs) {
        if (emitted.count(input) == 0) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(node.id);
        emitted.insert(node.id);
        progress = true;
      }
    }
    if (!progress) {
      break;  // cycle; Validate() reports it properly
    }
  }
  return order;
}

// --- JSON serialization ---

namespace {

std::string_view EmitModeName(WindowEmitMode mode) {
  return mode == WindowEmitMode::kOnClose ? "on_close" : "eager_suppressed";
}

void SetIfNotEmpty(Json& obj, const char* key, const std::string& value) {
  if (!value.empty()) {
    obj.Set(key, Json::Str(value));
  }
}

}  // namespace

std::string LogicalPlan::ToJson(int indent) const {
  Json root = Json::Object();
  root.Set("name", Json::Str(name));
  root.Set("default_tasks", Json::Int(default_tasks));
  Json& node_array = root.Set("nodes", Json::Array());
  for (const auto& node : nodes) {
    Json obj = Json::Object();
    obj.Set("id", Json::Str(node.id));
    obj.Set("kind", Json::Str(std::string(OpKindName(node.kind))));
    if (!node.inputs.empty()) {
      Json& inputs = obj.Set("inputs", Json::Array());
      for (const auto& input : node.inputs) {
        inputs.Push(Json::Str(input));
      }
    }
    SetIfNotEmpty(obj, "expr", node.expr);
    SetIfNotEmpty(obj, "agg", node.agg);
    SetIfNotEmpty(obj, "group_key", node.group_key);
    SetIfNotEmpty(obj, "row_key", node.row_key);
    SetIfNotEmpty(obj, "store", node.store);
    SetIfNotEmpty(obj, "sink", node.sink);
    SetIfNotEmpty(obj, "stream", node.stream);
    SetIfNotEmpty(obj, "stage_hint", node.stage_hint);
    if (node.tasks != 0) {
      obj.Set("tasks", Json::Int(node.tasks));
    }
    if (node.kind == OpKind::kWindowAggregate) {
      obj.Set("window_size_ns", Json::Int(node.window_size));
      obj.Set("window_slide_ns", Json::Int(node.window_slide));
      obj.Set("emit_mode", Json::Str(std::string(EmitModeName(node.emit_mode))));
      obj.Set("suppress_interval_ns", Json::Int(node.suppress_interval));
    }
    if (node.kind == OpKind::kJoinStreams) {
      obj.Set("join_window_ns", Json::Int(node.join_window));
    }
    if (node.kind == OpKind::kWindowAggregate ||
        node.kind == OpKind::kJoinStreams) {
      obj.Set("allowed_lateness_ns", Json::Int(node.allowed_lateness));
    }
    node_array.Push(std::move(obj));
  }
  return root.Dump(indent);
}

Result<LogicalPlan> LogicalPlan::FromJson(std::string_view json_text) {
  IMPELLER_ASSIGN_OR_RETURN(Json root, Json::Parse(json_text));
  if (!root.is_object()) {
    return InvalidArgumentError("plan JSON must be an object");
  }
  LogicalPlan plan;
  plan.name = root.GetString("name");
  plan.default_tasks = static_cast<uint32_t>(root.GetInt("default_tasks", 1));
  const Json* nodes = root.Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return InvalidArgumentError("plan JSON needs a \"nodes\" array");
  }
  for (size_t i = 0; i < nodes->size(); ++i) {
    const Json& obj = nodes->at(i);
    if (!obj.is_object()) {
      return InvalidArgumentError("plan node " + std::to_string(i) +
                                  " is not an object");
    }
    PlanNode node;
    node.id = obj.GetString("id");
    IMPELLER_ASSIGN_OR_RETURN(node.kind,
                              OpKindFromName(obj.GetString("kind")));
    if (const Json* inputs = obj.Find("inputs"); inputs != nullptr) {
      if (!inputs->is_array()) {
        return InvalidArgumentError("node '" + node.id +
                                    "': \"inputs\" must be an array");
      }
      for (size_t j = 0; j < inputs->size(); ++j) {
        if (!inputs->at(j).is_string()) {
          return InvalidArgumentError("node '" + node.id +
                                      "': inputs must be node-id strings");
        }
        node.inputs.push_back(inputs->at(j).AsString());
      }
    }
    node.expr = obj.GetString("expr");
    node.agg = obj.GetString("agg");
    node.group_key = obj.GetString("group_key");
    node.row_key = obj.GetString("row_key");
    node.store = obj.GetString("store");
    node.sink = obj.GetString("sink");
    node.stream = obj.GetString("stream");
    node.stage_hint = obj.GetString("stage_hint");
    node.tasks = static_cast<uint32_t>(obj.GetInt("tasks", 0));
    node.window_size = obj.GetInt("window_size_ns", 0);
    node.window_slide = obj.GetInt("window_slide_ns", 0);
    std::string mode = obj.GetString("emit_mode", "on_close");
    if (mode == "on_close") {
      node.emit_mode = WindowEmitMode::kOnClose;
    } else if (mode == "eager_suppressed") {
      node.emit_mode = WindowEmitMode::kEagerSuppressed;
    } else {
      return InvalidArgumentError("node '" + node.id +
                                  "': unknown emit_mode '" + mode + "'");
    }
    node.suppress_interval =
        obj.GetInt("suppress_interval_ns", 100 * kMillisecond);
    node.join_window = obj.GetInt("join_window_ns", 0);
    node.allowed_lateness =
        obj.GetInt("allowed_lateness_ns", 100 * kMillisecond);
    plan.nodes.push_back(std::move(node));
  }
  IMPELLER_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

// --- PlanBuilder ---

PlanBuilder::PlanBuilder(std::string name, uint32_t default_tasks) {
  plan_.name = std::move(name);
  plan_.default_tasks = default_tasks;
}

PlanBuilder::NodeRef& PlanBuilder::NodeRef::Stage(std::string name) {
  builder_->plan_.nodes[index_].stage_hint = std::move(name);
  return *this;
}

PlanBuilder::NodeRef& PlanBuilder::NodeRef::Via(std::string stream) {
  builder_->plan_.nodes[index_].stream = std::move(stream);
  return *this;
}

PlanBuilder::NodeRef& PlanBuilder::NodeRef::Tasks(uint32_t n) {
  builder_->plan_.nodes[index_].tasks = n;
  return *this;
}

PlanBuilder::NodeRef& PlanBuilder::NodeRef::Id(std::string id) {
  std::string old = builder_->plan_.nodes[index_].id;
  builder_->plan_.nodes[index_].id = id;
  for (auto& node : builder_->plan_.nodes) {
    for (auto& input : node.inputs) {
      if (input == old) {
        input = id;
      }
    }
  }
  return *this;
}

const std::string& PlanBuilder::NodeRef::id() const {
  return builder_->plan_.nodes[index_].id;
}

PlanBuilder::NodeRef PlanBuilder::Add(OpKind kind,
                                      std::vector<std::string> inputs) {
  PlanNode node;
  // Deterministic short ids: first letter(s) of the kind plus a counter.
  std::string prefix;
  switch (kind) {
    case OpKind::kSource:
      prefix = "src";
      break;
    case OpKind::kFilter:
      prefix = "f";
      break;
    case OpKind::kMap:
      prefix = "m";
      break;
    case OpKind::kFlatMap:
      prefix = "fm";
      break;
    case OpKind::kKeyBy:
      prefix = "k";
      break;
    case OpKind::kAggregate:
      prefix = "agg";
      break;
    case OpKind::kTableAggregate:
      prefix = "tagg";
      break;
    case OpKind::kWindowAggregate:
      prefix = "wagg";
      break;
    case OpKind::kJoinStreams:
    case OpKind::kJoinTable:
    case OpKind::kJoinTables:
      prefix = "join";
      break;
    case OpKind::kSink:
      prefix = "sink";
      break;
  }
  node.id = prefix + std::to_string(next_id_++);
  node.kind = kind;
  node.inputs = std::move(inputs);
  plan_.nodes.push_back(std::move(node));
  return NodeRef(this, plan_.nodes.size() - 1);
}

PlanBuilder::NodeRef PlanBuilder::Source(std::string stream) {
  NodeRef ref = Add(OpKind::kSource, {});
  plan_.nodes[ref.index_].stream = stream;
  plan_.nodes[ref.index_].id = "src_" + stream;
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::Filter(NodeRef input, std::string expr) {
  NodeRef ref = Add(OpKind::kFilter, {input.id()});
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::Map(NodeRef input, std::string expr) {
  NodeRef ref = Add(OpKind::kMap, {input.id()});
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::FlatMap(NodeRef input, std::string expr) {
  NodeRef ref = Add(OpKind::kFlatMap, {input.id()});
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::KeyBy(NodeRef input, std::string expr) {
  NodeRef ref = Add(OpKind::kKeyBy, {input.id()});
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::Aggregate(NodeRef input, std::string store,
                                            std::string agg) {
  NodeRef ref = Add(OpKind::kAggregate, {input.id()});
  plan_.nodes[ref.index_].store = std::move(store);
  plan_.nodes[ref.index_].agg = std::move(agg);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::TableAggregate(NodeRef input,
                                                 std::string store,
                                                 std::string group_key,
                                                 std::string agg,
                                                 std::string row_key) {
  NodeRef ref = Add(OpKind::kTableAggregate, {input.id()});
  plan_.nodes[ref.index_].store = std::move(store);
  plan_.nodes[ref.index_].group_key = std::move(group_key);
  plan_.nodes[ref.index_].agg = std::move(agg);
  plan_.nodes[ref.index_].row_key = std::move(row_key);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::WindowAggregate(
    NodeRef input, std::string store, WindowSpec window, std::string agg,
    DurationNs allowed_lateness, WindowEmitMode mode,
    DurationNs suppress_interval) {
  NodeRef ref = Add(OpKind::kWindowAggregate, {input.id()});
  PlanNode& node = plan_.nodes[ref.index_];
  node.store = std::move(store);
  node.agg = std::move(agg);
  node.window_size = window.size;
  node.window_slide = window.IsTumbling() ? 0 : window.slide;
  node.allowed_lateness = allowed_lateness;
  node.emit_mode = mode;
  node.suppress_interval = suppress_interval;
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::JoinStreams(NodeRef left, NodeRef right,
                                              std::string store,
                                              DurationNs window,
                                              std::string expr,
                                              DurationNs allowed_lateness) {
  NodeRef ref = Add(OpKind::kJoinStreams, {left.id(), right.id()});
  PlanNode& node = plan_.nodes[ref.index_];
  node.store = std::move(store);
  node.join_window = window;
  node.expr = std::move(expr);
  node.allowed_lateness = allowed_lateness;
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::JoinTable(NodeRef stream, NodeRef table,
                                            std::string store,
                                            std::string expr) {
  NodeRef ref = Add(OpKind::kJoinTable, {stream.id(), table.id()});
  plan_.nodes[ref.index_].store = std::move(store);
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::JoinTables(NodeRef left, NodeRef right,
                                             std::string store,
                                             std::string expr) {
  NodeRef ref = Add(OpKind::kJoinTables, {left.id(), right.id()});
  plan_.nodes[ref.index_].store = std::move(store);
  plan_.nodes[ref.index_].expr = std::move(expr);
  return ref;
}

PlanBuilder::NodeRef PlanBuilder::Sink(NodeRef input, std::string name) {
  NodeRef ref = Add(OpKind::kSink, {input.id()});
  plan_.nodes[ref.index_].sink = std::move(name);
  return ref;
}

Result<LogicalPlan> PlanBuilder::Build() const {
  IMPELLER_RETURN_IF_ERROR(plan_.Validate());
  return plan_;
}

}  // namespace plan
}  // namespace impeller
