// UdfRegistry: named code handles for the plan IR. A LogicalPlan carries
// only names; the registry maps each name to the actual std::function plus
// optional *traits* metadata the optimizer uses to prove rewrites legal.
//
// Traits are declarative and conservative by default: a UDF with no
// registered traits is assumed to read every field and the key, and to
// preserve nothing — which blocks predicate pushdown and projection pruning
// across it. Registering honest traits is how a UDF opts into optimization.
#ifndef IMPELLER_SRC_PLAN_REGISTRY_H_
#define IMPELLER_SRC_PLAN_REGISTRY_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/core/aggregate.h"
#include "src/core/operators.h"

namespace impeller {
namespace plan {

// Declared dataflow facts about a UDF, in terms of abstract record-field
// names (the records themselves are opaque bytes; fields are whatever the
// application's codec calls them).
struct UdfTraits {
  // Fields of the input value the UDF inspects. {"*"} (the default) means
  // "assume everything".
  std::set<std::string> reads = {"*"};
  // Fields a map/flat_map passes through unchanged into its output.
  bool reads_key = true;       // inspects the record key
  std::set<std::string> preserves;
  bool preserves_key = false;  // leaves the record key unchanged

  static UdfTraits Pure(std::set<std::string> reads_fields,
                        std::set<std::string> preserves_fields = {},
                        bool reads_key = false, bool preserves_key = true) {
    UdfTraits t;
    t.reads = std::move(reads_fields);
    t.preserves = std::move(preserves_fields);
    t.reads_key = reads_key;
    t.preserves_key = preserves_key;
    return t;
  }
};

// All join flavours share the (left, right) -> value signature.
using JoinFn = std::function<std::string(std::string_view, std::string_view)>;
// Key extraction shared by key_by, group_key, and row_key handles.
using KeyFn = std::function<std::string(const StreamRecord&)>;

class UdfRegistry {
 public:
  UdfRegistry& RegisterPredicate(std::string name,
                                 FilterOperator::Predicate fn,
                                 UdfTraits traits = {});
  UdfRegistry& RegisterMap(std::string name, MapOperator::MapFn fn,
                           UdfTraits traits = {});
  UdfRegistry& RegisterFlatMap(std::string name,
                               FlatMapOperator::FlatMapFn fn,
                               UdfTraits traits = {});
  UdfRegistry& RegisterKey(std::string name, KeyFn fn, UdfTraits traits = {});
  UdfRegistry& RegisterAggregate(std::string name, AggregateFn fn);
  UdfRegistry& RegisterJoin(std::string name, JoinFn fn);

  // Declares the fields an ingress stream's records carry — the basis for
  // projection pruning. Optional: streams without a schema are opaque and
  // never pruned.
  UdfRegistry& RegisterSchema(std::string stream,
                              std::vector<std::string> fields);
  // A projection map for `stream` keeping exactly `kept_fields`; lowering
  // inserts it at the consuming stage head when the projection pass pruned
  // the stream to that field set.
  UdfRegistry& RegisterProjector(std::string stream,
                                 std::vector<std::string> kept_fields,
                                 MapOperator::MapFn fn);

  // Lookups return nullptr when unregistered; lowering turns that into an
  // actionable error naming the handle and the register call to make.
  const FilterOperator::Predicate* Predicate(std::string_view name) const;
  const MapOperator::MapFn* Map(std::string_view name) const;
  const FlatMapOperator::FlatMapFn* FlatMap(std::string_view name) const;
  const KeyFn* Key(std::string_view name) const;
  const AggregateFn* Aggregate(std::string_view name) const;
  const JoinFn* Join(std::string_view name) const;

  // Traits of any registered handle (predicate/map/flat_map/key); the
  // conservative default for unknown names.
  UdfTraits Traits(std::string_view name) const;

  const std::vector<std::string>* Schema(std::string_view stream) const;
  // Projector for (stream, kept field set), if registered.
  const MapOperator::MapFn* Projector(
      std::string_view stream, const std::set<std::string>& kept) const;

 private:
  std::map<std::string, FilterOperator::Predicate, std::less<>> predicates_;
  std::map<std::string, MapOperator::MapFn, std::less<>> maps_;
  std::map<std::string, FlatMapOperator::FlatMapFn, std::less<>> flat_maps_;
  std::map<std::string, KeyFn, std::less<>> keys_;
  std::map<std::string, AggregateFn, std::less<>> aggregates_;
  std::map<std::string, JoinFn, std::less<>> joins_;
  std::map<std::string, UdfTraits, std::less<>> traits_;
  std::map<std::string, std::vector<std::string>, std::less<>> schemas_;
  std::map<std::string, std::vector<std::pair<std::set<std::string>,
                                              MapOperator::MapFn>>,
           std::less<>>
      projectors_;
};

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_REGISTRY_H_
