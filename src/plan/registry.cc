#include "src/plan/registry.h"

namespace impeller {
namespace plan {

UdfRegistry& UdfRegistry::RegisterPredicate(std::string name,
                                            FilterOperator::Predicate fn,
                                            UdfTraits traits) {
  traits_[name] = std::move(traits);
  predicates_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterMap(std::string name, MapOperator::MapFn fn,
                                      UdfTraits traits) {
  traits_[name] = std::move(traits);
  maps_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterFlatMap(std::string name,
                                          FlatMapOperator::FlatMapFn fn,
                                          UdfTraits traits) {
  traits_[name] = std::move(traits);
  flat_maps_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterKey(std::string name, KeyFn fn,
                                      UdfTraits traits) {
  traits_[name] = std::move(traits);
  keys_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterAggregate(std::string name, AggregateFn fn) {
  aggregates_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterJoin(std::string name, JoinFn fn) {
  joins_[std::move(name)] = std::move(fn);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterSchema(std::string stream,
                                         std::vector<std::string> fields) {
  schemas_[std::move(stream)] = std::move(fields);
  return *this;
}

UdfRegistry& UdfRegistry::RegisterProjector(std::string stream,
                                            std::vector<std::string> kept,
                                            MapOperator::MapFn fn) {
  std::set<std::string> key_set(kept.begin(), kept.end());
  projectors_[std::move(stream)].emplace_back(std::move(key_set),
                                              std::move(fn));
  return *this;
}

namespace {

template <typename M>
const typename M::mapped_type* Lookup(const M& map, std::string_view name) {
  auto it = map.find(name);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

const FilterOperator::Predicate* UdfRegistry::Predicate(
    std::string_view name) const {
  return Lookup(predicates_, name);
}

const MapOperator::MapFn* UdfRegistry::Map(std::string_view name) const {
  return Lookup(maps_, name);
}

const FlatMapOperator::FlatMapFn* UdfRegistry::FlatMap(
    std::string_view name) const {
  return Lookup(flat_maps_, name);
}

const KeyFn* UdfRegistry::Key(std::string_view name) const {
  return Lookup(keys_, name);
}

const AggregateFn* UdfRegistry::Aggregate(std::string_view name) const {
  return Lookup(aggregates_, name);
}

const JoinFn* UdfRegistry::Join(std::string_view name) const {
  return Lookup(joins_, name);
}

UdfTraits UdfRegistry::Traits(std::string_view name) const {
  auto it = traits_.find(name);
  return it == traits_.end() ? UdfTraits{} : it->second;
}

const std::vector<std::string>* UdfRegistry::Schema(
    std::string_view stream) const {
  return Lookup(schemas_, stream);
}

const MapOperator::MapFn* UdfRegistry::Projector(
    std::string_view stream, const std::set<std::string>& kept) const {
  auto it = projectors_.find(stream);
  if (it == projectors_.end()) {
    return nullptr;
  }
  for (const auto& [fields, fn] : it->second) {
    if (fields == kept) {
      return &fn;
    }
  }
  return nullptr;
}

}  // namespace plan
}  // namespace impeller
