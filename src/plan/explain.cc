#include "src/plan/explain.h"

namespace impeller {
namespace plan {
namespace {

bool IsEgress(const LoweredPlan& lowered, const std::string& stream) {
  const StreamSpec* spec = lowered.query.FindStream(stream);
  return spec != nullptr && spec->egress;
}

std::string StreamAnnotation(const LoweredPlan& lowered,
                             const std::string& stream) {
  const StreamSpec* spec = lowered.query.FindStream(stream);
  if (spec == nullptr) {
    return "";
  }
  if (spec->egress) {
    return " (egress)";
  }
  return " [" + std::to_string(spec->num_substreams) + " substream(s)]";
}

}  // namespace

std::string ExplainText(const LoweredPlan& lowered) {
  std::string out;
  out += "== plan '" + lowered.query.name + "' ==\n";
  out += "ingress:";
  for (const auto& stream : lowered.ingress) {
    out += " " + stream;
  }
  out += "\n";
  out += "stages: " + std::to_string(lowered.stages.size()) +
         ", log hops eliminated by fusion: " +
         std::to_string(lowered.hops_eliminated) + "\n";

  for (const auto& stage : lowered.stages) {
    out += "\nstage " + stage.name + " [" + std::to_string(stage.tasks) +
           " task(s), " + (stage.stateful ? "stateful" : "stateless") + "]\n";
    for (const auto& input : stage.inputs) {
      out += "  <- " + input + StreamAnnotation(lowered, input) + "\n";
    }
    if (!stage.projection.empty()) {
      out += "  projection: " + stage.projection + "\n";
    }
    out += "  ops:";
    for (size_t i = 0; i < stage.operators.size(); ++i) {
      out += (i == 0 ? " " : " -> ") + stage.operators[i];
    }
    out += "\n";
    for (const auto& output : stage.outputs) {
      out += "  -> " + output + StreamAnnotation(lowered, output) + "\n";
    }
  }

  if (!lowered.fused_edges.empty()) {
    out += "\nfused edges (each deletes one log hop):\n";
    for (const auto& [from, to] : lowered.fused_edges) {
      out += "  " + from + " => " + to + "\n";
    }
  }
  if (!lowered.pass_log.empty()) {
    out += "\npass log:\n";
    for (const auto& line : lowered.pass_log) {
      out += "  " + line + "\n";
    }
  }
  return out;
}

std::string ExplainDot(const LoweredPlan& lowered) {
  std::string out;
  out += "digraph \"" + lowered.query.name + "\" {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& stream : lowered.ingress) {
    out += "  \"in:" + stream + "\" [shape=ellipse, label=\"" + stream +
           "\\n(ingress)\"];\n";
  }
  for (const auto& stage : lowered.stages) {
    std::string label = stage.name + "\\n" + std::to_string(stage.tasks) +
                        " task(s)" + (stage.stateful ? ", stateful" : "");
    for (const auto& op : stage.operators) {
      label += "\\n" + op;
    }
    out += "  \"stage:" + stage.name + "\" [label=\"" + label + "\"];\n";
  }
  // Edges: every stage input comes from either an ingress stream or the
  // stage recorded as the stream's producer.
  for (const auto& stage : lowered.stages) {
    for (const auto& input : stage.inputs) {
      const StreamSpec* spec = lowered.query.FindStream(input);
      std::string from = (spec != nullptr && spec->external)
                             ? "in:" + input
                             : "stage:" + (spec != nullptr
                                               ? spec->producer_stage
                                               : std::string("?"));
      out += "  \"" + from + "\" -> \"stage:" + stage.name + "\" [label=\"" +
             input + "\"];\n";
    }
    for (const auto& output : stage.outputs) {
      if (IsEgress(lowered, output)) {
        out += "  \"out:" + output +
               "\" [shape=ellipse, style=dashed, label=\"" + output +
               "\\n(egress)\"];\n";
        out += "  \"stage:" + stage.name + "\" -> \"out:" + output + "\";\n";
      }
    }
  }
  if (lowered.hops_eliminated > 0) {
    out += "  label=\"" + std::to_string(lowered.hops_eliminated) +
           " log hop(s) eliminated by fusion\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace plan
}  // namespace impeller
