#include "src/plan/lowering.h"

#include <map>
#include <set>
#include <utility>

namespace impeller {
namespace plan {
namespace {

// Appended as the tail of a stage whose output feeds several consumer
// stages: broadcasts every record to all output streams. Valid because the
// chain tail's collector routes EmitTo(i) to stage output i.
class FanOutOperator final : public Operator {
 public:
  explicit FanOutOperator(uint32_t fan) : fan_(fan) {}
  void Process(uint32_t, StreamRecord record, Collector* out) override {
    for (uint32_t i = 0; i + 1 < fan_; ++i) {
      out->EmitTo(i, record);
    }
    out->EmitTo(fan_ - 1, std::move(record));
  }

 private:
  uint32_t fan_;
};

Status NodeError(const PlanNode& node, const std::string& what) {
  return InvalidArgumentError("plan node '" + node.id + "' (" +
                              std::string(OpKindName(node.kind)) + "): " +
                              what);
}

Status MissingHandle(const PlanNode& node, std::string_view what,
                     std::string_view handle, std::string_view register_fn) {
  return InvalidArgumentError(
      "plan node '" + node.id + "' (" + std::string(OpKindName(node.kind)) +
      "): " + std::string(what) + " '" + std::string(handle) +
      "' is not registered; call UdfRegistry::" + std::string(register_fn) +
      "(\"" + std::string(handle) + "\", ...)");
}

std::string OperatorLabel(const PlanNode& node) {
  std::string label(OpKindName(node.kind));
  if (!node.expr.empty()) {
    label += "(" + node.expr + ")";
  } else if (node.kind == OpKind::kSink) {
    label += "(" + node.sink + ")";
  } else if (!node.agg.empty()) {
    label += "(" + node.agg + ")";
  }
  return label;
}

}  // namespace

std::string BoundaryStreamName(const LogicalPlan& plan,
                               const PlanNode& producer,
                               std::string_view consumer_id) {
  std::string base = producer.stream.empty()
                         ? plan.name + "." + producer.id
                         : producer.stream;
  if (plan.ConsumersOf(producer.id).size() > 1) {
    base += "." + std::string(consumer_id);
  }
  return base;
}

Result<LoweredPlan> LowerPlan(const OptimizedPlan& optimized,
                              const UdfRegistry& registry) {
  const LogicalPlan& plan = optimized.plan;
  IMPELLER_RETURN_IF_ERROR(plan.Validate());

  LoweredPlan out;
  out.fused_edges = optimized.fused_edges;
  out.pass_log = optimized.pass_log;
  out.hops_eliminated = optimized.hops_eliminated;

  QueryBuilder qb(plan.name);

  // Ingress streams, in node order. The stage model gives every stream one
  // consumer, so an ingress read by two nodes cannot lower.
  std::set<std::string> declared;
  for (const auto& node : plan.nodes) {
    if (node.kind != OpKind::kSource) {
      continue;
    }
    if (plan.ConsumersOf(node.id).size() > 1) {
      return NodeError(node, "ingress stream '" + node.stream +
                                 "' has multiple consuming nodes; streams "
                                 "are single-consumer — read it once and "
                                 "branch after a shared operator");
    }
    if (declared.insert(node.stream).second) {
      qb.Ingress(node.stream);
      out.ingress.push_back(node.stream);
    }
  }

  for (const auto& group : optimized.groups) {
    const PlanNode* head = plan.FindNode(group.front());
    const PlanNode* tail = plan.FindNode(group.back());

    LoweredStage info;
    info.name = head->stage_hint.empty() ? head->id : head->stage_hint;
    info.tasks = head->tasks != 0 ? head->tasks : plan.default_tasks;
    info.node_ids = group;

    // Input streams: one per head input, positional order preserved (join
    // input 0 = left).
    for (const auto& input_id : head->inputs) {
      const PlanNode* producer = plan.FindNode(input_id);
      info.inputs.push_back(producer->kind == OpKind::kSource
                                ? producer->stream
                                : BoundaryStreamName(plan, *producer,
                                                     head->id));
    }

    StageBuilder& sb =
        qb.AddStage(info.name, info.tasks).ReadsFrom(info.inputs);

    // Projection pruning: if the (single) input is a pruned ingress stream
    // with a registered projector, it runs first in the chain.
    if (head->inputs.size() == 1) {
      const PlanNode* producer = plan.FindNode(head->inputs[0]);
      if (producer->kind == OpKind::kSource) {
        auto pruned = optimized.pruned_fields.find(producer->stream);
        if (pruned != optimized.pruned_fields.end()) {
          const MapOperator::MapFn* projector =
              registry.Projector(producer->stream, pruned->second);
          if (projector != nullptr) {
            sb.Map(*projector);
            info.projection = "project '" + producer->stream + "' to " +
                              std::to_string(pruned->second.size()) +
                              " field(s)";
          }
        }
      }
    }

    for (const auto& node_id : group) {
      const PlanNode* node = plan.FindNode(node_id);
      info.operators.push_back(OperatorLabel(*node));
      switch (node->kind) {
        case OpKind::kSource:
          return NodeError(*node, "source cannot appear in a fused stage");
        case OpKind::kFilter: {
          const auto* fn = registry.Predicate(node->expr);
          if (fn == nullptr) {
            return MissingHandle(*node, "predicate", node->expr,
                                 "RegisterPredicate");
          }
          sb.Filter(*fn);
          break;
        }
        case OpKind::kMap: {
          const auto* fn = registry.Map(node->expr);
          if (fn == nullptr) {
            return MissingHandle(*node, "map", node->expr, "RegisterMap");
          }
          sb.Map(*fn);
          break;
        }
        case OpKind::kFlatMap: {
          const auto* fn = registry.FlatMap(node->expr);
          if (fn == nullptr) {
            return MissingHandle(*node, "flat_map", node->expr,
                                 "RegisterFlatMap");
          }
          sb.FlatMap(*fn);
          break;
        }
        case OpKind::kKeyBy: {
          const auto* fn = registry.Key(node->expr);
          if (fn == nullptr) {
            return MissingHandle(*node, "key", node->expr, "RegisterKey");
          }
          sb.KeyBy(*fn);
          break;
        }
        case OpKind::kAggregate: {
          const auto* agg = registry.Aggregate(node->agg);
          if (agg == nullptr) {
            return MissingHandle(*node, "aggregate", node->agg,
                                 "RegisterAggregate");
          }
          sb.Aggregate(node->store, *agg);
          break;
        }
        case OpKind::kTableAggregate: {
          const auto* agg = registry.Aggregate(node->agg);
          if (agg == nullptr) {
            return MissingHandle(*node, "aggregate", node->agg,
                                 "RegisterAggregate");
          }
          const auto* group_key = registry.Key(node->group_key);
          if (group_key == nullptr) {
            return MissingHandle(*node, "group key", node->group_key,
                                 "RegisterKey");
          }
          TableAggregateOperator::RowKeyFn row_key = nullptr;
          if (!node->row_key.empty()) {
            const auto* rk = registry.Key(node->row_key);
            if (rk == nullptr) {
              return MissingHandle(*node, "row key", node->row_key,
                                   "RegisterKey");
            }
            row_key = *rk;
          }
          sb.TableAggregate(node->store, *group_key, *agg, row_key);
          break;
        }
        case OpKind::kWindowAggregate: {
          const auto* agg = registry.Aggregate(node->agg);
          if (agg == nullptr) {
            return MissingHandle(*node, "aggregate", node->agg,
                                 "RegisterAggregate");
          }
          WindowSpec window =
              node->window_slide > 0
                  ? WindowSpec::Sliding(node->window_size, node->window_slide)
                  : WindowSpec::Tumbling(node->window_size);
          sb.WindowAggregate(node->store, window, *agg,
                             node->allowed_lateness, node->emit_mode,
                             node->suppress_interval);
          break;
        }
        case OpKind::kJoinStreams: {
          const auto* join = registry.Join(node->expr);
          if (join == nullptr) {
            return MissingHandle(*node, "join", node->expr, "RegisterJoin");
          }
          sb.JoinStreams(node->store, node->join_window, *join,
                         node->allowed_lateness);
          break;
        }
        case OpKind::kJoinTable: {
          const auto* join = registry.Join(node->expr);
          if (join == nullptr) {
            return MissingHandle(*node, "join", node->expr, "RegisterJoin");
          }
          sb.JoinTable(node->store, *join);
          break;
        }
        case OpKind::kJoinTables: {
          const auto* join = registry.Join(node->expr);
          if (join == nullptr) {
            return MissingHandle(*node, "join", node->expr, "RegisterJoin");
          }
          sb.JoinTables(node->store, *join);
          break;
        }
        case OpKind::kSink:
          sb.Sink(node->sink);
          info.outputs.push_back(EgressStreamName(plan.name, info.name));
          break;
      }
    }

    // Boundary output streams: one per consumer of the tail, consumer order.
    std::vector<std::string> consumers = plan.ConsumersOf(tail->id);
    for (const auto& consumer_id : consumers) {
      std::string stream = BoundaryStreamName(plan, *tail, consumer_id);
      sb.WritesTo(stream);
      info.outputs.push_back(stream);
    }
    if (consumers.size() > 1) {
      uint32_t fan = static_cast<uint32_t>(consumers.size());
      sb.AddOperator(
          [fan]() { return std::make_unique<FanOutOperator>(fan); },
          /*stateful=*/false);
      info.operators.push_back("fan_out(" + std::to_string(fan) + ")");
      info.fans_out = true;
    }

    out.stages.push_back(std::move(info));
  }

  IMPELLER_ASSIGN_OR_RETURN(out.query, qb.Build());

  // Backfill per-stage statefulness from the built plan.
  for (auto& stage : out.stages) {
    const StageSpec* spec = out.query.FindStage(stage.name);
    stage.stateful = spec != nullptr && spec->stateful;
  }
  return out;
}

}  // namespace plan
}  // namespace impeller
