// Compiles an OptimizedPlan onto the imperative QueryPlan machinery
// (src/core/query.h): each fused group becomes one stage, each edge
// between groups becomes one log-backed stream, UDF handles resolve
// against a UdfRegistry. The engine, protocols, and sharding layers are
// untouched — a lowered plan is indistinguishable from a hand-built one.
#ifndef IMPELLER_SRC_PLAN_LOWERING_H_
#define IMPELLER_SRC_PLAN_LOWERING_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/query.h"
#include "src/plan/optimizer.h"

namespace impeller {
namespace plan {

// Per-stage record of what lowering did, consumed by Explain().
struct LoweredStage {
  std::string name;
  uint32_t tasks = 0;
  bool stateful = false;
  std::vector<std::string> node_ids;  // fused plan nodes, chain order
  std::vector<std::string> operators;  // human-readable operator labels
  std::vector<std::string> inputs;    // stream names, positional
  std::vector<std::string> outputs;   // stream names (incl. egress)
  bool fans_out = false;  // a FanOut tail broadcasts to every output
  std::string projection;  // non-empty: inserted projector description
};

struct LoweredPlan {
  QueryPlan query;
  std::vector<LoweredStage> stages;
  std::vector<std::string> ingress;  // external streams, declaration order
  std::vector<std::pair<std::string, std::string>> fused_edges;
  std::vector<std::string> pass_log;
  int hops_eliminated = 0;
};

// Stream name carrying `producer`'s output to `consumer` when that edge
// crosses a stage boundary. Single-consumer edges use the producer's
// stream hint (or "<plan>.<producer-id>"); fan-out edges append the
// consumer id so each boundary stream keeps exactly one consumer.
std::string BoundaryStreamName(const LogicalPlan& plan,
                               const PlanNode& producer,
                               std::string_view consumer_id);

// Fails with actionable messages when a UDF handle is unregistered or the
// plan shape cannot map onto the stage model (e.g. an ingress stream with
// two consuming nodes).
Result<LoweredPlan> LowerPlan(const OptimizedPlan& optimized,
                              const UdfRegistry& registry);

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_LOWERING_H_
