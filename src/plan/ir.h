// Declarative plan IR (ROADMAP item 5): a serializable logical DAG of
// stream operators that an optimizer can rewrite before it is lowered onto
// the imperative QueryPlan/StageSpec machinery (src/core/query.h).
//
// The IR is *logical*: one node per operator, not per stage. Which nodes
// share a stage — and therefore how many shared-log hops a record pays,
// the dominant latency term per Table 2 of the paper — is decided by the
// optimizer's fusion pass (src/plan/passes/fusion.cc), not by the author.
//
// UDFs (predicates, maps, keys, aggregates, joins) are referenced by *named
// handles* resolved against a UdfRegistry at lowering time, which is what
// makes plans serializable: the JSON form carries names, the registry
// carries code. See src/plan/registry.h.
#ifndef IMPELLER_SRC_PLAN_IR_H_
#define IMPELLER_SRC_PLAN_IR_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/operators.h"

namespace impeller {
namespace plan {

enum class OpKind {
  kSource,           // reads an external ingress stream; no inputs
  kFilter,           // expr: predicate handle
  kMap,              // expr: map handle
  kFlatMap,          // expr: flat-map handle
  kKeyBy,            // expr: key handle; induces a repartition boundary
                     // before any downstream stateful node
  kAggregate,        // per-key running aggregate; agg + store
  kTableAggregate,   // grouped table aggregate; agg + store + group/row keys
  kWindowAggregate,  // event-time window aggregate; agg + store + window
  kJoinStreams,      // windowed stream-stream join; expr: join handle
  kJoinTable,        // stream-table join; expr: join handle
  kJoinTables,       // table-table join; expr: join handle
  kSink,             // terminal; sink: metric name
};

std::string_view OpKindName(OpKind kind);
Result<OpKind> OpKindFromName(std::string_view name);

// Stateless nodes fuse freely into any stage; stateful nodes require their
// input partitioned by the current record key.
bool IsStatelessKind(OpKind kind);
bool IsJoinKind(OpKind kind);

struct PlanNode {
  std::string id;  // unique within the plan; used in errors and explain
  OpKind kind = OpKind::kMap;
  // Producing node ids. Arity is fixed per kind: 0 for source, 2 for joins
  // (ordered — element 0 is join input 0), 1 otherwise.
  std::vector<std::string> inputs;

  // UDF handles (UdfRegistry names).
  std::string expr;       // predicate / map / flat_map / key / join handle
  std::string agg;        // AggregateFn handle (aggregate kinds)
  std::string group_key;  // table aggregate: group key handle
  std::string row_key;    // table aggregate: row identity handle (optional)

  std::string store;  // state store name (stateful kinds)
  std::string sink;   // sink metric name (kSink)

  // kSource: the ingress stream this node reads. Other kinds: the name of
  // the stream carrying this node's output when it ends up on a stage
  // boundary (empty = auto "<plan>.<id>").
  std::string stream;

  // Preferred stage name when this node heads a fused stage (empty = node
  // id). Lets plan-built queries keep the stage names the imperative
  // builders used, which downstream tooling (egress consumers, metrics)
  // keys on.
  std::string stage_hint;

  // Task count for the stage this node heads (0 = plan default_tasks).
  uint32_t tasks = 0;

  // kWindowAggregate parameters.
  DurationNs window_size = 0;
  DurationNs window_slide = 0;  // 0 = tumbling (slide == size)
  WindowEmitMode emit_mode = WindowEmitMode::kOnClose;
  DurationNs suppress_interval = 100 * kMillisecond;

  // kJoinStreams window.
  DurationNs join_window = 0;

  // Watermark slack for windows and stream-stream joins.
  DurationNs allowed_lateness = 100 * kMillisecond;
};

struct LogicalPlan {
  std::string name;
  uint32_t default_tasks = 1;
  std::vector<PlanNode> nodes;  // construction order; not necessarily topo

  const PlanNode* FindNode(std::string_view id) const;
  PlanNode* FindNode(std::string_view id);
  // Ids of nodes consuming `id`'s output, in node order.
  std::vector<std::string> ConsumersOf(std::string_view id) const;

  // Structural validation with actionable messages: unique ids, per-kind
  // arity and attribute requirements, edges resolve, no cycles, every
  // non-sink output consumed, at least one source and one sink.
  Status Validate() const;

  // Node ids in a deterministic topological order (construction order is
  // the tie-break). Requires Validate() to have passed.
  std::vector<std::string> TopoOrder() const;

  std::string ToJson(int indent = 2) const;
  static Result<LogicalPlan> FromJson(std::string_view json_text);
};

// Fluent construction helper. Methods append a node and return a NodeRef
// whose setters (Stage, Via, Tasks, Id) refine lowering hints:
//
//   PlanBuilder pb("q1", /*default_tasks=*/2);
//   auto bids = pb.Source("bids");
//   auto conv = pb.Map(pb.Filter(bids, "nonempty").Stage("convert"),
//                      "usd_to_eur");
//   pb.Sink(conv, "q1");
//   auto plan = pb.Build();  // validated LogicalPlan
class PlanBuilder {
 public:
  class NodeRef {
   public:
    NodeRef(PlanBuilder* builder, size_t index)
        : builder_(builder), index_(index) {}
    // Stage-name hint for the fused stage this node heads.
    NodeRef& Stage(std::string name);
    // Boundary stream name for this node's output.
    NodeRef& Via(std::string stream);
    // Task count for the stage this node heads.
    NodeRef& Tasks(uint32_t n);
    // Renames the node (updates every edge referencing it).
    NodeRef& Id(std::string id);
    const std::string& id() const;

   private:
    friend class PlanBuilder;
    PlanBuilder* builder_;
    size_t index_;
  };

  explicit PlanBuilder(std::string name, uint32_t default_tasks = 1);

  NodeRef Source(std::string stream);
  NodeRef Filter(NodeRef input, std::string expr);
  NodeRef Map(NodeRef input, std::string expr);
  NodeRef FlatMap(NodeRef input, std::string expr);
  NodeRef KeyBy(NodeRef input, std::string expr);
  NodeRef Aggregate(NodeRef input, std::string store, std::string agg);
  NodeRef TableAggregate(NodeRef input, std::string store,
                         std::string group_key, std::string agg,
                         std::string row_key = "");
  NodeRef WindowAggregate(NodeRef input, std::string store, WindowSpec window,
                          std::string agg,
                          DurationNs allowed_lateness = 100 * kMillisecond,
                          WindowEmitMode mode = WindowEmitMode::kOnClose,
                          DurationNs suppress_interval = 100 * kMillisecond);
  NodeRef JoinStreams(NodeRef left, NodeRef right, std::string store,
                      DurationNs window, std::string expr,
                      DurationNs allowed_lateness = 100 * kMillisecond);
  NodeRef JoinTable(NodeRef stream, NodeRef table, std::string store,
                    std::string expr);
  NodeRef JoinTables(NodeRef left, NodeRef right, std::string store,
                     std::string expr);
  NodeRef Sink(NodeRef input, std::string name);

  // Validates and returns the plan.
  Result<LogicalPlan> Build() const;
  // The plan as built so far, unvalidated (for tests constructing invalid
  // plans on purpose).
  const LogicalPlan& plan() const { return plan_; }

 private:
  NodeRef Add(OpKind kind, std::vector<std::string> inputs);

  LogicalPlan plan_;
  int next_id_ = 1;
};

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_IR_H_
