#include "src/plan/optimizer.h"

#include "src/plan/passes/passes.h"

namespace impeller {
namespace plan {

Optimizer Optimizer::Default(bool fuse) {
  Optimizer opt;
  // Rewriting passes first (they reorder/insert nodes), fusion last (it
  // decides the stage boundaries for whatever the rewrites produced).
  opt.AddPass(MakePredicatePushdownPass());
  opt.AddPass(MakeProjectionPruningPass());
  opt.AddPass(MakeFusionPass(fuse));
  return opt;
}

Optimizer& Optimizer::AddPass(std::unique_ptr<PlanPass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Result<OptimizedPlan> Optimizer::Run(const LogicalPlan& input,
                                     const UdfRegistry& registry) const {
  IMPELLER_RETURN_IF_ERROR(input.Validate());

  OptimizedPlan out;
  out.plan = input;

  PassContext ctx;
  ctx.plan = &out.plan;
  ctx.registry = &registry;

  for (const auto& pass : passes_) {
    IMPELLER_ASSIGN_OR_RETURN(int rewrites, pass->Run(&ctx));
    if (rewrites > 0) {
      // A rewriting pass must leave the plan structurally valid; catching a
      // pass bug here beats a confusing lowering failure later.
      Status valid = out.plan.Validate();
      if (!valid.ok()) {
        return InternalError("optimizer pass '" + std::string(pass->name()) +
                             "' corrupted the plan: " +
                             std::string(valid.message()));
      }
    }
  }

  out.group_of = std::move(ctx.group_of);
  out.groups = std::move(ctx.groups);
  out.fused_edges = std::move(ctx.fused_edges);
  out.pruned_fields = std::move(ctx.pruned_fields);
  out.pass_log = std::move(ctx.log);
  out.hops_eliminated = static_cast<int>(out.fused_edges.size());

  if (out.groups.empty()) {
    return InternalError(
        "optimizer pipeline produced no stage grouping; a fusion pass "
        "(MakeFusionPass) must run last");
  }
  return out;
}

}  // namespace plan
}  // namespace impeller
